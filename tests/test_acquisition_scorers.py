"""Tests for the acquisition scorers, including the BDP differential
contract: the vectorized scorer must match the literal loop oracle."""

import numpy as np
import pytest

from repro.acquisition import (
    BDPScorer,
    InfoMaxScorer,
    PairPosterior,
    PairScorer,
    RandomScorer,
    SCORER_CHOICES,
    UncertaintyScorer,
    bdp_scores_reference,
    make_scorer,
)
from repro.acquisition.bdp import strength_gains
from repro.acquisition.scorers import AcquisitionState
from repro.exceptions import ConfigurationError


def seeded_posterior(n, n_votes=40, seed=11):
    rng = np.random.default_rng(seed)
    posterior = PairPosterior(n)
    for _ in range(n_votes):
        i, j = rng.choice(n, size=2, replace=False)
        posterior.observe(int(i), int(j),
                          weight=float(rng.uniform(0.4, 1.0)))
    return posterior


def state_of(posterior, closure=None):
    return AcquisitionState(posterior=posterior, closure=closure)


class TestRegistry:
    def test_every_choice_constructs_a_scorer(self):
        for name in SCORER_CHOICES:
            scorer = make_scorer(name, seed=5)
            assert isinstance(scorer, PairScorer)

    def test_unknown_name_raises(self):
        with pytest.raises(ConfigurationError):
            make_scorer("gradient-descent")

    def test_scores_cover_the_pair_universe(self):
        posterior = seeded_posterior(7)
        state = state_of(posterior)
        for name in SCORER_CHOICES:
            scores = make_scorer(name).score(state)
            assert scores.shape == (posterior.n_pairs,)
            assert np.all(np.isfinite(scores))


class TestRandomScorer:
    def test_keyed_on_state_and_seed(self):
        posterior = seeded_posterior(6)
        state = state_of(posterior)
        a = RandomScorer(seed=1).score(state)
        b = RandomScorer(seed=1).score(state)
        c = RandomScorer(seed=2).score(state)
        np.testing.assert_array_equal(a, b)
        assert not np.array_equal(a, c)

    def test_stream_advances_with_observations(self):
        posterior = seeded_posterior(6)
        before = RandomScorer(seed=1).score(state_of(posterior))
        posterior.observe(0, 1)
        after = RandomScorer(seed=1).score(state_of(posterior))
        assert not np.array_equal(before, after)


class TestUncertaintyScorer:
    def test_peaks_at_half(self):
        posterior = PairPosterior(3)
        for _ in range(5):
            posterior.observe(0, 1)  # pair 0 decided
        scores = UncertaintyScorer().score(state_of(posterior))
        assert scores[0] < scores[1]

    def test_entropy_mode(self):
        posterior = seeded_posterior(5)
        absolute = UncertaintyScorer("absolute").score(state_of(posterior))
        entropy = UncertaintyScorer("entropy").score(state_of(posterior))
        # Different functional, same argmax-at-0.5 shape: ordering agrees.
        assert np.array_equal(np.argsort(absolute), np.argsort(entropy))

    def test_rejects_unknown_mode(self):
        with pytest.raises(ConfigurationError):
            UncertaintyScorer("variance")

    def test_prefers_closure_preference_when_attached(self):
        posterior = PairPosterior(3)
        closure = np.full((3, 3), 0.0)
        closure[0, 1], closure[1, 0] = 0.95, 0.05  # decided transitively
        scores = UncertaintyScorer().score(state_of(posterior, closure))
        assert scores[0] < scores[1]


class TestInfoMax:
    def test_unobserved_pairs_have_high_effective_resistance(self):
        posterior = PairPosterior(4)
        for _ in range(8):
            posterior.observe(0, 1)
        scores = InfoMaxScorer(fisher=False).score(state_of(posterior))
        heavy = int(posterior.pair_index(np.array([0]), np.array([1]))[0])
        light = int(posterior.pair_index(np.array([2]), np.array([3]))[0])
        assert scores[light] > scores[heavy]


class TestBDPDifferential:
    """The vectorized scorer against the literal loop oracle."""

    @pytest.mark.parametrize("strength_weight", [0.0, 0.5, 1.0])
    def test_matches_loop_oracle(self, strength_weight):
        posterior = seeded_posterior(9, n_votes=35, seed=4)
        scorer = BDPScorer(strength_weight=strength_weight)
        fast = scorer.score(state_of(posterior))
        slow = bdp_scores_reference(
            posterior, strength_weight=strength_weight
        )
        np.testing.assert_allclose(fast, slow, atol=1e-12)

    def test_matches_oracle_with_closure_preference(self):
        posterior = seeded_posterior(6, n_votes=20, seed=9)
        rng = np.random.default_rng(0)
        closure = rng.uniform(0.05, 0.95, size=(6, 6))
        state = state_of(posterior, closure)
        fast = BDPScorer(strength_weight=0.25).score(state)
        slow = bdp_scores_reference(
            posterior, preference=state.preference_means(),
            strength_weight=0.25,
        )
        np.testing.assert_allclose(fast, slow, atol=1e-12)

    def test_strength_gains_match_quadruple_loop(self):
        """The O(K^4) -> O(K^2) collapse of the exemplar functional."""
        posterior = seeded_posterior(8, n_votes=30, seed=2)
        fast = BDPScorer(strength_weight=1.0, kappa=0.0).score(
            state_of(posterior)
        )
        slow = bdp_scores_reference(posterior, kappa=0.0,
                                    strength_weight=1.0)
        np.testing.assert_allclose(fast, slow, atol=1e-12)


class TestBDPBehaviour:
    def test_diminishing_returns_on_requeried_pairs(self):
        posterior = PairPosterior(3)
        fresh = BDPScorer().score(state_of(posterior))[0]
        for _ in range(6):
            posterior.observe(0, 1)
            posterior.observe(1, 0)
        hammered = BDPScorer().score(state_of(posterior))[0]
        assert hammered < fresh

    def test_closure_decided_pairs_score_lower(self):
        posterior = PairPosterior(3)
        closure = np.zeros((3, 3))
        closure[0, 1], closure[1, 0] = 0.97, 0.03
        closure[1, 2], closure[2, 1] = 0.5, 0.5
        scores = BDPScorer().score(state_of(posterior, closure))
        decided = int(posterior.pair_index(np.array([0]),
                                           np.array([1]))[0])
        contested = int(posterior.pair_index(np.array([1]),
                                             np.array([2]))[0])
        assert scores[decided] < scores[contested]

    def test_parameter_validation(self):
        with pytest.raises(ConfigurationError):
            BDPScorer(update_weight=0.0)
        with pytest.raises(ConfigurationError):
            BDPScorer(kappa=-1.0)
        with pytest.raises(ConfigurationError):
            BDPScorer(strength_weight=-0.1)

    def test_strength_gains_positive_for_near_prior_strengths(self):
        gains = strength_gains(np.ones(5), update_weight=1.0)
        assert np.all(gains > 0)

    def test_n200_universe_scores_fast(self):
        """The ISSUE bar: full-universe VOI at n=200 under a second."""
        import time

        posterior = seeded_posterior(200, n_votes=600, seed=0)
        scorer = BDPScorer(strength_weight=1.0)
        state = state_of(posterior)
        start = time.perf_counter()
        scores = scorer.score(state)
        elapsed = time.perf_counter() - start
        assert scores.shape == (posterior.n_pairs,)
        assert elapsed < 1.0
