"""Tests for the scenario × engine robustness matrix and its CLI."""

import json

import pytest

from repro.cli import main
from repro.exceptions import ConfigurationError
from repro.experiments.matrix import (
    ACQUISITION_ENGINES,
    DEFAULT_ENGINES,
    ENGINES,
    NONINTERACTIVE_ENGINES,
    run_cell,
    run_matrix,
)

#: Tiny-but-nontrivial cell knobs shared across the tests.
SMALL = dict(n_objects=10, selection_ratio=0.5, n_workers=8,
             workers_per_task=3, seeds=(1, 2))


class TestEngineRegistry:
    def test_partition(self):
        assert set(ENGINES) == (set(NONINTERACTIVE_ENGINES)
                                | set(ACQUISITION_ENGINES))
        assert not set(NONINTERACTIVE_ENGINES) & set(ACQUISITION_ENGINES)

    def test_defaults_are_known(self):
        assert set(DEFAULT_ENGINES) <= set(ENGINES)

    def test_unknown_engine(self):
        with pytest.raises(ConfigurationError, match="unknown engine"):
            run_cell("honest", "quicksort", **SMALL)

    def test_unknown_family(self):
        with pytest.raises(ConfigurationError, match="unknown scenario"):
            run_matrix(["bogus"], ["borda"], **SMALL)


class TestRunCell:
    def test_cell_shape(self):
        cell = run_cell("spammer", "borda", **SMALL)
        assert cell.family == "spammer"
        assert cell.engine == "borda"
        assert cell.seeds == (1, 2)
        assert 0.0 <= cell.accuracy_min <= cell.accuracy_mean \
            <= cell.accuracy_max <= 1.0
        assert cell.votes_mean > 0
        assert cell.vote_efficiency > 0

    def test_accuracy_complements_kendall(self):
        cell = run_cell("honest", "copeland", **SMALL)
        assert cell.accuracy_mean + cell.kendall_tau_mean \
            == pytest.approx(1.0)

    def test_deterministic(self):
        first = run_cell("clique", "crh_saps", **SMALL)
        second = run_cell("clique", "crh_saps", **SMALL)
        assert first.accuracy_mean == second.accuracy_mean
        assert first.kendall_tau_mean == second.kendall_tau_mean
        assert first.votes_mean == second.votes_mean

    def test_acquisition_cell_spends_the_matched_budget(self):
        cell = run_cell("spammer", "random", rounds=2, **SMALL)
        paired = run_cell("spammer", "borda", **SMALL)
        assert 0 < cell.votes_mean <= paired.votes_mean

    def test_row_and_payload(self):
        cell = run_cell("honest", "rc", **SMALL)
        row = cell.as_row()
        assert row["family"] == "honest"
        assert row["engine"] == "rc"
        assert set(row) == {"family", "engine", "n", "r", "w", "accuracy",
                            "acc_min", "kendall_tau", "votes",
                            "acc_per_kvote", "seconds"}
        payload = cell.as_payload()
        assert payload["seeds"] == [1, 2]


class TestRunMatrix:
    def test_cells_in_grid_order(self):
        cells = run_matrix(["honest", "spammer"], ["borda", "copeland"],
                           **SMALL)
        assert [(c.family, c.engine) for c in cells] == [
            ("honest", "borda"), ("honest", "copeland"),
            ("spammer", "borda"), ("spammer", "copeland"),
        ]

    def test_noninteractive_rows_are_paired(self):
        cells = run_matrix(["clique"], ["crh_saps", "borda", "rc"],
                           **SMALL)
        votes = {c.votes_mean for c in cells}
        assert len(votes) == 1

    def test_matrix_cell_matches_standalone_cell(self):
        # The shared per-seed votes are identically seeded, so a row
        # cell must equal the same cell collected standalone.
        matrix_cell = run_matrix(["drift"], ["borda"], **SMALL)[0]
        solo_cell = run_cell("drift", "borda", **SMALL)
        assert matrix_cell.accuracy_mean == solo_cell.accuracy_mean

    def test_budget_families_override_knobs(self):
        cells = run_matrix(["starved", "saturated"], ["borda"], **SMALL)
        starved, saturated = cells
        assert starved.workers_per_task == 1
        assert starved.votes_mean == SMALL["n_objects"] - 1
        assert saturated.selection_ratio == 1.0
        assert saturated.votes_mean > starved.votes_mean


class TestMatrixCli:
    ARGS = ["matrix", "--families", "spammer", "--engines", "borda",
            "--n-objects", "8", "--workers", "6", "--ratio", "0.5",
            "--seeds", "1", "2"]

    def test_table_output(self, capsys):
        assert main(self.ARGS) == 0
        out = capsys.readouterr().out
        assert "spammer" in out
        assert "borda" in out
        assert "accuracy" in out

    def test_json_output(self, capsys):
        assert main(self.ARGS + ["--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload) == 1
        cell = payload[0]
        assert cell["family"] == "spammer"
        assert cell["seeds"] == [1, 2]
        assert 0.0 <= cell["accuracy"] <= 1.0

    def test_csv_export(self, tmp_path, capsys):
        out = tmp_path / "matrix.csv"
        assert main(self.ARGS + ["--out", str(out)]) == 0
        header = out.read_text().splitlines()[0]
        assert "family" in header and "accuracy" in header

    def test_unknown_family_is_an_error(self, capsys):
        assert main(["matrix", "--families", "bogus"]) == 2
        assert "error:" in capsys.readouterr().err
