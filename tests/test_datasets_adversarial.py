"""Unit tests for the adversarial scenario families."""

import numpy as np
import pytest

from repro.datasets import (
    FAMILIES,
    hostile_votes,
    list_families,
    make_adversarial_scenario,
)
from repro.exceptions import ConfigurationError
from repro.experiments.runner import collect_votes
from repro.workers import (
    CliqueWorker,
    CorrelatedWorker,
    DifficultyWorker,
    DriftingWorker,
    SimulatedWorker,
    SpammerWorker,
)

REQUIRED = {"honest", "spammer", "clique", "inverted_clique", "drift",
            "drift_recover", "correlated", "heavy_tail", "starved",
            "saturated"}


class TestRegistry:
    def test_all_required_families_present(self):
        assert REQUIRED <= set(FAMILIES)

    def test_list_families_is_a_copy(self):
        listed = list_families()
        assert listed == FAMILIES
        listed.append("bogus")
        assert "bogus" not in FAMILIES

    def test_every_family_builds_and_votes(self):
        for family in FAMILIES:
            scenario = make_adversarial_scenario(
                family, 10, 0.5, n_workers=8, workers_per_task=3, rng=3
            )
            assert scenario.n_objects == 10
            assert len(scenario.pool) == 8
            assert family in scenario.quality_name
            votes = collect_votes(scenario, rng=4)
            assert len(votes) > 0


class TestValidation:
    def test_unknown_family(self):
        with pytest.raises(ConfigurationError, match="unknown scenario"):
            make_adversarial_scenario("bogus", 10, 0.5)

    def test_too_few_objects(self):
        with pytest.raises(ConfigurationError, match="at least 2"):
            make_adversarial_scenario("honest", 1, 0.5)

    def test_bad_ratio(self):
        with pytest.raises(ConfigurationError, match="selection_ratio"):
            make_adversarial_scenario("honest", 10, 0.0)

    def test_workers_per_task_exceeds_pool(self):
        with pytest.raises(ConfigurationError, match="exceeds pool"):
            make_adversarial_scenario("honest", 10, 0.5, n_workers=3,
                                      workers_per_task=4)

    def test_bad_spammer_fraction(self):
        with pytest.raises(ConfigurationError, match="spammer_fraction"):
            make_adversarial_scenario("spammer", 10, 0.5,
                                      spammer_fraction=1.5)

    def test_bad_clique_fraction(self):
        with pytest.raises(ConfigurationError, match="clique_fraction"):
            make_adversarial_scenario("clique", 10, 0.5, clique_fraction=0.0)

    def test_bad_tail_index(self):
        with pytest.raises(ConfigurationError, match="tail_index"):
            make_adversarial_scenario("heavy_tail", 10, 0.5, tail_index=-1)


class TestSeedStability:
    @pytest.mark.parametrize("family", sorted(REQUIRED))
    def test_same_seed_same_scenario(self, family):
        first = make_adversarial_scenario(family, 12, 0.5, n_workers=10,
                                          workers_per_task=3, rng=17)
        second = make_adversarial_scenario(family, 12, 0.5, n_workers=10,
                                           workers_per_task=3, rng=17)
        assert first.ground_truth.order == second.ground_truth.order
        for a, b in zip(first.pool, second.pool):
            assert type(a) is type(b)
            assert a.sigma == b.sigma

    def test_different_seed_different_truth(self):
        first = make_adversarial_scenario("honest", 20, 0.5, rng=1)
        second = make_adversarial_scenario("honest", 20, 0.5, rng=2)
        assert first.ground_truth.order != second.ground_truth.order


class TestCrowdComposition:
    def test_spammer_mix(self):
        scenario = make_adversarial_scenario("spammer", 10, 0.5,
                                             n_workers=20,
                                             workers_per_task=3, rng=5)
        spammers = [w for w in scenario.pool
                    if isinstance(w, SpammerWorker)]
        assert len(spammers) == 8  # 0.4 * 20
        assert len(spammers) < len(scenario.pool)

    def test_never_corrupts_whole_crowd(self):
        scenario = make_adversarial_scenario("spammer", 10, 0.5,
                                             n_workers=6,
                                             workers_per_task=3, rng=5,
                                             spammer_fraction=0.99)
        honest = [w for w in scenario.pool
                  if not isinstance(w, SpammerWorker)]
        assert len(honest) >= 1

    def test_clique_shares_one_story(self):
        scenario = make_adversarial_scenario("clique", 12, 0.5,
                                             n_workers=10,
                                             workers_per_task=3, rng=7)
        stories = [w.story.order for w in scenario.pool
                   if isinstance(w, CliqueWorker)]
        assert len(stories) == 3  # 0.3 * 10
        assert all(s == stories[0] for s in stories)

    def test_inverted_clique_story_is_reversed_truth(self):
        scenario = make_adversarial_scenario("inverted_clique", 12, 0.5,
                                             n_workers=10,
                                             workers_per_task=3, rng=7)
        cliques = [w for w in scenario.pool if isinstance(w, CliqueWorker)]
        assert cliques
        expected = tuple(reversed(scenario.ground_truth.order))
        for worker in cliques:
            assert tuple(worker.story.order) == expected

    def test_drift_directions(self):
        degrade = make_adversarial_scenario("drift", 12, 0.5, n_workers=10,
                                            workers_per_task=3, rng=9)
        recover = make_adversarial_scenario("drift_recover", 12, 0.5,
                                            n_workers=10,
                                            workers_per_task=3, rng=9)
        drifters = [w for w in degrade.pool
                    if isinstance(w, DriftingWorker)]
        learners = [w for w in recover.pool
                    if isinstance(w, DriftingWorker)]
        assert drifters and learners
        assert all(w.sigma < w.sigma_end for w in drifters)
        assert all(w.sigma > w.sigma_end for w in learners)

    def test_correlated_crowd_shares_the_coin(self):
        scenario = make_adversarial_scenario("correlated", 12, 0.5,
                                             n_workers=8,
                                             workers_per_task=3, rng=9)
        workers = list(scenario.pool)
        assert all(isinstance(w, CorrelatedWorker) for w in workers)
        seeds = {w.shared_seed for w in workers}
        assert len(seeds) == 1

    def test_heavy_tail_difficulty_field(self):
        scenario = make_adversarial_scenario("heavy_tail", 15, 0.5,
                                             n_workers=8,
                                             workers_per_task=3, rng=9)
        workers = list(scenario.pool)
        assert all(isinstance(w, DifficultyWorker) for w in workers)
        field = workers[0].difficulty
        assert field.shape == (15,)
        assert float(field.min()) >= 1.0
        for worker in workers[1:]:
            np.testing.assert_array_equal(worker.difficulty, field)

    def test_honest_is_plain_workers(self):
        scenario = make_adversarial_scenario("honest", 10, 0.5,
                                             n_workers=8,
                                             workers_per_task=3, rng=9)
        assert all(type(w) is SimulatedWorker for w in scenario.pool)


class TestBudgetRegimes:
    def test_starved_is_minimum_connected(self):
        scenario = make_adversarial_scenario("starved", 20, 0.6,
                                             n_workers=10,
                                             workers_per_task=4, rng=3)
        assert scenario.workers_per_task == 1
        votes = collect_votes(scenario, rng=3)
        # The planner clips to the n-1 spanning comparisons, one vote
        # each: the cheapest plan that still connects every object.
        assert len(votes) == scenario.n_objects - 1

    def test_saturated_covers_every_pair(self):
        scenario = make_adversarial_scenario("saturated", 8, 0.2,
                                             n_workers=10,
                                             workers_per_task=3, rng=3)
        assert scenario.selection_ratio == 1.0
        assert scenario.workers_per_task == 5
        votes = collect_votes(scenario, rng=3)
        seen = {tuple(sorted((v.winner, v.loser))) for v in votes.votes}
        assert len(seen) == 8 * 7 // 2


class TestHostileVotes:
    def test_returns_scenario_and_votes(self):
        scenario, votes = hostile_votes("spammer", 10, 0.5,
                                        scenario_seed=1, vote_seed=2)
        assert scenario.n_objects == 10
        assert len(votes) > 0

    def test_deterministic(self):
        _, first = hostile_votes("clique", 10, 0.5, scenario_seed=4,
                                 vote_seed=5)
        _, second = hostile_votes("clique", 10, 0.5, scenario_seed=4,
                                  vote_seed=5)
        rows = [(v.worker, v.winner, v.loser) for v in first.votes]
        assert rows == [(v.worker, v.winner, v.loser)
                        for v in second.votes]

    def test_params_reach_the_builder(self):
        scenario, _ = hostile_votes("spammer", 10, 0.5, n_workers=10,
                                    spammer_fraction=0.2, scenario_seed=1)
        spammers = [w for w in scenario.pool
                    if isinstance(w, SpammerWorker)]
        assert len(spammers) == 2
