"""Unit tests for repro.experiments (runner, reporting, scenarios)."""

import pytest

from repro.config import FAST_PIPELINE
from repro.datasets import make_scenario
from repro.exceptions import ConfigurationError
from repro.experiments import (
    format_records,
    format_series,
    run_baseline_arm,
    run_pipeline_arm,
)
from repro.experiments.runner import ExperimentRecord, collect_votes
from repro.experiments import scenarios


@pytest.fixture(scope="module")
def scenario():
    return make_scenario(15, 0.5, n_workers=10, workers_per_task=4, rng=31)


@pytest.fixture(scope="module")
def votes(scenario):
    return collect_votes(scenario, rng=31)


class TestRunner:
    def test_pipeline_arm_record(self, scenario, votes):
        record = run_pipeline_arm(scenario, FAST_PIPELINE, rng=1, votes=votes)
        assert record.algorithm == "saps"
        assert record.n_objects == 15
        assert 0.0 <= record.accuracy <= 1.0
        assert record.seconds > 0
        assert "t_truth_discovery" in record.extras

    @pytest.mark.parametrize("algorithm", ["rc", "qs", "borda", "copeland",
                                           "btl"])
    def test_baseline_arms(self, scenario, votes, algorithm):
        record = run_baseline_arm(scenario, algorithm, rng=1, votes=votes)
        assert record.algorithm == algorithm
        assert 0.0 <= record.accuracy <= 1.0

    def test_crowdbt_arm(self, scenario):
        record = run_baseline_arm(scenario, "crowdbt", rng=1)
        assert record.algorithm == "crowdbt"
        assert record.extras["queries"] > 0

    def test_unknown_baseline_rejected(self, scenario, votes):
        with pytest.raises(ConfigurationError):
            run_baseline_arm(scenario, "pagerank", votes=votes)

    def test_pipeline_beats_rc_and_qs(self, scenario, votes):
        """The Table-I headline, on a small paired instance."""
        ours = run_pipeline_arm(scenario, FAST_PIPELINE, rng=2, votes=votes)
        rc = run_baseline_arm(scenario, "rc", rng=2, votes=votes)
        qs = run_baseline_arm(scenario, "qs", rng=2, votes=votes)
        assert ours.accuracy > rc.accuracy
        assert ours.accuracy > qs.accuracy

    def test_collect_votes_size(self, scenario, votes):
        expected_pairs = round(0.5 * 15 * 14 / 2)
        assert len(votes) == expected_pairs * 4


class TestReporting:
    def _records(self):
        return [
            ExperimentRecord("saps", 10, 0.5, 3, "Gaussian", 0.95, 0.1,
                             extras={"note": "x"}),
            ExperimentRecord("rc", 10, 0.5, 3, "Gaussian", 0.5, 0.01),
        ]

    def test_format_records_contains_all(self):
        text = format_records(self._records(), title="T")
        assert "T" in text
        assert "saps" in text and "rc" in text
        assert "0.95" in text
        assert "note" in text

    def test_missing_cells_render_dash(self):
        text = format_records(self._records())
        assert "-" in text.splitlines()[-1]

    def test_explicit_columns(self):
        text = format_records(self._records(), columns=["algorithm",
                                                        "accuracy"])
        header = text.splitlines()[0]
        assert header.split() == ["algorithm", "accuracy"]

    def test_format_series_groups(self):
        records = [
            ExperimentRecord("saps", 10, r, 3, "Gaussian", a, 0.0)
            for r, a in [(0.1, 0.8), (0.5, 0.9)]
        ] + [
            ExperimentRecord("rc", 10, 0.1, 3, "Gaussian", 0.5, 0.0),
        ]
        text = format_series(records, x="r", y="accuracy",
                             group_by="algorithm", title="fig")
        assert "fig" in text
        assert "saps: 0.1:0.8, 0.5:0.9" in text
        assert "rc:" in text


class TestScenarioGrids:
    def test_laptop_scale_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_PAPER_SCALE", raising=False)
        assert not scenarios.paper_scale()
        assert max(scenarios.fig3_object_counts()) <= 400

    def test_paper_scale_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_PAPER_SCALE", "1")
        assert scenarios.paper_scale()
        assert max(scenarios.fig3_object_counts()) == 1000
        assert scenarios.fig4_object_count() == 1000

    def test_grids_nonempty(self):
        assert scenarios.fig4_selection_ratios()
        assert scenarios.fig5_object_counts()
        assert scenarios.fig5_selection_ratios()
        assert scenarios.table1_object_counts()
        assert scenarios.fig6_selection_ratios()
        assert scenarios.convergence_grid()
        assert scenarios.amt_image_counts() == [10, 20]
