"""Round-trip tests for the :mod:`repro.io` payload codecs.

These codecs back both file persistence and the batch service's result
cache / JSONL streams, so the schema contract is tested here once.
"""

import json

import pytest

from repro.exceptions import DataFormatError
from repro.io import (
    SCHEMA,
    load_result,
    result_from_payload,
    result_to_payload,
    save_result,
)
from repro.types import InferenceResult, Ranking


@pytest.fixture
def result():
    return InferenceResult(
        ranking=Ranking([2, 0, 1]),
        log_preference=-1.25,
        worker_quality={0: 0.9, 3: 0.4},
        direct_preferences={(0, 1): 0.8, (1, 2): 0.3},
        step_seconds={"truth_discovery": 0.1, "search": 0.9},
        metadata={"search_algorithm": "saps", "truth_iterations": 7},
    )


class TestPayloadCodec:
    def test_round_trip_preserves_everything(self, result):
        clone = result_from_payload(result_to_payload(result))
        assert clone.ranking == result.ranking
        assert clone.log_preference == result.log_preference
        assert clone.worker_quality == result.worker_quality
        assert clone.direct_preferences == result.direct_preferences
        assert clone.step_seconds == result.step_seconds
        assert clone.metadata == result.metadata

    def test_payload_is_json_ready(self, result):
        json.dumps(result_to_payload(result))  # must not raise

    def test_payload_carries_schema_tag(self, result):
        assert result_to_payload(result)["schema"] == SCHEMA

    def test_schema_tag_enforced(self, result):
        payload = result_to_payload(result)
        del payload["schema"]
        with pytest.raises(DataFormatError):
            result_from_payload(payload)
        payload["schema"] = "repro.inference_result/999"
        with pytest.raises(DataFormatError):
            result_from_payload(payload)

    def test_non_dict_payload_rejected(self):
        with pytest.raises(DataFormatError):
            result_from_payload([1, 2, 3])

    def test_invalid_ranking_rejected(self, result):
        payload = result_to_payload(result)
        payload["ranking"] = [0, 0, 1]
        with pytest.raises(DataFormatError):
            result_from_payload(payload)

    def test_malformed_pair_key_rejected(self, result):
        payload = result_to_payload(result)
        payload["direct_preferences"] = {"0-1": 0.5}
        with pytest.raises(DataFormatError):
            result_from_payload(payload)

    def test_source_appears_in_error(self, result):
        with pytest.raises(DataFormatError, match="line 3"):
            result_from_payload({"schema": "nope"}, source="line 3")


class TestFileRoundTrip:
    def test_save_load(self, result, tmp_path):
        path = tmp_path / "result.json"
        save_result(result, path)
        assert load_result(path).ranking == result.ranking

    def test_missing_file_raises_data_format(self, tmp_path):
        with pytest.raises(DataFormatError):
            load_result(tmp_path / "absent.json")

    def test_directory_raises_data_format(self, tmp_path):
        with pytest.raises(DataFormatError):
            load_result(tmp_path)

    def test_corrupt_json_raises_data_format(self, tmp_path):
        path = tmp_path / "corrupt.json"
        path.write_text("{truncated")
        with pytest.raises(DataFormatError):
            load_result(path)
