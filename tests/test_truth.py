"""Unit tests for repro.truth (CRH, majority voting, convergence)."""

import numpy as np
import pytest

from repro.config import TruthDiscoveryConfig
from repro.exceptions import ConvergenceError, InferenceError
from repro.truth import (
    ConvergenceTrace,
    discover_truth,
    majority_vote,
    weighted_majority_vote,
)
from repro.types import Vote, VoteSet


class TestMajorityVote:
    def test_simple_majority(self, tiny_votes):
        shares = majority_vote(tiny_votes)
        assert shares[(0, 1)] == pytest.approx(2 / 3)
        assert shares[(1, 2)] == 1.0

    def test_empty_rejected(self):
        with pytest.raises(InferenceError):
            majority_vote(VoteSet.from_votes(3, []))

    def test_weighted_majority_downweights(self, tiny_votes):
        """Crushing worker 2's weight makes pair (0, 1) unanimous."""
        shares = weighted_majority_vote(tiny_votes, weights={2: 0.0, 0: 1.0, 1: 1.0})
        assert shares[(0, 1)] == pytest.approx(1.0)

    def test_negative_weight_rejected(self, tiny_votes):
        with pytest.raises(InferenceError):
            weighted_majority_vote(tiny_votes, weights={0: -1.0})

    def test_all_zero_weights_rejected(self, tiny_votes):
        with pytest.raises(InferenceError):
            weighted_majority_vote(tiny_votes, weights={0: 0.0, 1: 0.0, 2: 0.0})


class TestDiscoverTruth:
    def test_outputs_cover_all_pairs_and_workers(self, tiny_votes):
        result = discover_truth(tiny_votes)
        assert set(result.preferences) == {(0, 1), (0, 3), (1, 2), (2, 3)}
        assert set(result.worker_quality) == {0, 1, 2}

    def test_preferences_in_unit_interval(self, medium_votes):
        result = discover_truth(medium_votes)
        assert all(0.0 <= x <= 1.0 for x in result.preferences.values())

    def test_qualities_in_unit_interval(self, medium_votes):
        result = discover_truth(medium_votes)
        assert all(0.0 < q <= 1.0 for q in result.worker_quality.values())

    def test_adversarial_worker_gets_lower_quality(self):
        """Worker 2 disagrees with the consensus on every pair."""
        votes = []
        for pair in [(0, 1), (1, 2), (2, 3), (0, 2), (1, 3), (0, 3)]:
            i, j = pair
            votes.append(Vote(worker=0, winner=i, loser=j))
            votes.append(Vote(worker=1, winner=i, loser=j))
            votes.append(Vote(worker=2, winner=j, loser=i))
        result = discover_truth(VoteSet.from_votes(4, votes))
        assert result.worker_quality[2] < result.worker_quality[0]
        assert result.worker_quality[2] < result.worker_quality[1]

    def test_unanimous_pairs_resolve_to_extremes(self, tiny_votes):
        result = discover_truth(tiny_votes)
        assert result.preferences[(1, 2)] == pytest.approx(1.0)
        assert result.preferences[(2, 3)] == pytest.approx(1.0)

    def test_majority_direction_preserved(self, tiny_votes):
        result = discover_truth(tiny_votes)
        assert result.preferences[(0, 1)] > 0.5

    def test_converges_within_cap(self, medium_votes):
        result = discover_truth(medium_votes)
        assert result.trace.converged
        assert result.iterations <= TruthDiscoveryConfig().max_iterations

    def test_relaxed_tolerance_converges_faster(self, medium_votes):
        """Looser tolerance must never need more iterations."""
        strict = discover_truth(
            medium_votes, TruthDiscoveryConfig(tolerance=1e-4)
        )
        relaxed = discover_truth(
            medium_votes, TruthDiscoveryConfig(tolerance=1e-2)
        )
        assert relaxed.trace.converged
        assert relaxed.iterations <= strict.iterations

    def test_strict_mode_raises_on_cap(self, medium_votes):
        config = TruthDiscoveryConfig(max_iterations=1, strict=True,
                                      tolerance=1e-12)
        with pytest.raises(ConvergenceError):
            discover_truth(medium_votes, config)

    def test_non_strict_mode_returns_on_cap(self, medium_votes):
        config = TruthDiscoveryConfig(max_iterations=1, tolerance=1e-12)
        result = discover_truth(medium_votes, config)
        assert not result.trace.converged
        assert result.iterations == 1

    def test_empty_votes_rejected(self):
        with pytest.raises(InferenceError):
            discover_truth(VoteSet.from_votes(3, []))

    def test_deterministic(self, medium_votes):
        a = discover_truth(medium_votes)
        b = discover_truth(medium_votes)
        assert a.preferences == b.preferences
        assert a.worker_quality == b.worker_quality

    def test_better_than_majority_with_known_bad_worker(self):
        """One reliable and three coin-flip workers on the same pairs:
        truth discovery should track the reliable worker more closely
        than naive majority."""
        rng = np.random.default_rng(0)
        pairs = [(i, j) for i in range(6) for j in range(i + 1, 6)]
        votes = []
        for i, j in pairs:
            votes.append(Vote(worker=0, winner=i, loser=j))  # always truthful
            for worker in (1, 2, 3):
                if rng.random() < 0.5:
                    votes.append(Vote(worker=worker, winner=i, loser=j))
                else:
                    votes.append(Vote(worker=worker, winner=j, loser=i))
        result = discover_truth(VoteSet.from_votes(6, votes))
        correct = sum(1 for pair in pairs if result.preferences[pair] > 0.5)
        majority = majority_vote(VoteSet.from_votes(6, votes))
        majority_correct = sum(1 for pair in pairs if majority[pair] > 0.5)
        assert correct >= majority_correct


class TestConvergenceTrace:
    def test_record_and_iterations(self):
        trace = ConvergenceTrace()
        trace.record(0.5, 0.4)
        trace.record(0.1, 0.05)
        assert trace.iterations == 2
        assert trace.max_delta(0) == 0.5
        assert trace.max_delta(1) == 0.1

    def test_monotone_tail(self):
        trace = ConvergenceTrace()
        for delta in [0.5, 0.3, 0.2, 0.1]:
            trace.record(delta, delta)
        assert trace.is_monotone_tail(tail=3)

    def test_non_monotone_tail(self):
        trace = ConvergenceTrace()
        for delta in [0.5, 0.1, 0.3, 0.2, 0.4]:
            trace.record(delta, delta)
        assert not trace.is_monotone_tail(tail=3)

    def test_short_trace_is_trivially_monotone(self):
        trace = ConvergenceTrace()
        trace.record(0.5, 0.5)
        assert trace.is_monotone_tail()
