"""Concurrency and lifecycle tests for :class:`SessionManager`:
parallel ingest, same-session serialisation, TTL eviction under load,
the session cap, and graceful drain."""

import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.config import PipelineConfig, PropagationConfig, SAPSConfig
from repro.datasets import make_scenario
from repro.exceptions import (
    ConfigurationError,
    SessionLimitError,
    SessionNotFoundError,
)
from repro.experiments.runner import collect_votes
from repro.service import MetricsRegistry
from repro.streaming import SessionConfig, SessionManager

FAST = SessionConfig(
    pipeline=PipelineConfig(
        saps=SAPSConfig(iterations=1000, restarts=1),
        propagation=PropagationConfig(max_hops=4, method="walks"),
    ),
    warm_iterations=300,
    early_stop=False,
)


@pytest.fixture
def votes():
    scenario = make_scenario(10, 0.6, n_workers=8, rng=5)
    return list(collect_votes(scenario, rng=5).votes)


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def advance(self, seconds):
        self.now += seconds

    def __call__(self):
        return self.now


class TestParallelIngest:
    def test_distinct_sessions_ingest_in_parallel(self, votes, hang_guard):
        metrics = MetricsRegistry()
        manager = SessionManager(max_sessions=8, metrics=metrics)
        ids = [manager.create(10, FAST).session_id for _ in range(4)]

        def feed(session_id):
            for start in range(0, len(votes), 20):
                manager.ingest(session_id, votes[start:start + 20])
            return manager.get(session_id).votes_ingested

        with ThreadPoolExecutor(max_workers=4) as pool:
            counts = list(pool.map(feed, ids))
        assert counts == [len(votes)] * 4
        # All four sessions saw identical votes with identical seeds —
        # concurrency must not leak state between them.
        orders = {tuple(manager.get(i).ranking.order) for i in ids}
        assert len(orders) == 1
        snapshot = metrics.snapshot()["counters"]
        assert snapshot["session_votes_ingested"] == 4 * len(votes)

    def test_same_session_ingests_serialise(self, votes, hang_guard):
        manager = SessionManager(max_sessions=2)
        session = manager.create(10, FAST)
        chunks = [votes[i:i + 10] for i in range(0, len(votes), 10)]

        def feed(chunk):
            manager.ingest(session.session_id, chunk)

        with ThreadPoolExecutor(max_workers=6) as pool:
            list(pool.map(feed, chunks))
        assert session.votes_ingested == len(votes)
        assert (session.updates_full + session.updates_incremental
                == len(chunks))


class TestEviction:
    def test_ttl_eviction_under_load(self, votes):
        clock = FakeClock()
        metrics = MetricsRegistry()
        manager = SessionManager(max_sessions=16, ttl_seconds=60.0,
                                 metrics=metrics, clock=clock)
        old = manager.create(10, FAST)
        manager.ingest(old.session_id, votes[:10])
        clock.advance(50.0)
        fresh = manager.create(10, FAST)
        manager.ingest(fresh.session_id, votes[:10])  # touches fresh
        clock.advance(20.0)  # old idle 70s, fresh idle 20s
        # Any traffic sweeps expired sessions as a side effect.
        manager.ingest(fresh.session_id, votes[10:20])
        assert manager.session_ids() == [fresh.session_id]
        with pytest.raises(SessionNotFoundError):
            manager.get(old.session_id)
        assert manager.evictions == 1
        assert metrics.snapshot()["counters"]["sessions_evicted"] == 1

    def test_touch_refreshes_ttl(self, votes):
        clock = FakeClock()
        manager = SessionManager(ttl_seconds=60.0, clock=clock)
        session = manager.create(10, FAST)
        for _ in range(5):
            clock.advance(50.0)
            manager.get(session.session_id)  # keep-alive
        assert len(manager) == 1

    def test_cap_evicts_idle_then_rejects(self, votes):
        clock = FakeClock()
        manager = SessionManager(max_sessions=2, ttl_seconds=60.0,
                                 clock=clock)
        manager.create(10, FAST)
        manager.create(10, FAST)
        with pytest.raises(SessionLimitError):
            manager.create(10, FAST)  # both live, cap hit
        clock.advance(120.0)  # both now idle past TTL
        survivor = manager.create(10, FAST)
        assert manager.session_ids() == [survivor.session_id]

    def test_duplicate_id_rejected(self):
        manager = SessionManager()
        manager.create(10, FAST, session_id="dup")
        with pytest.raises(ConfigurationError):
            manager.create(10, FAST, session_id="dup")

    def test_delete_unknown_raises(self):
        manager = SessionManager()
        with pytest.raises(SessionNotFoundError):
            manager.delete("ghost")


class TestDrain:
    def test_drain_waits_for_in_flight_updates(self, votes, hang_guard):
        manager = SessionManager(max_sessions=4)
        session = manager.create(10, FAST)
        started = threading.Barrier(3)

        def feed():
            started.wait(timeout=30)
            for start in range(0, len(votes), 30):
                manager.ingest(session.session_id, votes[start:start + 30])

        threads = [threading.Thread(target=feed) for _ in range(2)]
        for thread in threads:
            thread.start()
        started.wait(timeout=30)
        assert manager.drain(timeout=60.0)
        # Drain returning True means no update is mid-flight; whatever
        # was admitted before the drain completed in full.
        assert manager.gauges()["session_updates_in_flight"] == 0.0
        for thread in threads:
            thread.join(timeout=30)
        assert session.votes_ingested == 2 * len(votes)

    def test_gauges_shape(self, votes):
        manager = SessionManager()
        manager.create(10, FAST)
        gauges = manager.gauges()
        assert gauges["sessions_active"] == 1.0
        assert gauges["sessions_stopped"] == 0.0
        assert gauges["session_votes_buffered"] == 0.0
        assert gauges["session_updates_in_flight"] == 0.0
