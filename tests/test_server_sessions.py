"""End-to-end tests for the session endpoints of the HTTP service and
the matching :class:`RankingClient` methods."""

import json
import urllib.request

import pytest

from repro.client import RankingClient, ServerError
from repro.config import PipelineConfig, PropagationConfig, SAPSConfig
from repro.datasets import make_scenario
from repro.experiments.runner import collect_votes
from repro.server import RankingServer, ServerConfig
from repro.service.retry import NO_RETRY

FAST_SESSION_CONFIG = {
    "pipeline": {
        "saps": {"iterations": 1000, "restarts": 1},
        "propagation": {"max_hops": 4, "method": "walks"},
    },
    "warm_iterations": 300,
    "early_stop": False,
}


@pytest.fixture(scope="module")
def votes():
    scenario = make_scenario(10, 0.6, n_workers=8, rng=5)
    return [[v.worker, v.winner, v.loser]
            for v in collect_votes(scenario, rng=5).votes]


@pytest.fixture
def server():
    ranking_server = RankingServer(ServerConfig(
        port=0, workers=2, queue_depth=8, no_cache=True,
    ))
    ranking_server.start()
    yield ranking_server
    ranking_server.stop(drain_timeout=5.0)


@pytest.fixture
def client(server):
    return RankingClient(server.url, retry=NO_RETRY)


def _request(url, method, body=None):
    data = None if body is None else json.dumps(body).encode()
    request = urllib.request.Request(
        url, data=data, method=method,
        headers={"Content-Type": "application/json"} if data else {},
    )
    try:
        with urllib.request.urlopen(request, timeout=10) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


class TestSessionLifecycle:
    def test_create_ingest_rank_delete(self, client, votes):
        view = client.create_session(10, config=FAST_SESSION_CONFIG)
        session_id = view["session_id"]
        assert view["verdict"] == "collecting"
        assert view["ranking"] is None

        for start in range(0, len(votes), 40):
            view = client.submit_votes(session_id,
                                       votes[start:start + 40])
        assert view["votes_ingested"] == len(votes)
        assert view["update_mode"] in ("full", "incremental")
        assert sorted(view["ranking"]) == list(range(10))

        ranking = client.session_ranking(session_id)
        assert ranking["ranking"] == view["ranking"]
        assert ranking["updates"]["full"] >= 1

        deleted = client.delete_session(session_id)
        assert deleted["deleted"] == session_id
        with pytest.raises(ServerError) as excinfo:
            client.session_ranking(session_id)
        assert excinfo.value.status == 404

    def test_early_stop_answers_409(self, client, votes):
        view = client.create_session(10, config={
            **FAST_SESSION_CONFIG,
            "early_stop": True,
            "warm_iterations": 1000,
            "stability_window": 3,
            "stability_threshold": 0.1,
            "min_votes": 40,
        })
        session_id = view["session_id"]
        stopped = False
        for start in range(0, len(votes), 10):
            view = client.submit_votes(session_id,
                                       votes[start:start + 10])
            if view["verdict"] == "stopped":
                stopped = True
                break
        assert stopped, "session never early-stopped"
        with pytest.raises(ServerError) as excinfo:
            client.submit_votes(session_id, votes[:1])
        assert excinfo.value.status == 409

    def test_metrics_expose_session_gauges(self, server, client, votes):
        view = client.create_session(10, config=FAST_SESSION_CONFIG)
        client.submit_votes(view["session_id"], votes[:20])
        text = client.metrics_text()
        assert "repro_sessions_active 1" in text
        assert "repro_session_votes_ingested_total 20" in text
        assert "repro_session_updates_full_total 1" in text
        assert "repro_session_votes_buffered 20" in text


class TestSessionErrors:
    def test_unknown_session_404(self, server):
        status, body = _request(
            server.url + "/v1/sessions/nope/ranking", "GET"
        )
        assert status == 404
        assert "nope" in body["error"]

    def test_session_cap_429(self, votes):
        capped = RankingServer(ServerConfig(
            port=0, workers=1, no_cache=True, max_sessions=1,
        ))
        capped.start()
        try:
            client = RankingClient(capped.url, retry=NO_RETRY)
            client.create_session(5)
            with pytest.raises(ServerError) as excinfo:
                client.create_session(5)
            assert excinfo.value.status == 429
        finally:
            capped.stop(drain_timeout=5.0)

    def test_wrong_method_405(self, server):
        status, _ = _request(server.url + "/v1/sessions", "GET")
        assert status == 405
        status, _ = _request(
            server.url + "/v1/sessions/abc/ranking", "POST", {}
        )
        assert status == 405

    @pytest.mark.parametrize("body", [
        {},                                   # missing n_objects
        {"n_objects": "ten"},                 # wrong type
        {"n_objects": True},                  # bool is not an int here
        {"n_objects": 0},                     # out of range
        {"n_objects": 5, "config": {"bogus": 1}},
    ])
    def test_bad_create_400(self, server, body):
        status, decoded = _request(
            server.url + "/v1/sessions", "POST", body
        )
        assert status == 400
        assert "error" in decoded

    def test_bad_votes_400(self, server, client):
        view = client.create_session(5)
        url = f"{server.url}/v1/sessions/{view['session_id']}/votes"
        status, _ = _request(url, "POST", {"votes": [[1, 0]]})
        assert status == 400
        status, _ = _request(url, "POST", {"votes": [[0, 0, 9]]})
        assert status == 400


class TestDrainWaitsForSessions:
    def test_stop_reports_clean_drain(self, votes):
        server = RankingServer(ServerConfig(
            port=0, workers=2, no_cache=True,
        ))
        server.start()
        client = RankingClient(server.url, retry=NO_RETRY)
        view = client.create_session(10, config=FAST_SESSION_CONFIG)
        client.submit_votes(view["session_id"], votes[:30])
        assert server.stop(drain_timeout=10.0)
