"""Unit tests for repro.baselines (RC, QS, CrowdBT, BTL, Borda, Copeland)."""

import numpy as np
import pytest

from repro.baselines import (
    CrowdBT,
    CrowdBTConfig,
    borda_count,
    bradley_terry_mle,
    copeland_ranking,
    crowd_bt_rank,
    quicksort_ranking,
    repeat_choice,
)
from repro.exceptions import ConfigurationError, InferenceError
from repro.metrics import ranking_accuracy
from repro.platform import InteractivePlatform
from repro.types import Ranking, Vote, VoteSet
from repro.workers import QualityLevel, WorkerPool, gaussian_preset


def perfect_votes(n, n_workers=3, coverage=1.0, seed=0):
    """Unanimous truthful votes on a (possibly partial) pair set.

    Ground truth is the identity ranking.
    """
    rng = np.random.default_rng(seed)
    pairs = [(i, j) for i in range(n) for j in range(i + 1, n)]
    if coverage < 1.0:
        keep = max(n - 1, int(len(pairs) * coverage))
        idx = rng.choice(len(pairs), size=keep, replace=False)
        pairs = [pairs[k] for k in idx]
    votes = []
    for worker in range(n_workers):
        for i, j in pairs:
            votes.append(Vote(worker=worker, winner=i, loser=j))
    return VoteSet.from_votes(n, votes)


class TestRepeatChoice:
    def test_full_coverage_perfect_votes(self):
        votes = perfect_votes(6)
        ranking = repeat_choice(votes, rng=0)
        assert ranking == Ranking(range(6))

    def test_returns_permutation_on_sparse_votes(self):
        votes = perfect_votes(10, coverage=0.2, seed=1)
        ranking = repeat_choice(votes, rng=1)
        assert sorted(ranking.order) == list(range(10))

    def test_empty_rejected(self):
        with pytest.raises(InferenceError):
            repeat_choice(VoteSet.from_votes(3, []))

    def test_handles_inconsistent_worker(self):
        """A cyclic voter must not hang the levelling."""
        votes = VoteSet.from_votes(3, [
            Vote(worker=0, winner=0, loser=1),
            Vote(worker=0, winner=1, loser=2),
            Vote(worker=0, winner=2, loser=0),
        ])
        ranking = repeat_choice(votes, rng=0)
        assert sorted(ranking.order) == [0, 1, 2]

    def test_deterministic_with_seed(self):
        votes = perfect_votes(8, coverage=0.5, seed=2)
        assert repeat_choice(votes, rng=5) == repeat_choice(votes, rng=5)


class TestQuickSort:
    def test_full_coverage_perfect_votes(self):
        votes = perfect_votes(8)
        assert quicksort_ranking(votes, rng=0) == Ranking(range(8))

    def test_majority_respected_with_noise(self):
        """2-vs-1 majorities on every pair still sort exactly."""
        n = 6
        votes = []
        for i in range(n):
            for j in range(i + 1, n):
                votes.append(Vote(worker=0, winner=i, loser=j))
                votes.append(Vote(worker=1, winner=i, loser=j))
                votes.append(Vote(worker=2, winner=j, loser=i))
        ranking = quicksort_ranking(VoteSet.from_votes(n, votes), rng=0)
        assert ranking == Ranking(range(n))

    def test_sparse_coverage_degrades(self):
        """With 10% coverage most comparisons are coin flips, so QS must
        be far from perfect (the Table-I story)."""
        truth = Ranking(range(20))
        votes = perfect_votes(20, coverage=0.1, seed=3)
        accuracies = [
            ranking_accuracy(quicksort_ranking(votes, rng=s), truth)
            for s in range(5)
        ]
        assert np.mean(accuracies) < 0.95

    def test_empty_rejected(self):
        with pytest.raises(InferenceError):
            quicksort_ranking(VoteSet.from_votes(3, []))

    def test_permutation_output(self):
        votes = perfect_votes(15, coverage=0.3, seed=4)
        ranking = quicksort_ranking(votes, rng=2)
        assert sorted(ranking.order) == list(range(15))


class TestBorda:
    def test_perfect_votes(self):
        assert borda_count(perfect_votes(7), rng=0) == Ranking(range(7))

    def test_empty_rejected(self):
        with pytest.raises(InferenceError):
            borda_count(VoteSet.from_votes(3, []))

    def test_unseen_objects_rank_midfield(self):
        """An object with no votes should not land at either extreme when
        others have clear records."""
        votes = VoteSet.from_votes(3, [
            Vote(worker=0, winner=0, loser=2),
            Vote(worker=0, winner=0, loser=2),
        ])
        ranking = borda_count(votes, rng=0)
        assert ranking.position(1) == 1


class TestCopeland:
    def test_perfect_votes(self):
        assert copeland_ranking(perfect_votes(7), rng=0) == Ranking(range(7))

    def test_majority_per_pair(self):
        votes = VoteSet.from_votes(3, [
            Vote(worker=0, winner=1, loser=0),
            Vote(worker=1, winner=1, loser=0),
            Vote(worker=2, winner=0, loser=1),
            Vote(worker=0, winner=1, loser=2),
            Vote(worker=0, winner=0, loser=2),
        ])
        ranking = copeland_ranking(votes, rng=0)
        assert ranking.position(1) == 0

    def test_empty_rejected(self):
        with pytest.raises(InferenceError):
            copeland_ranking(VoteSet.from_votes(3, []))


class TestBTL:
    def test_perfect_votes(self):
        ranking, gamma = bradley_terry_mle(perfect_votes(6))
        assert ranking == Ranking(range(6))
        assert np.all(np.diff(gamma[list(ranking.order)]) <= 1e-12)

    def test_strengths_normalised(self):
        _, gamma = bradley_terry_mle(perfect_votes(5))
        assert gamma.sum() == pytest.approx(1.0)

    def test_empty_rejected(self):
        with pytest.raises(InferenceError):
            bradley_terry_mle(VoteSet.from_votes(3, []))

    def test_noise_tolerance(self):
        rng = np.random.default_rng(0)
        n = 10
        votes = []
        for i in range(n):
            for j in range(i + 1, n):
                for worker in range(5):
                    if rng.random() < 0.85:
                        votes.append(Vote(worker=worker, winner=i, loser=j))
                    else:
                        votes.append(Vote(worker=worker, winner=j, loser=i))
        ranking, _ = bradley_terry_mle(VoteSet.from_votes(n, votes))
        assert ranking_accuracy(ranking, Ranking(range(n))) > 0.9


class TestCrowdBTModel:
    def test_construction_validation(self):
        with pytest.raises(ConfigurationError):
            CrowdBT(1, 5)
        with pytest.raises(ConfigurationError):
            CrowdBT(5, 0)
        with pytest.raises(ConfigurationError):
            CrowdBTConfig(prior_variance=0)
        with pytest.raises(ConfigurationError):
            CrowdBTConfig(exploration=2.0)

    def test_update_moves_scores_apart(self):
        model = CrowdBT(3, 2, rng=0)
        for _ in range(30):
            model.update(Vote(worker=0, winner=0, loser=1))
        assert model.mu[0] > model.mu[1]

    def test_variance_shrinks(self):
        model = CrowdBT(3, 2, rng=0)
        before = model.var[0]
        for _ in range(10):
            model.update(Vote(worker=0, winner=0, loser=1))
        assert model.var[0] < before

    def test_reliable_worker_eta_grows(self):
        model = CrowdBT(4, 2, rng=0)
        # Worker 0 consistently orders; worker 1 contradicts.
        for _ in range(20):
            model.update(Vote(worker=0, winner=0, loser=1))
            model.update(Vote(worker=1, winner=1, loser=0))
        assert model.eta(0) > model.eta(1)

    def test_bt_probability_symmetry(self):
        model = CrowdBT(3, 1, rng=0)
        assert model.bt_probability(0, 1) == pytest.approx(0.5)
        model.mu[0] = 2.0
        assert model.bt_probability(0, 1) > 0.5
        assert model.bt_probability(0, 1) + model.bt_probability(1, 0) == (
            pytest.approx(1.0)
        )

    def test_select_pair_valid(self):
        model = CrowdBT(6, 2, rng=0)
        for _ in range(20):
            i, j = model.select_pair()
            assert i != j
            assert 0 <= i < 6 and 0 <= j < 6


class TestCrowdBTInteractive:
    def test_end_to_end_accuracy(self):
        truth = Ranking.random(12, rng=3)
        pool = WorkerPool.from_distribution(
            8, gaussian_preset(QualityLevel.HIGH), rng=3
        )
        platform = InteractivePlatform(pool, truth, budget=10.0,
                                       reward=0.025, rng=3)
        ranking = crowd_bt_rank(platform, n_workers=8, rng=3)
        assert ranking_accuracy(ranking, truth) > 0.85

    def test_spends_whole_budget(self):
        truth = Ranking.random(6, rng=1)
        pool = WorkerPool.from_distribution(
            4, gaussian_preset(QualityLevel.MEDIUM), rng=1
        )
        platform = InteractivePlatform(pool, truth, budget=1.0,
                                       reward=0.025, rng=1)
        crowd_bt_rank(platform, n_workers=4, rng=1)
        assert not platform.can_query()

    def test_zero_budget_rejected(self):
        truth = Ranking.random(5, rng=0)
        pool = WorkerPool.from_distribution(
            3, gaussian_preset(QualityLevel.HIGH), rng=0
        )
        platform = InteractivePlatform(pool, truth, budget=0.0, rng=0)
        with pytest.raises(InferenceError):
            crowd_bt_rank(platform, n_workers=3, rng=0)
