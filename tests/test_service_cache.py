"""Unit tests for the content-addressed result cache."""

import os
import threading

import pytest

from repro.config import PipelineConfig, SAPSConfig
from repro.exceptions import ConfigurationError
from repro.service import RankingJob, ResultCache, ScenarioSpec, fingerprint_job
from repro.types import InferenceResult, Ranking, Vote, VoteSet


def _result(order):
    return InferenceResult(ranking=Ranking(order), log_preference=-1.0,
                           step_seconds={"search": 0.5})


class TestFingerprint:
    def test_same_content_same_key(self, tiny_votes):
        a = RankingJob(job_id="a", votes=tiny_votes, seed=5)
        b = RankingJob(job_id="totally-different-id", votes=tiny_votes, seed=5)
        assert fingerprint_job(a) == fingerprint_job(b)

    def test_vote_order_is_canonicalised(self):
        votes = [Vote(0, 0, 1), Vote(1, 1, 2), Vote(2, 0, 2)]
        fwd = VoteSet.from_votes(3, votes)
        rev = VoteSet.from_votes(3, list(reversed(votes)))
        assert (fingerprint_job(RankingJob(job_id="a", votes=fwd, seed=1))
                == fingerprint_job(RankingJob(job_id="b", votes=rev, seed=1)))

    def test_seed_and_config_are_significant(self, tiny_votes):
        base = RankingJob(job_id="a", votes=tiny_votes, seed=1)
        other_seed = RankingJob(job_id="a", votes=tiny_votes, seed=2)
        other_config = RankingJob(
            job_id="a", votes=tiny_votes, seed=1,
            config=PipelineConfig(saps=SAPSConfig(iterations=5)),
        )
        keys = {fingerprint_job(base), fingerprint_job(other_seed),
                fingerprint_job(other_config)}
        assert len(keys) == 3

    def test_scenario_jobs_fingerprint_by_spec(self):
        a = RankingJob(job_id="a", scenario=ScenarioSpec(10, 0.5), seed=1)
        b = RankingJob(job_id="b", scenario=ScenarioSpec(10, 0.5), seed=1)
        c = RankingJob(job_id="c", scenario=ScenarioSpec(11, 0.5), seed=1)
        assert fingerprint_job(a) == fingerprint_job(b)
        assert fingerprint_job(a) != fingerprint_job(c)

    def test_unseeded_jobs_never_collide(self, tiny_votes):
        job = RankingJob(job_id="a", votes=tiny_votes)
        assert fingerprint_job(job) != fingerprint_job(job)


class TestResultCache:
    def test_put_get_round_trip(self):
        cache = ResultCache()
        cache.put("k1", _result([1, 0]))
        hit = cache.get("k1")
        assert hit is not None and hit.ranking == Ranking([1, 0])
        stats = cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 0

    def test_miss_counts(self):
        cache = ResultCache()
        assert cache.get("absent") is None
        assert cache.stats()["misses"] == 1
        assert cache.hit_rate == 0.0

    def test_lru_evicts_least_recently_used(self):
        cache = ResultCache(max_entries=2)
        cache.put("a", _result([0, 1]))
        cache.put("b", _result([1, 0]))
        cache.get("a")                      # refresh a; b is now LRU
        cache.put("c", _result([0, 1]))    # evicts b
        assert cache.get("b") is None
        assert cache.get("a") is not None
        assert cache.stats()["evictions"] == 1

    def test_unseeded_keys_are_not_stored(self):
        cache = ResultCache()
        cache.put("unseeded/0", _result([0, 1]))
        assert len(cache) == 0
        assert cache.get("unseeded/0") is None

    def test_validates_capacity(self):
        with pytest.raises(ConfigurationError):
            ResultCache(max_entries=0)


class TestCachePersistence:
    def test_disk_round_trip_across_instances(self, tmp_path):
        first = ResultCache(persist_dir=tmp_path)
        first.put("deadbeef", _result([2, 0, 1]))
        assert (tmp_path / "deadbeef.json").exists()

        # A fresh cache (new process, conceptually) reloads from disk.
        second = ResultCache(persist_dir=tmp_path)
        hit = second.get("deadbeef")
        assert hit is not None
        assert hit.ranking == Ranking([2, 0, 1])
        assert hit.step_seconds == {"search": 0.5}
        assert second.stats()["disk_loads"] == 1

    def test_corrupt_spill_file_is_a_miss_not_a_crash(self, tmp_path):
        (tmp_path / "badkey.json").write_text("{not json at all")
        cache = ResultCache(persist_dir=tmp_path)
        assert cache.get("badkey") is None
        assert cache.stats()["misses"] == 1

    def test_corrupt_spill_file_is_deleted(self, tmp_path):
        """A corrupt file is dropped so the failed parse is paid once."""
        path = tmp_path / "badkey.json"
        path.write_text("{not json at all")
        cache = ResultCache(persist_dir=tmp_path)
        assert cache.get("badkey") is None
        assert not path.exists()
        assert cache.stats()["corrupt_dropped"] == 1
        # The slot is usable again: a fresh put re-creates a valid spill.
        cache.put("badkey", _result([1, 0]))
        assert path.exists()
        assert ResultCache(persist_dir=tmp_path).get("badkey") is not None

    def test_truncated_spill_file_is_deleted(self, tmp_path):
        intact = ResultCache(persist_dir=tmp_path)
        intact.put("key", _result([0, 1]))
        path = tmp_path / "key.json"
        path.write_text(path.read_text()[: 20])  # simulate a torn write
        fresh = ResultCache(persist_dir=tmp_path)
        assert fresh.get("key") is None
        assert not path.exists()
        assert fresh.stats()["corrupt_dropped"] == 1

    def test_missing_spill_file_is_not_counted_as_corrupt(self, tmp_path):
        cache = ResultCache(persist_dir=tmp_path)
        assert cache.get("never-stored") is None
        assert cache.stats()["corrupt_dropped"] == 0

    def test_wrong_schema_spill_file_is_a_miss(self, tmp_path):
        (tmp_path / "oldkey.json").write_text(
            '{"schema": "repro.inference_result/0", "ranking": [0, 1]}'
        )
        cache = ResultCache(persist_dir=tmp_path)
        assert cache.get("oldkey") is None

    def test_eviction_does_not_delete_spill_files(self, tmp_path):
        cache = ResultCache(max_entries=1, persist_dir=tmp_path)
        cache.put("k1", _result([0, 1]))
        cache.put("k2", _result([1, 0]))   # evicts k1 from memory
        assert cache.get("k1") is not None  # reloaded from disk


class TestSharedPersistDir:
    """Two cache instances over one ``persist_dir`` — the in-process
    simulation of two server processes sharing the spill tier."""

    def test_put_racing_get_converges(self, tmp_path):
        """Satellite: ``put`` in one instance racing ``get`` in another
        must never surface an error or a torn read, and both instances
        must converge on a readable entry."""
        writer_cache = ResultCache(persist_dir=tmp_path)
        reader_cache = ResultCache(persist_dir=tmp_path)
        result = _result([2, 0, 1])
        errors = []
        observed = []
        start = threading.Barrier(2, timeout=10.0)

        def writer():
            start.wait()
            for _ in range(150):
                writer_cache.put("contested", result)

        def reader():
            start.wait()
            for _ in range(150):
                try:
                    hit = reader_cache.get("contested")
                except Exception as error:  # noqa: BLE001 — the assertion
                    errors.append(error)
                    return
                if hit is not None:
                    observed.append(hit.ranking)
                    # Disk hits re-warm memory; drop so every loop
                    # exercises the cross-instance disk path again.
                    reader_cache.clear()

        threads = [threading.Thread(target=writer),
                   threading.Thread(target=reader)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30.0)
        assert not errors
        assert all(ranking == result.ranking for ranking in observed)
        # Convergence: both instances now see the entry.
        assert writer_cache.get("contested").ranking == result.ranking
        assert reader_cache.get("contested").ranking == result.ranking
        assert reader_cache.stats()["corrupt_dropped"] == 0
        assert writer_cache.stats()["corrupt_dropped"] == 0

    def test_racing_corrupt_drops_count_once(self, tmp_path):
        """Two readers hitting the same corrupt file: exactly one drop
        is counted across both instances, never two."""
        for trial in range(10):
            path = tmp_path / f"bad{trial}.json"
            path.write_text("{definitely not json")
            caches = [ResultCache(persist_dir=tmp_path) for _ in range(2)]
            start = threading.Barrier(2, timeout=10.0)
            outcomes = []

            def lookup(cache, key=f"bad{trial}"):
                start.wait()
                outcomes.append(cache.get(key))

            threads = [threading.Thread(target=lookup, args=(cache,))
                       for cache in caches]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=30.0)
            assert outcomes == [None, None]
            assert not path.exists()
            dropped = sum(c.stats()["corrupt_dropped"] for c in caches)
            assert dropped == 1, f"trial {trial}: counted {dropped} drops"

    def test_drop_never_unlinks_a_fresh_replacement(self, tmp_path):
        """If a writer republishes the entry between a reader's failed
        decode and its unlink, the fresh (good) file must survive."""
        cache = ResultCache(persist_dir=tmp_path)
        path = tmp_path / "contended.json"
        path.write_text("{torn gibberish")
        stale_stat = os.stat(path)  # what the failing reader read
        # A peer writer atomically replaces the entry with a good one
        # (new inode, by construction of the atomic write).
        cache.put("contended", _result([1, 0]))
        assert os.stat(path).st_ino != stale_stat.st_ino
        cache._drop_corrupt(path, stale_stat, ValueError("stale decode"))
        assert path.exists()
        assert cache.stats()["corrupt_dropped"] == 0
        assert ResultCache(persist_dir=tmp_path).get("contended") is not None

    def test_persisted_keys_tracks_puts_in_order(self, tmp_path):
        cache = ResultCache(persist_dir=tmp_path)
        cache.put("k1", _result([0, 1]))
        cache.put("k2", _result([1, 0]))
        cache.put("k1", _result([0, 1]))
        assert cache.persisted_keys() == ["k2", "k1"]
        # Another instance sees the same journal.
        assert ResultCache(persist_dir=tmp_path).persisted_keys() == \
            ["k2", "k1"]

    def test_persisted_keys_repairs_index_from_directory(self, tmp_path):
        from repro.io import save_result

        save_result(_result([0, 1]), tmp_path / "legacy.json")
        cache = ResultCache(persist_dir=tmp_path)
        assert cache.persisted_keys() == ["legacy"]
        assert cache.get("legacy") is not None

    def test_warm_preloads_without_counting_lookups(self, tmp_path):
        first = ResultCache(persist_dir=tmp_path)
        for index in range(3):
            first.put(f"k{index}", _result([0, 1]))
        second = ResultCache(persist_dir=tmp_path)
        assert second.warm() == 3
        assert len(second) == 3
        stats = second.stats()
        assert stats["hits"] == 0 and stats["misses"] == 0
        assert stats["disk_loads"] == 0
        # Warmed entries now hit the memory tier, not the disk.
        assert second.get("k2") is not None
        assert second.stats()["disk_loads"] == 0

    def test_warm_respects_limit_newest_first(self, tmp_path):
        first = ResultCache(persist_dir=tmp_path)
        for index in range(4):
            first.put(f"k{index}", _result([0, 1]))
        second = ResultCache(persist_dir=tmp_path)
        assert second.warm(limit=2) == 2
        assert len(second) == 2
        assert second.get("k3") is not None  # newest survived the cut
        assert second.stats()["disk_loads"] == 0

    def test_warm_without_persist_dir_is_a_noop(self):
        assert ResultCache().warm() == 0

    def test_max_spill_files_prunes_oldest(self, tmp_path):
        cache = ResultCache(persist_dir=tmp_path, max_spill_files=2)
        for index in range(3):
            cache.put(f"k{index}", _result([0, 1]))
        assert cache.persisted_keys() == ["k1", "k2"]
        assert not (tmp_path / "k0.json").exists()
        # The pruned entry is a clean miss for a fresh instance.
        fresh = ResultCache(persist_dir=tmp_path)
        assert fresh.get("k0") is None
        assert fresh.stats()["corrupt_dropped"] == 0

    def test_max_spill_files_validation(self, tmp_path):
        from repro.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError):
            ResultCache(persist_dir=tmp_path, max_spill_files=0)
        with pytest.raises(ConfigurationError):
            ResultCache(max_spill_files=4)
