"""Live ranking sessions fed by hostile crowds.

The streaming stack was regression-tested on honest votes; these tests
drive it with the adversarial generators instead: sessions must stay
numerically sane on spam and collusion, and the early-stop verdict must
not be reachable while a clique keeps the ranking churning.
"""

import pytest

from repro.config import PipelineConfig, PropagationConfig, SAPSConfig
from repro.streaming import VERDICTS, RankingSession, SessionConfig

FAST = PipelineConfig(
    saps=SAPSConfig(iterations=400, restarts=1),
    propagation=PropagationConfig(max_hops=4, method="walks"),
)


def _chunks(votes, size):
    rows = list(votes.votes)
    return [rows[k:k + size] for k in range(0, len(rows), size)]


@pytest.mark.parametrize("family", ["spammer", "clique", "correlated"])
def test_session_survives_hostile_streams(family, hostile_vote_stream):
    """Every hostile family streams through a session to a sane state."""
    scenario, votes = hostile_vote_stream(family)
    session = RankingSession(
        f"hostile-{family}", scenario.n_objects,
        SessionConfig(pipeline=FAST, seed=9, early_stop=False),
    )
    for chunk in _chunks(votes, 25):
        report = session.ingest(chunk)
        assert sorted(report.ranking.order) == list(
            range(scenario.n_objects)
        )
    assert session.verdict in VERDICTS
    assert session.votes_ingested == len(votes)


def test_suggestions_stay_canonical_under_spam(hostile_vote_stream):
    scenario, votes = hostile_vote_stream("spammer")
    session = RankingSession(
        "hostile-suggest", scenario.n_objects,
        SessionConfig(pipeline=FAST, seed=9, early_stop=False),
    )
    session.ingest(list(votes.votes))
    pairs = session.suggest(8)
    assert len(pairs) == 8
    for lo, hi in pairs:
        assert 0 <= lo < hi < scenario.n_objects


def test_clique_churn_defers_early_stop(hostile_vote_stream):
    """A hard-colluding clique keeps flipping contested pairs; a session
    with a tight stability window must still be collecting (not stopped)
    while that churn is live, yet must remain stoppable by policy —
    min_votes keeps degenerate early agreement from counting."""
    scenario, votes = hostile_vote_stream("inverted_clique")
    session = RankingSession(
        "hostile-stop", scenario.n_objects,
        SessionConfig(pipeline=FAST, seed=9, early_stop=True,
                      stability_window=3, stability_threshold=0.0,
                      min_votes=10 * len(votes)),
    )
    for chunk in _chunks(votes, 20):
        session.ingest(chunk)
    # The min_votes floor is far beyond the stream: stability can never
    # have been declared, so the session must still accept votes.
    assert not session.stopped
    assert session.verdict == "collecting"
    session.ingest(list(votes.votes)[:5])
    assert session.votes_ingested == len(votes) + 5
