"""Property-based tests for the inference layer (both truth engines,
smoothing, the adaptive propagation depth and the SAPS move kernel)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.config import SmoothingConfig
from repro.graphs import PreferenceGraph
from repro.inference.propagation import _adaptive_hops
from repro.inference.saps import _random_swap, _reverse, _rotate, _two_indices
from repro.inference.smoothing import smooth_preferences
from repro.truth import discover_truth, discover_truth_em
from repro.types import Vote, VoteSet
from repro.workers import parallel_map


@st.composite
def vote_sets(draw):
    n = draw(st.integers(3, 6))
    n_workers = draw(st.integers(2, 4))
    pairs = [(i, j) for i in range(n) for j in range(i + 1, n)]
    votes = []
    for worker in range(n_workers):
        for i, j in pairs:
            if draw(st.booleans()):
                votes.append(Vote(worker=worker, winner=i, loser=j))
            else:
                votes.append(Vote(worker=worker, winner=j, loser=i))
    return VoteSet.from_votes(n, votes)


class TestEmEngineProperties:
    @given(vote_sets())
    @settings(max_examples=20, deadline=None)
    def test_outputs_bounded(self, votes):
        result = discover_truth_em(votes)
        assert all(0.0 <= x <= 1.0 for x in result.preferences.values())
        assert all(0.0 < q <= 1.0 for q in result.worker_quality.values())

    @given(vote_sets())
    @settings(max_examples=15, deadline=None)
    def test_covers_same_pairs_as_crh(self, votes):
        em = discover_truth_em(votes)
        crh = discover_truth(votes)
        assert set(em.preferences) == set(crh.preferences)

    @given(vote_sets())
    @settings(max_examples=15, deadline=None)
    def test_deterministic(self, votes):
        assert discover_truth_em(votes).preferences == (
            discover_truth_em(votes).preferences
        )


class TestSmoothingProperties:
    @given(vote_sets())
    @settings(max_examples=20, deadline=None)
    def test_smoothed_invariants_hold_for_any_votes(self, votes):
        """For arbitrary vote sets, Step 1 + Step 2 always produce a
        graph whose compared pairs carry both directions summing to 1,
        with the majority direction preserved (>= 0.5)."""
        truth = discover_truth(votes)
        graph = PreferenceGraph.from_direct_preferences(
            votes.n_objects, truth.preferences
        )
        result = smooth_preferences(graph, votes, truth.worker_quality,
                                    SmoothingConfig())
        result.graph.validate(smoothed=True)
        for u, v in graph.one_edges():
            assert result.graph.weight(u, v) >= 0.5


class TestSAPSMoveProperties:
    """The index/move contract every SAPS kernel relies on."""

    @given(st.integers(2, 200), st.integers(0, 2**32 - 1))
    @settings(max_examples=100, deadline=None)
    def test_two_indices_contract(self, n, seed):
        """For any n >= 2 (including n=2): 0 <= first < last <= n and
        the slice spans at least two elements."""
        generator = np.random.default_rng(seed)
        for _ in range(10):
            first, last = _two_indices(n, generator)
            assert 0 <= first < last <= n
            assert last - first >= 2

    @given(st.integers(2, 60), st.integers(0, 2**32 - 1))
    @settings(max_examples=60, deadline=None)
    def test_moves_return_permutations(self, n, seed):
        generator = np.random.default_rng(seed)
        path = generator.permutation(n)
        for move in (_rotate, _reverse, _random_swap):
            candidate = move(path, generator)
            assert sorted(candidate.tolist()) == list(range(n))

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=30, deadline=None)
    def test_moves_on_two_elements(self, seed):
        """n=2 was the boundary the old _rotate guard pretended to
        handle; all moves must stay well-defined there."""
        generator = np.random.default_rng(seed)
        path = np.array([1, 0])
        for move in (_rotate, _reverse, _random_swap):
            candidate = move(path, generator)
            assert sorted(candidate.tolist()) == [0, 1]


class TestAdaptiveHops:
    @given(st.integers(2, 2000), st.integers(1, 10**6))
    def test_always_in_bounds(self, n, edges):
        hops = _adaptive_hops(n, edges)
        assert 2 <= hops <= 20
        assert hops <= max(n - 1, 2)

    def test_sparser_means_deeper(self):
        # n=100: degree 4 vs degree 40.
        sparse = _adaptive_hops(100, 400)
        dense = _adaptive_hops(100, 4000)
        assert sparse > dense

    @pytest.mark.parametrize(
        "n,directed_edges,expected",
        [
            (100, 990, 16),   # degree ~9.9 -> ceil(15.15) = 16
            (100, 4000, 8),   # dense -> floor at 8
            (1000, 99900, 16),
            (3, 6, 2),        # tiny graph capped at n-1
        ],
    )
    def test_known_values(self, n, directed_edges, expected):
        assert _adaptive_hops(n, directed_edges) == expected


# Module-level so the process backend can pickle them by reference.
def _negate(x):
    return -x


def _negate_or_fail(x):
    if x % 5 == 0 and x != 0:
        raise ValueError(f"multiple of five: {x}")
    return -x


_ALL_BACKENDS = ("serial", "thread", "process")


class TestParallelMapProperties:
    """The backend contract :mod:`repro.inference.saps` relies on:
    input-order results and identical earliest-index exception
    propagation, on every backend, for any input."""

    @given(st.lists(st.integers(-50, 50), max_size=12), st.integers(1, 4))
    @settings(max_examples=12, deadline=None)
    def test_order_preserved_on_every_backend(self, items, width):
        expected = [-x for x in items]
        for backend in _ALL_BACKENDS:
            assert parallel_map(_negate, items, max_workers=width,
                                backend=backend) == expected

    @given(st.lists(st.integers(1, 30), min_size=1, max_size=8),
           st.integers(1, 3))
    @settings(max_examples=10, deadline=None)
    def test_exceptions_propagate_identically(self, items, width):
        def outcome(backend):
            try:
                result = parallel_map(_negate_or_fail, items,
                                      max_workers=width, backend=backend)
            except ValueError as error:
                return ("raised", str(error))
            return ("ok", result)

        oracle = outcome("serial")
        assert outcome("thread") == oracle
        assert outcome("process") == oracle

    @pytest.mark.parametrize("backend", _ALL_BACKENDS)
    def test_empty_and_single_item(self, backend):
        assert parallel_map(_negate, [], max_workers=3,
                            backend=backend) == []
        assert parallel_map(_negate, [4], max_workers=3,
                            backend=backend) == [-4]
