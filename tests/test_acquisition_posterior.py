"""Tests for :class:`repro.acquisition.PairPosterior`."""

import numpy as np
import pytest

from repro.acquisition import PairPosterior
from repro.exceptions import ConfigurationError
from repro.types import Vote, VoteArrays


def make_votes(n, count, seed):
    rng = np.random.default_rng(seed)
    votes = []
    for worker in range(count):
        i, j = rng.choice(n, size=2, replace=False)
        votes.append(Vote(worker=int(worker % 5), winner=int(i),
                          loser=int(j)))
    return votes


class TestUniverse:
    def test_pair_index_is_triu_lexicographic(self):
        posterior = PairPosterior(5)
        expected = [(i, j) for i in range(5) for j in range(i + 1, 5)]
        assert posterior.n_pairs == len(expected)
        for index, (lo, hi) in enumerate(expected):
            assert posterior.pair_at(index) == (lo, hi)
            assert posterior.pair_index(
                np.array([lo]), np.array([hi]))[0] == index

    def test_rejects_tiny_universe(self):
        with pytest.raises(ConfigurationError):
            PairPosterior(1)

    def test_rejects_bad_prior(self):
        with pytest.raises(ConfigurationError):
            PairPosterior(4, prior=0.0)


class TestObserve:
    def test_prior_means_are_half(self):
        posterior = PairPosterior(4, prior=2.0)
        assert np.allclose(posterior.mean(), 0.5)
        assert posterior.n_observed == 0

    def test_observe_moves_the_mean(self):
        posterior = PairPosterior(3)
        posterior.observe(0, 2, weight=1.0)
        index = int(posterior.pair_index(np.array([0]), np.array([2]))[0])
        assert posterior.mean()[index] > 0.5
        assert posterior.alpha()[index] == pytest.approx(2.0)
        assert posterior.beta()[index] == pytest.approx(1.0)
        # The winner's strength grows by the vote weight.
        assert posterior.strength[0] == pytest.approx(2.0)
        assert posterior.strength[2] == pytest.approx(1.0)

    def test_reversed_order_feeds_the_hi_side(self):
        posterior = PairPosterior(3)
        posterior.observe(2, 0, weight=1.0)
        index = int(posterior.pair_index(np.array([0]), np.array([2]))[0])
        assert posterior.mean()[index] < 0.5

    def test_quality_weights_scale_counts(self):
        strong = PairPosterior(3)
        strong.observe_votes([Vote(worker=1, winner=0, loser=1)],
                             worker_quality={1: 0.9})
        weak = PairPosterior(3)
        weak.observe_votes([Vote(worker=1, winner=0, loser=1)],
                           worker_quality={1: 0.1})
        index = 0
        assert strong.alpha()[index] > weak.alpha()[index]
        assert strong.mean()[index] > weak.mean()[index]

    def test_unknown_worker_defaults_to_unit_weight(self):
        posterior = PairPosterior(3)
        posterior.observe_votes([Vote(worker=99, winner=0, loser=1)],
                                worker_quality={1: 0.2})
        assert posterior.alpha()[0] == pytest.approx(2.0)


class TestBatchParity:
    def test_observe_arrays_matches_incremental(self):
        votes = make_votes(8, 60, seed=3)
        quality = {w: 0.5 + 0.1 * (w % 5) for w in range(5)}

        one_by_one = PairPosterior(8)
        one_by_one.observe_votes(votes, quality)

        batched = PairPosterior(8)
        batched.observe_arrays(VoteArrays.from_votes(8, votes), quality)

        assert one_by_one.n_observed == batched.n_observed == len(votes)
        np.testing.assert_allclose(one_by_one.alpha(), batched.alpha())
        np.testing.assert_allclose(one_by_one.beta(), batched.beta())
        np.testing.assert_allclose(one_by_one.strength, batched.strength)

    def test_from_votes_classmethod(self):
        votes = make_votes(6, 20, seed=1)
        direct = PairPosterior.from_votes(6, votes)
        manual = PairPosterior(6)
        manual.observe_votes(votes)
        np.testing.assert_allclose(direct.mean(), manual.mean())


class TestMoments:
    def test_entropy_peaks_at_uncertain_pairs(self):
        posterior = PairPosterior(3)
        for _ in range(6):
            posterior.observe(0, 1)  # decided pair
        entropy = posterior.entropy()
        decided = int(posterior.pair_index(np.array([0]),
                                           np.array([1]))[0])
        untouched = int(posterior.pair_index(np.array([1]),
                                             np.array([2]))[0])
        assert entropy[decided] < entropy[untouched]

    def test_variance_shrinks_with_observations(self):
        posterior = PairPosterior(3)
        before = posterior.variance()[0]
        posterior.observe(0, 1)
        posterior.observe(1, 0)
        assert posterior.variance()[0] < before

    def test_observation_mass_counts_weights(self):
        posterior = PairPosterior(3)
        posterior.observe(0, 1, weight=0.25)
        posterior.observe(1, 0, weight=0.5)
        assert posterior.observation_mass()[0] == pytest.approx(0.75)
