"""Unit tests for the local-search polish and the Rank Centrality baseline."""

import math

import numpy as np
import pytest

from repro.baselines import rank_centrality
from repro.exceptions import InferenceError
from repro.inference import polish_ranking
from repro.inference.taps import branch_and_bound_search
from repro.metrics import ranking_accuracy
from repro.types import Ranking, Vote, VoteSet


def sharp_matrix(n, forward=0.9):
    matrix = np.full((n, n), 1.0 - forward)
    for i in range(n):
        for j in range(i + 1, n):
            matrix[i, j] = forward
    np.fill_diagonal(matrix, 0.0)
    return matrix


def random_closure(n, seed):
    rng = np.random.default_rng(seed)
    matrix = np.zeros((n, n))
    for i in range(n):
        for j in range(i + 1, n):
            p = rng.uniform(0.05, 0.95)
            matrix[i, j] = p
            matrix[j, i] = 1 - p
    return matrix


class TestPolishRanking:
    def test_fixes_adjacent_swap(self):
        matrix = sharp_matrix(8)
        scrambled = Ranking([1, 0, 2, 3, 4, 5, 7, 6])
        polished, _ = polish_ranking(matrix, scrambled)
        assert polished == Ranking(range(8))

    def test_fixes_misplaced_vertex(self):
        matrix = sharp_matrix(9)
        scrambled = Ranking([0, 1, 2, 6, 3, 4, 5, 7, 8])
        polished, _ = polish_ranking(matrix, scrambled)
        assert polished == Ranking(range(9))

    def test_never_worsens(self):
        for seed in range(5):
            matrix = random_closure(10, seed)
            start = Ranking.random(10, rng=seed)
            with np.errstate(divide="ignore"):
                cost = -np.log(np.maximum(matrix, 1e-300))
            start_log = -float(
                cost[np.array(start.order[:-1]), np.array(start.order[1:])].sum()
            )
            _, polished_log = polish_ranking(matrix, start)
            assert polished_log >= start_log - 1e-9

    def test_optimum_is_fixed_point(self):
        matrix = random_closure(8, seed=2)
        best, best_log = branch_and_bound_search(matrix)
        polished, polished_log = polish_ranking(matrix, best)
        assert polished_log == pytest.approx(best_log)

    def test_size_mismatch_rejected(self):
        with pytest.raises(InferenceError):
            polish_ranking(sharp_matrix(5), Ranking(range(4)))

    def test_infinite_start_rejected(self):
        matrix = np.zeros((3, 3))
        matrix[0, 1] = 0.5
        with pytest.raises(InferenceError):
            polish_ranking(matrix, Ranking([2, 0, 1]))

    def test_output_is_permutation(self):
        matrix = random_closure(12, seed=7)
        polished, _ = polish_ranking(matrix, Ranking.random(12, rng=7))
        assert sorted(polished.order) == list(range(12))


class TestRankCentrality:
    def _votes(self, n, n_workers=3, error=0.0, seed=0):
        rng = np.random.default_rng(seed)
        votes = []
        for worker in range(n_workers):
            for i in range(n):
                for j in range(i + 1, n):
                    if rng.random() < error:
                        votes.append(Vote(worker=worker, winner=j, loser=i))
                    else:
                        votes.append(Vote(worker=worker, winner=i, loser=j))
        return VoteSet.from_votes(n, votes)

    def test_perfect_votes(self):
        ranking, scores = rank_centrality(self._votes(8))
        assert ranking == Ranking(range(8))
        ordered = scores[list(ranking.order)]
        assert all(a >= b - 1e-12 for a, b in zip(ordered, ordered[1:]))

    def test_scores_are_distribution(self):
        _, scores = rank_centrality(self._votes(6))
        assert scores.sum() == pytest.approx(1.0)
        assert np.all(scores >= 0)

    def test_noise_tolerance(self):
        votes = self._votes(12, n_workers=5, error=0.15, seed=3)
        ranking, _ = rank_centrality(votes)
        assert ranking_accuracy(ranking, Ranking(range(12))) > 0.85

    def test_empty_rejected(self):
        with pytest.raises(InferenceError):
            rank_centrality(VoteSet.from_votes(3, []))

    def test_runner_dispatch(self):
        from repro.datasets import make_scenario
        from repro.experiments import run_baseline_arm
        from repro.experiments.runner import collect_votes

        scenario = make_scenario(15, 0.6, n_workers=10, workers_per_task=4,
                                 rng=9)
        votes = collect_votes(scenario, rng=9)
        record = run_baseline_arm(scenario, "rank_centrality", rng=9,
                                  votes=votes)
        assert record.algorithm == "rank_centrality"
        assert record.accuracy > 0.7
