"""Acquisition beliefs and policies under hostile crowds (satellite 3).

The posterior and the BDP policy must stay numerically sane and
in-universe when the votes come from spammer-majority or colluding
crowds, and the stability stop must not fire while an adversary keeps
the ranking oscillating.
"""

import numpy as np
import pytest

from repro.acquisition import AcquisitionPolicy, BudgetLedger, PairPosterior
from repro.datasets import hostile_votes
from repro.streaming import StabilityMonitor
from repro.types import Ranking


@pytest.fixture(scope="module")
def spammer_majority():
    """Votes from a crowd where spammers outnumber honest workers 4:1."""
    return hostile_votes("spammer", 10, 0.6, n_workers=10,
                         workers_per_task=3, spammer_fraction=0.8,
                         scenario_seed=3, vote_seed=4)


class TestPosteriorUnderSpam:
    def test_beliefs_stay_bounded(self, spammer_majority):
        _, votes = spammer_majority
        posterior = PairPosterior.from_votes(10, votes.votes)
        mean = posterior.mean()
        assert np.all(mean > 0.0) and np.all(mean < 1.0)
        variance = posterior.variance()
        assert np.all(variance > 0.0) and np.all(variance <= 0.25)
        assert np.all(np.isfinite(posterior.entropy()))

    def test_beta_mass_never_below_prior(self, spammer_majority):
        _, votes = spammer_majority
        posterior = PairPosterior.from_votes(10, votes.votes, prior=1.0)
        assert np.all(posterior.alpha() >= 1.0)
        assert np.all(posterior.beta() >= 1.0)
        assert posterior.n_observed == len(votes)

    def test_zero_quality_spammers_cannot_move_the_belief(
            self, spammer_majority):
        scenario, votes = spammer_majority
        from repro.workers import SpammerWorker

        quality = {w.worker_id: (0.0 if isinstance(w, SpammerWorker)
                                 else 1.0)
                   for w in scenario.pool}
        weighted = PairPosterior.from_votes(10, votes.votes, quality)
        flat = PairPosterior.from_votes(10, votes.votes)
        # Down-weighting 8 of 10 workers to zero must strictly reduce
        # accumulated evidence mass, never flip it negative.
        assert float(weighted.observation_mass().sum()) \
            < float(flat.observation_mass().sum())
        assert np.all(weighted.observation_mass() >= 0.0)


class TestSuggestUnderSpam:
    @pytest.mark.parametrize("scorer", ["bdp", "uncertainty", "random"])
    def test_suggestions_stay_in_universe(self, spammer_majority, scorer):
        _, votes = spammer_majority
        policy = AcquisitionPolicy(10, scorer=scorer, seed=5)
        policy.observe_votes(votes.votes)
        pairs = policy.suggest(12)
        assert len(pairs) == 12
        assert len(set(pairs)) == 12
        for lo, hi in pairs:
            assert 0 <= lo < hi < 10

    def test_oversized_batch_clips_to_the_universe(self, spammer_majority):
        _, votes = spammer_majority
        policy = AcquisitionPolicy(10, scorer="bdp", seed=5)
        policy.observe_votes(votes.votes)
        pairs = policy.suggest(10_000)
        assert len(pairs) == 45  # C(10, 2)
        assert len(set(pairs)) == 45


class TestStabilityUnderOscillation:
    def test_monitor_never_stabilises_on_oscillation(self):
        """An adversary flipping the ranking each update must keep the
        rolling score far above any sane threshold."""
        monitor = StabilityMonitor(window=4, threshold=0.05)
        forward = Ranking(list(range(8)))
        backward = Ranking(list(reversed(range(8))))
        for step in range(40):
            monitor.observe(forward if step % 2 == 0 else backward)
            assert not monitor.is_stable
        assert monitor.score == pytest.approx(1.0)

    def test_policy_keeps_buying_under_oscillation(self):
        """With budget left and an oscillating ranking feed, the policy
        must not report convergence."""
        policy = AcquisitionPolicy(
            8, scorer="bdp", ledger=BudgetLedger(total=500, batch_size=10),
            workers_per_query=2,
            monitor=StabilityMonitor(window=3, threshold=0.05), seed=1,
        )
        forward = Ranking(list(range(8)))
        backward = Ranking(list(reversed(range(8))))
        for step in range(12):
            assert not policy.should_stop()
            for lo, hi in policy.suggest():
                policy.posterior.observe(lo, hi, weight=1.0)
            policy.observe_ranking(forward if step % 2 == 0 else backward)
        assert policy.ledger.remaining > 0
        assert not policy.should_stop()

    def test_policy_does_stop_once_genuinely_stable(self):
        """Control: the same configuration with a settled ranking feed
        stops — the oscillation test is meaningful."""
        policy = AcquisitionPolicy(
            8, scorer="bdp", ledger=BudgetLedger(total=500, batch_size=10),
            workers_per_query=2,
            monitor=StabilityMonitor(window=3, threshold=0.05), seed=1,
        )
        settled = Ranking(list(range(8)))
        for _ in range(4):
            policy.observe_ranking(settled)
        assert policy.should_stop()
