"""Unit tests for repro.metrics (Kendall, Spearman, accuracy, top-k)."""

import itertools

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.metrics import (
    kendall_tau_correlation,
    kendall_tau_distance,
    normalized_kendall_tau_distance,
    normalized_spearman_footrule,
    pairwise_agreement,
    ranking_accuracy,
    spearman_footrule,
    spearman_rho,
    topk_overlap,
    topk_precision,
)
from repro.types import Ranking


def brute_kendall(a, b):
    count = 0
    objects = list(a.order)
    for i, j in itertools.combinations(objects, 2):
        if a.prefers(i, j) != b.prefers(i, j):
            count += 1
    return count


class TestKendall:
    def test_identical_is_zero(self):
        ranking = Ranking.random(10, rng=0)
        assert kendall_tau_distance(ranking, ranking) == 0

    def test_reverse_is_max(self):
        ranking = Ranking.random(10, rng=0)
        assert kendall_tau_distance(ranking, ranking.reversed()) == 45

    def test_single_swap(self):
        assert kendall_tau_distance(Ranking([0, 1, 2]), Ranking([1, 0, 2])) == 1

    @pytest.mark.parametrize("seed", range(5))
    def test_matches_brute_force(self, seed):
        a = Ranking.random(12, rng=seed)
        b = Ranking.random(12, rng=seed + 100)
        assert kendall_tau_distance(a, b) == brute_kendall(a, b)

    def test_symmetry(self):
        a = Ranking.random(15, rng=1)
        b = Ranking.random(15, rng=2)
        assert kendall_tau_distance(a, b) == kendall_tau_distance(b, a)

    def test_normalized_bounds(self):
        a = Ranking.random(20, rng=3)
        b = Ranking.random(20, rng=4)
        assert 0.0 <= normalized_kendall_tau_distance(a, b) <= 1.0

    def test_correlation_extremes(self):
        ranking = Ranking.random(10, rng=5)
        assert kendall_tau_correlation(ranking, ranking) == 1.0
        assert kendall_tau_correlation(ranking, ranking.reversed()) == -1.0

    def test_mismatched_sizes_rejected(self):
        with pytest.raises(ConfigurationError):
            kendall_tau_distance(Ranking([0, 1]), Ranking([0, 1, 2]))

    def test_mismatched_objects_rejected(self):
        with pytest.raises(ConfigurationError):
            kendall_tau_distance(Ranking([0, 1]), Ranking([1, 2]))

    def test_trivial_sizes(self):
        assert normalized_kendall_tau_distance(Ranking([0]), Ranking([0])) == 0.0


class TestSpearman:
    def test_identical(self):
        ranking = Ranking.random(10, rng=0)
        assert spearman_footrule(ranking, ranking) == 0
        assert spearman_rho(ranking, ranking) == pytest.approx(1.0)

    def test_reverse(self):
        ranking = Ranking(range(4))
        assert spearman_footrule(ranking, ranking.reversed()) == 8
        assert spearman_rho(ranking, ranking.reversed()) == pytest.approx(-1.0)

    def test_normalized_bounds(self):
        a = Ranking.random(9, rng=1)
        b = Ranking.random(9, rng=2)
        assert 0.0 <= normalized_spearman_footrule(a, b) <= 1.0

    def test_footrule_symmetric(self):
        a = Ranking.random(11, rng=3)
        b = Ranking.random(11, rng=4)
        assert spearman_footrule(a, b) == spearman_footrule(b, a)

    def test_diaconis_graham_bounds(self):
        """Kendall <= footrule <= 2 * Kendall."""
        for seed in range(5):
            a = Ranking.random(10, rng=seed)
            b = Ranking.random(10, rng=seed + 50)
            kendall = kendall_tau_distance(a, b)
            footrule = spearman_footrule(a, b)
            assert kendall <= footrule <= 2 * kendall


class TestAccuracy:
    def test_paper_metric(self):
        a = Ranking.random(10, rng=0)
        assert ranking_accuracy(a, a) == 1.0
        assert ranking_accuracy(a, a.reversed()) == 0.0

    def test_complement_of_distance(self):
        a = Ranking.random(10, rng=1)
        b = Ranking.random(10, rng=2)
        assert ranking_accuracy(a, b) == pytest.approx(
            1.0 - normalized_kendall_tau_distance(a, b)
        )

    def test_pairwise_agreement(self):
        ranking = Ranking([2, 0, 1])
        prefs = [(2, 0), (2, 1), (1, 0)]
        assert pairwise_agreement(ranking, prefs) == pytest.approx(2 / 3)

    def test_pairwise_agreement_empty(self):
        assert pairwise_agreement(Ranking([0, 1]), []) == 1.0


class TestTopK:
    def test_full_overlap(self):
        a = Ranking([0, 1, 2, 3])
        b = Ranking([1, 0, 2, 3])
        assert topk_overlap(a, b, 2) == 1.0
        assert topk_precision(a, b, 2) == 1.0

    def test_disjoint(self):
        a = Ranking([0, 1, 2, 3])
        b = Ranking([2, 3, 0, 1])
        assert topk_overlap(a, b, 2) == 0.0
        assert topk_precision(a, b, 2) == 0.0

    def test_partial(self):
        a = Ranking([0, 1, 2, 3])
        b = Ranking([0, 2, 1, 3])
        assert topk_precision(a, b, 2) == 0.5
        assert topk_overlap(a, b, 2) == pytest.approx(1 / 3)

    def test_k_validation(self):
        a = Ranking([0, 1])
        with pytest.raises(ConfigurationError):
            topk_overlap(a, a, 0)
        with pytest.raises(ConfigurationError):
            topk_precision(a, a, 3)
