"""Tests for live ranking sessions: differential bit-identity against
the batch pipeline, warm-started convergence, stability verdicts, and
the snapshot/restore codec."""

import numpy as np
import pytest

from repro.config import PipelineConfig, PropagationConfig, SAPSConfig
from repro.datasets import make_scenario
from repro.exceptions import (
    DataFormatError,
    InferenceError,
    SessionStoppedError,
)
from repro.experiments.runner import collect_votes
from repro.inference.pipeline import RankingPipeline
from repro.metrics import normalized_kendall_tau_distance, ranking_accuracy
from repro.rng import ensure_rng
from repro.streaming import (
    SESSION_SCHEMA,
    RankingSession,
    SessionConfig,
    StabilityMonitor,
    session_config_from_payload,
    session_from_payload,
    session_to_payload,
    votes_from_payload,
)
from repro.types import Ranking, VoteSet


def _fast_pipeline(iterations=4000, restarts=1):
    return PipelineConfig(
        saps=SAPSConfig(iterations=iterations, restarts=restarts),
        propagation=PropagationConfig(max_hops=6, method="walks"),
    )


def _scenario_votes(n, ratio, seed, **kwargs):
    scenario = make_scenario(n, ratio, rng=seed, **kwargs)
    return scenario, list(collect_votes(scenario, rng=seed).votes)


class TestDifferential:
    """A session's non-warm recompute is the batch pipeline, bit for
    bit, no matter how the votes dripped in."""

    def test_one_at_a_time_recompute_is_bit_identical_to_batch(self):
        _, votes = _scenario_votes(12, 0.6, seed=3, n_workers=10)
        config = SessionConfig(pipeline=_fast_pipeline(), seed=11,
                               warm_iterations=500, early_stop=False)
        session = RankingSession("diff", 12, config)
        for vote in votes:  # one ingest (and one warm update) per vote
            session.ingest([vote])
        recomputed = session.recompute()
        batch = RankingPipeline(config.pipeline).run(
            VoteSet.from_votes(12, votes), ensure_rng(11)
        )
        assert list(recomputed.ranking.order) == list(batch.ranking.order)
        assert recomputed.log_preference == batch.log_preference
        np.testing.assert_array_equal(recomputed.direct_preferences,
                                      batch.direct_preferences)

    def test_chunked_ingest_same_recompute(self):
        """Chunking only changes the warm path; the frozen recompute is
        a pure function of the final vote pool."""
        _, votes = _scenario_votes(10, 0.7, seed=5, n_workers=8)
        config = SessionConfig(pipeline=_fast_pipeline(), seed=2,
                               warm_iterations=500, early_stop=False)
        by_ones = RankingSession("a", 10, config)
        for vote in votes:
            by_ones.ingest([vote])
        by_chunks = RankingSession("b", 10, config)
        for start in range(0, len(votes), 37):
            by_chunks.ingest(votes[start:start + 37])
        a, b = by_ones.recompute(), by_chunks.recompute()
        assert list(a.ranking.order) == list(b.ranking.order)
        assert a.log_preference == b.log_preference


class TestWarmConvergence:
    """The warm incremental path lands where the batch pipeline lands."""

    @pytest.mark.parametrize("seed", range(5))
    def test_small_universe_exact_match(self, seed):
        _, votes = _scenario_votes(10, 0.8, seed=seed, n_workers=20,
                                   workers_per_task=5, level="high")
        config = SessionConfig(pipeline=_fast_pipeline(), seed=seed,
                               warm_iterations=1500)
        session = RankingSession("warm", 10, config)
        chunk = max(1, len(votes) // 6)
        for start in range(0, len(votes), chunk):
            session.ingest(votes[start:start + chunk])
        warm = list(session.ranking.order)
        batch = list(session.recompute().ranking.order)
        assert warm == batch

    @pytest.mark.parametrize("seed", range(5))
    def test_larger_universe_statistical_match(self, seed):
        """At n=50 the annealer's landscape has near-ties, so exact
        permutation equality is not a sound oracle; the warm path must
        instead land within a whisker of the batch optimum (Kendall
        distance) at equal accuracy against ground truth."""
        scenario, votes = _scenario_votes(
            50, 0.5, seed=seed, n_workers=30, workers_per_task=7,
            level="high",
        )
        config = SessionConfig(
            pipeline=_fast_pipeline(iterations=20000, restarts=2),
            seed=seed, warm_iterations=8000,
        )
        session = RankingSession("warm50", 50, config)
        for start in range(0, len(votes), 900):
            session.ingest(votes[start:start + 900])
        warm = session.ranking
        batch = session.recompute().ranking
        assert normalized_kendall_tau_distance(warm, batch) <= 0.03
        truth = scenario.ground_truth
        assert abs(ranking_accuracy(truth, warm)
                   - ranking_accuracy(truth, batch)) <= 0.02

    def test_update_modes_and_counters(self):
        _, votes = _scenario_votes(12, 0.6, seed=3, n_workers=10)
        session = RankingSession("modes", 12, SessionConfig(
            pipeline=_fast_pipeline(), warm_iterations=500,
            early_stop=False))
        reports = [session.ingest(votes[i:i + 25])
                   for i in range(0, len(votes), 25)]
        assert reports[0].mode == "full"
        assert any(r.mode == "incremental" for r in reports[1:])
        assert session.updates_full >= 1
        assert (session.updates_full + session.updates_incremental
                == len(reports))
        assert session.votes_ingested == len(votes)


class TestStability:
    def test_monitor_lifecycle(self):
        monitor = StabilityMonitor(window=3, threshold=0.05)
        same = Ranking([0, 1, 2, 3])
        assert monitor.observe(same) is None  # first ranking: no delta
        assert monitor.score is None
        assert not monitor.is_stable
        monitor.observe(same)
        monitor.observe(same)
        assert not monitor.is_stable  # window not yet full
        monitor.observe(same)
        assert monitor.score == 0.0
        assert monitor.is_stable

    def test_monitor_resets_on_movement(self):
        monitor = StabilityMonitor(window=2, threshold=0.05)
        monitor.observe(Ranking([0, 1, 2, 3]))
        monitor.observe(Ranking([0, 1, 2, 3]))
        monitor.observe(Ranking([0, 1, 2, 3]))
        assert monitor.is_stable
        monitor.observe(Ranking([3, 2, 1, 0]))  # big swing
        assert not monitor.is_stable

    def test_monitor_state_roundtrip(self):
        monitor = StabilityMonitor(window=3, threshold=0.04)
        for order in ([0, 1, 2], [0, 2, 1], [0, 2, 1]):
            monitor.observe(Ranking(order))
        restored = StabilityMonitor.from_state(monitor.state())
        assert restored.score == monitor.score
        assert restored.is_stable == monitor.is_stable
        assert restored.observations == monitor.observations

    def test_session_early_stops_and_rejects(self):
        _, votes = _scenario_votes(10, 0.8, seed=1, n_workers=20,
                                   level="high")
        session = RankingSession("stop", 10, SessionConfig(
            pipeline=_fast_pipeline(), warm_iterations=1500,
            stability_window=3, stability_threshold=0.05, min_votes=40,
        ))
        for start in range(0, len(votes), 10):
            session.ingest(votes[start:start + 10])
            if session.stopped:
                break
        assert session.verdict == "stopped"
        assert session.votes_ingested >= 40  # min_votes floor held
        assert session.votes_ingested < len(votes)  # budget saved
        with pytest.raises(SessionStoppedError):
            session.ingest(votes[:1])

    def test_early_stop_off_keeps_collecting(self):
        _, votes = _scenario_votes(10, 0.8, seed=1, n_workers=20,
                                   level="high")
        session = RankingSession("nostop", 10, SessionConfig(
            pipeline=_fast_pipeline(), warm_iterations=1500,
            stability_window=3, stability_threshold=0.05,
            early_stop=False,
        ))
        for start in range(0, len(votes), 10):
            session.ingest(votes[start:start + 10])
        assert session.verdict in ("stable", "collecting")
        assert session.votes_ingested == len(votes)
        session.ingest(votes[:1])  # still accepts


class TestSnapshotCodec:
    def _session(self):
        _, votes = _scenario_votes(10, 0.6, seed=7, n_workers=8)
        session = RankingSession("snap", 10, SessionConfig(
            pipeline=_fast_pipeline(), seed=7, warm_iterations=500,
            stability_window=3, early_stop=False,
        ))
        for start in range(0, len(votes), 20):
            session.ingest(votes[start:start + 20])
        return session, votes

    def test_roundtrip_preserves_lifecycle(self):
        session, _ = self._session()
        payload = session_to_payload(session)
        assert payload["schema"] == SESSION_SCHEMA
        restored = session_from_payload(payload)
        assert restored.session_id == session.session_id
        assert restored.votes_ingested == session.votes_ingested
        assert restored.verdict == session.verdict
        assert (list(restored.ranking.order)
                == list(session.ranking.order))
        assert restored.buffer.votes() == session.buffer.votes()
        assert restored.view()["stability_score"] \
            == session.view()["stability_score"]

    def test_restored_session_resumes(self):
        session, votes = self._session()
        restored = session_from_payload(session_to_payload(session))
        report = restored.ingest(votes[:5])  # warm state was dropped
        assert report.mode == "full"
        assert restored.votes_ingested == session.votes_ingested + 5
        # ... and the recompute still agrees with the batch pipeline.
        recomputed = restored.recompute()
        batch = RankingPipeline(restored.config.pipeline).run(
            restored.buffer.to_vote_set(), ensure_rng(7)
        )
        assert list(recomputed.ranking.order) == list(batch.ranking.order)

    def test_bad_schema_rejected(self):
        with pytest.raises(DataFormatError):
            session_from_payload({"schema": "repro.result/1"})


class TestPayloadCodecs:
    def test_votes_from_payload_triples_and_objects(self):
        votes = votes_from_payload(
            [[1, 0, 2], {"worker": 3, "winner": 2, "loser": 0}]
        )
        assert [(v.worker, v.winner, v.loser) for v in votes] \
            == [(1, 0, 2), (3, 2, 0)]

    @pytest.mark.parametrize("payload", [
        {"votes": []},            # not a list
        [[1, 0]],                 # short triple
        [{"worker": 1}],          # missing keys
        [[1, 0, "x"]],            # non-numeric
    ])
    def test_votes_from_payload_rejects(self, payload):
        with pytest.raises(DataFormatError):
            votes_from_payload(payload)

    def test_session_config_defaults_and_overrides(self):
        assert session_config_from_payload(None) == SessionConfig()
        config = session_config_from_payload({
            "stability_window": 7, "early_stop": False,
            "pipeline": {"search": "saps"},
        })
        assert config.stability_window == 7
        assert not config.early_stop

    def test_session_config_unknown_key_rejected(self):
        with pytest.raises(DataFormatError):
            session_config_from_payload({"stability_windw": 3})


class TestEngineGuards:
    def test_requires_saps_and_columnar(self):
        from repro.streaming import IncrementalEngine

        with pytest.raises(InferenceError):
            IncrementalEngine(PipelineConfig(search="taps"))
        with pytest.raises(InferenceError):
            IncrementalEngine(PipelineConfig(vote_path="object"))
