"""Unit tests for repro.truth.dawid_skene (EM truth discovery)."""

import numpy as np
import pytest

from repro.config import PipelineConfig, TruthDiscoveryConfig
from repro.exceptions import ConvergenceError, InferenceError
from repro.inference import infer_ranking
from repro.metrics import ranking_accuracy
from repro.truth import discover_truth, discover_truth_em
from repro.types import Ranking, Vote, VoteSet
from repro.workers import AdversarialWorker, SimulatedWorker, WorkerPool
from repro.rng import spawn_rngs


class TestDiscoverTruthEm:
    def test_outputs_bounded(self, medium_votes):
        result = discover_truth_em(medium_votes)
        assert all(0.0 <= x <= 1.0 for x in result.preferences.values())
        assert all(0.0 < q <= 1.0 for q in result.worker_quality.values())

    def test_same_interface_as_crh(self, medium_votes):
        crh = discover_truth(medium_votes)
        em = discover_truth_em(medium_votes)
        assert set(em.preferences) == set(crh.preferences)
        assert set(em.worker_quality) == set(crh.worker_quality)

    def test_agrees_with_crh_on_clean_votes(self, tiny_votes):
        crh = discover_truth(tiny_votes)
        em = discover_truth_em(tiny_votes)
        for pair in crh.preferences:
            assert (em.preferences[pair] > 0.5) == (
                crh.preferences[pair] > 0.5
            ) or crh.preferences[pair] == 0.5

    def test_empty_rejected(self):
        with pytest.raises(InferenceError):
            discover_truth_em(VoteSet.from_votes(3, []))

    def test_strict_convergence(self, medium_votes):
        with pytest.raises(ConvergenceError):
            discover_truth_em(
                medium_votes,
                TruthDiscoveryConfig(max_iterations=1, tolerance=1e-12,
                                     strict=True),
            )

    def test_exploits_perfect_inverters(self):
        """The EM engine's distinguishing feature: perfectly inverting
        workers get accuracy ~ 0, so their votes are *flipped into*
        evidence and every pair becomes effectively unanimous — the
        posterior pins to the truth despite a 3-vs-2 split.

        (Note the global label-switching symmetry of Dawid-Skene: the
        honest camp must hold the majority, otherwise EM locks the
        mirrored labelling.)"""
        pairs = [(i, j) for i in range(6) for j in range(i + 1, 6)]
        votes = []
        for i, j in pairs:
            for worker in (0, 1, 2):                           # honest
                votes.append(Vote(worker=worker, winner=i, loser=j))
            for worker in (3, 4):                              # inverters
                votes.append(Vote(worker=worker, winner=j, loser=i))
        result = discover_truth_em(VoteSet.from_votes(6, votes))
        for pair in pairs:
            assert result.preferences[pair] > 0.99
        honest_q = np.mean([result.worker_quality[k] for k in (0, 1, 2)])
        inverter_q = np.mean([result.worker_quality[k] for k in (3, 4)])
        assert honest_q > inverter_q

    def test_adversary_quality_reported_low(self):
        streams = spawn_rngs(11, 6)
        workers = [
            SimulatedWorker(worker_id=k, sigma=0.02, rng=streams[k])
            for k in range(4)
        ] + [
            AdversarialWorker(worker_id=k, rng=streams[k])
            for k in range(4, 6)
        ]
        pool = WorkerPool(workers)
        truth = Ranking.random(10, rng=11)
        votes = []
        for i in range(10):
            for j in range(i + 1, 10):
                for worker in pool:
                    votes.append(worker.vote(i, j, truth))
        result = discover_truth_em(VoteSet.from_votes(10, votes))
        honest_q = np.mean([result.worker_quality[k] for k in range(4)])
        adversary_q = np.mean([result.worker_quality[k] for k in (4, 5)])
        assert honest_q > adversary_q


class TestEmPipelineIntegration:
    def test_pipeline_runs_with_em_engine(self, medium_scenario,
                                          medium_votes, fast_config):
        config = fast_config.with_(truth_engine="em")
        result = infer_ranking(medium_votes, config, rng=3)
        accuracy = ranking_accuracy(result.ranking,
                                    medium_scenario.ground_truth)
        assert accuracy > 0.85

    def test_bad_engine_rejected(self):
        with pytest.raises(Exception):
            PipelineConfig(truth_engine="magic")
