"""Integration tests for the concurrent batch executor.

Covers the subsystem's acceptance bar: a batch of >= 8 jobs with
``workers > 1`` matching serial execution bit-for-bit, a non-zero cache
hit-rate on resubmission, and poisoned / timing-out / flaky jobs never
taking the batch down.
"""

import time

import pytest

from repro.config import PipelineConfig, PropagationConfig, SAPSConfig
from repro.exceptions import ConfigurationError
from repro.service import (
    NO_RETRY,
    BatchExecutor,
    JobStatus,
    MetricsRegistry,
    RankingJob,
    ResultCache,
    RetryPolicy,
    ScenarioSpec,
    TransientJobError,
    run_batch,
)
from repro.types import VoteSet

QUICK = PipelineConfig(
    saps=SAPSConfig(iterations=500, restarts=1),
    propagation=PropagationConfig(max_hops=4, method="walks"),
)


def scenario_jobs(count, prefix="job"):
    """``count`` small, seeded, fully simulated jobs."""
    return [
        RankingJob(
            job_id=f"{prefix}-{i}",
            scenario=ScenarioSpec(8, 0.6, n_workers=6, workers_per_task=3),
            config=QUICK,
            seed=100 + i,
        )
        for i in range(count)
    ]


class TestValidation:
    def test_worker_count(self):
        with pytest.raises(ConfigurationError):
            BatchExecutor(0)

    def test_timeout_positive(self):
        with pytest.raises(ConfigurationError):
            BatchExecutor(1, timeout=0)


class TestDeterminism:
    def test_parallel_matches_serial(self):
        jobs = scenario_jobs(8)
        serial = BatchExecutor(workers=1).run(jobs)
        parallel = BatchExecutor(workers=4).run(jobs)
        assert serial.ok and parallel.ok
        assert [r.result.ranking for r in serial.results] == \
               [r.result.ranking for r in parallel.results]
        assert [r.extras["accuracy"] for r in serial.results] == \
               [r.extras["accuracy"] for r in parallel.results]

    def test_results_preserve_submission_order(self):
        jobs = scenario_jobs(6)
        report = BatchExecutor(workers=3).run(jobs)
        assert [r.job_id for r in report.results] == \
               [job.job_id for job in jobs]

    def test_votes_job_matches_direct_pipeline(self, tiny_votes):
        from repro.inference import infer_ranking

        job = RankingJob(job_id="v", votes=tiny_votes, config=QUICK, seed=5)
        report = BatchExecutor(workers=2).run([job, job])
        expected = infer_ranking(tiny_votes, QUICK, rng=5)
        for result in report.results:
            assert result.result.ranking == expected.ranking


class TestCaching:
    def test_resubmission_hits_cache(self):
        jobs = scenario_jobs(8)
        executor = BatchExecutor(workers=4, cache=ResultCache())
        first = executor.run(jobs)
        second = executor.run(jobs)
        assert all(not r.from_cache for r in first.results)
        assert all(r.from_cache for r in second.results)
        assert all(r.attempts == 0 for r in second.results)
        assert second.metrics["derived"]["cache_hit_rate"] == pytest.approx(0.5)
        # Cached replay returns the identical ranking.
        assert [r.result.ranking for r in first.results] == \
               [r.result.ranking for r in second.results]

    def test_duplicate_content_within_one_serial_batch(self):
        job = scenario_jobs(1)[0]
        twin = RankingJob(job_id="twin", scenario=job.scenario,
                          config=job.config, seed=job.seed)
        report = BatchExecutor(workers=1, cache=ResultCache()).run([job, twin])
        assert not report.results[0].from_cache
        assert report.results[1].from_cache
        assert report.results[0].result.ranking == \
               report.results[1].result.ranking

    def test_unseeded_jobs_never_cached(self):
        spec = ScenarioSpec(8, 0.6, n_workers=6, workers_per_task=3)
        jobs = [RankingJob(job_id=f"u{i}", scenario=spec, config=QUICK)
                for i in range(2)]
        executor = BatchExecutor(workers=1, cache=ResultCache())
        report = executor.run(jobs)
        again = executor.run(jobs)
        assert all(not r.from_cache
                   for r in report.results + again.results)

    def test_no_cache_mode(self):
        jobs = scenario_jobs(2)
        executor = BatchExecutor(workers=1)  # cache=None
        executor.run(jobs)
        report = executor.run(jobs)
        assert all(not r.from_cache for r in report.results)


class TestIsolation:
    def test_poisoned_job_does_not_abort_batch(self):
        jobs = scenario_jobs(8)
        poisoned = RankingJob(job_id="poison",
                              votes=VoteSet.from_votes(4, []), seed=9)
        report = BatchExecutor(workers=4).run(jobs[:4] + [poisoned] + jobs[4:])
        assert len(report.results) == 9
        bad = report.by_id("poison")
        assert bad.status is JobStatus.FAILED
        assert "InferenceError" in bad.error
        assert bad.attempts == 1  # deterministic failure, no retry burned
        assert len(report.succeeded) == 8
        assert not report.ok

    def test_timeout_isolates_slow_job(self, tiny_votes):
        executor = BatchExecutor(workers=2, timeout=0.2, retry=NO_RETRY)
        original = executor._attempt

        def slow_attempt(job):
            if job.job_id == "slow":
                time.sleep(5.0)
            return original(job)

        executor._attempt = slow_attempt
        slow = RankingJob(job_id="slow", votes=tiny_votes, config=QUICK,
                          seed=1)
        fast = RankingJob(job_id="fast", votes=tiny_votes, config=QUICK,
                          seed=1)
        start = time.perf_counter()
        report = executor.run([slow, fast])
        elapsed = time.perf_counter() - start
        assert report.by_id("slow").status is JobStatus.TIMED_OUT
        assert report.by_id("fast").ok
        assert elapsed < 4.0  # the batch never waited out the sleep

    def test_unexpected_executor_error_is_contained(self, tiny_votes):
        executor = BatchExecutor(workers=1)

        def explode(job):
            raise MemoryError("simulated")

        executor._attempt = explode
        report = executor.run(
            [RankingJob(job_id="boom", votes=tiny_votes, seed=1)]
        )
        assert report.results[0].status is JobStatus.FAILED


class TestRetries:
    def test_transient_failure_retried_then_succeeds(self, tiny_votes):
        executor = BatchExecutor(
            workers=1,
            retry=RetryPolicy(max_attempts=3, base_delay=0.0, max_delay=0.0),
        )
        original = executor._attempt
        failures = []

        def flaky_attempt(job):
            if len(failures) < 2:
                failures.append(1)
                raise TransientJobError("injected hiccup")
            return original(job)

        executor._attempt = flaky_attempt
        job = RankingJob(job_id="flaky", votes=tiny_votes, config=QUICK,
                         seed=4)
        report = executor.run([job])
        outcome = report.results[0]
        assert outcome.ok
        assert outcome.attempts == 3
        assert executor.metrics.counter("retry.attempts") == 2
        assert executor.metrics.counter("retry.recovered") == 1

    def test_retry_exhausted_fails_job(self, tiny_votes):
        executor = BatchExecutor(
            workers=1,
            retry=RetryPolicy(max_attempts=2, base_delay=0.0, max_delay=0.0),
        )

        def always_flaky(job):
            raise TransientJobError("still down")

        executor._attempt = always_flaky
        report = executor.run(
            [RankingJob(job_id="dead", votes=tiny_votes, seed=4)]
        )
        outcome = report.results[0]
        assert outcome.status is JobStatus.FAILED
        assert outcome.attempts == 2
        assert "TransientJobError" in outcome.error


class TestDeadline:
    def test_past_deadline_times_out_without_starting_work(self, tiny_votes):
        executor = BatchExecutor(
            workers=1, deadline=time.monotonic() - 1.0, retry=NO_RETRY,
        )
        attempts = []
        executor._attempt = lambda job: attempts.append(job)
        report = executor.run(
            [RankingJob(job_id="late", votes=tiny_votes, config=QUICK,
                        seed=1)]
        )
        assert report.results[0].status is JobStatus.TIMED_OUT
        assert attempts == []  # doomed work never started

    def test_deadline_bounds_the_whole_batch(self, tiny_votes):
        # One absolute budget for all jobs — not per attempt: with a
        # 0.3s deadline, four 5s jobs drain in ~one deadline, queued
        # jobs timing out immediately once it passes.
        executor = BatchExecutor(
            workers=1, deadline=time.monotonic() + 0.3, retry=NO_RETRY,
        )

        def slow(job):
            time.sleep(5.0)

        executor._attempt = slow
        jobs = [RankingJob(job_id=f"s{i}", votes=tiny_votes, config=QUICK,
                           seed=1) for i in range(4)]
        start = time.perf_counter()
        report = executor.run(jobs)
        elapsed = time.perf_counter() - start
        assert all(r.status is JobStatus.TIMED_OUT for r in report.results)
        assert elapsed < 3.0

    def test_deadline_caps_retry_backoff(self, tiny_votes):
        executor = BatchExecutor(
            workers=1,
            retry=RetryPolicy(max_attempts=5, base_delay=30.0,
                              max_delay=30.0),
            deadline=time.monotonic() + 0.2,
        )

        def always_flaky(job):
            raise TransientJobError("still down")

        executor._attempt = always_flaky
        start = time.perf_counter()
        report = executor.run(
            [RankingJob(job_id="f", votes=tiny_votes, seed=1)]
        )
        elapsed = time.perf_counter() - start
        assert report.results[0].status is JobStatus.TIMED_OUT
        assert elapsed < 5.0  # backoff clamped to the deadline, not 30s

    def test_per_attempt_timeout_still_applies_under_far_deadline(
            self, tiny_votes):
        executor = BatchExecutor(
            workers=1, timeout=0.2, deadline=time.monotonic() + 60.0,
            retry=NO_RETRY,
        )

        def slow(job):
            time.sleep(5.0)

        executor._attempt = slow
        start = time.perf_counter()
        report = executor.run(
            [RankingJob(job_id="slow", votes=tiny_votes, seed=1)]
        )
        assert report.results[0].status is JobStatus.TIMED_OUT
        assert time.perf_counter() - start < 3.0


class TestMetrics:
    def test_batch_metrics_cover_outcomes_and_steps(self):
        metrics = MetricsRegistry()
        jobs = scenario_jobs(3)
        poisoned = RankingJob(job_id="poison",
                              votes=VoteSet.from_votes(4, []), seed=9)
        executor = BatchExecutor(workers=2, cache=ResultCache(),
                                 metrics=metrics)
        report = executor.run(jobs + [poisoned])
        counters = report.metrics["counters"]
        assert counters["jobs.total"] == 4
        assert counters["jobs.succeeded"] == 3
        assert counters["jobs.failed"] == 1
        assert counters["cache.misses"] == 4
        timers = report.metrics["timers"]
        assert timers["job.seconds"]["count"] == 4
        # Per-step latency aggregated from InferenceResult.step_seconds.
        assert timers["step.search"]["count"] == 3
        assert timers["step.truth_discovery"]["count"] == 3
        assert timers["batch.seconds"]["count"] == 1


class TestRunBatchConvenience:
    def test_run_batch_one_call(self):
        report = run_batch(scenario_jobs(2), workers=2, cache=ResultCache())
        assert report.ok
        assert len(report.results) == 2

    def test_empty_batch(self):
        report = run_batch([])
        assert report.results == ()
        assert report.ok
