"""Unit tests for repro.experiments.replicate."""

import pytest

from repro.config import FAST_PIPELINE
from repro.datasets import make_scenario
from repro.exceptions import ConfigurationError
from repro.experiments import replicate, run_pipeline_arm
from repro.experiments.runner import ExperimentRecord


def pipeline_arm(seed_like):
    scenario = make_scenario(12, 0.5, n_workers=10, workers_per_task=4,
                             rng=seed_like)
    return run_pipeline_arm(scenario, FAST_PIPELINE, rng=seed_like)


class TestReplicate:
    def test_aggregates_repeats(self):
        aggregate = replicate(pipeline_arm, repeats=3, rng=5)
        assert aggregate.n_repeats == 3
        assert 0.0 <= aggregate.mean_accuracy <= 1.0
        assert aggregate.std_accuracy >= 0.0
        assert aggregate.mean_seconds > 0.0

    def test_seeds_vary_outcomes(self):
        aggregate = replicate(pipeline_arm, repeats=4, rng=6)
        # Independent scenarios: at least two distinct accuracies.
        assert len(set(aggregate.accuracies)) >= 2

    def test_single_repeat_zero_std(self):
        aggregate = replicate(pipeline_arm, repeats=1, rng=7)
        assert aggregate.std_accuracy == 0.0
        assert aggregate.confidence_halfwidth() == 0.0

    def test_confidence_halfwidth_positive(self):
        aggregate = replicate(pipeline_arm, repeats=3, rng=8)
        assert aggregate.confidence_halfwidth() >= 0.0

    def test_summary_line(self):
        aggregate = replicate(pipeline_arm, repeats=2, rng=9)
        text = aggregate.summary()
        assert "saps" in text
        assert "±" in text

    def test_zero_repeats_rejected(self):
        with pytest.raises(ConfigurationError):
            replicate(pipeline_arm, repeats=0)

    def test_mixed_arms_rejected(self):
        toggle = {"flip": False}

        def inconsistent(seed_like):
            toggle["flip"] = not toggle["flip"]
            name = "a" if toggle["flip"] else "b"
            return ExperimentRecord(name, 5, 0.5, 2, "q", 0.9, 0.1)

        with pytest.raises(ConfigurationError):
            replicate(inconsistent, repeats=2, rng=1)

    def test_deterministic_given_parent_seed(self):
        a = replicate(pipeline_arm, repeats=2, rng=11)
        b = replicate(pipeline_arm, repeats=2, rng=11)
        assert a.accuracies == b.accuracies
