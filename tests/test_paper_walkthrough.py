"""Walkthrough of the paper's running example (Figure 1) and Sec. II
arithmetic, as executable documentation."""

import pytest

from repro.budget import BudgetModel
from repro.graphs import (
    PreferenceGraph,
    TaskGraph,
    count_preference_instances,
)
from repro.graphs.hamiltonian import has_hamiltonian_path
from repro.inference.propagation import propagate_preferences
from repro.config import PropagationConfig


class TestFigure1:
    """Figure 1: a 4-vertex, 4-edge task graph and one preference
    instance with an in-node."""

    @pytest.fixture
    def task_graph(self):
        # Fig. 1(a): each vertex has degree 2 (a 4-cycle).
        return TaskGraph(4, [(0, 1), (1, 2), (2, 3), (0, 3)])

    def test_every_vertex_degree_two(self, task_graph):
        assert task_graph.degrees() == [2, 2, 2, 2]
        assert task_graph.is_regular()

    def test_eq1_gives_81_instances(self, task_graph):
        """Sec. III: "it has 3^4 = 81 possible instances"."""
        assert count_preference_instances(task_graph) == 81

    @pytest.fixture
    def preference_instance(self):
        """Fig. 1(b)-style instance where vertex 2 is an in-node:
        0 -> 1, 1 -> 2, 3 -> 2, 0 -> 3 (all unanimous)."""
        graph = PreferenceGraph(4)
        graph.add_edge(0, 1, 1.0)
        graph.add_edge(1, 2, 1.0)
        graph.add_edge(3, 2, 1.0)
        graph.add_edge(0, 3, 1.0)
        return graph

    def test_in_node_detected(self, preference_instance):
        """"In this graph, the vertex v2 is an in-node."""
        assert preference_instance.is_in_node(2)
        assert preference_instance.in_nodes() == [2]
        assert preference_instance.out_nodes() == [0]

    def test_instance_of_task_graph(self, task_graph, preference_instance):
        assert preference_instance.is_instance_of(task_graph)

    def test_smoothed_closure_has_hp(self, preference_instance):
        """Fig. 1(c)-(d): after smoothing + closure, an HP exists
        (Theorem 5.1)."""
        # Manual smoothing (the paper's Fig. 1(c)): soften each 1-edge.
        smoothed = PreferenceGraph(4)
        for u, v, _ in preference_instance.edges():
            smoothed.add_edge(u, v, 0.9)
            smoothed.add_edge(v, u, 0.1)
        closure = propagate_preferences(
            smoothed, PropagationConfig(max_hops=3, method="exact")
        )
        assert closure.is_complete()
        assert has_hamiltonian_path(closure)

    def test_closure_ranks_in_node_last(self, preference_instance):
        """The in-node (v2) must be ranked last, the out-node (v0)
        first, in the best closure ranking."""
        from repro.inference.taps import branch_and_bound_search

        smoothed = PreferenceGraph(4)
        for u, v, _ in preference_instance.edges():
            smoothed.add_edge(u, v, 0.9)
            smoothed.add_edge(v, u, 0.1)
        closure = propagate_preferences(
            smoothed, PropagationConfig(max_hops=3, method="exact")
        )
        ranking, _ = branch_and_bound_search(closure.weight_matrix())
        assert ranking.order[0] == 0
        assert ranking.order[-1] == 2


class TestSectionIIArithmetic:
    def test_amt_study_budget(self):
        """Sec. VI-A3: $0.025 per comparison; 10 images at r = 0.5 with
        w = 100 workers -> 22 pairs, $55.00."""
        from repro.budget import plan_for_selection_ratio

        plan = plan_for_selection_ratio(10, 0.5, workers_per_task=100,
                                        reward=0.025)
        assert plan.n_comparisons == 22
        assert plan.spend == pytest.approx(22 * 100 * 0.025)

    def test_budget_formula_floor(self):
        """Sec. II: l = floor(B / (w r))."""
        model = BudgetModel(total=1.0, workers_per_task=3, reward=0.025)
        assert model.affordable_comparisons() == 13  # floor(13.33)
