"""Failure-injection tests: the pipeline under degraded crowd conditions.

Non-interactive crowdsourcing cannot re-post tasks, so the inference must
tolerate whatever came back: abandoned HITs (missing votes), adversarial
workers, spammers, and lopsided coverage.
"""

import numpy as np
import pytest

from repro.assignment import assign_hits, generate_assignment
from repro.budget import plan_for_selection_ratio
from repro.config import FAST_PIPELINE
from repro.exceptions import AssignmentError
from repro.inference import infer_ranking
from repro.metrics import ranking_accuracy
from repro.platform import NonInteractivePlatform
from repro.rng import spawn_rngs
from repro.types import Ranking, Vote, VoteSet
from repro.workers import (
    QualityLevel,
    SimulatedWorker,
    WorkerPool,
    gaussian_preset,
)


def run_round(truth, pool, ratio=0.4, w=5, dropout=0.0, seed=13):
    plan = plan_for_selection_ratio(len(truth), ratio, workers_per_task=w)
    assignment = generate_assignment(plan, rng=seed)
    worker_assignment = assign_hits(assignment, n_workers=len(pool),
                                    workers_per_hit=w, rng=seed)
    platform = NonInteractivePlatform(pool, truth)
    return platform.run(worker_assignment, dropout=dropout, rng=seed)


@pytest.fixture
def truth():
    return Ranking.random(20, rng=61)


@pytest.fixture
def pool():
    return WorkerPool.from_distribution(
        15, gaussian_preset(QualityLevel.MEDIUM), rng=61
    )


class TestDropout:
    def test_dropout_reduces_votes_and_spend(self, truth, pool):
        full = run_round(truth, pool, dropout=0.0)
        degraded = run_round(truth, pool, dropout=0.4)
        assert len(degraded.votes) < len(full.votes)
        assert degraded.ledger.spent < full.ledger.spent

    def test_abandon_events_logged(self, truth, pool):
        degraded = run_round(truth, pool, dropout=0.4)
        assert len(degraded.events.of_kind("abandon")) > 0

    def test_pipeline_survives_moderate_dropout(self, truth, pool):
        degraded = run_round(truth, pool, dropout=0.3)
        result = infer_ranking(degraded.votes, FAST_PIPELINE, rng=1)
        assert ranking_accuracy(result.ranking, truth) > 0.75

    def test_pipeline_survives_severe_dropout(self, truth, pool):
        degraded = run_round(truth, pool, dropout=0.8, seed=17)
        result = infer_ranking(degraded.votes, FAST_PIPELINE, rng=1)
        # Severely degraded but must still return a full permutation and
        # beat a coin flip.
        assert sorted(result.ranking.order) == list(range(20))
        assert ranking_accuracy(result.ranking, truth) > 0.5

    def test_invalid_dropout_rejected(self, truth, pool):
        with pytest.raises(AssignmentError):
            run_round(truth, pool, dropout=1.0)
        with pytest.raises(AssignmentError):
            run_round(truth, pool, dropout=-0.1)

    def test_dropout_reproducible(self, truth, pool):
        a = run_round(truth, pool, dropout=0.3, seed=5)
        pool_b = WorkerPool.from_distribution(
            15, gaussian_preset(QualityLevel.MEDIUM), rng=61
        )
        b = run_round(truth, pool_b, dropout=0.3, seed=5)
        assert len(a.votes) == len(b.votes)


class TestAdversarialWorkers:
    def _mixed_pool(self, n_honest, n_adversarial, seed=71):
        streams = spawn_rngs(seed, n_honest + n_adversarial)
        workers = []
        for k in range(n_honest):
            workers.append(SimulatedWorker(worker_id=k, sigma=0.02,
                                           rng=streams[k]))
        for k in range(n_honest, n_honest + n_adversarial):
            # sigma so large the error probability saturates toward 1:
            # a systematically *inverting* worker.
            workers.append(SimulatedWorker(worker_id=k, sigma=30.0,
                                           rng=streams[k]))
        return WorkerPool(workers)

    def test_minority_adversaries_are_downweighted(self, truth):
        pool = self._mixed_pool(10, 4)
        run = run_round(truth, pool, w=7, seed=19)
        result = infer_ranking(run.votes, FAST_PIPELINE, rng=2)
        quality = result.worker_quality
        honest = np.mean([quality[k] for k in range(10) if k in quality])
        adversarial = np.mean([quality[k] for k in range(10, 14)
                               if k in quality])
        assert honest > adversarial
        assert ranking_accuracy(result.ranking, truth) > 0.85

    def test_coin_flip_spammers_tolerated(self, truth):
        streams = spawn_rngs(73, 12)
        workers = [
            SimulatedWorker(worker_id=k, sigma=0.02, rng=streams[k])
            for k in range(8)
        ]
        # sigma ~ 0.63 gives eps ~ |N(0, 0.4)| -> frequent random errors.
        workers += [
            SimulatedWorker(worker_id=k, sigma=0.63, rng=streams[k])
            for k in range(8, 12)
        ]
        pool = WorkerPool(workers)
        run = run_round(truth, pool, w=6, seed=23)
        result = infer_ranking(run.votes, FAST_PIPELINE, rng=3)
        assert ranking_accuracy(result.ranking, truth) > 0.85


class TestSparseAndLopsidedCoverage:
    def test_single_worker_per_pair(self, truth, pool):
        run = run_round(truth, pool, w=1, seed=29)
        result = infer_ranking(run.votes, FAST_PIPELINE, rng=4)
        assert sorted(result.ranking.order) == list(range(20))

    def test_spanning_minimum_budget(self, truth, pool):
        """r at the n-1 floor: the plan is a bare Hamiltonian path."""
        run = run_round(truth, pool, ratio=0.01, w=5, seed=31)
        result = infer_ranking(run.votes, FAST_PIPELINE, rng=5)
        assert sorted(result.ranking.order) == list(range(20))
        assert ranking_accuracy(result.ranking, truth) > 0.6

    def test_object_with_no_votes_still_ranked(self):
        """Votes that never mention object 3 (e.g. total dropout on its
        pairs) must not crash inference; the object lands somewhere."""
        votes = []
        pairs = [(0, 1), (1, 2), (0, 2), (0, 4), (2, 4)]
        for worker in range(3):
            for i, j in pairs:
                votes.append(Vote(worker=worker, winner=i, loser=j))
        result = infer_ranking(VoteSet.from_votes(5, votes), FAST_PIPELINE,
                               rng=6)
        assert sorted(result.ranking.order) == list(range(5))

    def test_duplicate_votes_by_same_worker(self):
        """A worker answering the same pair twice (platform glitch) is
        absorbed, not fatal."""
        votes = [
            Vote(worker=0, winner=0, loser=1),
            Vote(worker=0, winner=0, loser=1),
            Vote(worker=0, winner=1, loser=0),
            Vote(worker=1, winner=0, loser=1),
            Vote(worker=1, winner=1, loser=2),
            Vote(worker=0, winner=1, loser=2),
            Vote(worker=1, winner=0, loser=2),
            Vote(worker=0, winner=0, loser=2),
        ]
        result = infer_ranking(VoteSet.from_votes(3, votes), FAST_PIPELINE,
                               rng=7)
        assert result.ranking == Ranking([0, 1, 2])
