"""Tests for the cross-process spill tier (FileLock + SpillIndex)."""

import threading
import time

import pytest

from repro.exceptions import ConfigurationError
from repro.service import FileLock, SpillIndex
from repro.service.shared_cache import INDEX_FILENAME, LOCK_FILENAME


class TestFileLock:
    def test_exclusive_excludes_other_holders(self, tmp_path):
        """Two FileLock instances over one path exclude each other —
        flock ties locks to the open file description, so this covers
        the cross-process semantics from within one process."""
        lock_a = FileLock(tmp_path / LOCK_FILENAME)
        lock_b = FileLock(tmp_path / LOCK_FILENAME)
        held = threading.Event()
        release = threading.Event()
        b_acquired_at = []

        def holder():
            with lock_a.exclusive():
                held.set()
                release.wait(timeout=10.0)

        def contender():
            held.wait(timeout=10.0)
            with lock_b.exclusive():
                b_acquired_at.append(time.monotonic())

        thread_a = threading.Thread(target=holder)
        thread_b = threading.Thread(target=contender)
        thread_a.start()
        thread_b.start()
        held.wait(timeout=10.0)
        time.sleep(0.2)
        assert not b_acquired_at, "contender acquired while lock was held"
        released_at = time.monotonic()
        release.set()
        thread_a.join(timeout=10.0)
        thread_b.join(timeout=10.0)
        assert b_acquired_at and b_acquired_at[0] >= released_at - 0.05

    def test_shared_holders_coexist(self, tmp_path):
        lock = FileLock(tmp_path / LOCK_FILENAME)
        inside = threading.Barrier(2, timeout=10.0)

        def reader():
            with lock.shared():
                inside.wait()  # both inside simultaneously, or timeout

        threads = [threading.Thread(target=reader) for _ in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=10.0)
            assert not thread.is_alive()

    def test_creates_parent_directory(self, tmp_path):
        lock = FileLock(tmp_path / "deep" / "dir" / LOCK_FILENAME)
        with lock.exclusive():
            pass
        assert (tmp_path / "deep" / "dir" / LOCK_FILENAME).exists()


class TestSpillIndex:
    def test_record_and_keys_order(self, tmp_path):
        index = SpillIndex(tmp_path)
        for key in ("aa", "bb", "cc"):
            index.record(key)
        assert index.keys() == ["aa", "bb", "cc"]

    def test_rewrite_moves_key_to_newest(self, tmp_path):
        index = SpillIndex(tmp_path)
        for key in ("aa", "bb", "aa"):
            index.record(key)
        assert index.keys() == ["bb", "aa"]
        assert "aa" in index and "zz" not in index
        assert len(index) == 2

    def test_empty_directory(self, tmp_path):
        assert SpillIndex(tmp_path).keys() == []

    def test_rejects_malformed_keys(self, tmp_path):
        index = SpillIndex(tmp_path)
        for bad in ("", "a\nb", "un/seeded"):
            with pytest.raises(ConfigurationError):
                index.record(bad)

    def test_concurrent_records_all_land(self, tmp_path):
        """Four writers (separate index instances, as separate processes
        would hold) journal disjoint key sets; nothing is lost or torn."""
        def writer(tag):
            index = SpillIndex(tmp_path)
            for i in range(50):
                index.record(f"{tag}{i:03d}")

        threads = [threading.Thread(target=writer, args=(tag,))
                   for tag in "abcd"]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30.0)
        keys = SpillIndex(tmp_path).keys()
        assert len(keys) == 200
        assert set(keys) == {f"{tag}{i:03d}" for tag in "abcd"
                             for i in range(50)}

    def test_prune_removes_oldest_files(self, tmp_path):
        index = SpillIndex(tmp_path)
        for key in ("aa", "bb", "cc"):
            (tmp_path / f"{key}.json").write_text("{}")
            index.record(key)
        removed = index.prune(2)
        assert removed == ["aa"]
        assert not (tmp_path / "aa.json").exists()
        assert (tmp_path / "bb.json").exists()
        assert (tmp_path / "cc.json").exists()
        assert index.keys() == ["bb", "cc"]

    def test_prune_drops_keys_with_missing_files(self, tmp_path):
        index = SpillIndex(tmp_path)
        index.record("ghost")
        (tmp_path / "real.json").write_text("{}")
        index.record("real")
        assert index.prune(5) == []
        assert index.keys() == ["real"]

    def test_prune_validates_bound(self, tmp_path):
        with pytest.raises(ConfigurationError):
            SpillIndex(tmp_path).prune(0)

    def test_rebuild_from_directory_scan(self, tmp_path):
        (tmp_path / "k1.json").write_text("{}")
        time.sleep(0.02)  # distinct mtimes => deterministic order
        (tmp_path / "k2.json").write_text("{}")
        index = SpillIndex(tmp_path)
        assert index.keys() == []
        assert index.rebuild() == ["k1", "k2"]
        assert index.keys() == ["k1", "k2"]

    def test_journal_compacts_under_rewrites(self, tmp_path):
        index = SpillIndex(tmp_path)
        for _ in range(300):
            index.record("same-key")
        lines = (tmp_path / INDEX_FILENAME).read_text().splitlines()
        assert len(lines) < 300
        assert index.keys() == ["same-key"]

    def test_index_files_invisible_to_spill_namespace(self, tmp_path):
        index = SpillIndex(tmp_path)
        index.record("aa")
        with index.lock.exclusive():
            pass
        assert not list(tmp_path.glob("*.json"))
