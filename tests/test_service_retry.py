"""Unit tests for the retry policy and backoff loop."""

import pytest

from repro.exceptions import ConfigurationError, InferenceError
from repro.service import (
    NO_RETRY,
    RetryExhaustedError,
    RetryPolicy,
    TransientJobError,
    call_with_retry,
    default_is_transient,
)


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(base_delay=-1)
        with pytest.raises(ConfigurationError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ConfigurationError):
            RetryPolicy(base_delay=1.0, max_delay=0.5)

    def test_exponential_growth_with_cap(self):
        policy = RetryPolicy(max_attempts=5, base_delay=0.1, multiplier=2.0,
                             max_delay=0.35)
        assert policy.delay_for(1) == pytest.approx(0.1)
        assert policy.delay_for(2) == pytest.approx(0.2)
        assert policy.delay_for(3) == pytest.approx(0.35)  # capped
        assert policy.delay_for(4) == pytest.approx(0.35)

    def test_delay_for_rejects_zero(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy().delay_for(0)


class TestTransienceClassifier:
    def test_transient_job_error_is_transient(self):
        assert default_is_transient(TransientJobError("net hiccup"))

    def test_repro_errors_are_deterministic(self):
        assert not default_is_transient(InferenceError("zero votes"))
        assert not default_is_transient(ConfigurationError("bad alpha"))

    def test_environmental_errors_are_transient(self):
        assert default_is_transient(ConnectionError("reset"))
        assert default_is_transient(OSError("disk"))

    def test_generic_exceptions_are_deterministic(self):
        assert not default_is_transient(ValueError("bug"))


class TestCallWithRetry:
    def test_first_try_success_uses_one_attempt(self):
        outcome = call_with_retry(lambda: "value", NO_RETRY)
        assert outcome.value == "value"
        assert outcome.attempts == 1

    def test_retry_then_succeed(self):
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise TransientJobError("hiccup")
            return 42

        sleeps = []
        outcome = call_with_retry(
            flaky,
            RetryPolicy(max_attempts=3, base_delay=0.1, multiplier=2.0,
                        max_delay=10.0),
            sleep=sleeps.append,
        )
        assert outcome.value == 42
        assert outcome.attempts == 3
        assert sleeps == pytest.approx([0.1, 0.2])  # exponential backoff

    def test_retry_exhausted_raises_with_cause(self):
        def always_flaky():
            raise TransientJobError("still down")

        with pytest.raises(RetryExhaustedError) as info:
            call_with_retry(
                always_flaky,
                RetryPolicy(max_attempts=3, base_delay=0.0, max_delay=0.0),
                sleep=lambda _: None,
            )
        assert info.value.attempts == 3
        assert isinstance(info.value.__cause__, TransientJobError)

    def test_deterministic_failure_propagates_immediately(self):
        calls = []

        def broken():
            calls.append(1)
            raise InferenceError("always broken")

        with pytest.raises(InferenceError):
            call_with_retry(broken, RetryPolicy(max_attempts=5,
                                                base_delay=0.0,
                                                max_delay=0.0))
        assert len(calls) == 1  # no retry burned on a deterministic error

    def test_custom_classifier(self):
        calls = []

        def broken():
            calls.append(1)
            raise ValueError("flaky in this context")

        outcome = None
        with pytest.raises(RetryExhaustedError):
            call_with_retry(
                broken,
                RetryPolicy(max_attempts=2, base_delay=0.0, max_delay=0.0),
                is_transient=lambda e: isinstance(e, ValueError),
                sleep=lambda _: None,
            )
        assert len(calls) == 2
        assert outcome is None
