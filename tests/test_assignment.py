"""Unit tests for repro.assignment (generator, fairness, assigner)."""

import pytest

from repro.assignment import (
    assign_hits,
    batch_into_hits,
    generate_assignment,
    verify_assignment,
)
from repro.budget import plan_for_selection_ratio
from repro.exceptions import AssignmentError
from repro.graphs import TaskGraph


@pytest.fixture
def plan():
    return plan_for_selection_ratio(12, 0.5, workers_per_task=4)


@pytest.fixture
def assignment(plan):
    return generate_assignment(plan, rng=9)


class TestBatchIntoHits:
    def test_singleton_hits(self):
        graph = TaskGraph(4, [(0, 1), (1, 2), (2, 3)])
        hits = batch_into_hits(graph, comparisons_per_hit=1, rng=0)
        assert len(hits) == 3
        assert all(len(hit) == 1 for hit in hits)

    def test_batched_hits(self):
        graph = TaskGraph(5, [(0, 1), (1, 2), (2, 3), (3, 4), (0, 4)])
        hits = batch_into_hits(graph, comparisons_per_hit=2, rng=0)
        assert [len(h) for h in hits] == [2, 2, 1]

    def test_all_edges_covered_once(self):
        graph = TaskGraph(5, [(0, 1), (1, 2), (2, 3), (3, 4), (0, 4)])
        hits = batch_into_hits(graph, comparisons_per_hit=2, rng=1)
        pairs = [pair for hit in hits for pair in hit.pairs]
        assert sorted(pairs) == sorted(graph.edges())

    def test_hit_ids_sequential(self):
        graph = TaskGraph(4, [(0, 1), (1, 2), (2, 3)])
        hits = batch_into_hits(graph, rng=0)
        assert [hit.hit_id for hit in hits] == [0, 1, 2]

    def test_invalid_batch_size(self):
        graph = TaskGraph(3, [(0, 1)])
        with pytest.raises(AssignmentError):
            batch_into_hits(graph, comparisons_per_hit=0)


class TestGenerateAssignment:
    def test_edge_count_matches_plan(self, plan, assignment):
        assert assignment.task_graph.n_edges == plan.n_comparisons

    def test_all_pairs_unique(self, assignment):
        pairs = assignment.all_pairs()
        assert len(pairs) == len(set(pairs))

    def test_deterministic_with_seed(self, plan):
        a = generate_assignment(plan, rng=5)
        b = generate_assignment(plan, rng=5)
        assert set(a.task_graph.edges()) == set(b.task_graph.edges())


class TestVerifyAssignment:
    def test_requirements_met(self, assignment):
        report = verify_assignment(assignment)
        assert report.all_requirements_met
        assert report.near_fair
        assert report.connected
        assert report.budget_respected
        assert report.degree_max - report.degree_min <= 1

    def test_hp_likelihood_positive(self, assignment):
        report = verify_assignment(assignment)
        assert report.hp_likelihood_bound > 0.0

    def test_fair_when_degrees_divide(self):
        # n=10, l=25 -> exact degree 5.
        plan = plan_for_selection_ratio(10, 25 / 45, workers_per_task=2)
        assignment = generate_assignment(plan, rng=2)
        report = verify_assignment(assignment)
        assert report.fair
        assert report.io_probability_spread == 0.0


class TestAssignHits:
    def test_workers_distinct_per_hit(self, assignment):
        worker_assignment = assign_hits(assignment, n_workers=10,
                                        workers_per_hit=4, rng=1)
        for workers in worker_assignment.hit_workers:
            assert len(set(workers)) == 4

    def test_total_votes(self, assignment, plan):
        worker_assignment = assign_hits(assignment, n_workers=10,
                                        workers_per_hit=4, rng=1)
        assert worker_assignment.total_votes == plan.n_comparisons * 4

    def test_workload_sums_to_total(self, assignment):
        worker_assignment = assign_hits(assignment, n_workers=10,
                                        workers_per_hit=4, rng=1)
        workload = worker_assignment.workload()
        assert sum(workload.values()) == worker_assignment.total_votes

    def test_w_exceeding_m_rejected(self, assignment):
        with pytest.raises(AssignmentError):
            assign_hits(assignment, n_workers=3, workers_per_hit=4)

    def test_zero_workers_rejected(self, assignment):
        with pytest.raises(AssignmentError):
            assign_hits(assignment, n_workers=0, workers_per_hit=1)
