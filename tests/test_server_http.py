"""End-to-end tests for the HTTP ranking service (ephemeral ports)."""

import http.client
import json
import threading
import time
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.config import PipelineConfig
from repro.datasets import make_scenario
from repro.exceptions import ConfigurationError
from repro.server import AdmissionGate, RankingServer, ServerConfig
from repro.service import BatchExecutor, BatchReport, JobStatus
from repro.session import rank_with_crowd
from repro.types import InferenceResult, Ranking
from repro.workers import QualityLevel


def _get(url):
    """GET returning (status, parsed-or-text body)."""
    try:
        with urllib.request.urlopen(url, timeout=10) as response:
            raw = response.read()
            status = response.status
    except urllib.error.HTTPError as error:
        raw = error.read()
        status = error.code
    try:
        return status, json.loads(raw)
    except json.JSONDecodeError:
        return status, raw.decode("utf-8")


def _post(url, body, timeout=30):
    """POST raw bytes (or a JSON-able object); returns (status, body)."""
    if not isinstance(body, (bytes, bytearray)):
        body = json.dumps(body).encode("utf-8")
    request = urllib.request.Request(
        url, data=body, headers={"Content-Type": "application/json"},
        method="POST",
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


SCENARIO_REQUEST = {
    "job_id": "e2e-scenario",
    "seed": 7,
    "scenario": {"n_objects": 12, "selection_ratio": 0.5,
                 "n_workers": 10, "workers_per_task": 5},
}


@pytest.fixture
def server(tmp_path):
    ranking_server = RankingServer(ServerConfig(
        port=0, workers=2, queue_depth=4, default_timeout=60.0,
        cache_dir=str(tmp_path / "cache"),
    ))
    ranking_server.start()
    yield ranking_server
    ranking_server.stop(drain_timeout=5.0)


class TestProbes:
    def test_healthz(self, server):
        status, body = _get(server.url + "/healthz")
        assert status == 200
        assert body["status"] == "ok"

    def test_readyz_while_serving(self, server):
        status, body = _get(server.url + "/readyz")
        assert status == 200
        assert body["status"] == "ready"

    def test_unknown_path_404(self, server):
        status, body = _get(server.url + "/nope")
        assert status == 404

    def test_wrong_method_405(self, server):
        status, body = _get(server.url + "/v1/rank")
        assert status == 405


class TestRank:
    def test_scenario_round_trip_matches_rank_with_crowd(self, server):
        status, body = _post(server.url + "/v1/rank", SCENARIO_REQUEST)
        assert status == 200
        assert body["status"] == "succeeded"

        # Mirror BatchExecutor._run_scenario exactly: one generator,
        # seeded with the job's seed, threads scenario + session.
        spec = SCENARIO_REQUEST["scenario"]
        rng = np.random.default_rng(SCENARIO_REQUEST["seed"])
        scenario = make_scenario(
            spec["n_objects"], spec["selection_ratio"],
            n_workers=spec["n_workers"],
            workers_per_task=spec["workers_per_task"],
            quality="gaussian", level=QualityLevel("medium"), rng=rng,
        )
        outcome = rank_with_crowd(
            scenario.ground_truth, scenario.pool,
            selection_ratio=spec["selection_ratio"],
            workers_per_task=spec["workers_per_task"],
            config=PipelineConfig(), rng=rng,
        )
        assert body["ranking"] == list(outcome.result.ranking.order)
        assert body["extras"]["accuracy"] == pytest.approx(outcome.accuracy)

    def test_votes_round_trip_is_deterministic(self, server):
        request = {
            "job_id": "e2e-votes",
            "seed": 3,
            "votes": {
                "n_objects": 4,
                "votes": [[0, 0, 1], [1, 0, 1], [0, 1, 2], [1, 1, 2],
                          [0, 2, 3], [1, 2, 3], [0, 0, 3], [1, 0, 3]],
            },
        }
        first_status, first = _post(server.url + "/v1/rank", request)
        assert first_status == 200
        assert sorted(first["ranking"]) == [0, 1, 2, 3]

        # The same work resubmitted under another id hits the cache and
        # returns the identical ranking.
        again = dict(request, job_id="other-id")
        second_status, second = _post(server.url + "/v1/rank", again)
        assert second_status == 200
        assert second["ranking"] == first["ranking"]
        assert second["from_cache"] is True
        assert second["attempts"] == 0

    def test_schema_and_job_id_are_optional(self, server):
        request = dict(SCENARIO_REQUEST)
        request.pop("job_id")
        status, body = _post(server.url + "/v1/rank", request)
        assert status == 200
        assert body["job_id"].startswith("req-")

    def test_malformed_json_is_400(self, server):
        status, body = _post(server.url + "/v1/rank", b"{not json")
        assert status == 400
        assert "invalid JSON" in body["error"]

    def test_bad_job_payload_is_400(self, server):
        status, body = _post(server.url + "/v1/rank",
                             {"job_id": "x", "seed": 1,
                              "config": {"unknown_knob": 1},
                              "scenario": {"n_objects": 5,
                                           "selection_ratio": 0.5}})
        assert status == 400
        assert "unknown config field" in body["error"]

    def test_non_object_body_is_400(self, server):
        status, body = _post(server.url + "/v1/rank", [1, 2, 3])
        assert status == 400

    def test_invalid_timeout_is_400(self, server):
        status, body = _post(server.url + "/v1/rank",
                             dict(SCENARIO_REQUEST, timeout=-1))
        assert status == 400
        assert "timeout" in body["error"]

    def test_failed_job_is_422(self, server, monkeypatch):
        def explode(self, job):
            raise ValueError("poisoned")

        monkeypatch.setattr(BatchExecutor, "_attempt", explode)
        status, body = _post(server.url + "/v1/rank", SCENARIO_REQUEST)
        assert status == 422
        assert body["status"] == "failed"
        assert "poisoned" in body["error"]

    def test_deadline_maps_to_504(self, server, monkeypatch):
        def crawl(self, job):
            time.sleep(5.0)

        monkeypatch.setattr(BatchExecutor, "_attempt", crawl)
        status, body = _post(server.url + "/v1/rank",
                             dict(SCENARIO_REQUEST, timeout=0.1))
        assert status == 504
        assert body["status"] == "timed_out"


class TestBatch:
    def test_batch_round_trip(self, server):
        jobs = [
            {"job_id": f"b{i}", "seed": i,
             "scenario": {"n_objects": 10, "selection_ratio": 0.5,
                          "n_workers": 8, "workers_per_task": 5}}
            for i in range(3)
        ]
        status, body = _post(server.url + "/v1/batch", {"jobs": jobs})
        assert status == 200
        assert body["succeeded"] == 3
        assert [r["job_id"] for r in body["results"]] == ["b0", "b1", "b2"]
        assert all(r["status"] == "succeeded" for r in body["results"])
        assert "timers" in body["metrics"]

    def test_bare_list_body_is_accepted(self, server):
        status, body = _post(server.url + "/v1/batch", [SCENARIO_REQUEST])
        assert status == 200
        assert body["succeeded"] == 1

    def test_empty_batch_is_400(self, server):
        status, body = _post(server.url + "/v1/batch", {"jobs": []})
        assert status == 400

    def test_bad_job_names_its_index(self, server):
        status, body = _post(server.url + "/v1/batch",
                             {"jobs": [SCENARIO_REQUEST, {"job_id": ""}]})
        assert status == 400
        assert "jobs[1]" in body["error"]


class TestLimits:
    def test_oversized_body_is_413(self, tmp_path):
        with RankingServer(ServerConfig(port=0, max_body_bytes=512,
                                        no_cache=True)) as server:
            status, body = _post(server.url + "/v1/rank",
                                 b"x" * 2048)
            assert status == 413
            assert "exceeds the limit" in body["error"]

    def test_oversized_batch_is_413(self, tmp_path):
        with RankingServer(ServerConfig(port=0, max_batch_jobs=2,
                                        no_cache=True)) as server:
            status, body = _post(server.url + "/v1/batch",
                                 {"jobs": [SCENARIO_REQUEST] * 3})
            assert status == 413
            assert "exceeds the limit" in body["error"]


def _raw_post(server, path, body, *, conn=None):
    """POST on a persistent connection; returns (connection, response,
    decoded body).  The response is fully read so the connection could
    be reused — whether it *may* be is what the tests assert via the
    ``Connection`` response header."""
    if conn is None:
        conn = http.client.HTTPConnection(server.host, server.port,
                                          timeout=30)
    conn.request("POST", path, body=body,
                 headers={"Content-Type": "application/json"})
    response = conn.getresponse()
    payload = json.loads(response.read())
    return conn, response, payload


class TestKeepAlive:
    """Errors sent before the body is read must close the connection,
    or the unread body desynchronizes keep-alive clients."""

    def test_post_to_unknown_path_closes_connection(self, server):
        body = json.dumps(SCENARIO_REQUEST).encode("utf-8")
        conn, response, payload = _raw_post(server, "/v1/nope", body)
        try:
            assert response.status == 404
            assert response.getheader("Connection") == "close"
        finally:
            conn.close()

    def test_saturated_rejection_closes_connection(self, monkeypatch):
        release = threading.Event()
        started = threading.Event()

        def blocked(self, job):
            started.set()
            assert release.wait(timeout=30)
            return (
                InferenceResult(ranking=Ranking([0, 1]), log_preference=0.0),
                {},
            )

        monkeypatch.setattr(BatchExecutor, "_attempt", blocked)
        with RankingServer(ServerConfig(port=0, workers=1, queue_depth=1,
                                        no_cache=True)) as server:
            background = threading.Thread(target=_post, args=(
                server.url + "/v1/rank",
                {"job_id": "slow", "seed": 1,
                 "votes": {"n_objects": 2, "votes": [[0, 0, 1]]}},
            ))
            background.start()
            try:
                assert started.wait(timeout=10)
                body = json.dumps(SCENARIO_REQUEST).encode("utf-8")
                conn, response, payload = _raw_post(server, "/v1/rank", body)
                try:
                    assert response.status == 429
                    assert response.getheader("Connection") == "close"
                finally:
                    conn.close()
            finally:
                release.set()
                background.join(timeout=30)

    def test_successful_posts_reuse_one_connection(self, server):
        body = json.dumps(SCENARIO_REQUEST).encode("utf-8")
        conn = None
        try:
            for _ in range(2):
                conn, response, payload = _raw_post(
                    server, "/v1/rank", body, conn=conn)
                assert response.status == 200
                assert response.getheader("Connection") != "close"
                assert payload["status"] == "succeeded"
        finally:
            if conn is not None:
                conn.close()

    def test_consumed_body_error_keeps_connection(self, server):
        # 400 for malformed JSON happens after the body left the
        # socket, so keep-alive is safe and must be preserved.
        conn, response, payload = _raw_post(server, "/v1/rank", b"{not json")
        try:
            assert response.status == 400
            assert response.getheader("Connection") != "close"
        finally:
            conn.close()


class TestExecutionSlots:
    """Batches must hold one execution slot per internal worker, so
    concurrent batch requests can never run more than ``config.workers``
    jobs in total."""

    @staticmethod
    def _recording_executor(recorded):
        class Recorder:
            def __init__(self, workers, **kwargs):
                recorded["workers"] = workers
                recorded["deadline"] = kwargs.get("deadline")

            def run(self, jobs):
                return BatchReport(results=())

        return Recorder

    def _jobs(self, server, count):
        return [server.decode_job(dict(SCENARIO_REQUEST, job_id=f"s{i}"))
                for i in range(count)]

    def test_batch_uses_full_width_when_slots_free(self, monkeypatch):
        from repro.server import app as app_module

        recorded = {}
        monkeypatch.setattr(app_module, "BatchExecutor",
                            self._recording_executor(recorded))
        server = RankingServer(ServerConfig(workers=3, no_cache=True))
        server.execute_batch(self._jobs(server, 5), timeout=None)
        assert recorded["workers"] == 3
        # Every slot was released afterwards.
        for _ in range(3):
            assert server._slots.acquire(blocking=False)

    def test_batch_narrows_to_free_slots(self, monkeypatch):
        from repro.server import app as app_module

        recorded = {}
        monkeypatch.setattr(app_module, "BatchExecutor",
                            self._recording_executor(recorded))
        server = RankingServer(ServerConfig(workers=3, no_cache=True))
        # Simulate another in-flight request holding one slot: the
        # batch must narrow to the remaining two instead of stacking
        # three more workers on top.
        assert server._slots.acquire(blocking=False)
        server.execute_batch(self._jobs(server, 5), timeout=None)
        assert recorded["workers"] == 2
        for _ in range(2):
            assert server._slots.acquire(blocking=False)
        assert not server._slots.acquire(blocking=False)

    def test_request_timeout_becomes_absolute_deadline(self, monkeypatch):
        from repro.server import app as app_module

        recorded = {}
        monkeypatch.setattr(app_module, "BatchExecutor",
                            self._recording_executor(recorded))
        server = RankingServer(ServerConfig(workers=2, no_cache=True))
        before = time.monotonic()
        server.execute_batch(self._jobs(server, 1), timeout=30.0)
        assert before + 29.0 < recorded["deadline"] <= \
            time.monotonic() + 30.0
        server.execute_batch(self._jobs(server, 1), timeout=None)
        assert recorded["deadline"] is None


class TestBackpressure:
    def test_saturated_queue_yields_429_never_a_hang(self, monkeypatch):
        release = threading.Event()
        started = threading.Event()

        def blocked(self, job):
            started.set()
            assert release.wait(timeout=30)
            return (
                InferenceResult(ranking=Ranking([0, 1]), log_preference=0.0),
                {},
            )

        monkeypatch.setattr(BatchExecutor, "_attempt", blocked)
        with RankingServer(ServerConfig(port=0, workers=1, queue_depth=1,
                                        no_cache=True)) as server:
            slow_result = {}

            def slow_request():
                slow_result["response"] = _post(
                    server.url + "/v1/rank",
                    {"job_id": "slow", "seed": 1,
                     "votes": {"n_objects": 2, "votes": [[0, 0, 1]]}},
                )

            thread = threading.Thread(target=slow_request)
            thread.start()
            assert started.wait(timeout=10)

            # The gate (capacity 1) is now full: the next request must
            # be rejected immediately with 429 + Retry-After.
            begin = time.monotonic()
            status, body = _post(server.url + "/v1/rank", SCENARIO_REQUEST)
            assert status == 429
            assert time.monotonic() - begin < 5.0
            assert "queue full" in body["error"]
            assert server.metrics.counter("http.rejected.saturated") == 1

            release.set()
            thread.join(timeout=30)
            status, body = slow_result["response"]
            assert status == 200

    def test_slot_wait_past_deadline_yields_503(self, monkeypatch):
        release = threading.Event()
        started = threading.Event()

        def blocked(self, job):
            started.set()
            assert release.wait(timeout=30)
            return (
                InferenceResult(ranking=Ranking([0, 1]), log_preference=0.0),
                {},
            )

        monkeypatch.setattr(BatchExecutor, "_attempt", blocked)
        try:
            # workers=1 but queue_depth=2: the second request is admitted
            # yet cannot get an execution slot before its deadline.
            with RankingServer(ServerConfig(port=0, workers=1, queue_depth=2,
                                            no_cache=True)) as server:
                background = threading.Thread(target=_post, args=(
                    server.url + "/v1/rank",
                    {"job_id": "slow", "seed": 1,
                     "votes": {"n_objects": 2, "votes": [[0, 0, 1]]}},
                ))
                background.start()
                assert started.wait(timeout=10)
                status, body = _post(server.url + "/v1/rank",
                                     dict(SCENARIO_REQUEST, timeout=0.2))
                assert status == 503
                release.set()
                background.join(timeout=30)
        finally:
            release.set()


class TestGracefulDrain:
    def test_stop_finishes_inflight_and_rejects_new_work(self, monkeypatch):
        release = threading.Event()
        started = threading.Event()

        def blocked(self, job):
            started.set()
            assert release.wait(timeout=30)
            return (
                InferenceResult(ranking=Ranking([0, 1]), log_preference=0.0),
                {},
            )

        monkeypatch.setattr(BatchExecutor, "_attempt", blocked)
        server = RankingServer(ServerConfig(port=0, workers=1, queue_depth=4,
                                            no_cache=True))
        server.start()
        inflight = {}

        def slow_request():
            inflight["response"] = _post(
                server.url + "/v1/rank",
                {"job_id": "slow", "seed": 1,
                 "votes": {"n_objects": 2, "votes": [[0, 0, 1]]}},
            )

        request_thread = threading.Thread(target=slow_request)
        request_thread.start()
        assert started.wait(timeout=10)

        stop_outcome = {}
        stop_thread = threading.Thread(
            target=lambda: stop_outcome.update(
                drained=server.stop(drain_timeout=30)
            )
        )
        stop_thread.start()

        # Draining: readiness flips and new work is refused with 503.
        deadline = time.monotonic() + 10
        while server.ready and time.monotonic() < deadline:
            time.sleep(0.01)
        assert not server.ready
        status, body = _get(server.url + "/readyz")
        assert status == 503
        status, body = _post(server.url + "/v1/rank", SCENARIO_REQUEST)
        assert status == 503
        assert "draining" in body["error"]

        # The in-flight request still completes, then stop() returns.
        release.set()
        request_thread.join(timeout=30)
        stop_thread.join(timeout=30)
        assert stop_outcome["drained"] is True
        assert inflight["response"][0] == 200

    def test_stop_is_idempotent(self):
        server = RankingServer(ServerConfig(port=0, no_cache=True))
        server.start()
        assert server.stop() is True
        assert server.stop() is True

    def test_stop_before_start_returns_promptly(self):
        # shutdown() handshakes with serve_forever(); a never-started
        # server must not wait on that handshake forever.
        server = RankingServer(ServerConfig(port=0, no_cache=True))
        assert server.stop(drain_timeout=0.1) is True
        assert server.stop() is True  # and stays idempotent


def _metrics_containing(server, needle, deadline=5.0):
    """Scrape /metrics until ``needle`` appears (or the deadline passes).

    A request's counters/timer are observed *after* its response bytes
    leave the socket, so an immediate scrape can race the tail of the
    handler — normal eventual-visibility for a Prometheus endpoint, but
    a flake for an exact assertion on a loaded box.
    """
    end = time.monotonic() + deadline
    while True:
        status, text = _get(server.url + "/metrics")
        assert status == 200
        if needle in text or time.monotonic() >= end:
            return text
        time.sleep(0.02)


class TestMetricsEndpoint:
    def test_prometheus_exposition(self, server):
        _post(server.url + "/v1/rank", SCENARIO_REQUEST)
        text = _metrics_containing(
            server, 'repro_http_request_seconds{quantile="0.95"}'
        )
        assert isinstance(text, str)
        assert "# TYPE repro_jobs_succeeded_total counter" in text
        assert "repro_jobs_succeeded_total 1" in text
        # p95 latency present as a summary quantile.
        assert 'repro_job_seconds{quantile="0.95"}' in text
        assert 'repro_http_request_seconds{quantile="0.95"}' in text
        assert "repro_job_seconds_count" in text
        # Server gauges.
        assert "repro_server_queue_capacity 4.0" in text
        assert "repro_server_draining 0.0" in text

    def test_http_counters_accumulate(self, server):
        for _ in range(3):
            _get(server.url + "/healthz")
        text = _metrics_containing(server, "repro_http_requests_healthz_total 3")
        assert "repro_http_requests_healthz_total 3" in text


class TestAdmissionGate:
    def test_capacity_enforced(self):
        gate = AdmissionGate(2)
        assert gate.try_acquire()
        assert gate.try_acquire()
        assert not gate.try_acquire()
        gate.release()
        assert gate.try_acquire()

    def test_release_without_acquire_rejected(self):
        with pytest.raises(ConfigurationError):
            AdmissionGate(1).release()

    def test_wait_idle(self):
        gate = AdmissionGate(1)
        assert gate.wait_idle(timeout=0.1)
        gate.try_acquire()
        assert not gate.wait_idle(timeout=0.05)
        gate.release()
        assert gate.wait_idle(timeout=1.0)

    def test_bad_capacity_rejected(self):
        with pytest.raises(ConfigurationError):
            AdmissionGate(0)


class TestServerConfigValidation:
    @pytest.mark.parametrize("kwargs", [
        {"workers": 0},
        {"queue_depth": 0},
        {"max_body_bytes": 0},
        {"default_timeout": -1.0},
        {"max_timeout": 0.0},
        {"max_batch_jobs": 0},
        {"drain_grace": 0.0},
    ])
    def test_invalid_config_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            ServerConfig(**kwargs)

    def test_status_enum_covers_http_mapping(self):
        from repro.server.app import _STATUS_CODES

        assert set(_STATUS_CODES) == set(JobStatus)
