"""Unit tests for repro.workers.behaviors (structured misbehaviour)."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.types import Ranking
from repro.workers import (
    AdversarialWorker,
    LazyWorker,
    SleepyWorker,
    SpammerWorker,
    WorkerPool,
)


@pytest.fixture
def truth():
    return Ranking([0, 1, 2, 3, 4])


def fresh(worker_cls, **kwargs):
    return worker_cls(worker_id=0, rng=np.random.default_rng(5), **kwargs)


class TestSpammer:
    def test_votes_are_coin_flips(self, truth):
        worker = fresh(SpammerWorker)
        winners = [worker.vote(0, 4, truth).winner for _ in range(400)]
        share = winners.count(0) / len(winners)
        assert 0.4 < share < 0.6

    def test_carries_worker_id(self, truth):
        worker = SpammerWorker(worker_id=9, rng=np.random.default_rng(1))
        assert worker.vote(0, 1, truth).worker == 9


class TestAdversarial:
    def test_mostly_inverts(self, truth):
        worker = fresh(AdversarialWorker, flip_rate=0.95)
        winners = [worker.vote(0, 4, truth).winner for _ in range(400)]
        assert winners.count(4) / len(winners) > 0.85

    def test_perfect_inverter(self, truth):
        worker = fresh(AdversarialWorker, flip_rate=1.0)
        assert all(
            worker.vote(0, 4, truth).winner == 4 for _ in range(50)
        )

    def test_flip_rate_validated(self):
        with pytest.raises(ConfigurationError):
            fresh(AdversarialWorker, flip_rate=0.3)


class TestLazy:
    def test_always_picks_first_presented(self, truth):
        worker = fresh(LazyWorker)
        assert worker.vote(3, 1, truth).winner == 3
        assert worker.vote(1, 3, truth).winner == 1


class TestSleepy:
    def test_zero_lapse_is_honest(self, truth):
        worker = fresh(SleepyWorker, sigma=0.0, lapse=0.0)
        assert all(worker.vote(0, 4, truth).winner == 0 for _ in range(50))

    def test_high_lapse_adds_errors(self, truth):
        worker = fresh(SleepyWorker, sigma=0.0, lapse=0.9)
        winners = [worker.vote(0, 4, truth).winner for _ in range(400)]
        share_wrong = winners.count(4) / len(winners)
        assert 0.3 < share_wrong < 0.6  # ~ lapse/2

    def test_lapse_validated(self):
        with pytest.raises(ConfigurationError):
            fresh(SleepyWorker, lapse=1.0)


class TestPoolIntegration:
    def test_mixed_behavioural_pool(self, truth):
        rng = np.random.default_rng(2)
        workers = [
            SleepyWorker(worker_id=0, sigma=0.05, lapse=0.1, rng=rng),
            SpammerWorker(worker_id=1, rng=rng),
            AdversarialWorker(worker_id=2, rng=rng),
            LazyWorker(worker_id=3, rng=rng),
        ]
        pool = WorkerPool(workers)
        votes = [pool[k].vote(0, 1, truth) for k in range(4)]
        assert [v.worker for v in votes] == [0, 1, 2, 3]
