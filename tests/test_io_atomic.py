"""Torn-write regression tests for :mod:`repro.io`.

``save_result`` historically wrote spill files with a bare
``Path.write_text``, so a concurrent reader could observe a truncated
file mid-write — and the cache's corrupt-drop path would then *delete*
an entry a writer had just finished.  These tests hammer a single spill
path with concurrent writer and reader threads and assert the atomic
write contract: every read decodes (no ``DataFormatError``), every
decoded value is one of the values actually written (no interleaving),
and the final file is intact (no lost entries).
"""

import json
import threading

import pytest

from repro.exceptions import ConfigurationError, DataFormatError
from repro.io import (
    atomic_write_text,
    load_payload,
    load_result,
    save_payload,
    save_result,
)
from repro.types import InferenceResult, Ranking


def _result(order, tag):
    return InferenceResult(ranking=Ranking(order), log_preference=-1.0,
                           metadata={"tag": tag})


class TestAtomicWriteText:
    def test_writes_content(self, tmp_path):
        path = tmp_path / "out.txt"
        atomic_write_text(path, "hello\n")
        assert path.read_text() == "hello\n"

    def test_overwrites_existing(self, tmp_path):
        path = tmp_path / "out.txt"
        path.write_text("old")
        atomic_write_text(path, "new")
        assert path.read_text() == "new"

    def test_leaves_no_temp_files(self, tmp_path):
        path = tmp_path / "out.txt"
        for index in range(5):
            atomic_write_text(path, f"gen {index}")
        assert [p.name for p in tmp_path.iterdir()] == ["out.txt"]

    def test_failed_write_leaves_target_untouched(self, tmp_path):
        path = tmp_path / "out.txt"
        path.write_text("intact")
        with pytest.raises(TypeError):
            atomic_write_text(path, object())  # not writable as text
        assert path.read_text() == "intact"
        assert [p.name for p in tmp_path.iterdir()] == ["out.txt"]


class TestConcurrentSpillPath:
    def test_writer_reader_hammer_no_torn_reads(self, tmp_path):
        """One spill path, concurrent writers and readers: readers must
        never see a truncated/interleaved file and the final entry must
        survive (no lost writes)."""
        path = tmp_path / "spill.json"
        candidates = {
            "a": _result([0, 1, 2], "a"),
            "b": _result([2, 1, 0], "b"),
        }
        save_result(candidates["a"], path)

        stop = threading.Event()
        errors = []

        def writer(tag):
            while not stop.is_set():
                try:
                    save_result(candidates[tag], path)
                except Exception as error:  # noqa: BLE001 — reported below
                    errors.append(error)
                    return

        def reader():
            while not stop.is_set():
                try:
                    seen = load_result(path)
                except DataFormatError as error:
                    errors.append(error)
                    return
                tag = seen.metadata["tag"]
                if tag not in candidates or \
                        seen.ranking != candidates[tag].ranking:
                    errors.append(AssertionError(f"interleaved read: {tag}"))
                    return

        threads = [threading.Thread(target=writer, args=("a",)),
                   threading.Thread(target=writer, args=("b",))]
        threads += [threading.Thread(target=reader) for _ in range(3)]
        for thread in threads:
            thread.start()
        # Let the hammer run long enough for many write/read overlaps.
        threading.Event().wait(1.0)
        stop.set()
        for thread in threads:
            thread.join(timeout=10.0)
        assert not errors, f"torn spill observed: {errors[:3]}"
        final = load_result(path)  # the entry was never lost
        assert final.metadata["tag"] in candidates
        assert sorted(p.name for p in tmp_path.iterdir()) == ["spill.json"]

    def test_payload_writes_are_atomic_too(self, tmp_path):
        path = tmp_path / "snapshot.json"
        schema = "repro.test_payload/1"
        save_payload({"schema": schema, "value": 1}, path)

        stop = threading.Event()
        errors = []

        def writer(value):
            while not stop.is_set():
                save_payload({"schema": schema, "value": value}, path)

        def reader():
            while not stop.is_set():
                try:
                    payload = load_payload(path, schema)
                except DataFormatError as error:
                    errors.append(error)
                    return
                if payload["value"] not in (1, 2):
                    errors.append(AssertionError(payload))
                    return

        threads = [threading.Thread(target=writer, args=(2,)),
                   threading.Thread(target=reader)]
        for thread in threads:
            thread.start()
        threading.Event().wait(0.5)
        stop.set()
        for thread in threads:
            thread.join(timeout=10.0)
        assert not errors
        assert json.loads(path.read_text())["schema"] == schema

    def test_save_payload_still_validates_schema(self, tmp_path):
        with pytest.raises(ConfigurationError):
            save_payload({"no": "schema"}, tmp_path / "x.json")
