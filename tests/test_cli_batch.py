"""End-to-end tests for the ``repro batch`` CLI command."""

import io
import json

import pytest

from repro.cli import main
from repro.config import PipelineConfig, PropagationConfig, SAPSConfig
from repro.service import RankingJob, ScenarioSpec, job_to_payload

QUICK = PipelineConfig(
    saps=SAPSConfig(iterations=400, restarts=1),
    propagation=PropagationConfig(max_hops=4, method="walks"),
)


def write_jobs(path, count=8, poison=False):
    lines = []
    for i in range(count):
        job = RankingJob(
            job_id=f"sim-{i}",
            scenario=ScenarioSpec(8, 0.6, n_workers=6, workers_per_task=3),
            config=QUICK,
            seed=i,
        )
        lines.append(json.dumps(job_to_payload(job)))
    if poison:
        lines.append(json.dumps({
            "schema": "repro.job/1", "job_id": "poison",
            "votes": {"n_objects": 4, "votes": []}, "seed": 99,
        }))
    path.write_text("\n".join(lines) + "\n")
    return path


@pytest.fixture
def jobs_file(tmp_path):
    return write_jobs(tmp_path / "jobs.jsonl")


class TestBatchCommand:
    def test_clean_batch_exits_zero(self, jobs_file, capsys):
        assert main(["batch", str(jobs_file), "--workers", "2"]) == 0
        captured = capsys.readouterr()
        lines = [json.loads(l) for l in captured.out.splitlines()]
        assert len(lines) == 8
        assert all(l["schema"] == "repro.job_result/1" for l in lines)
        assert all(l["status"] == "succeeded" for l in lines)
        assert "batch: 8 jobs" in captured.err

    def test_poisoned_batch_survives_and_exits_one(self, tmp_path, capsys):
        jobs = write_jobs(tmp_path / "jobs.jsonl", count=8, poison=True)
        assert main(["batch", str(jobs), "--workers", "4"]) == 1
        lines = [json.loads(l) for l in capsys.readouterr().out.splitlines()]
        assert len(lines) == 9
        by_id = {l["job_id"]: l for l in lines}
        assert by_id["poison"]["status"] == "failed"
        assert sum(l["status"] == "succeeded" for l in lines) == 8

    def test_json_metrics_trailer(self, jobs_file, capsys):
        assert main(["batch", str(jobs_file), "--workers", "2",
                     "--json"]) == 0
        lines = capsys.readouterr().out.splitlines()
        trailer = json.loads(lines[-1])
        assert trailer["schema"] == "repro.batch_metrics/1"
        assert trailer["counters"]["jobs.succeeded"] == 8
        assert trailer["timers"]["job.seconds"]["count"] == 8

    def test_out_file(self, jobs_file, tmp_path, capsys):
        out = tmp_path / "results.jsonl"
        assert main(["batch", str(jobs_file), "--workers", "2",
                     "--out", str(out)]) == 0
        assert capsys.readouterr().out == ""
        assert len(out.read_text().splitlines()) == 8

    def test_cache_dir_warms_across_invocations(self, jobs_file, tmp_path,
                                                capsys):
        cache_dir = tmp_path / "cache"
        assert main(["batch", str(jobs_file), "--cache-dir",
                     str(cache_dir), "--json"]) == 0
        first = json.loads(capsys.readouterr().out.splitlines()[-1])
        assert "cache_hit_rate" not in first.get("derived", {}) or \
               first["derived"]["cache_hit_rate"] == 0.0
        # Second, fresh invocation: served from the persisted cache.
        assert main(["batch", str(jobs_file), "--cache-dir",
                     str(cache_dir), "--json"]) == 0
        lines = capsys.readouterr().out.splitlines()
        trailer = json.loads(lines[-1])
        assert trailer["derived"]["cache_hit_rate"] == 1.0
        results = [json.loads(l) for l in lines[:-1]]
        assert all(r["from_cache"] for r in results)

    def test_stdin_jobs(self, jobs_file, capsys, monkeypatch):
        monkeypatch.setattr("sys.stdin", io.StringIO(jobs_file.read_text()))
        assert main(["batch", "-", "--workers", "2"]) == 0
        assert len(capsys.readouterr().out.splitlines()) == 8

    def test_malformed_jobs_file_reports_error(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"schema": "wrong/1"}\n')
        assert main(["batch", str(bad)]) == 2
        assert "error:" in capsys.readouterr().err

    def test_missing_jobs_file_reports_error(self, tmp_path, capsys):
        assert main(["batch", str(tmp_path / "absent.jsonl")]) == 2
        assert "error:" in capsys.readouterr().err

    def test_no_cache_flag(self, tmp_path, capsys):
        jobs = write_jobs(tmp_path / "jobs.jsonl", count=2)
        assert main(["batch", str(jobs), "--no-cache", "--json"]) == 0
        trailer = json.loads(capsys.readouterr().out.splitlines()[-1])
        assert "cache.misses" not in trailer["counters"]
