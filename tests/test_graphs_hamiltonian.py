"""Unit tests for repro.graphs.hamiltonian."""

import math

import numpy as np
import pytest

from repro.exceptions import GraphError, InferenceError
from repro.graphs import WeightedDigraph
from repro.graphs.hamiltonian import (
    best_hamiltonian_path_dp,
    greedy_hamiltonian_path,
    has_hamiltonian_path,
    hamiltonian_path_log_probability,
    path_log_preference,
    weight_difference_order,
)
from repro.types import Ranking


def complete_graph(weights):
    n = weights.shape[0]
    graph = WeightedDigraph(n)
    for i in range(n):
        for j in range(n):
            if i != j and weights[i, j] > 0:
                graph.add_edge(i, j, weights[i, j])
    return graph


@pytest.fixture
def sharp_graph():
    """Complete 4-vertex graph strongly favouring the order 0,1,2,3."""
    n = 4
    weights = np.full((n, n), 0.1)
    for i in range(n):
        for j in range(n):
            if i < j:
                weights[i, j] = 0.9
    np.fill_diagonal(weights, 0.0)
    return complete_graph(weights)


class TestPathLogPreference:
    def test_product_in_log_space(self, sharp_graph):
        log_pref = path_log_preference(sharp_graph, [0, 1, 2, 3])
        assert log_pref == pytest.approx(3 * math.log(0.9))

    def test_missing_edge_gives_neg_inf(self):
        graph = WeightedDigraph(3)
        graph.add_edge(0, 1, 0.5)
        assert path_log_preference(graph, [0, 1, 2]) == float("-inf")

    def test_ranking_wrapper_checks_size(self, sharp_graph):
        with pytest.raises(GraphError):
            hamiltonian_path_log_probability(sharp_graph, Ranking([0, 1]))

    def test_ranking_wrapper_value(self, sharp_graph):
        value = hamiltonian_path_log_probability(sharp_graph, Ranking([0, 1, 2, 3]))
        assert value == pytest.approx(3 * math.log(0.9))


class TestHasHamiltonianPath:
    def test_complete_graph_shortcut(self, sharp_graph):
        assert has_hamiltonian_path(sharp_graph)

    def test_theorem_4_3_two_in_nodes(self):
        """Two in-nodes -> no HP (Theorem 4.3)."""
        graph = WeightedDigraph(4)
        graph.add_edge(0, 2, 1.0)
        graph.add_edge(1, 2, 1.0)
        graph.add_edge(0, 3, 1.0)
        graph.add_edge(1, 3, 1.0)
        assert not has_hamiltonian_path(graph)

    def test_chain_has_hp(self):
        graph = WeightedDigraph(4)
        for i in range(3):
            graph.add_edge(i, i + 1, 0.5)
        assert has_hamiltonian_path(graph)

    def test_single_vertex(self):
        assert has_hamiltonian_path(WeightedDigraph(1))

    def test_dp_negative_case(self):
        """A 'Y' shape: one in-node fed by a path plus a dangling source.

        in/out-node counts alone don't decide it; the DP must."""
        graph = WeightedDigraph(4)
        graph.add_edge(0, 1, 0.5)
        graph.add_edge(1, 0, 0.5)
        graph.add_edge(2, 3, 0.5)
        graph.add_edge(3, 2, 0.5)
        assert not has_hamiltonian_path(graph)

    def test_size_guard(self):
        graph = WeightedDigraph(25)
        for i in range(24):
            graph.add_edge(i, i + 1, 0.5)
            graph.add_edge(i + 1, i, 0.5)
        with pytest.raises(GraphError):
            has_hamiltonian_path(graph)


class TestBestHamiltonianPathDP:
    def test_finds_sharp_optimum(self, sharp_graph):
        assert best_hamiltonian_path_dp(sharp_graph) == Ranking([0, 1, 2, 3])

    def test_matches_brute_force(self):
        rng = np.random.default_rng(5)
        n = 5
        weights = rng.uniform(0.1, 0.9, size=(n, n))
        np.fill_diagonal(weights, 0.0)
        graph = complete_graph(weights)
        best = best_hamiltonian_path_dp(graph)

        import itertools

        def brute():
            top, top_path = -math.inf, None
            for perm in itertools.permutations(range(n)):
                value = path_log_preference(graph, perm)
                if value > top:
                    top, top_path = value, perm
            return top_path, top

        brute_path, brute_value = brute()
        assert hamiltonian_path_log_probability(graph, best) == pytest.approx(
            brute_value
        )

    def test_no_hp_raises(self):
        graph = WeightedDigraph(3)
        graph.add_edge(0, 1, 0.5)  # vertex 2 unreachable
        with pytest.raises(InferenceError):
            best_hamiltonian_path_dp(graph)

    def test_single_vertex(self):
        assert best_hamiltonian_path_dp(WeightedDigraph(1)) == Ranking([0])


class TestGreedyPath:
    def test_follows_heaviest_edges(self, sharp_graph):
        assert greedy_hamiltonian_path(sharp_graph, 0) == [0, 1, 2, 3]

    def test_dead_end_returns_none(self):
        graph = WeightedDigraph(3)
        graph.add_edge(0, 1, 0.9)
        assert greedy_hamiltonian_path(graph, 0) is None


class TestWeightDifferenceOrder:
    def test_winner_floats_to_front(self, sharp_graph):
        assert weight_difference_order(sharp_graph) == [0, 1, 2, 3]
