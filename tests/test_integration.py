"""Integration tests: full-system behaviours across modules.

These assert the *paper-level* behaviours — the claims the evaluation
section makes — on scaled-down instances.
"""

import numpy as np
import pytest

from repro import FAST_PIPELINE, PipelineConfig, rank_with_crowd
from repro.config import PropagationConfig, SAPSConfig
from repro.datasets import make_image_study, make_scenario
from repro.experiments import run_baseline_arm, run_pipeline_arm
from repro.experiments.runner import collect_votes
from repro.inference import infer_ranking
from repro.inference.taps import branch_and_bound_search, taps_search
from repro.inference.propagation import propagate_matrix
from repro.inference.smoothing import smooth_preferences
from repro.graphs import PreferenceGraph
from repro.truth import discover_truth
from repro.metrics import ranking_accuracy
from repro.types import Ranking
from repro.workers import QualityLevel, WorkerPool, gaussian_preset, uniform_preset


class TestAccuracyClaims:
    """Fig. 5-style claims at laptop scale."""

    def test_accuracy_grows_with_selection_ratio(self):
        """More budget -> better ranking (Fig. 5, right).

        Averaged over three seeds: a single arm's accuracy has a
        ~±0.05 noise band at this size, so one lucky low-budget draw
        must not fail the monotonicity claim.
        """
        accuracies = {0.15: 0.0, 0.6: 0.0}
        seeds = (1, 2, 3)
        for ratio in accuracies:
            for seed in seeds:
                scenario = make_scenario(40, ratio, n_workers=30,
                                         workers_per_task=5, rng=seed)
                record = run_pipeline_arm(scenario, FAST_PIPELINE, rng=seed)
                accuracies[ratio] += record.accuracy / len(seeds)
        assert accuracies[0.6] > accuracies[0.15] - 0.02

    def test_small_budget_still_accurate(self):
        """r = 0.1 at n = 100 must stay in the paper's [0.86, ...] band."""
        scenario = make_scenario(100, 0.1, n_workers=30, workers_per_task=5,
                                 rng=52)
        record = run_pipeline_arm(scenario, PipelineConfig(), rng=52)
        assert record.accuracy >= 0.85

    def test_gaussian_beats_uniform_quality(self):
        """Fig. 5's observation at medium quality."""
        results = {}
        for quality in ("gaussian", "uniform"):
            scenario = make_scenario(60, 0.2, n_workers=30,
                                     workers_per_task=5, quality=quality,
                                     rng=53)
            results[quality] = run_pipeline_arm(scenario, PipelineConfig(),
                                                rng=53).accuracy
        assert results["gaussian"] >= results["uniform"] - 0.02

    def test_better_workers_better_ranking(self):
        """Fig. 6's fourth observation."""
        results = {}
        for level in (QualityLevel.HIGH, QualityLevel.LOW):
            scenario = make_scenario(40, 0.3, n_workers=30,
                                     workers_per_task=5, level=level, rng=54)
            results[level] = run_pipeline_arm(scenario, FAST_PIPELINE,
                                              rng=54).accuracy
        assert results[QualityLevel.HIGH] > results[QualityLevel.LOW]


class TestBaselineComparison:
    """Table-I-style claims at laptop scale."""

    @pytest.fixture(scope="class")
    def arms(self):
        scenario = make_scenario(40, 0.5, n_workers=25, workers_per_task=5,
                                 rng=55)
        votes = collect_votes(scenario, rng=55)
        ours = run_pipeline_arm(scenario, FAST_PIPELINE, rng=55, votes=votes)
        baselines = {
            name: run_baseline_arm(scenario, name, rng=55, votes=votes)
            for name in ("rc", "qs")
        }
        return ours, baselines

    def test_saps_beats_rc_and_qs(self, arms):
        """The decisive gaps of Table I appear at n >= 100 (see the
        Table-1 benchmark); at this scale we assert the strict ordering
        with a modest margin."""
        ours, baselines = arms
        assert ours.accuracy > baselines["rc"].accuracy + 0.05
        assert ours.accuracy > baselines["qs"].accuracy + 0.05

    def test_saps_accuracy_above_086(self, arms):
        ours, _ = arms
        assert ours.accuracy > 0.86


class TestExactVsHeuristic:
    """Sec. VI-D: SAPS matches the exact search on small instances."""

    def test_saps_matches_taps_on_study(self):
        study = make_image_study(7, rng=56)
        pairs = [(i, j) for i in range(7) for j in range(i + 1, 7)]
        votes = study.collect_votes(pairs, n_workers=25, rng=56)
        truth_result = discover_truth(votes)
        graph = PreferenceGraph.from_direct_preferences(
            7, truth_result.preferences
        )
        smoothing = smooth_preferences(graph, votes,
                                       truth_result.worker_quality)
        closure = propagate_matrix(smoothing.graph,
                                   PropagationConfig(max_hops=5))
        taps_paths, taps_prob = taps_search(closure)
        saps_config = SAPSConfig(iterations=4000, restarts=3)
        from repro.inference.saps import saps_search

        saps_ranking, saps_log = saps_search(closure, saps_config, rng=56)
        assert np.exp(saps_log) == pytest.approx(taps_prob, rel=0.05)

    def test_branch_and_bound_cross_checks_taps(self):
        study = make_image_study(6, rng=57)
        pairs = [(i, j) for i in range(6) for j in range(i + 1, 6)]
        votes = study.collect_votes(pairs, n_workers=20, rng=57)
        result = infer_ranking(
            votes,
            PipelineConfig(search="taps",
                           propagation=PropagationConfig(max_hops=4)),
            rng=57,
        )
        result_bnb = infer_ranking(
            votes,
            PipelineConfig(search="branch_and_bound",
                           propagation=PropagationConfig(max_hops=4)),
            rng=57,
        )
        assert result.log_preference == pytest.approx(
            result_bnb.log_preference
        )


class TestNonInteractiveContract:
    def test_single_round_end_to_end(self):
        """The facade performs exactly one crowdsourcing round and the
        platform is closed afterwards."""
        truth = Ranking.random(12, rng=58)
        pool = WorkerPool.from_distribution(
            10, gaussian_preset(QualityLevel.MEDIUM), rng=58
        )
        outcome = rank_with_crowd(truth, pool, selection_ratio=0.5,
                                  workers_per_task=4, config=FAST_PIPELINE,
                                  rng=58)
        close_events = outcome.run.events.of_kind("close")
        assert len(close_events) == 1
        assert outcome.run.ledger.spent <= outcome.plan.budget.total + 1e-9
