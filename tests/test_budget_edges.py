"""Edge-regime tests for the budget planner/optimizer and the
acquisition ledger: zero remaining budget, single-pair universes, and
budgets smaller than one round's batch."""

import numpy as np
import pytest

from repro.acquisition import AcquisitionPolicy, BudgetLedger
from repro.budget import (
    BudgetModel,
    BudgetPlan,
    minimal_selection_ratio,
    plan_for_budget,
    plan_for_selection_ratio,
)
from repro.config import FAST_PIPELINE
from repro.datasets import make_scenario
from repro.exceptions import BudgetError, ConfigurationError


class TestZeroBudget:
    def test_zero_budget_affords_nothing(self):
        model = BudgetModel(total=0.0, workers_per_task=3)
        assert model.affordable_comparisons() == 0
        assert model.can_afford(0)
        assert not model.can_afford(1)

    def test_zero_budget_cannot_plan(self):
        model = BudgetModel(total=0.0, workers_per_task=3)
        with pytest.raises(BudgetError):
            plan_for_budget(5, model)

    def test_negative_budget_rejected(self):
        with pytest.raises(BudgetError):
            BudgetModel(total=-1.0, workers_per_task=1)

    def test_exhausted_ledger_yields_empty_batches(self):
        ledger = BudgetLedger.from_model(
            BudgetModel(total=0.0, workers_per_task=2)
        )
        policy = AcquisitionPolicy(4, "uncertainty", ledger)
        assert policy.suggest() == []
        assert policy.should_stop()


class TestSinglePairUniverse:
    """n=2: the spanning minimum, the maximum and the only pair agree."""

    def test_plan_resolves_to_the_single_pair(self):
        model = BudgetModel(total=1.0, workers_per_task=2, reward=0.025)
        plan = plan_for_budget(2, model)
        assert plan.n_comparisons == 1
        assert plan.selection_ratio == 1.0
        assert plan.total_votes == 2

    def test_ratio_planning_clips_to_the_single_pair(self):
        plan = plan_for_selection_ratio(2, 0.5, workers_per_task=3)
        assert plan.n_comparisons == 1

    def test_plan_outside_feasible_range_rejected(self):
        model = BudgetModel(total=10.0, workers_per_task=1)
        with pytest.raises(BudgetError):
            BudgetPlan(n_objects=2, n_comparisons=2, budget=model)
        with pytest.raises(BudgetError):
            BudgetPlan(n_objects=2, n_comparisons=0, budget=model)

    def test_policy_suggests_the_only_pair(self):
        policy = AcquisitionPolicy(2, "bdp")
        assert policy.suggest(5) == [(0, 1)]


class TestSubBatchBudget:
    """Budgets smaller than one round's batch must degrade gracefully."""

    def test_ledger_clips_the_final_batch(self):
        ledger = BudgetLedger(5, batch_size=8)
        assert ledger.next_batch() == 5
        ledger.charge(5)
        assert ledger.next_batch() == 0

    def test_batch_smaller_than_redundancy_stops(self):
        # 3 votes left but every query needs 4 answers: unaffordable.
        ledger = BudgetLedger(3, batch_size=8)
        policy = AcquisitionPolicy(6, "uncertainty", ledger,
                                   workers_per_query=4)
        assert policy.suggest() == []
        assert policy.should_stop()

    def test_budget_below_spanning_minimum_cannot_plan(self):
        # Affords 3 comparisons; a connected plan over 10 needs 9.
        model = BudgetModel(total=3 * 0.025, workers_per_task=1)
        with pytest.raises(BudgetError):
            plan_for_budget(10, model)

    def test_affordable_comparisons_floor_behaviour(self):
        model = BudgetModel(total=0.049, workers_per_task=1, reward=0.025)
        assert model.affordable_comparisons() == 1
        exact = BudgetModel(total=0.05, workers_per_task=1, reward=0.025)
        assert exact.affordable_comparisons() == 2


class TestOptimizerEdges:
    def test_rejects_out_of_range_target(self):
        def factory(ratio, rng):  # pragma: no cover - never reached
            raise AssertionError

        for bad in (0.5, 1.0, 1.2):
            with pytest.raises(ConfigurationError):
                minimal_selection_ratio(factory, bad)

    def test_unreachable_target_raises(self):
        def factory(ratio, rng):
            # Coin-flip workers: accuracy stays near 0.5 at any ratio.
            return make_scenario(8, ratio, n_workers=4,
                                 workers_per_task=1, level="low", rng=3)

        with pytest.raises(ConfigurationError):
            minimal_selection_ratio(
                factory, 0.99, repeats=1, max_probes=3,
                config=FAST_PIPELINE, rng=0,
            )

    def test_finds_ratio_on_easy_instance(self):
        def factory(ratio, rng):
            return make_scenario(8, ratio, n_workers=6,
                                 workers_per_task=3, level="high", rng=1)

        result = minimal_selection_ratio(
            factory, 0.6, repeats=1, max_probes=5,
            config=FAST_PIPELINE, rng=0,
        )
        assert 0.0 < result.selection_ratio <= 1.0
        assert result.accuracy >= 0.6
        assert result.probes
        max_pairs = 8 * 7 // 2
        assert 7 <= result.n_comparisons <= max_pairs
