"""Unit tests for repro.budget.optimizer (minimal-budget search)."""

import pytest

from repro.budget import minimal_selection_ratio
from repro.config import FAST_PIPELINE
from repro.datasets import make_scenario
from repro.exceptions import ConfigurationError
from repro.workers import QualityLevel


def factory(n=25, level=QualityLevel.HIGH):
    """A scenario factory with fixed truth/pool per ratio probe."""

    def build(ratio, rng):
        return make_scenario(
            n, ratio, n_workers=20, workers_per_task=4, level=level, rng=77
        )

    return build


class TestMinimalSelectionRatio:
    def test_finds_ratio_below_full(self):
        result = minimal_selection_ratio(
            factory(), target_accuracy=0.85, repeats=1,
            config=FAST_PIPELINE, rng=1,
        )
        assert result.selection_ratio < 1.0
        assert result.accuracy >= 0.85
        assert result.n_comparisons >= 24  # spanning floor n-1

    def test_probes_recorded(self):
        result = minimal_selection_ratio(
            factory(), target_accuracy=0.85, repeats=1,
            config=FAST_PIPELINE, rng=2,
        )
        assert 1.0 in result.probes
        assert len(result.probes) >= 2

    def test_unreachable_target_rejected(self):
        """Low-quality workers cannot hit 0.995."""
        result_factory = factory(level=QualityLevel.LOW)
        with pytest.raises(ConfigurationError):
            minimal_selection_ratio(
                result_factory, target_accuracy=0.995, repeats=1,
                config=FAST_PIPELINE, rng=3,
            )

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            minimal_selection_ratio(factory(), target_accuracy=0.4)
        with pytest.raises(ConfigurationError):
            minimal_selection_ratio(factory(), target_accuracy=0.9,
                                    repeats=0)

    def test_easy_target_met_at_spanning_floor(self):
        """High-quality workers hit a modest target at tiny budgets."""
        result = minimal_selection_ratio(
            factory(), target_accuracy=0.75, repeats=1,
            config=FAST_PIPELINE, rng=4,
        )
        assert result.selection_ratio <= 0.5
