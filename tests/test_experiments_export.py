"""Unit tests for repro.experiments.export."""

import json

import pytest

from repro.exceptions import DataFormatError
from repro.experiments import (
    export_records_csv,
    export_records_json,
    load_records_csv,
)
from repro.experiments.runner import ExperimentRecord


@pytest.fixture
def records():
    return [
        ExperimentRecord("saps", 10, 0.5, 3, "Gaussian", 0.95, 0.11,
                         extras={"note": "x"}),
        ExperimentRecord("rc", 10, 0.5, 3, "Gaussian", 0.52, 0.01),
    ]


class TestCsvExport:
    def test_round_trip(self, tmp_path, records):
        path = tmp_path / "table.csv"
        export_records_csv(records, path)
        rows = load_records_csv(path)
        assert len(rows) == 2
        assert rows[0]["algorithm"] == "saps"
        assert float(rows[0]["accuracy"]) == pytest.approx(0.95)
        assert rows[1]["note"] == ""  # missing extras render empty

    def test_explicit_columns(self, tmp_path, records):
        path = tmp_path / "narrow.csv"
        export_records_csv(records, path, columns=["algorithm", "accuracy"])
        rows = load_records_csv(path)
        assert list(rows[0].keys()) == ["algorithm", "accuracy"]

    def test_empty_rejected(self, tmp_path):
        with pytest.raises(DataFormatError):
            export_records_csv([], tmp_path / "empty.csv")

    def test_load_empty_file_rejected(self, tmp_path):
        path = tmp_path / "headeronly.csv"
        path.write_text("a,b\n")
        with pytest.raises(DataFormatError):
            load_records_csv(path)


class TestJsonExport:
    def test_valid_json(self, tmp_path, records):
        path = tmp_path / "table.json"
        export_records_json(records, path)
        payload = json.loads(path.read_text())
        assert len(payload) == 2
        assert payload[0]["algorithm"] == "saps"
        assert payload[0]["note"] == "x"

    def test_empty_rejected(self, tmp_path):
        with pytest.raises(DataFormatError):
            export_records_json([], tmp_path / "empty.json")
