"""Tests for :class:`repro.acquisition.AcquisitionPolicy` and
:class:`repro.acquisition.BudgetLedger`: batch selection, determinism,
budget bookkeeping and the worker-assignment bridge."""

import numpy as np
import pytest

from repro.acquisition import (
    AcquisitionPolicy,
    BudgetLedger,
    PairPosterior,
)
from repro.budget import BudgetModel
from repro.exceptions import BudgetError, ConfigurationError
from repro.streaming import StabilityMonitor
from repro.types import Vote, VoteArrays


def make_votes(n, count, seed=0):
    rng = np.random.default_rng(seed)
    return [
        Vote(worker=int(k % 4), winner=int(i), loser=int(j))
        for k, (i, j) in enumerate(
            rng.choice(n, size=2, replace=False) for _ in range(count)
        )
    ]


class TestLedger:
    def test_counts_down(self):
        ledger = BudgetLedger(10, batch_size=4)
        assert ledger.remaining == 10
        assert ledger.next_batch() == 4
        ledger.charge(4)
        ledger.charge(4)
        assert ledger.remaining == 2
        assert ledger.next_batch() == 2

    def test_overdraft_raises(self):
        ledger = BudgetLedger(3)
        ledger.charge(3)
        assert ledger.exhausted
        with pytest.raises(BudgetError):
            ledger.charge(1)

    def test_negative_charge_raises(self):
        with pytest.raises(BudgetError):
            BudgetLedger(3).charge(-1)

    def test_zero_total_is_born_exhausted(self):
        ledger = BudgetLedger(0)
        assert ledger.exhausted
        assert ledger.next_batch() == 0
        assert not ledger.can_spend()

    def test_from_model_prices_in_redundancy(self):
        model = BudgetModel(total=1.0, workers_per_task=2, reward=0.025)
        ledger = BudgetLedger.from_model(model, batch_size=8)
        # 20 affordable unique comparisons x 2 votes each.
        assert ledger.remaining == 40


class TestSuggest:
    def test_deterministic_for_fixed_state_and_seed(self):
        """The regression-tested contract: state + seed => batch."""
        votes = make_votes(12, 80, seed=5)
        for scorer in ("random", "uncertainty", "bdp", "infomax"):
            one = AcquisitionPolicy(12, scorer, seed=9)
            two = AcquisitionPolicy(12, scorer, seed=9)
            one.observe_votes(votes)
            two.observe_votes(VoteArrays.from_votes(12, votes))
            assert one.suggest(10) == two.suggest(10)
            assert one.suggest(10) == one.suggest(10)

    def test_seed_changes_tie_resolution(self):
        # A fresh posterior scores every pair identically under the
        # uncertainty scorer: the batch is pure tie-break.
        a = AcquisitionPolicy(10, "uncertainty", seed=1).suggest(5)
        b = AcquisitionPolicy(10, "uncertainty", seed=2).suggest(5)
        assert a != b

    def test_ties_spread_instead_of_clustering(self):
        # Pair-id tie-breaking would return (0,1), (0,2), ... (0,k+1);
        # the keyed permutation must not pile the batch onto object 0.
        pairs = AcquisitionPolicy(20, "uncertainty", seed=0).suggest(8)
        assert len(pairs) == len(set(pairs))
        touching_zero = sum(1 for lo, hi in pairs if 0 in (lo, hi))
        assert touching_zero < len(pairs)

    def test_returns_canonical_ordered_pairs(self):
        policy = AcquisitionPolicy(6, "bdp")
        policy.observe_votes(make_votes(6, 30))
        for lo, hi in policy.suggest(15):
            assert 0 <= lo < hi < 6

    def test_k_clipped_to_universe(self):
        policy = AcquisitionPolicy(4, "uncertainty")
        assert len(policy.suggest(100)) == 6  # C(4, 2)

    def test_k_zero_and_negative(self):
        policy = AcquisitionPolicy(4, "uncertainty")
        assert policy.suggest(0) == []
        with pytest.raises(ConfigurationError):
            policy.suggest(-1)

    def test_needs_k_without_ledger(self):
        with pytest.raises(ConfigurationError):
            AcquisitionPolicy(4, "uncertainty").suggest()

    def test_ledger_sizes_the_default_batch(self):
        ledger = BudgetLedger(12, batch_size=6)
        policy = AcquisitionPolicy(6, "uncertainty", ledger,
                                   workers_per_query=2)
        assert len(policy.suggest()) == 3  # 6 votes / 2 per query


class TestObserveAndCharge:
    def test_observe_votes_charges_the_ledger(self):
        ledger = BudgetLedger(10)
        policy = AcquisitionPolicy(6, "uncertainty", ledger)
        policy.observe_votes(make_votes(6, 4))
        assert ledger.remaining == 6

    def test_rebuild_never_charges(self):
        ledger = BudgetLedger(10)
        policy = AcquisitionPolicy(6, "uncertainty", ledger)
        votes = make_votes(6, 4)
        policy.observe_votes(votes)
        policy.rebuild(votes, worker_quality={0: 0.9})
        assert ledger.remaining == 6
        assert policy.posterior.n_observed == 4

    def test_rebuild_reweights_history(self):
        policy = AcquisitionPolicy(4, "uncertainty")
        votes = [Vote(worker=0, winner=0, loser=1)]
        policy.observe_votes(votes, worker_quality={0: 0.2})
        low = policy.posterior.alpha()[0]
        policy.rebuild(votes, worker_quality={0: 0.9})
        assert policy.posterior.alpha()[0] > low

    def test_closure_shape_validated(self):
        policy = AcquisitionPolicy(5, "uncertainty")
        with pytest.raises(ConfigurationError):
            policy.attach_closure(np.zeros((4, 4)))
        policy.attach_closure(np.zeros((5, 5)))
        policy.attach_closure(None)


class TestAssignmentBridge:
    def test_batch_becomes_worker_assignment(self):
        policy = AcquisitionPolicy(8, "uncertainty",
                                   workers_per_query=2, seed=3)
        pairs = policy.suggest(6)
        assignment = policy.build_assignment(pairs, n_workers=5, rng=0)
        assigned_pairs = {
            pair for hit in assignment.task_assignment.hits for pair in hit
        }
        assert assigned_pairs == set(pairs)
        # Redundancy: every HIT answered by workers_per_query workers.
        assert assignment.workers_per_hit == 2
        assert assignment.total_votes == 2 * len(pairs)


class TestStopping:
    def test_stops_when_budget_cannot_cover_a_query(self):
        ledger = BudgetLedger(3, batch_size=2)
        policy = AcquisitionPolicy(5, "uncertainty", ledger,
                                   workers_per_query=2)
        assert not policy.should_stop()
        ledger.charge(2)
        # One vote left cannot cover a 2-worker query.
        assert policy.should_stop()

    def test_stops_on_stable_ranking(self):
        monitor = StabilityMonitor(window=2, threshold=0.5)
        policy = AcquisitionPolicy(4, "uncertainty", monitor=monitor)
        assert not policy.should_stop()
        stable = [0, 1, 2, 3]
        for _ in range(4):
            policy.observe_ranking(stable)
        assert policy.should_stop()

    def test_unbudgeted_unmonitored_never_stops(self):
        assert not AcquisitionPolicy(4, "uncertainty").should_stop()


class TestValidation:
    def test_universe_mismatch_between_posterior_and_policy(self):
        policy = AcquisitionPolicy(5, "uncertainty")
        assert policy.n_objects == 5
        assert policy.posterior.n_objects == 5

    def test_workers_per_query_validated(self):
        with pytest.raises(ConfigurationError):
            AcquisitionPolicy(5, "uncertainty", workers_per_query=0)

    def test_scorer_instance_passthrough(self):
        posterior = PairPosterior(4)
        del posterior  # policy builds its own

        class Constant:
            name = "constant"

            def score(self, state):
                return np.ones(state.posterior.n_pairs)

        policy = AcquisitionPolicy(4, Constant())
        assert policy.scorer.name == "constant"
        assert len(policy.suggest(3)) == 3
