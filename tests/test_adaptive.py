"""Unit tests for repro.adaptive (the interactive counterpart)."""

import pytest

from repro.adaptive import adaptive_rank
from repro.config import FAST_PIPELINE
from repro.exceptions import ConfigurationError, InferenceError
from repro.metrics import ranking_accuracy
from repro.platform import InteractivePlatform
from repro.types import Ranking
from repro.workers import QualityLevel, WorkerPool, gaussian_preset


def make_platform(n=15, budget_queries=300, quality=QualityLevel.MEDIUM,
                  seed=33):
    truth = Ranking.random(n, rng=seed)
    pool = WorkerPool.from_distribution(12, gaussian_preset(quality),
                                        rng=seed)
    platform = InteractivePlatform(
        pool, truth, budget=budget_queries * 0.025, reward=0.025, rng=seed
    )
    return truth, platform


class TestAdaptiveRank:
    def test_produces_full_ranking(self):
        truth, platform = make_platform()
        result, stats = adaptive_rank(platform, config=FAST_PIPELINE,
                                      rng=1)
        assert sorted(result.ranking.order) == list(range(15))

    def test_spends_entire_budget(self):
        truth, platform = make_platform()
        adaptive_rank(platform, config=FAST_PIPELINE, rng=1)
        assert platform.remaining_queries() == 0

    def test_accuracy_reasonable(self):
        truth, platform = make_platform(budget_queries=400)
        result, _ = adaptive_rank(platform, config=FAST_PIPELINE, rng=2)
        assert ranking_accuracy(result.ranking, truth) > 0.8

    def test_round_stats_recorded(self):
        truth, platform = make_platform()
        _, stats = adaptive_rank(platform, config=FAST_PIPELINE, rounds=3,
                                 rng=3)
        assert 1 <= len(stats) <= 3
        assert all(s.queries_spent >= 0 for s in stats)
        assert all(0.0 <= s.mean_uncertainty <= 0.5 for s in stats)

    def test_zero_rounds_is_one_shot(self):
        truth, platform = make_platform()
        result, stats = adaptive_rank(platform, config=FAST_PIPELINE,
                                      rounds=0, seed_fraction=1.0, rng=4)
        assert stats == []
        assert sorted(result.ranking.order) == list(range(15))

    def test_validation(self):
        truth, platform = make_platform()
        with pytest.raises(ConfigurationError):
            adaptive_rank(platform, seed_fraction=0.0)
        with pytest.raises(ConfigurationError):
            adaptive_rank(platform, rounds=-1)
        with pytest.raises(ConfigurationError):
            adaptive_rank(platform, workers_per_query=0)

    def test_zero_budget_rejected(self):
        truth, platform = make_platform(budget_queries=0)
        with pytest.raises(InferenceError):
            adaptive_rank(platform, config=FAST_PIPELINE)

    def test_beats_or_matches_one_shot_at_equal_budget(self):
        """Adaptive targeting should not lose to spending the same
        budget blindly (averaged over a few seeds)."""
        adaptive_wins = 0
        for seed in (5, 6, 7):
            truth, platform = make_platform(budget_queries=350, seed=seed)
            result, _ = adaptive_rank(platform, config=FAST_PIPELINE,
                                      rng=seed)
            adaptive_accuracy = ranking_accuracy(result.ranking, truth)

            truth2, platform2 = make_platform(budget_queries=350, seed=seed)
            one_shot, _ = adaptive_rank(platform2, config=FAST_PIPELINE,
                                        rounds=0, seed_fraction=1.0,
                                        rng=seed)
            one_shot_accuracy = ranking_accuracy(one_shot.ranking, truth2)
            if adaptive_accuracy >= one_shot_accuracy - 1e-9:
                adaptive_wins += 1
        assert adaptive_wins >= 2
