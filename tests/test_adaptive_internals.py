"""Unit tests for repro.adaptive's internal helpers."""

import numpy as np
import pytest

from repro.adaptive import _fair_seed_pairs, _most_uncertain_pairs


class TestFairSeedPairs:
    def test_covers_budget(self):
        rng = np.random.default_rng(0)
        pairs = _fair_seed_pairs(10, 20, rng)
        assert len(pairs) == 20
        assert len(set(pairs)) == 20

    def test_budget_below_spanning_still_valid(self):
        rng = np.random.default_rng(1)
        pairs = _fair_seed_pairs(10, 4, rng)
        assert len(pairs) == 4

    def test_budget_above_all_pairs_clipped(self):
        rng = np.random.default_rng(2)
        pairs = _fair_seed_pairs(5, 100, rng)
        assert len(pairs) == 10  # C(5,2)

    def test_pairs_are_canonical_and_valid(self):
        rng = np.random.default_rng(3)
        for i, j in _fair_seed_pairs(8, 15, rng):
            assert 0 <= i < j < 8


class TestMostUncertainPairs:
    def test_picks_nearest_half(self):
        closure = np.array([
            [0.0, 0.9, 0.51],
            [0.1, 0.0, 0.99],
            [0.49, 0.01, 0.0],
        ])
        rng = np.random.default_rng(4)
        pairs = _most_uncertain_pairs(closure, 1, rng)
        assert pairs == [(0, 2)]

    def test_count_respected(self):
        rng = np.random.default_rng(5)
        closure = rng.uniform(0.2, 0.8, size=(6, 6))
        closure = closure / (closure + closure.T)
        np.fill_diagonal(closure, 0.0)
        pairs = _most_uncertain_pairs(closure, 4, rng)
        assert len(pairs) == 4
        assert len(set(pairs)) == 4

    def test_count_larger_than_pairs_clipped(self):
        rng = np.random.default_rng(6)
        closure = np.full((3, 3), 0.5)
        np.fill_diagonal(closure, 0.0)
        pairs = _most_uncertain_pairs(closure, 50, rng)
        assert len(pairs) == 3

    def test_ordering_by_uncertainty(self):
        closure = np.array([
            [0.0, 0.50, 0.80],
            [0.50, 0.0, 0.60],
            [0.20, 0.40, 0.0],
        ])
        rng = np.random.default_rng(7)
        pairs = _most_uncertain_pairs(closure, 3, rng)
        assert pairs[0] == (0, 1)  # exactly 0.5
        assert pairs[1] == (1, 2)  # 0.6
        assert pairs[2] == (0, 2)  # 0.8
