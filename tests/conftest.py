"""Shared fixtures: small, deterministic scenarios used across the suite."""

from __future__ import annotations

import signal

import numpy as np
import pytest

from repro.config import (
    PipelineConfig,
    PropagationConfig,
    SAPSConfig,
)
from repro.datasets import hostile_votes, make_scenario
from repro.experiments.runner import collect_votes
from repro.types import Ranking, Vote, VoteSet
from repro.workers import QualityLevel, WorkerPool, gaussian_preset


@pytest.fixture
def hang_guard():
    """Turn a deadlock into a failure instead of a hung test run.

    The fault-injection tests kill worker processes mid-task; the one
    failure mode they must never exhibit is an infinite wait on a dead
    pipe.  ``pytest-timeout`` is not a baked-in dependency of this
    image, so this fixture provides the same safety net with a plain
    ``SIGALRM`` (POSIX-only, like the fault tests themselves).
    """

    def _expired(signum, frame):
        raise TimeoutError(
            "hang guard expired (120s) — a backend wait deadlocked"
        )

    previous = signal.signal(signal.SIGALRM, _expired)
    signal.alarm(120)
    try:
        yield
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, previous)


@pytest.fixture
def rng():
    """A deterministic generator; tests share the seed for stability."""
    return np.random.default_rng(12345)


@pytest.fixture
def small_truth():
    """Ground truth over 8 objects."""
    return Ranking([3, 1, 4, 0, 5, 2, 7, 6])


@pytest.fixture
def good_pool():
    """A pool of 12 high-quality workers."""
    return WorkerPool.from_distribution(
        12, gaussian_preset(QualityLevel.HIGH), rng=11
    )


@pytest.fixture
def medium_scenario():
    """A 20-object medium-quality scenario (fast but non-trivial)."""
    return make_scenario(20, 0.5, n_workers=15, workers_per_task=5, rng=21)


@pytest.fixture
def medium_votes(medium_scenario):
    """Votes collected once for the medium scenario."""
    return collect_votes(medium_scenario, rng=21)


@pytest.fixture
def tiny_votes():
    """A hand-built vote set over 4 objects, 3 workers.

    Ground truth intent: 0 < 1 < 2 < 3 (0 most preferred).  Worker 2 is
    adversarial on pair (0, 1).
    """
    votes = [
        Vote(worker=0, winner=0, loser=1),
        Vote(worker=1, winner=0, loser=1),
        Vote(worker=2, winner=1, loser=0),
        Vote(worker=0, winner=1, loser=2),
        Vote(worker=1, winner=1, loser=2),
        Vote(worker=2, winner=1, loser=2),
        Vote(worker=0, winner=2, loser=3),
        Vote(worker=1, winner=2, loser=3),
        Vote(worker=2, winner=2, loser=3),
        Vote(worker=0, winner=0, loser=3),
        Vote(worker=1, winner=0, loser=3),
        Vote(worker=2, winner=0, loser=3),
    ]
    return VoteSet.from_votes(4, votes)


@pytest.fixture(scope="session")
def hostile_vote_stream():
    """Factory: seeded ``(scenario, votes)`` for an adversarial family.

    The canonical way to feed *hostile* crowds (spammers, cliques,
    correlated errors, ...) into streaming and acquisition tests —
    results are cached per family so repeated tests share one
    collection round.
    """
    cache = {}

    def _build(family: str, n_objects: int = 12):
        key = (family, n_objects)
        if key not in cache:
            cache[key] = hostile_votes(
                family, n_objects, 0.6, n_workers=10, workers_per_task=3,
                scenario_seed=31, vote_seed=32,
            )
        return cache[key]

    return _build


@pytest.fixture
def fast_config():
    """A fast pipeline configuration for integration tests."""
    return PipelineConfig(
        saps=SAPSConfig(iterations=2000, restarts=1),
        propagation=PropagationConfig(max_hops=6, method="walks"),
    )
