"""Tests for ``repro stream --active`` (closed-loop acquisition replay)."""

import json

import pytest

from repro.cli import main
from repro.datasets import make_scenario
from repro.experiments.runner import collect_votes
from repro.io import load_payload
from repro.streaming import SESSION_SCHEMA, session_from_payload

FAST_ARGS = ["--warm-iterations", "500"]


@pytest.fixture(scope="module")
def vote_log(tmp_path_factory):
    scenario = make_scenario(10, 0.6, n_workers=8, rng=5)
    votes = collect_votes(scenario, rng=5).votes
    path = tmp_path_factory.mktemp("active") / "votes.jsonl"
    with open(path, "w") as handle:
        for vote in votes:
            handle.write(
                json.dumps([vote.worker, vote.winner, vote.loser]) + "\n"
            )
    return str(path), len(votes)


class TestActiveReplay:
    def test_json_output(self, vote_log, capsys):
        path, total = vote_log
        assert main(["stream", path, "--n-objects", "10", "--active",
                     "--chunk", "20", "--no-early-stop",
                     *FAST_ARGS, "--json"]) == 0
        captured = capsys.readouterr()
        payload = json.loads(captured.out)
        # The engine drives acquisition: it can stop short of the log.
        assert 0 < payload["votes_replayed"] <= total
        assert payload["votes_total"] == total
        assert sorted(payload["ranking"]) == list(range(10))
        assert "round" in captured.err

    def test_scorer_flag(self, vote_log, capsys):
        path, total = vote_log
        assert main(["stream", path, "--n-objects", "10", "--active",
                     "--scorer", "uncertainty", "--chunk", "25",
                     "--no-early-stop", *FAST_ARGS, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert 0 < payload["votes_replayed"] <= total

    def test_early_stop_can_end_the_replay(self, vote_log, capsys):
        path, total = vote_log
        assert main(["stream", path, "--n-objects", "10", "--active",
                     "--chunk", "15", "--window", "3",
                     "--threshold", "0.2", "--min-votes", "60",
                     *FAST_ARGS, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["votes_replayed"] < total
        assert payload["verdict"] == "stopped"

    def test_replay_is_reproducible(self, vote_log, capsys):
        path, _ = vote_log
        outputs = []
        for _ in range(2):
            assert main(["stream", path, "--n-objects", "10",
                         "--active", "--chunk", "20",
                         "--no-early-stop", *FAST_ARGS, "--json"]) == 0
            outputs.append(json.loads(capsys.readouterr().out))
        assert outputs[0]["ranking"] == outputs[1]["ranking"]
        assert (outputs[0]["votes_replayed"]
                == outputs[1]["votes_replayed"])

    def test_save_session_snapshot(self, vote_log, tmp_path, capsys):
        path, _ = vote_log
        out = tmp_path / "session.json"
        assert main(["stream", path, "--n-objects", "10", "--active",
                     "--chunk", "30", "--no-early-stop", *FAST_ARGS,
                     "--save-session", str(out), "--json"]) == 0
        capsys.readouterr()
        payload = load_payload(str(out), schema=SESSION_SCHEMA)
        restored = session_from_payload(payload)
        assert restored.config.scorer == "bdp"

    def test_save_session_with_url_rejected(self, vote_log, capsys):
        path, _ = vote_log
        assert main(["stream", path, "--n-objects", "10", "--active",
                     "--url", "http://127.0.0.1:1", "--save-session",
                     "snapshot.json", *FAST_ARGS]) != 0
        assert "--save-session only applies" in capsys.readouterr().err

    def test_unknown_scorer_rejected_by_argparse(self, vote_log,
                                                 capsys):
        path, _ = vote_log
        with pytest.raises(SystemExit):
            main(["stream", path, "--n-objects", "10", "--active",
                  "--scorer", "oracle"])
        assert "invalid choice" in capsys.readouterr().err
