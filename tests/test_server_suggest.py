"""End-to-end tests for ``GET /v1/sessions/<id>/suggest`` and
:meth:`repro.client.RankingClient.suggest_pairs`."""

import json
import urllib.error
import urllib.request

import pytest

from repro.client import RankingClient, ServerError
from repro.datasets import make_scenario
from repro.experiments.runner import collect_votes
from repro.server import RankingServer, ServerConfig
from repro.service.retry import NO_RETRY

FAST_SESSION_CONFIG = {
    "pipeline": {
        "saps": {"iterations": 1000, "restarts": 1},
        "propagation": {"max_hops": 4, "method": "walks"},
    },
    "warm_iterations": 300,
    "early_stop": False,
}


@pytest.fixture(scope="module")
def votes():
    scenario = make_scenario(10, 0.6, n_workers=8, rng=5)
    return [[v.worker, v.winner, v.loser]
            for v in collect_votes(scenario, rng=5).votes]


@pytest.fixture
def server():
    ranking_server = RankingServer(ServerConfig(
        port=0, workers=2, queue_depth=8, no_cache=True,
    ))
    ranking_server.start()
    yield ranking_server
    ranking_server.stop(drain_timeout=5.0)


@pytest.fixture
def client(server):
    return RankingClient(server.url, retry=NO_RETRY)


def _request(url, method="GET", body=None):
    data = None if body is None else json.dumps(body).encode()
    request = urllib.request.Request(
        url, data=data, method=method,
        headers={"Content-Type": "application/json"} if data else {},
    )
    try:
        with urllib.request.urlopen(request, timeout=10) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


class TestSuggestEndpoint:
    def test_fresh_session_suggests(self, server, client):
        view = client.create_session(10, config=FAST_SESSION_CONFIG)
        session_id = view["session_id"]
        status, payload = _request(
            f"{server.url}/v1/sessions/{session_id}/suggest?k=3"
        )
        assert status == 200
        assert payload["session_id"] == session_id
        assert payload["k"] == 3
        assert payload["scorer"] == "bdp"
        assert len(payload["pairs"]) == 3
        for lo, hi in payload["pairs"]:
            assert 0 <= lo < hi < 10

    def test_k_defaults_to_one(self, server, client):
        view = client.create_session(10, config=FAST_SESSION_CONFIG)
        status, payload = _request(
            f"{server.url}/v1/sessions/{view['session_id']}/suggest"
        )
        assert status == 200
        assert payload["k"] == 1
        assert len(payload["pairs"]) == 1

    def test_suggestions_deterministic_across_requests(
            self, server, client, votes):
        view = client.create_session(10, config=FAST_SESSION_CONFIG)
        session_id = view["session_id"]
        client.submit_votes(session_id, votes[:100])
        url = f"{server.url}/v1/sessions/{session_id}/suggest?k=5"
        _, first = _request(url)
        _, second = _request(url)
        assert first["pairs"] == second["pairs"]

    def test_configured_scorer_is_reported(self, server, client):
        config = dict(FAST_SESSION_CONFIG, scorer="infomax")
        view = client.create_session(10, config=config)
        status, payload = _request(
            f"{server.url}/v1/sessions/{view['session_id']}/suggest"
        )
        assert status == 200
        assert payload["scorer"] == "infomax"

    def test_bad_k_is_400(self, server, client):
        view = client.create_session(10, config=FAST_SESSION_CONFIG)
        base = f"{server.url}/v1/sessions/{view['session_id']}/suggest"
        for query in ("?k=0", "?k=-2", "?k=two"):
            status, payload = _request(base + query)
            assert status == 400
            assert "error" in payload

    def test_unknown_session_is_404(self, server):
        status, payload = _request(
            f"{server.url}/v1/sessions/no-such/suggest"
        )
        assert status == 404
        assert "error" in payload

    def test_post_is_405(self, server, client):
        view = client.create_session(10, config=FAST_SESSION_CONFIG)
        status, _ = _request(
            f"{server.url}/v1/sessions/{view['session_id']}/suggest",
            method="POST", body={},
        )
        assert status == 405


class TestClientSuggestPairs:
    def test_round_trip(self, client, votes):
        view = client.create_session(10, config=FAST_SESSION_CONFIG)
        session_id = view["session_id"]
        client.submit_votes(session_id, votes[:80])
        pairs = client.suggest_pairs(session_id, k=4)
        assert len(pairs) == 4
        assert all(isinstance(pair, tuple) for pair in pairs)
        assert pairs == client.suggest_pairs(session_id, k=4)

    def test_unknown_session_raises(self, client):
        with pytest.raises(ServerError) as excinfo:
            client.suggest_pairs("missing", k=2)
        assert excinfo.value.status == 404
