"""Unit tests for repro.inference.smoothing (Step 2)."""

import math

import numpy as np
import pytest

from repro.config import SmoothingConfig
from repro.exceptions import InferenceError
from repro.graphs import PreferenceGraph
from repro.inference import smoothing as smoothing_mod
from repro.inference.smoothing import (
    direct_preference_matrix,
    resmooth_pairs,
    smooth_matrix,
    smooth_preferences,
    worker_sigma,
)
from repro.types import Vote, VoteSet


@pytest.fixture
def unanimous_votes():
    """3 workers unanimously vote 0 < 1 < 2 along a path."""
    votes = []
    for worker in range(3):
        votes.append(Vote(worker=worker, winner=0, loser=1))
        votes.append(Vote(worker=worker, winner=1, loser=2))
    return VoteSet.from_votes(3, votes)


@pytest.fixture
def unanimous_graph():
    return PreferenceGraph.from_direct_preferences(
        3, {(0, 1): 1.0, (1, 2): 1.0}
    )


GOOD_QUALITY = {0: 0.95, 1: 0.9, 2: 0.92}


class TestWorkerSigma:
    def test_negative_log(self):
        config = SmoothingConfig()
        assert worker_sigma(0.5, config) == pytest.approx(math.log(2.0))

    def test_perfect_quality_floored(self):
        config = SmoothingConfig(sigma_floor=0.01)
        assert worker_sigma(1.0, config) == 0.01

    def test_terrible_quality_capped(self):
        config = SmoothingConfig(sigma_cap=1.5)
        assert worker_sigma(1e-6, config) == 1.5

    def test_invalid_quality_rejected(self):
        config = SmoothingConfig()
        with pytest.raises(InferenceError):
            worker_sigma(0.0, config)
        with pytest.raises(InferenceError):
            worker_sigma(1.1, config)


class TestSmoothPreferences:
    def test_one_edges_get_both_directions(self, unanimous_graph,
                                            unanimous_votes):
        result = smooth_preferences(unanimous_graph, unanimous_votes,
                                    GOOD_QUALITY)
        for u, v in [(0, 1), (1, 2)]:
            assert result.graph.has_edge(u, v)
            assert result.graph.has_edge(v, u)
            total = result.graph.weight(u, v) + result.graph.weight(v, u)
            assert total == pytest.approx(1.0)

    def test_direction_never_inverted(self, unanimous_graph, unanimous_votes):
        """Unanimous edges keep the crowd's direction (w >= 0.5) even for
        very unreliable workers."""
        bad_quality = {0: 0.05, 1: 0.05, 2: 0.05}
        result = smooth_preferences(unanimous_graph, unanimous_votes,
                                    bad_quality)
        assert result.graph.weight(0, 1) >= 0.5
        assert result.graph.weight(1, 0) <= 0.5

    def test_good_workers_small_shift(self, unanimous_graph, unanimous_votes):
        result = smooth_preferences(unanimous_graph, unanimous_votes,
                                    GOOD_QUALITY)
        assert result.graph.weight(0, 1) > 0.85

    def test_shift_monotone_in_quality(self, unanimous_graph,
                                       unanimous_votes):
        good = smooth_preferences(unanimous_graph, unanimous_votes,
                                  {0: 0.99, 1: 0.99, 2: 0.99})
        bad = smooth_preferences(unanimous_graph, unanimous_votes,
                                 {0: 0.5, 1: 0.5, 2: 0.5})
        assert good.adjustments[(0, 1)] < bad.adjustments[(0, 1)]

    def test_counts_one_edges(self, unanimous_graph, unanimous_votes):
        result = smooth_preferences(unanimous_graph, unanimous_votes,
                                    GOOD_QUALITY)
        assert result.n_one_edges == 2

    def test_contested_edges_untouched(self, unanimous_votes):
        graph = PreferenceGraph.from_direct_preferences(
            3, {(0, 1): 1.0, (1, 2): 0.7}
        )
        result = smooth_preferences(graph, unanimous_votes, GOOD_QUALITY)
        assert result.graph.weight(1, 2) == pytest.approx(0.7)
        assert result.graph.weight(2, 1) == pytest.approx(0.3)
        assert result.n_one_edges == 1

    def test_strong_connectivity_after_smoothing(self, unanimous_graph,
                                                 unanimous_votes):
        """Theorem 5.1's precondition: the smoothed graph is strongly
        connected whenever the task graph was connected."""
        result = smooth_preferences(unanimous_graph, unanimous_votes,
                                    GOOD_QUALITY)
        assert result.graph.is_strongly_connected()

    def test_validates_as_smoothed(self, unanimous_graph, unanimous_votes):
        result = smooth_preferences(unanimous_graph, unanimous_votes,
                                    GOOD_QUALITY)
        result.graph.validate(smoothed=True)

    def test_missing_votes_for_one_edge_rejected(self, unanimous_graph):
        empty_pair_votes = VoteSet.from_votes(
            3, [Vote(worker=0, winner=0, loser=1)]
        )
        with pytest.raises(InferenceError):
            smooth_preferences(unanimous_graph, empty_pair_votes,
                               GOOD_QUALITY)

    def test_missing_quality_rejected(self, unanimous_graph, unanimous_votes):
        with pytest.raises(InferenceError):
            smooth_preferences(unanimous_graph, unanimous_votes, {0: 0.9})

    def test_sampled_mode_reproducible(self, unanimous_graph,
                                       unanimous_votes):
        config = SmoothingConfig(mode="sampled")
        a = smooth_preferences(unanimous_graph, unanimous_votes,
                               GOOD_QUALITY, config, rng=7)
        b = smooth_preferences(unanimous_graph, unanimous_votes,
                               GOOD_QUALITY, config, rng=7)
        assert a.adjustments == b.adjustments

    def test_sampled_mode_valid_weights(self, unanimous_graph,
                                        unanimous_votes):
        config = SmoothingConfig(mode="sampled")
        result = smooth_preferences(unanimous_graph, unanimous_votes,
                                    GOOD_QUALITY, config, rng=3)
        result.graph.validate(smoothed=True)

    def test_original_graph_not_mutated(self, unanimous_graph,
                                        unanimous_votes):
        smooth_preferences(unanimous_graph, unanimous_votes, GOOD_QUALITY)
        assert unanimous_graph.weight(0, 1) == 1.0
        assert not unanimous_graph.has_edge(1, 0)

    def test_reverse_one_edge_smoothed_too(self, unanimous_votes):
        """x_ij = 0 creates a 1-edge in the reverse direction; it must be
        smoothed symmetrically."""
        graph = PreferenceGraph.from_direct_preferences(
            3, {(0, 1): 0.0, (1, 2): 1.0}
        )
        result = smooth_preferences(graph, unanimous_votes, GOOD_QUALITY)
        assert result.graph.weight(1, 0) >= 0.5
        assert result.graph.has_edge(0, 1)

    def test_sigma_computed_once_per_distinct_worker(self, monkeypatch):
        """sigma_k is a pure function of q_k: one worker_sigma call per
        distinct worker, no matter how many (edge, vote) pairs they
        appear in."""
        votes = []
        for worker in range(3):
            for lo in range(4):
                votes.append(Vote(worker=worker, winner=lo, loser=lo + 1))
        vote_set = VoteSet.from_votes(5, votes)
        graph = PreferenceGraph.from_direct_preferences(
            5, {(i, i + 1): 1.0 for i in range(4)}
        )

        calls = {"count": 0}
        real = smoothing_mod.worker_sigma

        def counting(quality, config):
            calls["count"] += 1
            return real(quality, config)

        monkeypatch.setattr(smoothing_mod, "worker_sigma", counting)
        smooth_preferences(graph, vote_set, {0: 0.9, 1: 0.8, 2: 0.95})
        assert calls["count"] == 3  # 3 workers, 12 (edge, vote) pairs


class TestSampledDrawOrderContract:
    """Pins the documented RNG draw-order contract of sampled smoothing.

    Both implementations consume one ``|N(0, sigma_k^2)|`` draw per
    (1-edge, vote): 1-edges in lexicographic ``(source, target)`` order,
    votes within an edge in original vote-set order.  These tests are
    the tripwire for anyone reordering either loop.
    """

    def _scenario(self):
        """4 objects; 1-edges (0 -> 1), (2 -> 1), (2 -> 3); one
        contested pair (0, 3).  Workers interleave across pairs."""
        votes = [
            Vote(worker=0, winner=0, loser=1),
            Vote(worker=1, winner=2, loser=1),
            Vote(worker=1, winner=0, loser=1),
            Vote(worker=2, winner=2, loser=3),
            Vote(worker=0, winner=2, loser=3),
            Vote(worker=2, winner=0, loser=3),
            Vote(worker=1, winner=3, loser=0),
        ]
        vote_set = VoteSet.from_votes(4, votes)
        preferences = {(0, 1): 1.0, (1, 2): 0.0, (2, 3): 1.0, (0, 3): 0.5}
        quality = {0: 0.9, 1: 0.7, 2: 0.8}
        return vote_set, preferences, quality

    def test_pipeline_one_edges_are_lexicographic(self):
        """For graphs built by from_direct_preferences over the sorted
        pair table, one_edges() is lexicographic (source, target) —
        the object-path draw order the fast path reproduces."""
        _, preferences, _ = self._scenario()
        graph = PreferenceGraph.from_direct_preferences(4, preferences)
        edges = graph.one_edges()
        assert edges == sorted(edges)
        assert edges == [(0, 1), (2, 1), (2, 3)]

    def test_sampled_draws_consumed_in_documented_order(self):
        """Re-derive the shifts with explicit scalar draws in the
        documented order; smooth_matrix must match bit for bit."""
        vote_set, preferences, quality = self._scenario()
        config = SmoothingConfig(mode="sampled")
        arrays = vote_set.arrays()
        truth = np.array([preferences[p] for p in arrays.pairs()])

        rng = np.random.default_rng(42)
        expected = {}
        # 1-edges lexicographic; votes within an edge in original order.
        for src, dst in [(0, 1), (2, 1), (2, 3)]:
            pair = (min(src, dst), max(src, dst))
            errors = [
                abs(float(rng.normal(0.0, worker_sigma(quality[v.worker],
                                                       config))))
                for v in vote_set.votes
                if (min(v.winner, v.loser), max(v.winner, v.loser)) == pair
            ]
            shift = float(np.mean(errors))
            expected[(src, dst)] = min(max(shift, config.min_weight), 0.5)

        direct = direct_preference_matrix(arrays, truth)
        fast = smooth_matrix(direct, truth, arrays, quality, config, rng=42)
        assert fast.adjustments == expected

        graph = PreferenceGraph.from_direct_preferences(4, preferences)
        obj = smooth_preferences(graph, vote_set, quality, config, rng=42)
        assert obj.adjustments == expected

    def test_missing_quality_rejected_matrix_path(self):
        vote_set, preferences, _ = self._scenario()
        arrays = vote_set.arrays()
        truth = np.array([preferences[p] for p in arrays.pairs()])
        direct = direct_preference_matrix(arrays, truth)
        with pytest.raises(InferenceError):
            smooth_matrix(direct, truth, arrays, {0: 0.9}, SmoothingConfig())

    def test_no_one_edges_returns_direct_matrix(self):
        vote_set, _, quality = self._scenario()
        arrays = vote_set.arrays()
        truth = np.full(arrays.n_pairs, 0.5)
        direct = direct_preference_matrix(arrays, truth)
        result = smooth_matrix(direct, truth, arrays, quality)
        assert result.n_one_edges == 0
        assert result.adjustments == {}
        assert np.array_equal(result.matrix, direct)


class TestResmoothPairs:
    """The masked incremental Step 2 used by streaming sessions.

    The anchor invariant: with every pair masked, ``resmooth_pairs``
    reproduces ``smooth_matrix`` bit for bit on every cell belonging to
    a voted pair — the incremental path can never drift from the batch
    semantics it shortcuts.  Cells no pair covers are carried from
    ``previous`` (in the engine, the prior smoothed matrix).
    """

    def _scenario(self):
        votes = [
            Vote(worker=0, winner=0, loser=1),
            Vote(worker=1, winner=2, loser=1),
            Vote(worker=1, winner=0, loser=1),
            Vote(worker=2, winner=2, loser=3),
            Vote(worker=0, winner=2, loser=3),
            Vote(worker=2, winner=0, loser=3),
            Vote(worker=1, winner=3, loser=0),
        ]
        vote_set = VoteSet.from_votes(4, votes)
        arrays = vote_set.arrays()
        preferences = {(0, 1): 1.0, (1, 2): 0.0, (2, 3): 1.0, (0, 3): 0.5}
        truth = np.array([preferences[p] for p in arrays.pairs()])
        quality = {0: 0.9, 1: 0.7, 2: 0.8}
        return arrays, truth, quality

    @pytest.mark.parametrize("mode", ["expected", "sampled"])
    def test_full_mask_equals_smooth_matrix(self, mode):
        arrays, truth, quality = self._scenario()
        config = SmoothingConfig(mode=mode)
        direct = direct_preference_matrix(arrays, truth)
        batch = smooth_matrix(direct, truth, arrays, quality, config,
                              rng=42)
        garbage = np.full((4, 4), 0.123)
        incremental = resmooth_pairs(
            garbage, truth, arrays, quality,
            np.ones(arrays.n_pairs, dtype=bool), config, rng=42,
        )
        covered = np.zeros((4, 4), dtype=bool)
        for lo, hi in arrays.pairs():
            covered[lo, hi] = covered[hi, lo] = True
        np.testing.assert_array_equal(incremental.matrix[covered],
                                      batch.matrix[covered])
        # Cells outside every voted pair come from `previous`, verbatim.
        np.testing.assert_array_equal(incremental.matrix[~covered],
                                      garbage[~covered])
        assert incremental.adjustments == batch.adjustments
        assert incremental.n_one_edges == batch.n_one_edges

    def test_empty_mask_returns_previous_copy(self):
        arrays, truth, quality = self._scenario()
        previous = np.full((4, 4), 0.4)
        result = resmooth_pairs(
            previous, truth, arrays, quality,
            np.zeros(arrays.n_pairs, dtype=bool),
        )
        assert np.array_equal(result.matrix, previous)
        assert result.matrix is not previous  # caller's array untouched
        assert result.adjustments == {}

    def test_partial_mask_touches_only_masked_pairs(self):
        arrays, truth, quality = self._scenario()
        direct = direct_preference_matrix(arrays, truth)
        batch = smooth_matrix(direct, truth, arrays, quality)
        previous = batch.matrix.copy()
        pairs = arrays.pairs()
        mask = np.zeros(arrays.n_pairs, dtype=bool)
        mask[pairs.index((2, 3))] = True
        result = resmooth_pairs(previous, truth, arrays, quality, mask)
        # Re-smoothing an unchanged pair over its own output is a
        # fixed point; unmasked entries are carried verbatim.
        np.testing.assert_array_equal(result.matrix, batch.matrix)
        assert set(result.adjustments) == {(2, 3)}
