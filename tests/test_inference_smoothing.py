"""Unit tests for repro.inference.smoothing (Step 2)."""

import math

import pytest

from repro.config import SmoothingConfig
from repro.exceptions import InferenceError
from repro.graphs import PreferenceGraph
from repro.inference.smoothing import smooth_preferences, worker_sigma
from repro.types import Vote, VoteSet


@pytest.fixture
def unanimous_votes():
    """3 workers unanimously vote 0 < 1 < 2 along a path."""
    votes = []
    for worker in range(3):
        votes.append(Vote(worker=worker, winner=0, loser=1))
        votes.append(Vote(worker=worker, winner=1, loser=2))
    return VoteSet.from_votes(3, votes)


@pytest.fixture
def unanimous_graph():
    return PreferenceGraph.from_direct_preferences(
        3, {(0, 1): 1.0, (1, 2): 1.0}
    )


GOOD_QUALITY = {0: 0.95, 1: 0.9, 2: 0.92}


class TestWorkerSigma:
    def test_negative_log(self):
        config = SmoothingConfig()
        assert worker_sigma(0.5, config) == pytest.approx(math.log(2.0))

    def test_perfect_quality_floored(self):
        config = SmoothingConfig(sigma_floor=0.01)
        assert worker_sigma(1.0, config) == 0.01

    def test_terrible_quality_capped(self):
        config = SmoothingConfig(sigma_cap=1.5)
        assert worker_sigma(1e-6, config) == 1.5

    def test_invalid_quality_rejected(self):
        config = SmoothingConfig()
        with pytest.raises(InferenceError):
            worker_sigma(0.0, config)
        with pytest.raises(InferenceError):
            worker_sigma(1.1, config)


class TestSmoothPreferences:
    def test_one_edges_get_both_directions(self, unanimous_graph,
                                            unanimous_votes):
        result = smooth_preferences(unanimous_graph, unanimous_votes,
                                    GOOD_QUALITY)
        for u, v in [(0, 1), (1, 2)]:
            assert result.graph.has_edge(u, v)
            assert result.graph.has_edge(v, u)
            total = result.graph.weight(u, v) + result.graph.weight(v, u)
            assert total == pytest.approx(1.0)

    def test_direction_never_inverted(self, unanimous_graph, unanimous_votes):
        """Unanimous edges keep the crowd's direction (w >= 0.5) even for
        very unreliable workers."""
        bad_quality = {0: 0.05, 1: 0.05, 2: 0.05}
        result = smooth_preferences(unanimous_graph, unanimous_votes,
                                    bad_quality)
        assert result.graph.weight(0, 1) >= 0.5
        assert result.graph.weight(1, 0) <= 0.5

    def test_good_workers_small_shift(self, unanimous_graph, unanimous_votes):
        result = smooth_preferences(unanimous_graph, unanimous_votes,
                                    GOOD_QUALITY)
        assert result.graph.weight(0, 1) > 0.85

    def test_shift_monotone_in_quality(self, unanimous_graph,
                                       unanimous_votes):
        good = smooth_preferences(unanimous_graph, unanimous_votes,
                                  {0: 0.99, 1: 0.99, 2: 0.99})
        bad = smooth_preferences(unanimous_graph, unanimous_votes,
                                 {0: 0.5, 1: 0.5, 2: 0.5})
        assert good.adjustments[(0, 1)] < bad.adjustments[(0, 1)]

    def test_counts_one_edges(self, unanimous_graph, unanimous_votes):
        result = smooth_preferences(unanimous_graph, unanimous_votes,
                                    GOOD_QUALITY)
        assert result.n_one_edges == 2

    def test_contested_edges_untouched(self, unanimous_votes):
        graph = PreferenceGraph.from_direct_preferences(
            3, {(0, 1): 1.0, (1, 2): 0.7}
        )
        result = smooth_preferences(graph, unanimous_votes, GOOD_QUALITY)
        assert result.graph.weight(1, 2) == pytest.approx(0.7)
        assert result.graph.weight(2, 1) == pytest.approx(0.3)
        assert result.n_one_edges == 1

    def test_strong_connectivity_after_smoothing(self, unanimous_graph,
                                                 unanimous_votes):
        """Theorem 5.1's precondition: the smoothed graph is strongly
        connected whenever the task graph was connected."""
        result = smooth_preferences(unanimous_graph, unanimous_votes,
                                    GOOD_QUALITY)
        assert result.graph.is_strongly_connected()

    def test_validates_as_smoothed(self, unanimous_graph, unanimous_votes):
        result = smooth_preferences(unanimous_graph, unanimous_votes,
                                    GOOD_QUALITY)
        result.graph.validate(smoothed=True)

    def test_missing_votes_for_one_edge_rejected(self, unanimous_graph):
        empty_pair_votes = VoteSet.from_votes(
            3, [Vote(worker=0, winner=0, loser=1)]
        )
        with pytest.raises(InferenceError):
            smooth_preferences(unanimous_graph, empty_pair_votes,
                               GOOD_QUALITY)

    def test_missing_quality_rejected(self, unanimous_graph, unanimous_votes):
        with pytest.raises(InferenceError):
            smooth_preferences(unanimous_graph, unanimous_votes, {0: 0.9})

    def test_sampled_mode_reproducible(self, unanimous_graph,
                                       unanimous_votes):
        config = SmoothingConfig(mode="sampled")
        a = smooth_preferences(unanimous_graph, unanimous_votes,
                               GOOD_QUALITY, config, rng=7)
        b = smooth_preferences(unanimous_graph, unanimous_votes,
                               GOOD_QUALITY, config, rng=7)
        assert a.adjustments == b.adjustments

    def test_sampled_mode_valid_weights(self, unanimous_graph,
                                        unanimous_votes):
        config = SmoothingConfig(mode="sampled")
        result = smooth_preferences(unanimous_graph, unanimous_votes,
                                    GOOD_QUALITY, config, rng=3)
        result.graph.validate(smoothed=True)

    def test_original_graph_not_mutated(self, unanimous_graph,
                                        unanimous_votes):
        smooth_preferences(unanimous_graph, unanimous_votes, GOOD_QUALITY)
        assert unanimous_graph.weight(0, 1) == 1.0
        assert not unanimous_graph.has_edge(1, 0)

    def test_reverse_one_edge_smoothed_too(self, unanimous_votes):
        """x_ij = 0 creates a 1-edge in the reverse direction; it must be
        smoothed symmetrically."""
        graph = PreferenceGraph.from_direct_preferences(
            3, {(0, 1): 0.0, (1, 2): 1.0}
        )
        result = smooth_preferences(graph, unanimous_votes, GOOD_QUALITY)
        assert result.graph.weight(1, 0) >= 0.5
        assert result.graph.has_edge(0, 1)
