"""Differential suite: the columnar fast path vs the object path.

The contract under test (ISSUE: columnar vote path): for every vote set,
seed and backend, ``vote_path="columnar"`` must produce results
*bit-identical* to ``vote_path="object"`` — same ranking, same
``log_preference`` float, same worker qualities, same smoothing
adjustments.  This is what lets the pipeline default to the fast path
without a behaviour flag day.

Also hosts the :class:`~repro.types.VoteArrays` round-trip and property
tests (empty, single-vote, duplicate-pair vote sets).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import (
    PipelineConfig,
    PropagationConfig,
    SAPSConfig,
    SmoothingConfig,
)
from repro.datasets import make_scenario
from repro.exceptions import ConfigurationError
from repro.experiments.runner import collect_votes
from repro.graphs import PreferenceGraph
from repro.inference import RankingPipeline
from repro.inference.smoothing import (
    direct_preference_matrix,
    smooth_matrix,
    smooth_preferences,
)
from repro.truth.crh import discover_truth
from repro.types import Vote, VoteArrays, VoteSet

SIZES = (2, 3, 10, 50)
SEEDS = (0, 1, 2, 3, 4)


def _votes_for(n: int, seed: int) -> VoteSet:
    scenario = make_scenario(
        n, 0.6, n_workers=max(5, n // 2), workers_per_task=5, rng=seed
    )
    return collect_votes(scenario, rng=seed)


def _config(backend: str = "serial", mode: str = "expected") -> PipelineConfig:
    return PipelineConfig(
        saps=SAPSConfig(iterations=400, restarts=1, backend=backend),
        smoothing=SmoothingConfig(mode=mode),
        propagation=PropagationConfig(),
    )


def _assert_identical(columnar, obj):
    assert columnar.ranking.order == obj.ranking.order
    assert columnar.log_preference == obj.log_preference  # bit-identical
    assert columnar.worker_quality == obj.worker_quality
    assert columnar.direct_preferences == obj.direct_preferences
    assert columnar.metadata == obj.metadata


class TestColumnarVsObjectPipeline:
    @pytest.mark.parametrize("n", SIZES)
    @pytest.mark.parametrize("seed", SEEDS)
    def test_bit_identical_results(self, n, seed):
        votes = _votes_for(n, seed)
        config = _config()
        columnar = RankingPipeline(config.with_(vote_path="columnar")).run(
            votes, rng=seed
        )
        obj = RankingPipeline(config.with_(vote_path="object")).run(
            votes, rng=seed
        )
        _assert_identical(columnar, obj)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_sampled_mode_shares_the_rng_stream(self, seed):
        """Sampled smoothing draws from the generator; both paths must
        consume it in the same order for identical downstream results."""
        votes = _votes_for(10, seed)
        config = _config(mode="sampled")
        columnar = RankingPipeline(config.with_(vote_path="columnar")).run(
            votes, rng=seed
        )
        obj = RankingPipeline(config.with_(vote_path="object")).run(
            votes, rng=seed
        )
        _assert_identical(columnar, obj)

    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_every_backend(self, backend, hang_guard):
        """The vote path and the execution backend are orthogonal knobs."""
        votes = _votes_for(10, 1)
        config = _config(backend=backend)
        columnar = RankingPipeline(config.with_(vote_path="columnar")).run(
            votes, rng=1
        )
        obj = RankingPipeline(config.with_(vote_path="object")).run(
            votes, rng=1
        )
        _assert_identical(columnar, obj)

    @pytest.mark.parametrize("engine", ["crh", "em"])
    def test_both_truth_engines(self, engine):
        votes = _votes_for(10, 2)
        config = _config().with_(truth_engine=engine)
        columnar = RankingPipeline(config.with_(vote_path="columnar")).run(
            votes, rng=2
        )
        obj = RankingPipeline(config.with_(vote_path="object")).run(
            votes, rng=2
        )
        _assert_identical(columnar, obj)

    def test_exact_propagation_identical(self):
        """The exact-paths kernel must agree too (n below the auto
        threshold runs it; its accumulation order is weight-determined)."""
        votes = _votes_for(6, 3)
        config = _config().with_(
            propagation=PropagationConfig(method="exact")
        )
        columnar = RankingPipeline(config.with_(vote_path="columnar")).run(
            votes, rng=3
        )
        obj = RankingPipeline(config.with_(vote_path="object")).run(
            votes, rng=3
        )
        _assert_identical(columnar, obj)

    def test_unknown_vote_path_rejected(self):
        with pytest.raises(ConfigurationError):
            PipelineConfig(vote_path="sparse")


class TestSmoothingAdjustmentsIdentical:
    @pytest.mark.parametrize("mode", ["expected", "sampled"])
    @pytest.mark.parametrize("seed", SEEDS)
    def test_adjustments_dict_bit_identical(self, mode, seed):
        """Direct Step-2 differential: same adjustments, same floats."""
        votes = _votes_for(12, seed)
        truth = discover_truth(votes)
        config = SmoothingConfig(mode=mode)
        arrays = votes.arrays()

        graph = PreferenceGraph.from_direct_preferences(
            votes.n_objects, truth.preferences
        )
        obj = smooth_preferences(
            graph, votes, truth.worker_quality, config, rng=seed
        )
        direct = direct_preference_matrix(arrays, truth.preference_vector)
        fast = smooth_matrix(
            direct, truth.preference_vector, arrays, truth.quality_vector,
            config, rng=seed,
        )

        assert fast.n_one_edges == obj.n_one_edges
        assert fast.adjustments == obj.adjustments  # keys AND floats
        assert np.array_equal(fast.matrix, obj.graph.weight_matrix())


class TestVoteArraysRoundTrip:
    def test_empty_vote_set(self):
        arrays = VoteSet.from_votes(4, []).arrays()
        assert arrays.n_votes == 0
        assert arrays.n_pairs == 0
        assert arrays.n_workers == 0
        assert arrays.pairs() == []
        assert arrays.workers() == []
        assert arrays.to_votes() == ()

    def test_single_vote(self):
        votes = VoteSet.from_votes(3, [Vote(worker=7, winner=2, loser=0)])
        arrays = votes.arrays()
        assert arrays.pairs() == [(0, 2)]
        assert arrays.workers() == [7]
        # Winner 2 is the *high* object of the canonical pair, so the
        # "low preferred" indicator is 0.
        assert arrays.value.tolist() == [0.0]
        assert arrays.to_votes() == tuple(votes.votes)

    def test_duplicate_pair_votes_keep_order(self):
        raw = [
            Vote(worker=0, winner=1, loser=0),
            Vote(worker=1, winner=0, loser=1),
            Vote(worker=0, winner=1, loser=0),
        ]
        votes = VoteSet.from_votes(2, raw)
        arrays = votes.arrays()
        assert arrays.n_pairs == 1
        assert arrays.n_votes == 3
        # Round trip preserves the original vote order exactly.
        assert arrays.to_votes() == tuple(raw)
        assert arrays.value.tolist() == [0.0, 1.0, 0.0]

    def test_round_trip_random_vote_set(self):
        votes = _votes_for(10, 0)
        arrays = votes.arrays()
        assert arrays.to_votes() == tuple(votes.votes)
        rebuilt = arrays.to_vote_set()
        assert rebuilt.n_objects == votes.n_objects
        assert rebuilt.votes == votes.votes

    def test_pair_table_sorted_and_canonical(self):
        votes = _votes_for(10, 1)
        arrays = votes.arrays()
        pairs = arrays.pairs()
        assert pairs == sorted(pairs)
        assert all(lo < hi for lo, hi in pairs)
        # Index maps agree with the tables.
        assert [arrays.pair_index()[p] for p in pairs] == list(
            range(arrays.n_pairs)
        )

    def test_value_encodes_low_preferred(self):
        votes = _votes_for(8, 2)
        arrays = votes.arrays()
        for k, vote in enumerate(votes.votes):
            lo, hi = min(vote.winner, vote.loser), max(vote.winner, vote.loser)
            assert arrays.pair_lo[arrays.pair_idx[k]] == lo
            assert arrays.pair_hi[arrays.pair_idx[k]] == hi
            assert arrays.value[k] == (1.0 if vote.winner == lo else 0.0)

    def test_arrays_cached_on_vote_set(self):
        votes = _votes_for(5, 0)
        assert votes.arrays() is votes.arrays()

    def test_cached_accessors_consistent_with_arrays(self):
        votes = _votes_for(8, 3)
        arrays = votes.arrays()
        assert votes.pairs() == arrays.pairs()
        assert votes.workers() == arrays.workers()
        assert votes.by_pair() is votes.by_pair()  # memoized

    def test_from_votes_direct(self):
        raw = (
            Vote(worker=3, winner=0, loser=1),
            Vote(worker=4, winner=2, loser=1),
        )
        arrays = VoteArrays.from_votes(3, raw)
        assert arrays.pairs() == [(0, 1), (1, 2)]
        assert arrays.workers() == [3, 4]
        assert arrays.n_objects == 3
