"""Tests for smaller branches not covered elsewhere."""

import numpy as np
import pytest

from repro.baselines import CrowdBT, CrowdBTConfig, crowd_bt_rank
from repro.experiments.reporting import format_series
from repro.experiments.runner import ExperimentRecord
from repro.metrics import ranking_accuracy
from repro.platform import InteractivePlatform
from repro.types import Ranking
from repro.workers import QualityLevel, WorkerPool, gaussian_preset


class TestCrowdBTSampledScan:
    """The integer ``candidate_pairs`` branch (sampled active selection)."""

    def test_sampled_selection_valid_pairs(self):
        model = CrowdBT(8, 3, CrowdBTConfig(candidate_pairs=10), rng=0)
        for _ in range(25):
            i, j = model.select_pair()
            assert i != j
            assert 0 <= i < 8 and 0 <= j < 8

    def test_sampled_end_to_end(self):
        truth = Ranking.random(10, rng=21)
        pool = WorkerPool.from_distribution(
            6, gaussian_preset(QualityLevel.HIGH), rng=21
        )
        platform = InteractivePlatform(pool, truth, budget=5.0,
                                       reward=0.025, rng=21)
        ranking = crowd_bt_rank(
            platform, n_workers=6,
            config=CrowdBTConfig(candidate_pairs=25), rng=21,
        )
        assert ranking_accuracy(ranking, truth) > 0.8

    def test_full_scan_argmax_matches_bruteforce(self):
        """The vectorised full scan must pick the same pair as a naive
        loop over all ordered pairs."""
        model = CrowdBT(6, 2, rng=3)
        model.mu[:] = np.array([2.0, 1.0, 0.5, 0.0, -1.0, -2.0])
        model.var[:] = np.array([1.0, 0.5, 2.0, 0.1, 1.0, 0.3])
        best_pair, best_gain = None, -1.0
        for i in range(6):
            for j in range(6):
                if i == j:
                    continue
                gain = model._expected_gain(i, j)
                if gain > best_gain:
                    best_gain, best_pair = gain, (i, j)
        assert model._full_scan_pair() == best_pair


class TestFormatSeriesEdgeCases:
    def test_no_group_by_single_series(self):
        records = [
            ExperimentRecord("saps", 10, r, 3, "g", a, 0.0)
            for r, a in [(0.5, 0.9), (0.1, 0.8)]
        ]
        text = format_series(records, x="r", y="accuracy")
        assert "series:" in text
        # Points sorted by x regardless of input order.
        assert text.index("0.1:0.8") < text.index("0.5:0.9")

    def test_missing_y_renders_nan_or_none(self):
        records = [ExperimentRecord("a", 5, 0.5, 2, "q", float("nan"), 0.0)]
        text = format_series(records, x="r", y="accuracy")
        assert "nan" in text


class TestSAPSReportExposure:
    def test_iterations_scaling_reported(self):
        from repro.config import SAPSConfig
        from repro.inference.saps import saps_search_report

        n = 120
        matrix = np.full((n, n), 0.4)
        for i in range(n):
            for j in range(i + 1, n):
                matrix[i, j] = 0.6
        np.fill_diagonal(matrix, 0.0)
        config = SAPSConfig(iterations=1000, restarts=1,
                            scale_with_objects=True)
        report = saps_search_report(matrix, config, rng=0)
        assert report.iterations_per_restart == 1200  # 1000 * 120/100

    def test_scaling_disabled(self):
        from repro.config import SAPSConfig
        from repro.inference.saps import saps_search_report

        n = 120
        matrix = np.full((n, n), 0.4)
        for i in range(n):
            for j in range(i + 1, n):
                matrix[i, j] = 0.6
        np.fill_diagonal(matrix, 0.0)
        config = SAPSConfig(iterations=1000, restarts=1,
                            scale_with_objects=False)
        report = saps_search_report(matrix, config, rng=0)
        assert report.iterations_per_restart == 1000
