"""Unit tests for repro.budget (model + planner)."""

import pytest

from repro.budget import (
    BudgetModel,
    BudgetPlan,
    plan_for_budget,
    plan_for_selection_ratio,
)
from repro.exceptions import BudgetError


class TestBudgetModel:
    def test_paper_formula(self):
        """l = floor(B / (w * r))."""
        model = BudgetModel(total=10.0, workers_per_task=5, reward=0.025)
        assert model.affordable_comparisons() == 80

    def test_floor_behaviour(self):
        model = BudgetModel(total=0.99, workers_per_task=2, reward=0.25)
        assert model.affordable_comparisons() == 1

    def test_cost_per_comparison(self):
        model = BudgetModel(total=1.0, workers_per_task=4, reward=0.025)
        assert model.cost_per_comparison == pytest.approx(0.1)

    def test_cost_of_and_can_afford(self):
        model = BudgetModel(total=1.0, workers_per_task=4, reward=0.025)
        assert model.cost_of(10) == pytest.approx(1.0)
        assert model.can_afford(10)
        assert not model.can_afford(11)

    def test_validation(self):
        with pytest.raises(BudgetError):
            BudgetModel(total=-1, workers_per_task=1)
        with pytest.raises(BudgetError):
            BudgetModel(total=1, workers_per_task=0)
        with pytest.raises(BudgetError):
            BudgetModel(total=1, workers_per_task=1, reward=0.0)
        with pytest.raises(BudgetError):
            BudgetModel(total=1, workers_per_task=1).cost_of(-1)

    def test_required_budget_is_exact(self):
        model = BudgetModel.required_budget(45, workers_per_task=5)
        assert model.affordable_comparisons() == 45

    def test_selection_ratio(self):
        model = BudgetModel.required_budget(45, workers_per_task=5)
        assert model.selection_ratio(10) == pytest.approx(1.0)
        model_small = BudgetModel.required_budget(9, workers_per_task=5)
        assert model_small.selection_ratio(10) == pytest.approx(0.2)

    def test_selection_ratio_clipped_at_one(self):
        model = BudgetModel(total=1e6, workers_per_task=1, reward=0.01)
        assert model.selection_ratio(10) == 1.0


class TestBudgetPlan:
    def test_properties(self):
        plan = plan_for_selection_ratio(10, 0.5, workers_per_task=3)
        assert plan.n_comparisons == 22  # round(0.5 * 45)
        assert plan.selection_ratio == pytest.approx(22 / 45)
        assert plan.total_votes == 66
        assert plan.spend == pytest.approx(plan.budget.total)

    def test_infeasible_count_rejected(self):
        budget = BudgetModel.required_budget(100, workers_per_task=1)
        with pytest.raises(BudgetError):
            BudgetPlan(n_objects=10, n_comparisons=46, budget=budget)
        with pytest.raises(BudgetError):
            BudgetPlan(n_objects=10, n_comparisons=8, budget=budget)

    def test_unaffordable_rejected(self):
        budget = BudgetModel.required_budget(10, workers_per_task=1)
        with pytest.raises(BudgetError):
            BudgetPlan(n_objects=10, n_comparisons=20, budget=budget)


class TestPlanForBudget:
    def test_clips_to_all_pairs(self):
        budget = BudgetModel(total=1e6, workers_per_task=1, reward=0.01)
        plan = plan_for_budget(10, budget)
        assert plan.n_comparisons == 45

    def test_too_small_budget_rejected(self):
        budget = BudgetModel(total=0.05, workers_per_task=1, reward=0.025)
        with pytest.raises(BudgetError):
            plan_for_budget(10, budget)

    def test_exact_minimum(self):
        budget = BudgetModel.required_budget(9, workers_per_task=1)
        plan = plan_for_budget(10, budget)
        assert plan.n_comparisons == 9


class TestPlanForSelectionRatio:
    def test_ratio_one_is_all_pairs(self):
        plan = plan_for_selection_ratio(10, 1.0, workers_per_task=2)
        assert plan.n_comparisons == 45

    def test_tiny_ratio_clipped_to_spanning(self):
        plan = plan_for_selection_ratio(10, 0.01, workers_per_task=2)
        assert plan.n_comparisons == 9  # n - 1 floor

    def test_invalid_ratio(self):
        with pytest.raises(BudgetError):
            plan_for_selection_ratio(10, 0.0, workers_per_task=2)
        with pytest.raises(BudgetError):
            plan_for_selection_ratio(10, 1.2, workers_per_task=2)

    def test_budget_matches_spend(self):
        plan = plan_for_selection_ratio(20, 0.3, workers_per_task=4, reward=0.05)
        assert plan.budget.total == pytest.approx(plan.n_comparisons * 4 * 0.05)
