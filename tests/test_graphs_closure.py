"""Unit tests for repro.graphs.closure (propagation kernels)."""

import numpy as np
import pytest

from repro.exceptions import GraphError
from repro.graphs import WeightedDigraph
from repro.graphs.closure import (
    propagate_exact_paths,
    propagate_walks,
    transitive_closure_bool,
)


@pytest.fixture
def chain():
    """0 -> 1 -> 2 -> 3 with distinct weights."""
    graph = WeightedDigraph(4)
    graph.add_edge(0, 1, 0.9)
    graph.add_edge(1, 2, 0.8)
    graph.add_edge(2, 3, 0.7)
    return graph


class TestTransitiveClosureBool:
    def test_chain_reachability(self, chain):
        closure = transitive_closure_bool(chain)
        assert closure[0, 3]
        assert closure[0, 2]
        assert not closure[3, 0]
        assert not closure[0, 0]

    def test_cycle_reaches_everything(self):
        graph = WeightedDigraph(3)
        graph.add_edge(0, 1, 1.0)
        graph.add_edge(1, 2, 1.0)
        graph.add_edge(2, 0, 1.0)
        closure = transitive_closure_bool(graph)
        off_diagonal = ~np.eye(3, dtype=bool)
        assert closure[off_diagonal].all()


class TestPropagateExactPaths:
    def test_chain_products(self, chain):
        indirect = propagate_exact_paths(chain)
        assert indirect[0, 2] == pytest.approx(0.9 * 0.8)
        assert indirect[0, 3] == pytest.approx(0.9 * 0.8 * 0.7)
        # Direct edges (length-1) are excluded.
        assert indirect[0, 1] == 0.0

    def test_multiple_paths_summed(self):
        """Two parallel 2-hop paths from 0 to 3."""
        graph = WeightedDigraph(4)
        graph.add_edge(0, 1, 0.5)
        graph.add_edge(1, 3, 0.5)
        graph.add_edge(0, 2, 0.4)
        graph.add_edge(2, 3, 0.4)
        indirect = propagate_exact_paths(graph)
        assert indirect[0, 3] == pytest.approx(0.5 * 0.5 + 0.4 * 0.4)

    def test_length_cap_respected(self, chain):
        indirect = propagate_exact_paths(chain, max_length=2)
        assert indirect[0, 2] > 0.0
        assert indirect[0, 3] == 0.0  # needs 3 hops

    def test_simple_paths_only(self):
        """A cycle must not contribute revisiting paths."""
        graph = WeightedDigraph(3)
        graph.add_edge(0, 1, 0.5)
        graph.add_edge(1, 0, 0.5)
        graph.add_edge(1, 2, 0.5)
        indirect = propagate_exact_paths(graph)
        # Only path 0 -> 1 -> 2 (0 -> 1 -> 0 -> 1 -> 2 revisits).
        assert indirect[0, 2] == pytest.approx(0.25)

    def test_size_guard(self):
        graph = WeightedDigraph(20)
        with pytest.raises(GraphError):
            propagate_exact_paths(graph, max_vertices=14)

    def test_bad_length(self, chain):
        with pytest.raises(GraphError):
            propagate_exact_paths(chain, max_length=1)


class TestPropagateWalks:
    def test_matches_exact_on_dag(self, chain):
        """On a DAG all walks are simple paths, so kernels agree."""
        walks = propagate_walks(chain.weight_matrix(), max_hops=3)
        exact = propagate_exact_paths(chain)
        assert np.allclose(walks, exact)

    def test_walks_include_revisits_on_cycles(self):
        """The 3-hop walk 1 -> 0 -> 1 -> 2 revisits vertex 1, so the walk
        kernel sees evidence for (1, 2) that simple-path enumeration
        excludes."""
        graph = WeightedDigraph(4)
        graph.add_edge(0, 1, 0.5)
        graph.add_edge(1, 0, 0.5)
        graph.add_edge(1, 2, 0.5)
        graph.add_edge(2, 3, 0.5)
        walks = propagate_walks(graph.weight_matrix(), max_hops=3)
        exact = propagate_exact_paths(graph)
        assert walks[1, 2] > exact[1, 2]

    def test_hop_bound(self, chain):
        walks = propagate_walks(chain.weight_matrix(), max_hops=2)
        assert walks[0, 3] == 0.0
        walks3 = propagate_walks(chain.weight_matrix(), max_hops=3)
        assert walks3[0, 3] > 0.0

    def test_ensure_coverage_extends(self):
        """A 6-chain at max_hops=2 misses the far pair unless coverage
        extension kicks in."""
        n = 6
        graph = WeightedDigraph(n)
        for i in range(n - 1):
            graph.add_edge(i, i + 1, 0.9)
        limited = propagate_walks(graph.weight_matrix(), 2, ensure_coverage=False)
        assert limited[0, n - 1] == 0.0
        covered = propagate_walks(graph.weight_matrix(), 2, ensure_coverage=True)
        assert covered[0, n - 1] > 0.0

    def test_ensure_coverage_matches_per_hop_recheck(self):
        """The hoisted loop-invariant reachability must not change the
        result: extend hop by hop with a per-iteration uncovered-pair
        check and compare."""
        from repro.graphs.closure import _reachability

        n = 9
        graph = WeightedDigraph(n)
        for i in range(n - 1):
            graph.add_edge(i, i + 1, 0.8)
        graph.add_edge(4, 1, 0.3)  # a back edge so walks can revisit
        weights = graph.weight_matrix()
        max_hops = 2

        # Pre-hoist semantics: re-derive the uncovered set every
        # extension hop (reachability itself is loop-invariant).
        reachable = _reachability(weights) & ~np.eye(n, dtype=bool)
        power = weights.copy()
        expected = np.zeros_like(weights)
        hop = 1
        while hop < max_hops:
            power = power @ weights
            hop += 1
            expected += power
        while hop < n - 1 and bool(
            np.any(reachable & (expected + weights <= 0.0))
        ):
            power = power @ weights
            hop += 1
            expected += power
        np.fill_diagonal(expected, 0.0)

        covered = propagate_walks(weights, max_hops, ensure_coverage=True)
        assert np.array_equal(covered, expected)

    def test_ensure_coverage_computes_reachability_once(self, monkeypatch):
        """Reachability is loop-invariant: one call per propagate_walks,
        no matter how many extension hops run."""
        import repro.graphs.closure as closure_mod

        n = 10
        graph = WeightedDigraph(n)
        for i in range(n - 1):
            graph.add_edge(i, i + 1, 0.9)

        calls = {"count": 0}
        real = closure_mod._reachability

        def counting(weights):
            calls["count"] += 1
            return real(weights)

        monkeypatch.setattr(closure_mod, "_reachability", counting)
        covered = propagate_walks(graph.weight_matrix(), 2,
                                  ensure_coverage=True)
        # The 10-chain needs many extension hops to cover (0, 9) ...
        assert covered[0, n - 1] > 0.0
        # ... yet reachability was derived exactly once.
        assert calls["count"] == 1

    def test_zero_diagonal(self, chain):
        walks = propagate_walks(chain.weight_matrix(), max_hops=3)
        assert np.all(np.diagonal(walks) == 0.0)

    def test_validation(self):
        with pytest.raises(GraphError):
            propagate_walks(np.ones((2, 3)), 2)
        with pytest.raises(GraphError):
            propagate_walks(np.zeros((3, 3)), 1)
