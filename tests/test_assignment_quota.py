"""Unit tests for workload-capped HIT assignment."""

import pytest

from repro.assignment import assign_hits, generate_assignment
from repro.budget import plan_for_selection_ratio
from repro.exceptions import AssignmentError


@pytest.fixture
def assignment():
    plan = plan_for_selection_ratio(10, 0.5, workers_per_task=3)
    return generate_assignment(plan, rng=5)


class TestQuotaAssignment:
    def test_quota_respected(self, assignment):
        quota = 10
        worker_assignment = assign_hits(
            assignment, n_workers=10, workers_per_hit=3, rng=1,
            max_comparisons_per_worker=quota,
        )
        workload = worker_assignment.workload()
        assert all(load <= quota for load in workload.values())

    def test_total_votes_unchanged(self, assignment):
        worker_assignment = assign_hits(
            assignment, n_workers=10, workers_per_hit=3, rng=1,
            max_comparisons_per_worker=10,
        )
        assert worker_assignment.total_votes == 22 * 3

    def test_load_balanced(self, assignment):
        """Least-loaded strategy keeps the spread tight: with quota off
        by plenty, loads differ by at most one HIT's cost."""
        worker_assignment = assign_hits(
            assignment, n_workers=10, workers_per_hit=3, rng=1,
            max_comparisons_per_worker=100,
        )
        loads = list(worker_assignment.workload().values())
        assert max(loads) - min(loads) <= 1

    def test_exact_quota_feasible(self, assignment):
        """m * quota == total needed: everyone works exactly quota."""
        total = 22 * 3
        n_workers = 11
        quota = total // n_workers  # 6
        worker_assignment = assign_hits(
            assignment, n_workers=n_workers, workers_per_hit=3, rng=2,
            max_comparisons_per_worker=quota,
        )
        workload = worker_assignment.workload()
        assert all(load == quota for load in workload.values())

    def test_infeasible_quota_rejected(self, assignment):
        with pytest.raises(AssignmentError):
            assign_hits(assignment, n_workers=5, workers_per_hit=3, rng=1,
                        max_comparisons_per_worker=2)

    def test_zero_quota_rejected(self, assignment):
        with pytest.raises(AssignmentError):
            assign_hits(assignment, n_workers=10, workers_per_hit=3, rng=1,
                        max_comparisons_per_worker=0)

    def test_distinct_workers_per_hit(self, assignment):
        worker_assignment = assign_hits(
            assignment, n_workers=6, workers_per_hit=3, rng=3,
            max_comparisons_per_worker=15,
        )
        for workers in worker_assignment.hit_workers:
            assert len(set(workers)) == 3

    def test_bundled_hits_fragmentation_detected(self):
        """c = 4 bundles with a tiny per-worker quota: aggregate budget
        fits but no worker can take a whole HIT -> explicit error."""
        plan = plan_for_selection_ratio(9, 1.0, workers_per_task=2)
        assignment = generate_assignment(plan, rng=7, comparisons_per_hit=4)
        with pytest.raises(AssignmentError):
            assign_hits(assignment, n_workers=36, workers_per_hit=2, rng=7,
                        max_comparisons_per_worker=3)

    def test_end_to_end_with_quota(self, assignment):
        from repro.config import FAST_PIPELINE
        from repro.inference import infer_ranking
        from repro.platform import NonInteractivePlatform
        from repro.types import Ranking
        from repro.workers import (QualityLevel, WorkerPool,
                                   gaussian_preset)

        truth = Ranking.random(10, rng=5)
        pool = WorkerPool.from_distribution(
            10, gaussian_preset(QualityLevel.HIGH), rng=5
        )
        worker_assignment = assign_hits(
            assignment, n_workers=10, workers_per_hit=3, rng=5,
            max_comparisons_per_worker=8,
        )
        run = NonInteractivePlatform(pool, truth).run(worker_assignment)
        result = infer_ranking(run.votes, FAST_PIPELINE, rng=5)
        assert sorted(result.ranking.order) == list(range(10))
