"""CLI tests for ``repro serve``: real process, real signals."""

import json
import os
import re
import signal
import subprocess
import sys
import time
import urllib.request
from pathlib import Path
from queue import Empty, Queue
from threading import Thread

import pytest

import repro

SRC_DIR = str(Path(repro.__file__).resolve().parents[1])


def _spawn_server(*extra_args):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--workers", "1", *extra_args],
        stderr=subprocess.PIPE,
        text=True,
        env=env,
    )


def _await_url(process, timeout=60.0):
    """Read stderr until the 'serving on ...' line; returns the URL."""
    lines = Queue()

    def pump():
        for line in process.stderr:
            lines.put(line)

    Thread(target=pump, daemon=True).start()
    deadline = time.monotonic() + timeout
    seen = []
    while time.monotonic() < deadline:
        try:
            line = lines.get(timeout=0.5)
        except Empty:
            if process.poll() is not None:
                break
            continue
        seen.append(line)
        match = re.search(r"serving on (http://\S+)", line)
        if match:
            return match.group(1)
    pytest.fail(f"server never announced its address; stderr: {seen!r}")


@pytest.fixture
def serve_process():
    process = _spawn_server()
    yield process
    if process.poll() is None:
        process.kill()
        process.wait(timeout=10)


class TestServeCommand:
    def test_sigterm_drains_and_exits_zero(self, serve_process):
        url = _await_url(serve_process)

        # The advertised endpoint answers a real round trip.
        body = json.dumps({
            "job_id": "cli-e2e", "seed": 5,
            "scenario": {"n_objects": 8, "selection_ratio": 0.5,
                         "n_workers": 6, "workers_per_task": 5},
        }).encode()
        request = urllib.request.Request(
            url + "/v1/rank", data=body,
            headers={"Content-Type": "application/json"}, method="POST",
        )
        with urllib.request.urlopen(request, timeout=60) as response:
            payload = json.loads(response.read())
        assert payload["status"] == "succeeded"
        assert sorted(payload["ranking"]) == list(range(8))

        serve_process.send_signal(signal.SIGTERM)
        assert serve_process.wait(timeout=60) == 0

    def test_sigint_also_stops_cleanly(self, serve_process):
        _await_url(serve_process)
        serve_process.send_signal(signal.SIGINT)
        assert serve_process.wait(timeout=60) == 0

    def test_bad_flags_exit_2(self):
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
        completed = subprocess.run(
            [sys.executable, "-m", "repro", "serve", "--workers", "0",
             "--port", "0"],
            capture_output=True, text=True, env=env, timeout=120,
        )
        assert completed.returncode == 2
        assert "workers" in completed.stderr
