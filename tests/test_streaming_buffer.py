"""Tests for the append-only incremental vote builder.

The load-bearing property is *bit-identity*: a buffer grown one vote at
a time must snapshot to exactly the arrays the frozen batch constructor
(:meth:`repro.types.VoteArrays.from_votes`) would build from the same
votes — same values, same dtypes, same pair-table ordering — so every
downstream kernel sees inputs indistinguishable from a batch run.
"""

import dataclasses

import numpy as np
import pytest

from repro.datasets import make_scenario
from repro.exceptions import ConfigurationError
from repro.experiments.runner import collect_votes
from repro.streaming import VoteBuffer
from repro.types import Vote, VoteArrays

ARRAY_FIELDS = [f.name for f in dataclasses.fields(VoteArrays)
                if f.name != "n_objects"]


def _random_votes(n_objects, n_votes, n_workers, rng):
    votes = []
    for _ in range(n_votes):
        a, b = rng.choice(n_objects, size=2, replace=False)
        votes.append(Vote(worker=int(rng.integers(n_workers)),
                          winner=int(a), loser=int(b)))
    return votes


def assert_arrays_identical(actual, expected):
    assert actual.n_objects == expected.n_objects
    for name in ARRAY_FIELDS:
        got, want = getattr(actual, name), getattr(expected, name)
        assert got.dtype == want.dtype, name
        np.testing.assert_array_equal(got, want, err_msg=name)


class TestBitIdentity:
    def test_one_at_a_time_matches_batch_constructor(self, rng):
        votes = _random_votes(15, 500, 12, rng)
        buffer = VoteBuffer(15)
        for vote in votes:
            buffer.append(vote)
        assert_arrays_identical(buffer.snapshot(),
                                VoteArrays.from_votes(15, votes))

    def test_every_prefix_matches(self, rng):
        """Snapshots taken mid-stream equal the batch build of the
        prefix — pair/worker tables re-sort correctly as ids arrive in
        arbitrary order."""
        votes = _random_votes(8, 120, 6, rng)
        buffer = VoteBuffer(8)
        for count, vote in enumerate(votes, 1):
            buffer.append(vote)
            if count % 17 == 0 or count == len(votes):
                assert_arrays_identical(
                    buffer.snapshot(),
                    VoteArrays.from_votes(8, votes[:count]),
                )

    def test_scenario_votes_roundtrip(self):
        scenario = make_scenario(12, 0.6, n_workers=10, rng=3)
        votes = collect_votes(scenario, rng=3).votes
        buffer = VoteBuffer(12)
        buffer.extend(votes)
        assert_arrays_identical(buffer.snapshot(),
                                VoteArrays.from_votes(12, list(votes)))

    def test_to_vote_set_primes_memo_with_snapshot(self, rng):
        """``to_vote_set`` must hand the batch pipeline a VoteSet whose
        columnar view IS the buffer snapshot (no rebuild, no skew)."""
        buffer = VoteBuffer(10)
        buffer.extend(_random_votes(10, 64, 5, rng))
        snapshot = buffer.snapshot()
        vote_set = buffer.to_vote_set()
        assert vote_set.arrays() is snapshot
        assert vote_set.n_objects == 10
        assert len(vote_set) == 64


class TestGrowthAndCaching:
    def test_growth_past_initial_capacity(self, rng):
        votes = _random_votes(6, 1000, 4, rng)  # >> the 64-slot floor
        buffer = VoteBuffer(6)
        assert buffer.extend(votes) == 1000
        assert len(buffer) == 1000
        assert buffer.votes() == tuple(votes)

    def test_snapshot_cached_until_append(self, rng):
        buffer = VoteBuffer(5)
        buffer.extend(_random_votes(5, 10, 3, rng))
        first = buffer.snapshot()
        assert buffer.snapshot() is first
        buffer.append(Vote(worker=0, winner=0, loser=1))
        second = buffer.snapshot()
        assert second is not first
        assert len(second.winner) == 11
        # The stale snapshot is untouched (rows are write-once).
        assert len(first.winner) == 10

    def test_counters(self, rng):
        buffer = VoteBuffer(5)
        buffer.extend([Vote(worker=7, winner=0, loser=1),
                       Vote(worker=7, winner=1, loser=2),
                       Vote(worker=9, winner=0, loser=1)])
        assert buffer.n_votes == 3
        assert buffer.n_pairs == 2
        assert buffer.n_workers == 2


class TestValidation:
    @pytest.mark.parametrize("vote", [
        Vote(worker=0, winner=5, loser=1),
        Vote(worker=0, winner=0, loser=5),
    ])
    def test_out_of_range_object_rejected(self, vote):
        buffer = VoteBuffer(5)
        with pytest.raises(ConfigurationError):
            buffer.append(vote)

    def test_n_objects_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            VoteBuffer(0)
