"""Unit tests for repro.inference.taps (TAPS + branch and bound)."""

import itertools
import math

import numpy as np
import pytest

from repro.config import TAPSConfig
from repro.exceptions import InferenceError
from repro.inference.taps import branch_and_bound_search, taps_search
from repro.types import Ranking


def random_closure(n, seed):
    """A random complete pair-normalised weight matrix."""
    rng = np.random.default_rng(seed)
    matrix = np.zeros((n, n))
    for i in range(n):
        for j in range(i + 1, n):
            p = rng.uniform(0.05, 0.95)
            matrix[i, j] = p
            matrix[j, i] = 1.0 - p
    return matrix


def brute_force_best(matrix):
    n = matrix.shape[0]
    best_prob, best_paths = -1.0, []
    for perm in itertools.permutations(range(n)):
        prob = 1.0
        for u, v in zip(perm, perm[1:]):
            prob *= matrix[u, v]
        if prob > best_prob:
            best_prob, best_paths = prob, [perm]
        elif prob == best_prob:
            best_paths.append(perm)
    return best_paths, best_prob


class TestTAPS:
    @pytest.mark.parametrize("n", [2, 3, 4, 5, 6])
    @pytest.mark.parametrize("seed", [0, 1])
    def test_matches_brute_force(self, n, seed):
        matrix = random_closure(n, seed)
        result, probability = taps_search(matrix)
        brute_paths, brute_prob = brute_force_best(matrix)
        assert probability == pytest.approx(brute_prob)
        assert result[0].order in brute_paths

    def test_tie_paths_all_attain_max(self):
        """A symmetric 0.5 matrix ties every path; TAPS halts as soon as
        ``max >= theta`` (paper Step 2), so the output contains the tie
        paths *seen* so far — each must attain the exact maximum."""
        n = 3
        matrix = np.full((n, n), 0.5)
        np.fill_diagonal(matrix, 0.0)
        result, probability = taps_search(matrix)
        assert probability == pytest.approx(0.25)
        assert len(result) >= 1
        for ranking in result:
            prob = 1.0
            for u, v in zip(ranking.order, ranking.order[1:]):
                prob *= matrix[u, v]
            assert prob == pytest.approx(probability)

    def test_early_termination_possible(self):
        """A sharply dominant path should be confirmed quickly; we only
        assert correctness here (the speedup is a benchmark concern)."""
        n = 5
        matrix = np.full((n, n), 0.05)
        for i in range(n - 1):
            matrix[i, i + 1] = 0.95
        np.fill_diagonal(matrix, 0.0)
        result, _ = taps_search(matrix)
        assert result[0] == Ranking(range(n))

    def test_size_guard(self):
        matrix = random_closure(10, 0)
        with pytest.raises(InferenceError):
            taps_search(matrix, TAPSConfig(max_objects=9))

    def test_single_object(self):
        result, probability = taps_search(np.zeros((1, 1)))
        assert result[0] == Ranking([0])
        assert probability == 1.0

    def test_graph_input_accepted(self):
        from repro.graphs import PreferenceGraph

        graph = PreferenceGraph(3)
        for i in range(3):
            for j in range(3):
                if i != j:
                    graph.add_edge(i, j, 0.9 if i < j else 0.1)
        result, _ = taps_search(graph)
        assert result[0] == Ranking([0, 1, 2])


class TestBranchAndBound:
    @pytest.mark.parametrize("n", [2, 4, 6, 7])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matches_brute_force(self, n, seed):
        matrix = random_closure(n, seed)
        ranking, log_prob = branch_and_bound_search(matrix)
        _, brute_prob = brute_force_best(matrix)
        assert math.exp(log_prob) == pytest.approx(brute_prob)

    def test_agrees_with_taps(self):
        matrix = random_closure(6, 3)
        taps_result, taps_prob = taps_search(matrix)
        bnb_ranking, bnb_log = branch_and_bound_search(matrix)
        assert math.exp(bnb_log) == pytest.approx(taps_prob)

    def test_handles_moderate_n(self):
        """Sharp instances stay fast well past TAPS territory."""
        n = 20
        matrix = np.full((n, n), 0.1)
        for i in range(n):
            for j in range(i + 1, n):
                matrix[i, j] = 0.9
        np.fill_diagonal(matrix, 0.0)
        ranking, _ = branch_and_bound_search(matrix)
        assert ranking == Ranking(range(n))

    def test_size_guard(self):
        with pytest.raises(InferenceError):
            branch_and_bound_search(np.zeros((40, 40)), max_objects=30)

    def test_no_path_raises(self):
        matrix = np.zeros((3, 3))
        matrix[0, 1] = 0.5  # vertex 2 unreachable
        with pytest.raises(InferenceError):
            branch_and_bound_search(matrix)

    def test_single_object(self):
        ranking, log_prob = branch_and_bound_search(np.zeros((1, 1)))
        assert ranking == Ranking([0])
        assert log_prob == 0.0
