"""Tests for the ``repro stream`` CLI subcommand (JSONL vote replay)."""

import json

import pytest

from repro.cli import main
from repro.datasets import make_scenario
from repro.experiments.runner import collect_votes
from repro.io import load_payload
from repro.streaming import SESSION_SCHEMA, session_from_payload

FAST_ARGS = ["--warm-iterations", "500"]


@pytest.fixture(scope="module")
def vote_log(tmp_path_factory):
    scenario = make_scenario(10, 0.6, n_workers=8, rng=5)
    votes = collect_votes(scenario, rng=5).votes
    path = tmp_path_factory.mktemp("stream") / "votes.jsonl"
    with open(path, "w") as handle:
        for vote in votes:
            handle.write(
                json.dumps([vote.worker, vote.winner, vote.loser]) + "\n"
            )
    return str(path), len(votes)


class TestLocalReplay:
    def test_json_output(self, vote_log, capsys):
        path, total = vote_log
        assert main(["stream", path, "--n-objects", "10",
                     "--chunk", "20", "--no-early-stop",
                     *FAST_ARGS, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["votes_replayed"] == total
        assert payload["votes_total"] == total
        assert sorted(payload["ranking"]) == list(range(10))
        assert payload["updates"]["full"] == 1

    def test_human_output(self, vote_log, capsys):
        path, total = vote_log
        assert main(["stream", path, "--n-objects", "10",
                     "--chunk", "30", "--no-early-stop",
                     *FAST_ARGS]) == 0
        captured = capsys.readouterr()
        assert f"replayed {total}/{total} votes" in captured.out
        assert "ranking (most preferred first)" in captured.out
        assert "verdict=" in captured.err  # per-update progress

    def test_early_stop_saves_votes(self, vote_log, capsys):
        path, total = vote_log
        assert main(["stream", path, "--n-objects", "10",
                     "--chunk", "10", "--threshold", "0.1",
                     "--window", "3", "--min-votes", "40",
                     "--warm-iterations", "1000", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["verdict"] == "stopped"
        assert payload["votes_replayed"] < total

    def test_save_session_snapshot(self, vote_log, tmp_path, capsys):
        path, total = vote_log
        out = tmp_path / "session.json"
        assert main(["stream", path, "--n-objects", "10",
                     "--chunk", "40", "--no-early-stop", *FAST_ARGS,
                     "--save-session", str(out)]) == 0
        payload = load_payload(out, schema=SESSION_SCHEMA)
        restored = session_from_payload(payload)
        assert restored.votes_ingested == total

    def test_stdin_replay(self, vote_log, capsys, monkeypatch):
        import io as _io
        import sys

        path, total = vote_log
        with open(path) as handle:
            monkeypatch.setattr(sys, "stdin", _io.StringIO(handle.read()))
        assert main(["stream", "-", "--n-objects", "10",
                     "--chunk", "40", "--no-early-stop",
                     *FAST_ARGS, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["votes_replayed"] == total


class TestStreamErrors:
    def test_missing_file(self, capsys):
        assert main(["stream", "/nonexistent/votes.jsonl",
                     "--n-objects", "5"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_malformed_line(self, tmp_path, capsys):
        path = tmp_path / "bad.jsonl"
        path.write_text('[0, 1, 2]\nnot json\n')
        assert main(["stream", str(path), "--n-objects", "5"]) == 2
        assert "bad.jsonl:2" in capsys.readouterr().err

    def test_empty_log(self, tmp_path, capsys):
        path = tmp_path / "empty.jsonl"
        path.write_text("\n")
        assert main(["stream", str(path), "--n-objects", "5"]) == 2

    def test_out_of_range_vote(self, tmp_path, capsys):
        path = tmp_path / "oob.jsonl"
        path.write_text("[0, 9, 1]\n")
        assert main(["stream", str(path), "--n-objects", "5"]) == 2

    def test_bad_chunk(self, vote_log, capsys):
        path, _ = vote_log
        assert main(["stream", path, "--n-objects", "10",
                     "--chunk", "0"]) == 2

    def test_save_session_requires_local(self, vote_log, capsys):
        path, _ = vote_log
        assert main(["stream", path, "--n-objects", "10",
                     "--url", "http://127.0.0.1:1",
                     "--save-session", "x.json"]) == 2
