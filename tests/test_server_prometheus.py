"""Unit tests for the Prometheus text exposition renderer."""

from repro.server import render_prometheus, sanitize_metric_name
from repro.service import MetricsRegistry


class TestSanitize:
    def test_dots_become_underscores(self):
        assert sanitize_metric_name("jobs.succeeded") == "jobs_succeeded"

    def test_invalid_characters_replaced(self):
        assert sanitize_metric_name("http.responses.200") == \
            "http_responses_200"
        assert sanitize_metric_name("a-b c") == "a_b_c"

    def test_leading_digit_prefixed(self):
        assert sanitize_metric_name("200.ok") == "_200_ok"

    def test_empty_name_survives(self):
        assert sanitize_metric_name("") == "_"


class TestRender:
    def test_counters_render_with_type_lines(self):
        registry = MetricsRegistry()
        registry.increment("jobs.succeeded", 5)
        text = render_prometheus(registry.snapshot())
        assert "# TYPE repro_jobs_succeeded_total counter" in text
        assert "repro_jobs_succeeded_total 5" in text
        assert text.endswith("\n")

    def test_timers_render_as_summaries_with_quantiles(self):
        registry = MetricsRegistry()
        for value in (0.1, 0.2, 0.3, 0.4):
            registry.observe("job.seconds", value)
        text = render_prometheus(registry.snapshot())
        assert "# TYPE repro_job_seconds summary" in text
        assert 'repro_job_seconds{quantile="0.5"} 0.2' in text
        assert 'repro_job_seconds{quantile="0.95"} 0.4' in text
        assert 'repro_job_seconds{quantile="0.99"} 0.4' in text
        assert "repro_job_seconds_sum 1.0" in text
        assert "repro_job_seconds_count 4" in text

    def test_derived_and_gauges_render_as_gauges(self):
        registry = MetricsRegistry()
        registry.increment("cache.hits", 3)
        registry.increment("cache.misses", 1)
        text = render_prometheus(
            registry.snapshot(), gauges={"server_inflight": 2.0}
        )
        assert "# TYPE repro_cache_hit_rate gauge" in text
        assert "repro_cache_hit_rate 0.75" in text
        assert "# TYPE repro_server_inflight gauge" in text
        assert "repro_server_inflight 2.0" in text

    def test_custom_prefix(self):
        registry = MetricsRegistry()
        registry.increment("x")
        assert "acme_x_total 1" in render_prometheus(
            registry.snapshot(), prefix="acme"
        )

    def test_empty_snapshot_renders_empty(self):
        assert render_prometheus(MetricsRegistry().snapshot()) == "\n"

    def test_output_is_deterministically_sorted(self):
        registry = MetricsRegistry()
        registry.increment("zeta")
        registry.increment("alpha")
        text = render_prometheus(registry.snapshot())
        assert text.index("repro_alpha_total") < text.index("repro_zeta_total")

    def test_special_floats_use_exposition_spelling(self):
        """All three IEEE specials must render in the text exposition
        format's spelling — Python's repr ("nan"/"-inf") is invalid."""
        text = render_prometheus({}, gauges={
            "pos": float("inf"),
            "neg": float("-inf"),
            "undefined": float("nan"),
        })
        assert "repro_pos +Inf" in text
        assert "repro_neg -Inf" in text
        assert "repro_undefined NaN" in text
        assert "inf\n" not in text and "nan" not in text
