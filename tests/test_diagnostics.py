"""Unit tests for the namespaced logging diagnostics layer."""

import logging

import pytest

from repro.diagnostics import ROOT_LOGGER_NAME, configure_logging, get_logger


@pytest.fixture(autouse=True)
def _clean_repro_handlers():
    """Remove any CLI handlers installed by a test, keep the NullHandler."""
    yield
    root = logging.getLogger(ROOT_LOGGER_NAME)
    for handler in list(root.handlers):
        if getattr(handler, "_repro_cli_handler", False):
            root.removeHandler(handler)
    root.setLevel(logging.NOTSET)


class TestGetLogger:
    def test_root(self):
        assert get_logger().name == "repro"
        assert get_logger("repro").name == "repro"

    def test_suffix_is_namespaced(self):
        assert get_logger("service.cache").name == "repro.service.cache"

    def test_dunder_name_passthrough(self):
        assert get_logger("repro.inference.pipeline").name == \
            "repro.inference.pipeline"

    def test_library_is_silent_by_default(self):
        root = logging.getLogger(ROOT_LOGGER_NAME)
        assert any(isinstance(h, logging.NullHandler) for h in root.handlers)


class TestConfigureLogging:
    def test_installs_handler_at_level(self):
        handler = configure_logging(logging.DEBUG)
        root = logging.getLogger(ROOT_LOGGER_NAME)
        assert handler in root.handlers
        assert handler.level == logging.DEBUG

    def test_reconfiguring_replaces_own_handler(self):
        first = configure_logging(logging.INFO)
        second = configure_logging(logging.DEBUG)
        root = logging.getLogger(ROOT_LOGGER_NAME)
        assert first not in root.handlers
        assert second in root.handlers


class TestLibraryEmitsDiagnostics:
    def test_pipeline_logs_step_timings(self, tiny_votes, caplog):
        from repro.inference import infer_ranking

        with caplog.at_level(logging.DEBUG, logger="repro"):
            infer_ranking(tiny_votes, rng=1)
        messages = [r.message for r in caplog.records
                    if r.name == "repro.inference.pipeline"]
        assert any("pipeline done" in m for m in messages)

    def test_batch_executor_logs_lifecycle(self, tiny_votes, caplog):
        from repro.service import BatchExecutor, RankingJob

        job = RankingJob(job_id="log-me", votes=tiny_votes, seed=1)
        with caplog.at_level(logging.INFO, logger="repro"):
            BatchExecutor(workers=1).run([job])
        messages = [r.message for r in caplog.records
                    if r.name == "repro.service.executor"]
        assert any("batch start" in m for m in messages)
        assert any("batch done" in m for m in messages)
