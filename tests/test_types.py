"""Unit tests for repro.types."""

import pytest

from repro.exceptions import ConfigurationError
from repro.types import (
    HIT,
    Ranking,
    Vote,
    VoteSet,
    canonical_pair,
)


class TestCanonicalPair:
    def test_orders_ascending(self):
        assert canonical_pair(5, 2) == (2, 5)
        assert canonical_pair(2, 5) == (2, 5)

    def test_rejects_self_pair(self):
        with pytest.raises(ConfigurationError):
            canonical_pair(3, 3)


class TestVote:
    def test_pair_is_canonical(self):
        assert Vote(worker=0, winner=7, loser=2).pair == (2, 7)

    def test_value_for_winner_first(self):
        vote = Vote(worker=0, winner=1, loser=4)
        assert vote.value_for(1, 4) == 1.0
        assert vote.value_for(4, 1) == 0.0

    def test_value_for_wrong_pair_raises(self):
        vote = Vote(worker=0, winner=1, loser=4)
        with pytest.raises(ConfigurationError):
            vote.value_for(1, 5)

    def test_self_vote_rejected(self):
        with pytest.raises(ConfigurationError):
            Vote(worker=0, winner=2, loser=2)

    def test_votes_are_hashable_and_frozen(self):
        vote = Vote(worker=0, winner=1, loser=2)
        assert vote in {vote}
        with pytest.raises(AttributeError):
            vote.winner = 5  # type: ignore[misc]


class TestHIT:
    def test_len_and_iter(self):
        hit = HIT(hit_id=0, pairs=((0, 1), (2, 3)))
        assert len(hit) == 2
        assert list(hit) == [(0, 1), (2, 3)]

    def test_empty_hit_rejected(self):
        with pytest.raises(ConfigurationError):
            HIT(hit_id=0, pairs=())

    def test_degenerate_pair_rejected(self):
        with pytest.raises(ConfigurationError):
            HIT(hit_id=0, pairs=((1, 1),))

    def test_non_canonical_pair_rejected(self):
        with pytest.raises(ConfigurationError):
            HIT(hit_id=0, pairs=((3, 1),))


class TestRanking:
    def test_position_and_prefers(self):
        ranking = Ranking([2, 0, 1])
        assert ranking.position(2) == 0
        assert ranking.position(1) == 2
        assert ranking.prefers(2, 1)
        assert not ranking.prefers(1, 0)

    def test_duplicate_rejected(self):
        with pytest.raises(ConfigurationError):
            Ranking([0, 1, 1])

    def test_unknown_object_raises(self):
        with pytest.raises(ConfigurationError):
            Ranking([0, 1]).position(9)

    def test_equality_with_sequences(self):
        assert Ranking([1, 0]) == (1, 0)
        assert Ranking([1, 0]) == [1, 0]
        assert Ranking([1, 0]) != Ranking([0, 1])

    def test_hashable(self):
        assert len({Ranking([0, 1]), Ranking([0, 1]), Ranking([1, 0])}) == 2

    def test_pairs_enumerates_ordered_pairs(self):
        assert list(Ranking([2, 0, 1]).pairs()) == [(2, 0), (2, 1), (0, 1)]

    def test_reversed(self):
        assert Ranking([0, 1, 2]).reversed() == Ranking([2, 1, 0])

    def test_restricted_to_preserves_order(self):
        ranking = Ranking([4, 2, 0, 3, 1])
        assert ranking.restricted_to({0, 1, 4}) == Ranking([4, 0, 1])

    def test_identity(self):
        assert Ranking.identity(3) == Ranking([0, 1, 2])

    def test_random_is_permutation(self):
        ranking = Ranking.random(10, rng=0)
        assert sorted(ranking.order) == list(range(10))

    def test_contains(self):
        ranking = Ranking([0, 2, 1])
        assert 2 in ranking
        assert 5 not in ranking

    def test_repr_small_and_large(self):
        assert "Ranking(" in repr(Ranking([0, 1]))
        assert "n=20" in repr(Ranking.identity(20))


class TestVoteSet:
    def test_grouping_by_pair(self, tiny_votes):
        by_pair = tiny_votes.by_pair()
        assert set(by_pair) == {(0, 1), (1, 2), (2, 3), (0, 3)}
        assert len(by_pair[(0, 1)]) == 3

    def test_grouping_by_worker(self, tiny_votes):
        by_worker = tiny_votes.by_worker()
        assert set(by_worker) == {0, 1, 2}
        assert all(len(v) == 4 for v in by_worker.values())

    def test_workers_and_pairs_sorted(self, tiny_votes):
        assert tiny_votes.workers() == [0, 1, 2]
        assert tiny_votes.pairs() == [(0, 1), (0, 3), (1, 2), (2, 3)]

    def test_len_and_iter(self, tiny_votes):
        assert len(tiny_votes) == 12
        assert sum(1 for _ in tiny_votes) == 12

    def test_memoization_detects_out_of_band_mutation(self, tiny_votes):
        """The derived-view caches are sound only because the dataclass
        is frozen; anything that swaps ``votes`` behind the dataclass's
        back must fail loudly, not serve stale views.  Incremental
        accumulation belongs in :class:`repro.streaming.VoteBuffer`."""
        tiny_votes.arrays()  # build the memo table
        object.__setattr__(tiny_votes, "votes", tiny_votes.votes[:3])
        with pytest.raises(ConfigurationError):
            tiny_votes.arrays()
        with pytest.raises(ConfigurationError):
            tiny_votes.by_pair()

    def test_memoized_views_are_cached(self, tiny_votes):
        assert tiny_votes.arrays() is tiny_votes.arrays()
        assert tiny_votes.by_worker() is tiny_votes.by_worker()

    def test_pickle_drops_memo_table(self, tiny_votes):
        import pickle

        tiny_votes.arrays()
        clone = pickle.loads(pickle.dumps(tiny_votes))
        assert "_cache" not in clone.__dict__
        assert clone.votes == tiny_votes.votes
