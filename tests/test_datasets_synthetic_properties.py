"""Property-based tests for the synthetic scenario generators.

Hypothesis draws the scenario knobs; the properties pin the planner /
pool / vote-collection contracts the rest of the suite assumes at fixed
sizes: vote spend never exceeds the plan, worker quality stays in the
model's legal band, and scenarios round-trip through their seed.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.budget import plan_for_selection_ratio
from repro.datasets import make_scenario
from repro.experiments.runner import collect_votes

#: Keep draws small: every example collects votes end-to-end.
N_OBJECTS = st.integers(min_value=3, max_value=14)
RATIO = st.floats(min_value=0.05, max_value=1.0, allow_nan=False)
WORKERS_PER_TASK = st.integers(min_value=1, max_value=4)
SEED = st.integers(min_value=0, max_value=2**32 - 1)


@settings(max_examples=30, deadline=None)
@given(n=N_OBJECTS, ratio=RATIO, w=WORKERS_PER_TASK, seed=SEED)
def test_vote_count_never_exceeds_the_plan(n, ratio, w, seed):
    """Collected votes match the plan exactly and stay under budget."""
    scenario = make_scenario(n, ratio, n_workers=8, workers_per_task=w,
                             rng=seed)
    plan = plan_for_selection_ratio(n, scenario.selection_ratio,
                                    workers_per_task=w)
    votes = collect_votes(scenario, rng=seed)
    assert len(votes) == plan.total_votes
    assert len(votes) <= plan.budget.affordable_comparisons() * w
    # Every vote names a real worker and a real, distinct object pair.
    for vote in votes.votes:
        assert 0 <= vote.worker < 8
        assert 0 <= vote.winner < n
        assert 0 <= vote.loser < n
        assert vote.winner != vote.loser


@settings(max_examples=30, deadline=None)
@given(n_workers=st.integers(min_value=1, max_value=40), seed=SEED,
       quality=st.sampled_from(["gaussian", "uniform"]))
def test_worker_quality_stays_in_the_model_band(n_workers, seed, quality):
    """Expected accuracies live in (0.5, 1]: a simulated worker is
    never a worse-than-coin adversary, and sigmas are non-negative."""
    scenario = make_scenario(6, 0.5, n_workers=n_workers,
                             workers_per_task=1, quality=quality, rng=seed)
    accuracies = scenario.pool.expected_accuracies()
    assert accuracies.shape == (n_workers,)
    assert np.all(accuracies > 0.5)
    assert np.all(accuracies <= 1.0)
    assert np.all(scenario.pool.sigmas() >= 0.0)


@settings(max_examples=30, deadline=None)
@given(n=N_OBJECTS, ratio=RATIO, seed=SEED)
def test_make_scenario_round_trips_through_its_seed(n, ratio, seed):
    """The same seed rebuilds the same scenario, truth through votes."""
    first = make_scenario(n, ratio, n_workers=6, workers_per_task=2,
                          rng=seed)
    second = make_scenario(n, ratio, n_workers=6, workers_per_task=2,
                           rng=seed)
    assert first.ground_truth.order == second.ground_truth.order
    np.testing.assert_array_equal(first.pool.sigmas(),
                                  second.pool.sigmas())
    votes_a = collect_votes(first, rng=7)
    votes_b = collect_votes(second, rng=7)
    assert [(v.worker, v.winner, v.loser) for v in votes_a.votes] \
        == [(v.worker, v.winner, v.loser) for v in votes_b.votes]
