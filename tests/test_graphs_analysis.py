"""Unit tests for repro.graphs.analysis (Eq. 1, Eq. 2, Theorem 4.4)."""

import pytest

from repro.exceptions import GraphError
from repro.graphs import TaskGraph
from repro.graphs.analysis import (
    count_preference_instances,
    degree_feasible,
    fairness_spread,
    hp_likelihood_lower_bound,
    hp_likelihood_of,
    ideal_degree,
    in_out_probabilities,
    is_fair,
    prob_in_or_out_node,
)


class TestEq1:
    def test_instances_are_three_to_the_edges(self):
        graph = TaskGraph(4, [(0, 1), (1, 2), (2, 3), (0, 3)])
        assert count_preference_instances(graph) == 3**4

    def test_paper_example(self):
        """Figure 1(a): 4 edges -> 81 instances."""
        graph = TaskGraph(4, [(0, 1), (1, 2), (2, 3), (0, 3)])
        assert count_preference_instances(graph) == 81


class TestEq2:
    def test_paper_example_4_1(self):
        """Figure 2: degree-2 vertex -> 2/9; degree-1 vertex -> 2/3."""
        assert prob_in_or_out_node(2) == pytest.approx(2 / 9)
        assert prob_in_or_out_node(1) == pytest.approx(2 / 3)

    def test_isolated_vertex_capped(self):
        assert prob_in_or_out_node(0) == 1.0

    def test_negative_degree_rejected(self):
        with pytest.raises(GraphError):
            prob_in_or_out_node(-1)

    def test_per_vertex_probabilities(self):
        graph = TaskGraph(3, [(0, 1), (0, 2)])
        probs = in_out_probabilities(graph)
        assert probs[0] == pytest.approx(2 / 9)
        assert probs[1] == probs[2] == pytest.approx(2 / 3)


class TestFairness:
    def test_triangle_is_fair(self):
        graph = TaskGraph(3, [(0, 1), (1, 2), (0, 2)])
        assert is_fair(graph)
        assert fairness_spread(graph) == 0.0

    def test_path_is_fair_only_relaxed(self):
        graph = TaskGraph(3, [(0, 1), (1, 2)])
        assert not is_fair(graph)
        assert is_fair(graph, strict=False)

    def test_star_spread_positive(self):
        graph = TaskGraph(4, [(0, 1), (0, 2), (0, 3)])
        assert fairness_spread(graph) > 0.5


class TestTheorem44:
    def test_bound_increases_with_dmin(self):
        low = hp_likelihood_lower_bound(10, 1, 3)
        high = hp_likelihood_lower_bound(10, 3, 3)
        assert high > low

    def test_bound_decreases_with_dmax(self):
        tight = hp_likelihood_lower_bound(10, 3, 3)
        loose = hp_likelihood_lower_bound(10, 3, 6)
        assert tight > loose

    def test_regular_beats_irregular_at_same_budget(self):
        """The core design argument: d_min = d_max = 2l/n maximises Pr_l."""
        regular = hp_likelihood_lower_bound(12, 4, 4)
        irregular = hp_likelihood_lower_bound(12, 2, 6)
        assert regular > irregular

    def test_invalid_inputs(self):
        with pytest.raises(GraphError):
            hp_likelihood_lower_bound(1, 1, 1)
        with pytest.raises(GraphError):
            hp_likelihood_lower_bound(5, 0, 2)
        with pytest.raises(GraphError):
            hp_likelihood_lower_bound(5, 3, 2)

    def test_evaluated_on_graph(self):
        graph = TaskGraph(3, [(0, 1), (1, 2), (0, 2)])
        assert hp_likelihood_of(graph) == pytest.approx(
            hp_likelihood_lower_bound(3, 2, 2)
        )


class TestIdealDegree:
    def test_eq3(self):
        assert ideal_degree(10, 25) == pytest.approx(5.0)

    def test_validation(self):
        with pytest.raises(GraphError):
            ideal_degree(1, 5)
        with pytest.raises(GraphError):
            ideal_degree(5, 0)

    def test_feasibility(self):
        assert degree_feasible(10, 9)
        assert degree_feasible(10, 45)
        assert not degree_feasible(10, 8)
        assert not degree_feasible(10, 46)
