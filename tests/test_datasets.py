"""Unit tests for repro.datasets (synthetic, images, amt)."""

import numpy as np
import pytest

from repro.datasets import (
    load_votes_csv,
    make_image_study,
    make_scenario,
    save_votes_csv,
)
from repro.exceptions import ConfigurationError, DataFormatError
from repro.types import Vote, VoteSet
from repro.workers import QualityLevel, UniformQuality


class TestMakeScenario:
    def test_basic_fields(self):
        scenario = make_scenario(15, 0.4, n_workers=10, workers_per_task=3,
                                 rng=0)
        assert scenario.n_objects == 15
        assert len(scenario.pool) == 10
        assert scenario.selection_ratio == 0.4
        assert scenario.workers_per_task == 3
        assert "Gaussian" in scenario.quality_name

    def test_uniform_family(self):
        scenario = make_scenario(10, 0.5, quality="uniform",
                                 level=QualityLevel.LOW, rng=0)
        assert "Uniform" in scenario.quality_name

    def test_explicit_distribution(self):
        scenario = make_scenario(10, 0.5,
                                 distribution=UniformQuality(0.0, 0.05),
                                 rng=0)
        assert scenario.pool.sigmas().max() <= 0.05

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            make_scenario(1, 0.5)
        with pytest.raises(ConfigurationError):
            make_scenario(10, 0.0)
        with pytest.raises(ConfigurationError):
            make_scenario(10, 0.5, n_workers=2, workers_per_task=5)
        with pytest.raises(ConfigurationError):
            make_scenario(10, 0.5, quality="exponential")

    def test_deterministic(self):
        a = make_scenario(10, 0.5, rng=4)
        b = make_scenario(10, 0.5, rng=4)
        assert a.ground_truth == b.ground_truth
        assert np.allclose(a.pool.sigmas(), b.pool.sigmas())


class TestImageStudy:
    def test_paper_rank_gap_constraint(self):
        study = make_image_study(10, rng=0)
        assert study.max_adjacent_rank_gap() <= 46

    def test_sizes(self):
        for n in (10, 20):
            study = make_image_study(n, rng=1)
            assert study.n_images == n
            assert len(study.ground_truth) == n

    def test_ground_truth_matches_scores(self):
        study = make_image_study(10, rng=2)
        ordered_scores = [study.scores[obj] for obj in study.ground_truth]
        assert all(a >= b for a, b in zip(ordered_scores, ordered_scores[1:]))

    def test_votes_collected_per_pair_and_worker(self):
        study = make_image_study(5, rng=3)
        pairs = [(0, 1), (2, 3)]
        votes = study.collect_votes(pairs, n_workers=4, rng=3)
        assert len(votes) == len(pairs) * 4
        assert set(votes.pairs()) == {(0, 1), (2, 3)}

    def test_close_images_get_conflicting_votes(self):
        """The entire point of the near-tie selection: enough noise that
        real disagreement appears."""
        study = make_image_study(10, rng=4)
        pairs = [(i, j) for i in range(10) for j in range(i + 1, 10)]
        votes = study.collect_votes(pairs, n_workers=30, rng=4)
        shares = {}
        for vote in votes:
            i, j = vote.pair
            shares.setdefault((i, j), []).append(vote.value_for(i, j))
        conflicted = sum(1 for values in shares.values()
                         if 0.0 < np.mean(values) < 1.0)
        assert conflicted > len(pairs) * 0.3

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            make_image_study(1)
        with pytest.raises(ConfigurationError):
            make_image_study(10, catalogue_size=5)
        with pytest.raises(ConfigurationError):
            make_image_study(100, catalogue_size=100, max_rank_gap=46)
        study = make_image_study(5, rng=0)
        with pytest.raises(ConfigurationError):
            study.collect_votes([(0, 9)], n_workers=2)
        with pytest.raises(ConfigurationError):
            study.collect_votes([(1, 1)], n_workers=2)
        with pytest.raises(ConfigurationError):
            study.collect_votes([(0, 1)], n_workers=0)


class TestAmtCsv:
    def test_round_trip(self, tmp_path, tiny_votes):
        path = tmp_path / "votes.csv"
        save_votes_csv(tiny_votes, path)
        loaded = load_votes_csv(path, n_objects=4)
        assert loaded.n_objects == 4
        assert list(loaded) == list(tiny_votes)

    def test_n_objects_inferred(self, tmp_path, tiny_votes):
        path = tmp_path / "votes.csv"
        save_votes_csv(tiny_votes, path)
        assert load_votes_csv(path).n_objects == 4

    def test_bad_header(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b,c\n0,1,2\n")
        with pytest.raises(DataFormatError):
            load_votes_csv(path)

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(DataFormatError):
            load_votes_csv(path)

    def test_header_only(self, tmp_path):
        path = tmp_path / "header.csv"
        path.write_text("worker_id,winner,loser\n")
        with pytest.raises(DataFormatError):
            load_votes_csv(path)

    def test_non_integer_field(self, tmp_path):
        path = tmp_path / "nonint.csv"
        path.write_text("worker_id,winner,loser\n0,x,2\n")
        with pytest.raises(DataFormatError):
            load_votes_csv(path)

    def test_self_comparison(self, tmp_path):
        path = tmp_path / "self.csv"
        path.write_text("worker_id,winner,loser\n0,2,2\n")
        with pytest.raises(DataFormatError):
            load_votes_csv(path)

    def test_negative_id(self, tmp_path):
        path = tmp_path / "neg.csv"
        path.write_text("worker_id,winner,loser\n-1,0,1\n")
        with pytest.raises(DataFormatError):
            load_votes_csv(path)

    def test_wrong_field_count(self, tmp_path):
        path = tmp_path / "fields.csv"
        path.write_text("worker_id,winner,loser\n0,1\n")
        with pytest.raises(DataFormatError):
            load_votes_csv(path)

    def test_declared_universe_too_small(self, tmp_path, tiny_votes):
        path = tmp_path / "votes.csv"
        save_votes_csv(tiny_votes, path)
        with pytest.raises(DataFormatError):
            load_votes_csv(path, n_objects=2)

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "blank.csv"
        path.write_text("worker_id,winner,loser\n0,0,1\n\n1,1,0\n")
        assert len(load_votes_csv(path)) == 2
