"""Unit tests for the CLI ``reproduce`` command."""

import pytest

from repro.cli import main
from repro.experiments import load_records_csv


class TestReproduceCommand:
    def test_table1_prints(self, capsys):
        assert main(["reproduce", "table1", "--seed", "9"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out
        assert "saps" in out and "rc" in out and "qs" in out

    def test_fig5_objects_csv_export(self, tmp_path, capsys):
        out_path = tmp_path / "fig5.csv"
        assert main(["reproduce", "fig5-objects", "--seed", "9",
                     "--out", str(out_path)]) == 0
        rows = load_records_csv(out_path)
        assert len(rows) == 6  # 3 sizes x 2 quality families
        assert all(0.0 <= float(row["accuracy"]) <= 1.0 for row in rows)

    def test_unknown_artifact_rejected(self):
        with pytest.raises(SystemExit):
            main(["reproduce", "fig99"])
