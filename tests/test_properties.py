"""Property-based tests (hypothesis) on core invariants."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.graphs import PreferenceGraph, TaskGraph, WeightedDigraph
from repro.graphs.analysis import hp_likelihood_lower_bound, prob_in_or_out_node
from repro.graphs.closure import propagate_exact_paths, propagate_walks
from repro.graphs.generators import near_regular_task_graph
from repro.inference.propagation import propagate_matrix
from repro.inference.saps import _random_swap, _reverse, _rotate
from repro.metrics import (
    kendall_tau_distance,
    normalized_kendall_tau_distance,
    ranking_accuracy,
    spearman_footrule,
)
from repro.truth import discover_truth, majority_vote
from repro.types import Ranking, Vote, VoteSet


# -- strategies ----------------------------------------------------------------

@st.composite
def rankings(draw, min_size=2, max_size=12):
    n = draw(st.integers(min_size, max_size))
    order = draw(st.permutations(list(range(n))))
    return Ranking(order)


@st.composite
def ranking_pairs(draw, min_size=2, max_size=12):
    n = draw(st.integers(min_size, max_size))
    a = draw(st.permutations(list(range(n))))
    b = draw(st.permutations(list(range(n))))
    return Ranking(a), Ranking(b)


@st.composite
def vote_sets(draw):
    n = draw(st.integers(3, 7))
    n_workers = draw(st.integers(1, 4))
    pairs = [(i, j) for i in range(n) for j in range(i + 1, n)]
    votes = []
    for worker in range(n_workers):
        for i, j in pairs:
            if draw(st.booleans()):
                votes.append(Vote(worker=worker, winner=i, loser=j))
            else:
                votes.append(Vote(worker=worker, winner=j, loser=i))
    return VoteSet.from_votes(n, votes)


@st.composite
def smoothed_graphs(draw):
    """Complete-pair smoothed preference graphs over n objects."""
    n = draw(st.integers(3, 6))
    graph = PreferenceGraph(n)
    for i in range(n):
        for j in range(i + 1, n):
            p = draw(st.floats(0.05, 0.95))
            graph.add_edge(i, j, p)
            graph.add_edge(j, i, 1.0 - p)
    return graph


# -- metric properties ----------------------------------------------------------

class TestKendallProperties:
    @given(ranking_pairs())
    def test_symmetry(self, pair):
        a, b = pair
        assert kendall_tau_distance(a, b) == kendall_tau_distance(b, a)

    @given(rankings())
    def test_identity_distance_zero(self, ranking):
        assert kendall_tau_distance(ranking, ranking) == 0

    @given(rankings())
    def test_reverse_is_maximum(self, ranking):
        n = len(ranking)
        assert kendall_tau_distance(ranking, ranking.reversed()) == (
            n * (n - 1) // 2
        )

    @given(ranking_pairs())
    def test_normalised_in_unit_interval(self, pair):
        a, b = pair
        assert 0.0 <= normalized_kendall_tau_distance(a, b) <= 1.0

    @given(st.integers(2, 10), st.permutations(list(range(8))))
    def test_triangle_inequality_with_identity(self, n, perm):
        """d(a, b) <= d(a, c) + d(c, b) with c = identity."""
        a = Ranking(perm)
        b = a.reversed()
        c = Ranking(range(8))
        assert kendall_tau_distance(a, b) <= (
            kendall_tau_distance(a, c) + kendall_tau_distance(c, b)
        )

    @given(ranking_pairs())
    def test_diaconis_graham(self, pair):
        a, b = pair
        kendall = kendall_tau_distance(a, b)
        footrule = spearman_footrule(a, b)
        assert kendall <= footrule <= 2 * kendall

    @given(ranking_pairs())
    def test_accuracy_complements_distance(self, pair):
        a, b = pair
        assert ranking_accuracy(a, b) == pytest.approx(
            1.0 - normalized_kendall_tau_distance(a, b)
        )


# -- graph properties ---------------------------------------------------------

class TestGeneratorProperties:
    @given(st.integers(4, 25), st.data())
    @settings(max_examples=30, deadline=None)
    def test_near_regular_invariants(self, n, data):
        max_edges = n * (n - 1) // 2
        l = data.draw(st.integers(n - 1, max_edges))
        seed = data.draw(st.integers(0, 2**31))
        graph = near_regular_task_graph(n, l, rng=seed)
        assert graph.n_edges == l
        d_min, d_max = graph.degree_bounds()
        assert d_max - d_min <= 1
        assert graph.is_connected()
        assert sum(graph.degrees()) == 2 * l


class TestAnalysisProperties:
    @given(st.integers(1, 20))
    def test_io_probability_decreasing_in_degree(self, degree):
        assert prob_in_or_out_node(degree) > prob_in_or_out_node(degree + 1)

    @given(st.integers(2, 50), st.integers(1, 8), st.integers(0, 5))
    def test_hp_bound_monotone(self, n, d_min, extra):
        d_max = d_min + extra
        lower = hp_likelihood_lower_bound(n, d_min, d_max)
        tighter = hp_likelihood_lower_bound(n, d_min, d_max + 1)
        assert tighter <= lower + 1e-12


class TestClosureProperties:
    @given(smoothed_graphs())
    @settings(max_examples=25, deadline=None)
    def test_walks_dominate_exact(self, graph):
        """Walk sums include every simple path, so entrywise >= exact."""
        hops = graph.n_vertices - 1
        walks = propagate_walks(graph.weight_matrix(), max_hops=max(hops, 2))
        exact = propagate_exact_paths(graph)
        assert np.all(walks >= exact - 1e-9)

    @given(smoothed_graphs())
    @settings(max_examples=25, deadline=None)
    def test_propagation_output_invariants(self, graph):
        matrix = propagate_matrix(graph)
        n = graph.n_vertices
        off = ~np.eye(n, dtype=bool)
        assert np.all(matrix[off] > 0.0)
        assert np.all(matrix[off] < 1.0)
        assert np.allclose((matrix + matrix.T)[off], 1.0)
        assert np.all(np.diagonal(matrix) == 0.0)


# -- SAPS move properties -------------------------------------------------------

class TestMoveProperties:
    @given(st.permutations(list(range(10))), st.integers(0, 2**31))
    def test_moves_are_permutations(self, perm, seed):
        rng = np.random.default_rng(seed)
        path = np.array(perm)
        for move in (_rotate, _reverse, _random_swap):
            result = move(path, rng)
            assert sorted(result.tolist()) == list(range(10))


# -- truth-discovery properties ---------------------------------------------------

class TestTruthProperties:
    @given(vote_sets())
    @settings(max_examples=25, deadline=None)
    def test_outputs_bounded(self, votes):
        result = discover_truth(votes)
        assert all(0.0 <= x <= 1.0 for x in result.preferences.values())
        assert all(0.0 < q <= 1.0 for q in result.worker_quality.values())

    @given(vote_sets())
    @settings(max_examples=25, deadline=None)
    def test_unanimous_pairs_pinned(self, votes):
        """Any pair on which all votes agree must resolve to 0 or 1."""
        result = discover_truth(votes)
        shares = majority_vote(votes)
        for pair, share in shares.items():
            if share == 1.0:
                assert result.preferences[pair] == pytest.approx(1.0)
            elif share == 0.0:
                assert result.preferences[pair] == pytest.approx(0.0)

    @given(vote_sets())
    @settings(max_examples=15, deadline=None)
    def test_deterministic(self, votes):
        assert discover_truth(votes).preferences == (
            discover_truth(votes).preferences
        )


# -- ranking properties -----------------------------------------------------------

class TestRankingProperties:
    @given(rankings())
    def test_position_roundtrip(self, ranking):
        for idx, obj in enumerate(ranking):
            assert ranking.position(obj) == idx

    @given(rankings())
    def test_double_reverse_identity(self, ranking):
        assert ranking.reversed().reversed() == ranking

    @given(rankings())
    def test_pairs_count(self, ranking):
        n = len(ranking)
        assert sum(1 for _ in ranking.pairs()) == n * (n - 1) // 2

    @given(ranking_pairs())
    def test_prefers_antisymmetric(self, pair):
        a, _ = pair
        objects = list(a.order)
        i, j = objects[0], objects[-1]
        if i != j:
            assert a.prefers(i, j) != a.prefers(j, i)
