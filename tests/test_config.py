"""Unit tests for repro.config validation."""

import pytest

from repro.config import (
    FAST_PIPELINE,
    PipelineConfig,
    PropagationConfig,
    SAPSConfig,
    SmoothingConfig,
    TAPSConfig,
    TruthDiscoveryConfig,
)
from repro.exceptions import ConfigurationError


class TestTruthDiscoveryConfig:
    def test_defaults_valid(self):
        config = TruthDiscoveryConfig()
        assert config.max_iterations >= 1

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_iterations": 0},
            {"tolerance": 0.0},
            {"tolerance": 1.5},
            {"alpha": 0.0},
            {"alpha": 1.0},
            {"min_error": 0.0},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            TruthDiscoveryConfig(**kwargs)


class TestSmoothingConfig:
    def test_defaults_valid(self):
        assert SmoothingConfig().mode == "expected"

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"mode": "bogus"},
            {"sigma_floor": 0.0},
            {"sigma_floor": 3.0, "sigma_cap": 2.0},
            {"min_weight": 0.0},
            {"min_weight": 0.6},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            SmoothingConfig(**kwargs)

    def test_sampled_mode_accepted(self):
        assert SmoothingConfig(mode="sampled").mode == "sampled"


class TestPropagationConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"alpha": -0.1},
            {"alpha": 1.1},
            {"max_hops": 1},
            {"method": "magic"},
            {"exact_threshold": 1},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            PropagationConfig(**kwargs)

    def test_alpha_bounds_inclusive(self):
        assert PropagationConfig(alpha=0.0).alpha == 0.0
        assert PropagationConfig(alpha=1.0).alpha == 1.0


class TestSAPSConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"iterations": 0},
            {"temperature": 0.0},
            {"cooling_rate": 0.0},
            {"cooling_rate": 1.0},
            {"restarts": 0},
            {"init": "nope"},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            SAPSConfig(**kwargs)

    def test_restarts_none_means_all_vertices(self):
        assert SAPSConfig(restarts=None).restarts is None


class TestTAPSConfig:
    def test_bounds(self):
        with pytest.raises(ConfigurationError):
            TAPSConfig(max_objects=1)
        with pytest.raises(ConfigurationError):
            TAPSConfig(max_objects=12)


class TestPipelineConfig:
    def test_default_search_is_saps(self):
        assert PipelineConfig().search == "saps"

    def test_unknown_search_rejected(self):
        with pytest.raises(ConfigurationError):
            PipelineConfig(search="dijkstra")

    def test_with_replaces_fields(self):
        config = PipelineConfig().with_(search="taps")
        assert config.search == "taps"
        assert PipelineConfig().search == "saps"

    def test_fast_preset_valid(self):
        assert FAST_PIPELINE.saps.iterations < PipelineConfig().saps.iterations
