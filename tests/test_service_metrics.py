"""Unit tests for the service metrics registry."""

import threading

import pytest

from repro.exceptions import ConfigurationError
from repro.service import MetricsRegistry, TimerStats


class TestCounters:
    def test_increment_and_read(self):
        metrics = MetricsRegistry()
        metrics.increment("jobs.total")
        metrics.increment("jobs.total", 2)
        assert metrics.counter("jobs.total") == 3
        assert metrics.counter("never.touched") == 0

    def test_empty_name_rejected(self):
        with pytest.raises(ConfigurationError):
            MetricsRegistry().increment("")


class TestTimers:
    def test_observe_aggregates(self):
        metrics = MetricsRegistry()
        for seconds in (0.1, 0.3, 0.2):
            metrics.observe("job.seconds", seconds)
        timer = metrics.snapshot()["timers"]["job.seconds"]
        assert timer["count"] == 3
        assert timer["total"] == pytest.approx(0.6)
        assert timer["mean"] == pytest.approx(0.2)
        assert timer["min"] == pytest.approx(0.1)
        assert timer["max"] == pytest.approx(0.3)

    def test_negative_duration_rejected(self):
        with pytest.raises(ConfigurationError):
            MetricsRegistry().observe("t", -0.1)

    def test_observe_steps_prefixes(self):
        metrics = MetricsRegistry()
        metrics.observe_steps({"truth_discovery": 0.4, "search": 1.2})
        timers = metrics.snapshot()["timers"]
        assert set(timers) == {"step.truth_discovery", "step.search"}


class TestPercentiles:
    def test_exact_below_reservoir_capacity(self):
        stats = TimerStats()
        for value in range(1, 101):          # 1..100 in order
            stats.observe(float(value))
        assert stats.percentile(50) == 50.0  # nearest-rank: ceil(0.5*100)
        assert stats.percentile(95) == 95.0
        assert stats.percentile(99) == 99.0
        assert stats.percentiles() == {"p50": 50.0, "p95": 95.0,
                                       "p99": 99.0}

    def test_insertion_order_is_irrelevant(self):
        forward, backward = TimerStats(), TimerStats()
        for value in range(1, 101):
            forward.observe(float(value))
            backward.observe(float(101 - value))
        assert forward.percentiles() == backward.percentiles()

    def test_reservoir_stays_bounded(self):
        stats = TimerStats(reservoir_capacity=16)
        for value in range(10_000):
            stats.observe(float(value))
        assert len(stats._samples) == 16
        assert stats.count == 10_000
        # Estimates stay inside the observed range.
        assert 0.0 <= stats.percentile(50) <= 9999.0

    def test_reservoir_replacement_is_deterministic(self):
        def run():
            stats = TimerStats(reservoir_capacity=8)
            for value in range(1000):
                stats.observe(float(value % 37))
            return stats.percentiles()

        assert run() == run()

    def test_empty_timer_reports_zero(self):
        stats = TimerStats()
        assert stats.percentile(95) == 0.0
        assert stats.as_dict()["p95"] == 0.0

    def test_invalid_quantile_rejected(self):
        stats = TimerStats()
        stats.observe(1.0)
        for bad in (0, -5, 101):
            with pytest.raises(ConfigurationError):
                stats.percentile(bad)

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ConfigurationError):
            TimerStats(reservoir_capacity=0)

    def test_snapshot_carries_percentiles(self):
        metrics = MetricsRegistry()
        for value in (0.1, 0.2, 0.3, 0.4):
            metrics.observe("job.seconds", value)
        timer = metrics.snapshot()["timers"]["job.seconds"]
        assert timer["p50"] == pytest.approx(0.2)
        assert timer["p95"] == pytest.approx(0.4)
        assert timer["p99"] == pytest.approx(0.4)


class TestSnapshot:
    def test_cache_hit_rate_derived(self):
        metrics = MetricsRegistry()
        metrics.increment("cache.hits", 3)
        metrics.increment("cache.misses", 1)
        assert metrics.snapshot()["derived"]["cache_hit_rate"] == 0.75

    def test_no_lookups_no_rate(self):
        assert "cache_hit_rate" not in MetricsRegistry().snapshot()["derived"]

    def test_snapshot_is_a_copy(self):
        metrics = MetricsRegistry()
        metrics.increment("a")
        snap = metrics.snapshot()
        snap["counters"]["a"] = 999
        assert metrics.counter("a") == 1

    def test_timer_is_a_point_in_time_copy(self):
        metrics = MetricsRegistry()
        metrics.observe("t", 1.0)
        view = metrics.timer("t")
        # Later observations never leak into the copy (so percentile
        # sorts cannot race concurrent writers on the live reservoir)...
        metrics.observe("t", 9.0)
        assert view.count == 1
        assert view.percentile(50) == 1.0
        assert metrics.timer("t").count == 2
        # ...and mutating the copy never touches the registry.
        view.observe(100.0)
        assert metrics.timer("t").max == 9.0

    def test_timer_copy_preserves_reservoir_determinism(self):
        # The copy carries the picker state, so a copy taken mid-series
        # (after replacement began) continues exactly like the original.
        original = TimerStats(reservoir_capacity=8)
        for i in range(20):
            original.observe(float(i))
        clone = original.copy()
        for i in range(20, 60):
            original.observe(float(i))
            clone.observe(float(i))
        assert clone._samples == original._samples
        assert clone.percentiles() == original.percentiles()


def test_thread_safety_under_contention():
    metrics = MetricsRegistry()

    def hammer():
        for _ in range(1000):
            metrics.increment("contended")
            metrics.observe("contended.seconds", 0.001)

    threads = [threading.Thread(target=hammer) for _ in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert metrics.counter("contended") == 8000
    assert metrics.snapshot()["timers"]["contended.seconds"]["count"] == 8000
