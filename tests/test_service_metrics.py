"""Unit tests for the service metrics registry."""

import threading

import pytest

from repro.exceptions import ConfigurationError
from repro.service import MetricsRegistry


class TestCounters:
    def test_increment_and_read(self):
        metrics = MetricsRegistry()
        metrics.increment("jobs.total")
        metrics.increment("jobs.total", 2)
        assert metrics.counter("jobs.total") == 3
        assert metrics.counter("never.touched") == 0

    def test_empty_name_rejected(self):
        with pytest.raises(ConfigurationError):
            MetricsRegistry().increment("")


class TestTimers:
    def test_observe_aggregates(self):
        metrics = MetricsRegistry()
        for seconds in (0.1, 0.3, 0.2):
            metrics.observe("job.seconds", seconds)
        timer = metrics.snapshot()["timers"]["job.seconds"]
        assert timer["count"] == 3
        assert timer["total"] == pytest.approx(0.6)
        assert timer["mean"] == pytest.approx(0.2)
        assert timer["min"] == pytest.approx(0.1)
        assert timer["max"] == pytest.approx(0.3)

    def test_negative_duration_rejected(self):
        with pytest.raises(ConfigurationError):
            MetricsRegistry().observe("t", -0.1)

    def test_observe_steps_prefixes(self):
        metrics = MetricsRegistry()
        metrics.observe_steps({"truth_discovery": 0.4, "search": 1.2})
        timers = metrics.snapshot()["timers"]
        assert set(timers) == {"step.truth_discovery", "step.search"}


class TestSnapshot:
    def test_cache_hit_rate_derived(self):
        metrics = MetricsRegistry()
        metrics.increment("cache.hits", 3)
        metrics.increment("cache.misses", 1)
        assert metrics.snapshot()["derived"]["cache_hit_rate"] == 0.75

    def test_no_lookups_no_rate(self):
        assert "cache_hit_rate" not in MetricsRegistry().snapshot()["derived"]

    def test_snapshot_is_a_copy(self):
        metrics = MetricsRegistry()
        metrics.increment("a")
        snap = metrics.snapshot()
        snap["counters"]["a"] = 999
        assert metrics.counter("a") == 1


def test_thread_safety_under_contention():
    metrics = MetricsRegistry()

    def hammer():
        for _ in range(1000):
            metrics.increment("contended")
            metrics.observe("contended.seconds", 0.001)

    threads = [threading.Thread(target=hammer) for _ in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert metrics.counter("contended") == 8000
    assert metrics.snapshot()["timers"]["contended.seconds"]["count"] == 8000
