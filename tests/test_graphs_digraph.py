"""Unit tests for repro.graphs.digraph."""

import numpy as np
import pytest

from repro.exceptions import EdgeNotFoundError, GraphError, VertexNotFoundError
from repro.graphs import WeightedDigraph


@pytest.fixture
def triangle():
    graph = WeightedDigraph(3)
    graph.add_edge(0, 1, 0.9)
    graph.add_edge(1, 2, 0.8)
    graph.add_edge(2, 0, 0.7)
    return graph


class TestConstruction:
    def test_empty_graph(self):
        graph = WeightedDigraph(4)
        assert graph.n_vertices == 4
        assert graph.n_edges == 0

    def test_zero_vertices_rejected(self):
        with pytest.raises(GraphError):
            WeightedDigraph(0)


class TestEdges:
    def test_add_and_query(self, triangle):
        assert triangle.has_edge(0, 1)
        assert not triangle.has_edge(1, 0)
        assert triangle.weight(0, 1) == pytest.approx(0.9)

    def test_weight_or_default(self, triangle):
        assert triangle.weight_or(1, 0, default=0.25) == 0.25

    def test_missing_weight_raises(self, triangle):
        with pytest.raises(EdgeNotFoundError):
            triangle.weight(1, 0)

    def test_self_loop_rejected(self):
        graph = WeightedDigraph(2)
        with pytest.raises(GraphError):
            graph.add_edge(1, 1, 0.5)

    def test_zero_weight_rejected(self):
        graph = WeightedDigraph(2)
        with pytest.raises(GraphError):
            graph.add_edge(0, 1, 0.0)

    def test_negative_weight_rejected(self):
        graph = WeightedDigraph(2)
        with pytest.raises(GraphError):
            graph.add_edge(0, 1, -0.5)

    def test_overwrite_keeps_edge_count(self):
        graph = WeightedDigraph(2)
        graph.add_edge(0, 1, 0.5)
        graph.add_edge(0, 1, 0.6)
        assert graph.n_edges == 1
        assert graph.weight(0, 1) == pytest.approx(0.6)

    def test_remove_edge(self, triangle):
        triangle.remove_edge(0, 1)
        assert not triangle.has_edge(0, 1)
        assert triangle.n_edges == 2

    def test_remove_missing_raises(self, triangle):
        with pytest.raises(EdgeNotFoundError):
            triangle.remove_edge(1, 0)

    def test_unknown_vertex_raises(self, triangle):
        with pytest.raises(VertexNotFoundError):
            triangle.has_edge(0, 9)

    def test_edges_iteration(self, triangle):
        assert sorted(triangle.edges()) == [
            (0, 1, 0.9),
            (1, 2, 0.8),
            (2, 0, 0.7),
        ]


class TestNeighbourhoods:
    def test_degrees(self, triangle):
        assert triangle.out_degree(0) == 1
        assert triangle.in_degree(0) == 1

    def test_successors_predecessors(self, triangle):
        assert list(triangle.successors(0)) == [1]
        assert list(triangle.predecessors(0)) == [2]

    def test_out_in_edges(self, triangle):
        assert list(triangle.out_edges(1)) == [(2, 0.8)]
        assert list(triangle.in_edges(1)) == [(0, 0.9)]


class TestNodeClasses:
    def test_in_node_detection(self):
        graph = WeightedDigraph(3)
        graph.add_edge(0, 2, 1.0)
        graph.add_edge(1, 2, 1.0)
        assert graph.is_in_node(2)
        assert not graph.is_out_node(2)
        assert graph.in_nodes() == [2]

    def test_out_node_detection(self):
        graph = WeightedDigraph(3)
        graph.add_edge(0, 1, 1.0)
        graph.add_edge(0, 2, 1.0)
        assert graph.is_out_node(0)
        assert graph.out_nodes() == [0]

    def test_isolated_vertex_is_neither(self):
        graph = WeightedDigraph(2)
        assert not graph.is_in_node(0)
        assert not graph.is_out_node(0)


class TestMatrixView:
    def test_round_trip(self, triangle):
        matrix = triangle.weight_matrix()
        clone = WeightedDigraph.from_weight_matrix(matrix)
        assert sorted(clone.edges()) == sorted(triangle.edges())

    def test_from_matrix_validation(self):
        with pytest.raises(GraphError):
            WeightedDigraph.from_weight_matrix(np.ones((2, 3)))
        with pytest.raises(GraphError):
            WeightedDigraph.from_weight_matrix(-np.ones((2, 2)))
        with pytest.raises(GraphError):
            WeightedDigraph.from_weight_matrix(np.ones((2, 2)))  # diagonal

    def test_matrix_zero_means_no_edge(self, triangle):
        matrix = triangle.weight_matrix()
        assert matrix[1, 0] == 0.0


class TestStructure:
    def test_copy_is_independent(self, triangle):
        clone = triangle.copy()
        clone.remove_edge(0, 1)
        assert triangle.has_edge(0, 1)

    def test_reverse(self, triangle):
        rev = triangle.reverse()
        assert rev.has_edge(1, 0)
        assert rev.weight(1, 0) == pytest.approx(0.9)

    def test_complete_detection(self):
        graph = WeightedDigraph(3)
        for i in range(3):
            for j in range(3):
                if i != j:
                    graph.add_edge(i, j, 0.5)
        assert graph.is_complete()

    def test_strongly_connected_cycle(self, triangle):
        assert triangle.is_strongly_connected()

    def test_not_strongly_connected_chain(self):
        graph = WeightedDigraph(3)
        graph.add_edge(0, 1, 1.0)
        graph.add_edge(1, 2, 1.0)
        assert not graph.is_strongly_connected()

    def test_single_vertex_strongly_connected(self):
        assert WeightedDigraph(1).is_strongly_connected()

    def test_empty_not_strongly_connected(self):
        assert not WeightedDigraph(2).is_strongly_connected()
