"""Unit tests for repro.rng."""

import numpy as np
import pytest

from repro.rng import derive_seed, ensure_rng, spawn_rngs


class TestEnsureRng:
    def test_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        assert ensure_rng(42).integers(1000) == ensure_rng(42).integers(1000)

    def test_generator_passthrough(self):
        generator = np.random.default_rng(0)
        assert ensure_rng(generator) is generator


class TestSpawnRngs:
    def test_count(self):
        children = spawn_rngs(7, 4)
        assert len(children) == 4

    def test_children_are_independent_streams(self):
        children = spawn_rngs(7, 2)
        a = children[0].integers(0, 1000, size=10)
        b = children[1].integers(0, 1000, size=10)
        assert not np.array_equal(a, b)

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(7, -1)

    def test_zero_count(self):
        assert spawn_rngs(7, 0) == []


class TestDeriveSeed:
    def test_in_range(self):
        seed = derive_seed(3)
        assert 0 <= seed < 2**63

    def test_salt_changes_seed(self):
        assert derive_seed(3, salt=1) != derive_seed(3, salt=2)
