"""Unit tests for repro.session (the rank_with_crowd facade)."""

import pytest

from repro import FAST_PIPELINE, rank_with_crowd
from repro.exceptions import BudgetError
from repro.types import Ranking
from repro.workers import QualityLevel, WorkerPool, gaussian_preset


@pytest.fixture(scope="module")
def pool():
    return WorkerPool.from_distribution(
        12, gaussian_preset(QualityLevel.HIGH), rng=41
    )


@pytest.fixture(scope="module")
def outcome(pool):
    truth = Ranking.random(15, rng=41)
    return rank_with_crowd(
        truth, pool, selection_ratio=0.5, workers_per_task=4,
        config=FAST_PIPELINE, rng=41,
    )


class TestRankWithCrowd:
    def test_accuracy_high_for_good_workers(self, outcome):
        assert outcome.accuracy > 0.9

    def test_outcome_is_consistent(self, outcome):
        assert outcome.ranking == outcome.result.ranking
        assert len(outcome.ranking) == 15

    def test_plan_matches_request(self, outcome):
        assert outcome.plan.n_objects == 15
        assert outcome.plan.selection_ratio == pytest.approx(0.5, abs=0.02)
        assert outcome.plan.budget.workers_per_task == 4

    def test_assignment_consistent_with_plan(self, outcome):
        assert outcome.assignment.task_graph.n_edges == (
            outcome.plan.n_comparisons
        )

    def test_run_collected_all_votes(self, outcome):
        assert len(outcome.run.votes) == outcome.plan.total_votes

    def test_ledger_spend_positive(self, outcome):
        assert outcome.run.ledger.spent > 0.0

    def test_reproducible_with_seed(self, pool):
        truth = Ranking.random(10, rng=7)
        pool_a = WorkerPool.from_distribution(
            8, gaussian_preset(QualityLevel.HIGH), rng=7
        )
        pool_b = WorkerPool.from_distribution(
            8, gaussian_preset(QualityLevel.HIGH), rng=7
        )
        a = rank_with_crowd(truth, pool_a, selection_ratio=0.5,
                            workers_per_task=3, config=FAST_PIPELINE, rng=7)
        b = rank_with_crowd(truth, pool_b, selection_ratio=0.5,
                            workers_per_task=3, config=FAST_PIPELINE, rng=7)
        assert a.ranking == b.ranking

    def test_w_larger_than_pool_rejected(self, pool):
        truth = Ranking.random(10, rng=1)
        with pytest.raises(Exception):
            rank_with_crowd(truth, pool, selection_ratio=0.5,
                            workers_per_task=99)

    def test_comparisons_per_hit(self, pool):
        truth = Ranking.random(10, rng=2)
        outcome = rank_with_crowd(
            truth, pool, selection_ratio=0.5, workers_per_task=3,
            comparisons_per_hit=3, config=FAST_PIPELINE, rng=2,
        )
        assert outcome.assignment.n_hits < outcome.plan.n_comparisons
        assert len(outcome.run.votes) == outcome.plan.total_votes
