"""Unit tests for repro.platform (events, pricing, simulators)."""

import pytest

from repro.assignment import assign_hits, generate_assignment
from repro.budget import plan_for_selection_ratio
from repro.exceptions import AssignmentError, BudgetError
from repro.platform import (
    EventLog,
    InteractivePlatform,
    NonInteractivePlatform,
    PaymentLedger,
)
from repro.types import Ranking
from repro.workers import QualityLevel, WorkerPool, gaussian_preset


class TestEventLog:
    def test_sequence_monotone(self):
        log = EventLog()
        first = log.record("publish", hit=1)
        second = log.record("vote", worker=0)
        assert second.sequence == first.sequence + 1

    def test_of_kind(self):
        log = EventLog()
        log.record("vote")
        log.record("payment")
        log.record("vote")
        assert len(log.of_kind("vote")) == 2

    def test_last(self):
        log = EventLog()
        assert log.last() is None
        log.record("vote", worker=1)
        log.record("payment")
        assert log.last().kind == "payment"
        assert log.last("vote").detail == {"worker": 1}
        assert log.last("close") is None

    def test_len_and_iter(self):
        log = EventLog()
        log.record("a")
        log.record("b")
        assert len(log) == 2
        assert [e.kind for e in log] == ["a", "b"]


class TestPaymentLedger:
    def test_pay_accumulates(self):
        ledger = PaymentLedger(budget=1.0, reward_per_comparison=0.1)
        ledger.pay(worker=0, n_comparisons=3)
        ledger.pay(worker=1)
        assert ledger.spent == pytest.approx(0.4)
        assert ledger.remaining == pytest.approx(0.6)
        assert ledger.earnings() == {0: pytest.approx(0.3), 1: pytest.approx(0.1)}

    def test_overdraw_rejected(self):
        ledger = PaymentLedger(budget=0.25, reward_per_comparison=0.1)
        ledger.pay(worker=0, n_comparisons=2)
        with pytest.raises(BudgetError):
            ledger.pay(worker=0)

    def test_can_pay(self):
        ledger = PaymentLedger(budget=0.2, reward_per_comparison=0.1)
        assert ledger.can_pay(2)
        assert not ledger.can_pay(3)

    def test_validation(self):
        with pytest.raises(BudgetError):
            PaymentLedger(budget=-1, reward_per_comparison=0.1)
        with pytest.raises(BudgetError):
            PaymentLedger(budget=1, reward_per_comparison=0)
        ledger = PaymentLedger(budget=1, reward_per_comparison=0.1)
        with pytest.raises(BudgetError):
            ledger.pay(worker=0, n_comparisons=0)


@pytest.fixture
def run_inputs():
    truth = Ranking.random(8, rng=4)
    pool = WorkerPool.from_distribution(
        6, gaussian_preset(QualityLevel.HIGH), rng=4
    )
    plan = plan_for_selection_ratio(8, 0.5, workers_per_task=3)
    assignment = generate_assignment(plan, rng=4)
    worker_assignment = assign_hits(assignment, n_workers=6,
                                    workers_per_hit=3, rng=4)
    return truth, pool, worker_assignment


class TestNonInteractivePlatform:
    def test_collects_expected_vote_count(self, run_inputs):
        truth, pool, worker_assignment = run_inputs
        run = NonInteractivePlatform(pool, truth).run(worker_assignment)
        assert len(run.votes) == worker_assignment.total_votes

    def test_votes_reference_assigned_pairs_only(self, run_inputs):
        truth, pool, worker_assignment = run_inputs
        run = NonInteractivePlatform(pool, truth).run(worker_assignment)
        planned = set(worker_assignment.task_assignment.all_pairs())
        assert {vote.pair for vote in run.votes} <= planned

    def test_spend_matches_plan(self, run_inputs):
        truth, pool, worker_assignment = run_inputs
        run = NonInteractivePlatform(pool, truth).run(worker_assignment)
        plan = worker_assignment.task_assignment.plan
        assert run.ledger.spent == pytest.approx(plan.spend)

    def test_second_round_refused(self, run_inputs):
        """The defining non-interactive property."""
        truth, pool, worker_assignment = run_inputs
        platform = NonInteractivePlatform(pool, truth)
        platform.run(worker_assignment)
        assert platform.closed
        with pytest.raises(AssignmentError):
            platform.run(worker_assignment)

    def test_object_universe_mismatch_rejected(self, run_inputs):
        _, pool, worker_assignment = run_inputs
        platform = NonInteractivePlatform(pool, Ranking.random(9, rng=1))
        with pytest.raises(AssignmentError):
            platform.run(worker_assignment)

    def test_event_log_structure(self, run_inputs):
        truth, pool, worker_assignment = run_inputs
        run = NonInteractivePlatform(pool, truth).run(worker_assignment)
        assert len(run.events.of_kind("close")) == 1
        assert len(run.events.of_kind("vote")) == len(run.votes)
        n_hits = worker_assignment.task_assignment.n_hits
        assert len(run.events.of_kind("publish")) == n_hits

    def test_high_quality_pool_votes_mostly_truthful(self, run_inputs):
        truth, pool, worker_assignment = run_inputs
        run = NonInteractivePlatform(pool, truth).run(worker_assignment)
        correct = sum(
            1 for vote in run.votes if truth.prefers(vote.winner, vote.loser)
        )
        assert correct / len(run.votes) > 0.9


class TestInteractivePlatform:
    def test_query_charges_budget(self):
        truth = Ranking.random(5, rng=0)
        pool = WorkerPool.from_distribution(
            4, gaussian_preset(QualityLevel.HIGH), rng=0
        )
        platform = InteractivePlatform(pool, truth, budget=0.1, reward=0.025)
        assert platform.remaining_queries() == 4
        platform.query(0, 1)
        assert platform.remaining_queries() == 3

    def test_budget_exhaustion(self):
        truth = Ranking.random(5, rng=0)
        pool = WorkerPool.from_distribution(
            4, gaussian_preset(QualityLevel.HIGH), rng=0
        )
        platform = InteractivePlatform(pool, truth, budget=0.05, reward=0.025)
        platform.query(0, 1)
        platform.query(1, 2)
        assert not platform.can_query()
        with pytest.raises(BudgetError):
            platform.query(2, 3)

    def test_chosen_worker_respected(self):
        truth = Ranking.random(5, rng=0)
        pool = WorkerPool.from_distribution(
            4, gaussian_preset(QualityLevel.HIGH), rng=0
        )
        platform = InteractivePlatform(pool, truth, budget=1.0, rng=0)
        vote = platform.query(0, 1, worker_id=2)
        assert vote.worker == 2

    def test_events_recorded(self):
        truth = Ranking.random(4, rng=0)
        pool = WorkerPool.from_distribution(
            3, gaussian_preset(QualityLevel.HIGH), rng=0
        )
        platform = InteractivePlatform(pool, truth, budget=1.0, rng=0)
        platform.query(0, 1)
        platform.query(2, 3)
        assert len(platform.events.of_kind("vote")) == 2
