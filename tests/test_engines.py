"""Tests for the sparse inference engines (HodgeRank / graph LSQ).

Covers the PR's acceptance surface:

* differential suite — ``hodge`` / ``lsq`` against the dense CRH+SAPS
  path at n in {2, 3, 10, 50} across 5 seeds (one-sided Kendall-tau
  tolerance: an engine may beat the dense path, never trail it by more
  than 0.05), exact recovery on noise-free votes;
* property tests for the shared sparse-incidence assembly (shape and
  weight contracts, gradient action, vote-order invariance, per-arrays
  memoization);
* disconnected comparison graphs — typed warning, metadata, seeded
  deterministic cross-component anchoring;
* the sparse Rank Centrality path against its dense oracle;
* config plumbing — ``SparseEngineConfig`` validation and the service
  codec round-trip for ``engine`` / ``sparse``.
"""

from __future__ import annotations

import numpy as np
import pytest
from scipy import sparse

from repro.baselines import rank_centrality
from repro.config import (
    LARGE_N_PIPELINE,
    PipelineConfig,
    PropagationConfig,
    SAPSConfig,
    SparseEngineConfig,
)
from repro.exceptions import (
    ConfigurationError,
    DataFormatError,
    DegenerateGraphWarning,
    InferenceError,
)
from repro.inference import (
    RankingPipeline,
    build_incidence,
    graph_lsq_rank,
    hodge_rank,
    quality_edge_weights,
    solve_sparse_engine,
)
from repro.metrics import normalized_kendall_tau_distance
from repro.service.jobs import config_from_payload
from repro.types import Ranking, Vote, VoteSet

ENGINES = ("hodge", "lsq")
SIZES = (2, 3, 10, 50)
SEEDS = tuple(range(5))

#: Reduced dense config so the differential suite stays fast; the SAPS
#: anneal under this budget is *noisier* than the engines, which is why
#: the tau comparison below is one-sided.
FAST_DENSE = PipelineConfig(
    saps=SAPSConfig(iterations=2000, restarts=1),
    propagation=PropagationConfig(max_hops=6, method="walks"),
)


def noisy_votes(n, seed, *, n_workers=8, accuracy=0.9, reps=5):
    """All-pairs votes from workers of fixed accuracy; truth = identity."""
    rng = np.random.default_rng(seed)
    votes = []
    for i in range(n):
        for j in range(i + 1, n):
            for _ in range(reps):
                worker = int(rng.integers(n_workers))
                if rng.random() < accuracy:
                    votes.append(Vote(worker=worker, winner=i, loser=j))
                else:
                    votes.append(Vote(worker=worker, winner=j, loser=i))
    return VoteSet.from_votes(n, votes)


def clean_votes(n, *, n_workers=3):
    """Unanimous all-pairs votes; every sane aggregator must be exact."""
    votes = [
        Vote(worker=w, winner=i, loser=j)
        for i in range(n)
        for j in range(i + 1, n)
        for w in range(n_workers)
    ]
    return VoteSet.from_votes(n, votes)


def split_votes():
    """Two comparison-graph components: {0, 1} and {2, 3}."""
    votes = [
        Vote(worker=0, winner=0, loser=1),
        Vote(worker=1, winner=0, loser=1),
        Vote(worker=0, winner=2, loser=3),
        Vote(worker=1, winner=2, loser=3),
    ]
    return VoteSet.from_votes(4, votes)


class TestDifferentialVsDense:
    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize("n", SIZES)
    def test_tau_never_worse_than_dense(self, engine, n):
        truth = Ranking(range(n))
        for seed in SEEDS:
            votes = noisy_votes(n, seed)
            dense = RankingPipeline(FAST_DENSE).run(
                votes, np.random.default_rng(1000 + seed)
            ).ranking
            sparse_r = RankingPipeline(FAST_DENSE.with_(engine=engine)).run(
                votes, np.random.default_rng(1000 + seed)
            ).ranking
            tau_dense = normalized_kendall_tau_distance(dense, truth)
            tau_engine = normalized_kendall_tau_distance(sparse_r, truth)
            assert tau_engine <= tau_dense + 0.05, (
                f"n={n} seed={seed}: {engine} tau {tau_engine:.4f} vs "
                f"dense {tau_dense:.4f}"
            )

    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize("n", SIZES)
    def test_exact_on_noise_free_votes(self, engine, n):
        votes = clean_votes(n)
        result = RankingPipeline(FAST_DENSE.with_(engine=engine)).run(
            votes, np.random.default_rng(0)
        )
        assert list(result.ranking.order) == list(range(n))

    @pytest.mark.parametrize("n", SIZES)
    def test_dense_exact_on_noise_free_votes(self, n):
        # The oracle itself must be exact too, or the differential
        # comparison above proves nothing.  The anneal needs a bigger
        # budget than FAST_DENSE to be exact at n=50 — which is exactly
        # why the tau comparison above is one-sided.
        oracle = FAST_DENSE.with_(
            saps=SAPSConfig(iterations=20_000, restarts=2)
        )
        result = RankingPipeline(oracle).run(
            clean_votes(n), np.random.default_rng(0)
        )
        assert list(result.ranking.order) == list(range(n))

    @pytest.mark.parametrize(
        "variant",
        [
            SparseEngineConfig(solver="cg"),
            SparseEngineConfig(flow="logit"),
            SparseEngineConfig(solver="cg", flow="logit"),
        ],
        ids=["cg", "logit", "cg-logit"],
    )
    def test_solver_and_flow_variants_exact_on_clean_votes(self, variant):
        votes = clean_votes(12)
        config = PipelineConfig(engine="hodge", sparse=variant)
        ranking, _ = hodge_rank(votes, config, rng=0)
        assert list(ranking.order) == list(range(12))


class TestEngineReport:
    def test_wrappers_agree_with_pipeline_seam(self):
        votes = noisy_votes(12, 7)
        for engine, wrapper in (("hodge", hodge_rank), ("lsq", graph_lsq_rank)):
            via_pipeline = RankingPipeline(
                PipelineConfig(engine=engine)
            ).run(votes, np.random.default_rng(3)).ranking
            direct, scores = wrapper(votes, rng=np.random.default_rng(3))
            assert list(direct.order) == list(via_pipeline.order)
            assert scores.shape == (12,)
            # Scores are the ranking: descending along the order.
            ordered = scores[np.asarray(direct.order)]
            assert np.all(np.diff(ordered) <= 1e-12)

    def test_metadata_and_step_seconds(self):
        votes = noisy_votes(10, 1)
        report = solve_sparse_engine(
            votes, PipelineConfig(engine="hodge"), rng=0
        )
        assert report.metadata["engine"] == "hodge"
        assert report.metadata["solver"] == "lsqr"
        assert report.metadata["n_components"] == 1
        assert report.metadata["n_edges"] == votes.arrays().n_pairs
        assert set(report.step_seconds) == {
            "truth_discovery", "solve", "ranking",
        }
        assert report.worker_quality  # hodge runs Step 1
        lsq = solve_sparse_engine(votes, PipelineConfig(engine="lsq"), rng=0)
        assert lsq.worker_quality == {}  # lsq has no worker model

    def test_hodge_downweights_spammer(self):
        # Worker 2 answers every pair inverted; quality weighting must
        # keep the hodge ranking on the honest majority's side.
        n = 8
        votes = []
        for i in range(n):
            for j in range(i + 1, n):
                votes.append(Vote(worker=0, winner=i, loser=j))
                votes.append(Vote(worker=1, winner=i, loser=j))
                votes.append(Vote(worker=2, winner=j, loser=i))
        ranking, _ = hodge_rank(VoteSet.from_votes(n, votes), rng=0)
        assert list(ranking.order) == list(range(n))

    def test_rejects_dense_engine_and_degenerate_inputs(self):
        votes = noisy_votes(4, 0)
        with pytest.raises(InferenceError):
            solve_sparse_engine(votes, PipelineConfig(engine="crh_saps"))
        with pytest.raises(InferenceError):
            solve_sparse_engine(VoteSet.from_votes(4, []),
                                PipelineConfig(engine="lsq"))


class TestIncidenceProperties:
    def test_shape_and_weight_contracts(self):
        votes = noisy_votes(9, 3)
        arrays = votes.arrays()
        inc = build_incidence(arrays)
        assert inc.n_objects == 9
        assert inc.incidence.shape == (inc.n_edges, 9)
        assert inc.edge_lo.shape == inc.edge_hi.shape == (inc.n_edges,)
        assert np.all(inc.edge_lo < inc.edge_hi)
        assert np.all(inc.counts >= 1)
        assert np.all(inc.value_sum >= 0)
        assert np.all(inc.value_sum <= inc.counts)
        assert inc.counts.sum() == arrays.n_votes
        mean = inc.mean_value()
        assert np.all((mean >= 0) & (mean <= 1))

    def test_gradient_action(self):
        votes = noisy_votes(11, 4)
        inc = build_incidence(votes.arrays())
        dense = inc.incidence.toarray()
        # Each row: +1 at lo, -1 at hi, zero elsewhere (rows sum to 0).
        assert np.all(dense.sum(axis=1) == 0)
        rows = np.arange(inc.n_edges)
        assert np.all(dense[rows, inc.edge_lo] == 1.0)
        assert np.all(dense[rows, inc.edge_hi] == -1.0)
        assert np.count_nonzero(dense) == 2 * inc.n_edges
        s = np.random.default_rng(5).normal(size=11)
        np.testing.assert_allclose(
            inc.incidence @ s, s[inc.edge_lo] - s[inc.edge_hi]
        )

    def test_vote_order_invariance(self):
        rng = np.random.default_rng(8)
        n = 7
        base = [
            Vote(worker=int(rng.integers(4)),
                 winner=int(a), loser=int(b))
            for a, b in rng.integers(0, n, size=(60, 2)) if a != b
        ]
        shuffled = list(base)
        rng.shuffle(shuffled)
        inc_a = build_incidence(VoteSet.from_votes(n, base).arrays())
        inc_b = build_incidence(VoteSet.from_votes(n, shuffled).arrays())
        np.testing.assert_array_equal(inc_a.edge_lo, inc_b.edge_lo)
        np.testing.assert_array_equal(inc_a.edge_hi, inc_b.edge_hi)
        np.testing.assert_array_equal(inc_a.counts, inc_b.counts)
        np.testing.assert_array_equal(inc_a.value_sum, inc_b.value_sum)
        assert (inc_a.incidence != inc_b.incidence).nnz == 0

    def test_memoized_on_arrays_object(self):
        votes = noisy_votes(6, 2)
        arrays = votes.arrays()
        assert build_incidence(arrays) is build_incidence(arrays)
        # ... and the VoteSet.arrays() cache makes the memo shared too.
        assert build_incidence(votes.arrays()) is build_incidence(arrays)

    def test_memo_does_not_leak_into_pickles(self):
        import pickle

        votes = noisy_votes(6, 2)
        arrays = votes.arrays()
        bare = len(pickle.dumps(arrays))
        build_incidence(arrays)
        assert len(pickle.dumps(arrays)) == bare
        restored = pickle.loads(pickle.dumps(arrays))
        np.testing.assert_array_equal(restored.winner, arrays.winner)

    def test_quality_edge_weights(self):
        votes = noisy_votes(6, 9)
        arrays = votes.arrays()
        ones = quality_edge_weights(arrays, np.ones(arrays.n_workers))
        inc = build_incidence(arrays)
        np.testing.assert_allclose(ones, inc.counts)
        with pytest.raises(InferenceError):
            quality_edge_weights(arrays, np.ones(arrays.n_workers + 1))

    def test_empty_votes_raise(self):
        with pytest.raises(InferenceError):
            build_incidence(VoteSet.from_votes(3, []).arrays())


class TestDisconnectedGraphs:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_warns_and_records_metadata(self, engine):
        votes = split_votes()
        with pytest.warns(DegenerateGraphWarning):
            result = RankingPipeline(PipelineConfig(engine=engine)).run(
                votes, np.random.default_rng(0)
            )
        assert result.metadata["n_components"] == 2
        assert any("connected components" in w
                   for w in result.metadata["engine_warnings"])

    @pytest.mark.parametrize("engine", ENGINES)
    def test_within_component_order_preserved(self, engine):
        votes = split_votes()
        with pytest.warns(DegenerateGraphWarning):
            report = solve_sparse_engine(
                votes, PipelineConfig(engine=engine), rng=0
            )
        order = list(report.ranking.order)
        assert order.index(0) < order.index(1)  # 0 beat 1
        assert order.index(2) < order.index(3)  # 2 beat 3
        # Components occupy disjoint score bands: the two blocks are
        # contiguous in the ranking, never interleaved.
        assert {tuple(order[:2]), tuple(order[2:])} == {(0, 1), (2, 3)}

    def test_seeded_tie_break_is_deterministic(self):
        votes = split_votes()
        runs = []
        for _ in range(3):
            with pytest.warns(DegenerateGraphWarning):
                report = solve_sparse_engine(
                    votes, PipelineConfig(engine="lsq"), rng=42
                )
            runs.append(list(report.ranking.order))
        assert runs[0] == runs[1] == runs[2]

    def test_larger_component_ranks_first(self):
        # {0,1,2} fully ordered vs singleton pair {3,4}: the larger
        # component must occupy the top band regardless of seed.
        votes = VoteSet.from_votes(5, [
            Vote(worker=0, winner=0, loser=1),
            Vote(worker=0, winner=1, loser=2),
            Vote(worker=0, winner=0, loser=2),
            Vote(worker=0, winner=3, loser=4),
        ])
        for seed in range(5):
            with pytest.warns(DegenerateGraphWarning):
                report = solve_sparse_engine(
                    votes, PipelineConfig(engine="lsq"), rng=seed
                )
            assert list(report.ranking.order)[:3] == [0, 1, 2]

    def test_connected_graph_consumes_no_randomness(self):
        votes = noisy_votes(8, 0)
        rng = np.random.default_rng(7)
        solve_sparse_engine(votes, PipelineConfig(engine="lsq"), rng=rng)
        untouched = np.random.default_rng(7)
        assert rng.random() == untouched.random()


class TestSparseRankCentrality:
    @pytest.mark.parametrize("n,seed", [(8, 0), (40, 1), (150, 2)])
    def test_sparse_matches_dense_oracle(self, n, seed):
        votes = noisy_votes(n, seed, reps=2)
        rank_d, scores_d = rank_centrality(votes, method="dense")
        rank_s, scores_s = rank_centrality(votes, method="sparse")
        assert list(rank_d.order) == list(rank_s.order)
        np.testing.assert_allclose(scores_s, scores_d, atol=1e-10)

    def test_unknown_method_rejected(self):
        with pytest.raises(ConfigurationError):
            rank_centrality(noisy_votes(4, 0), method="cholesky")

    def test_auto_dispatch(self, monkeypatch):
        import importlib

        # The package re-exports the function under the same name, so a
        # plain ``import repro.baselines.rank_centrality`` binds the
        # function; importlib resolves the module itself.
        rc_mod = importlib.import_module("repro.baselines.rank_centrality")

        calls = []
        original = rc_mod._sparse_transition

        def spy(votes, regularization):
            calls.append(votes.n_objects)
            return original(votes, regularization)

        monkeypatch.setattr(rc_mod, "_sparse_transition", spy)
        rank_centrality(noisy_votes(10, 0), method="auto")
        assert calls == []  # below threshold: dense oracle
        rank_centrality(noisy_votes(rc_mod.SPARSE_THRESHOLD, 0, reps=1),
                        method="auto")
        assert calls == [rc_mod.SPARSE_THRESHOLD]


class TestConfigPlumbing:
    def test_engine_validation(self):
        with pytest.raises(ConfigurationError):
            PipelineConfig(engine="spectral")
        assert LARGE_N_PIPELINE.engine == "hodge"

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"solver": "gauss"},
            {"flow": "cubic"},
            {"tol": 0.0},
            {"tol": 2.0},
            {"max_solver_iterations": 0},
            {"logit_clip": 0.5},
        ],
    )
    def test_sparse_config_validation(self, kwargs):
        with pytest.raises(ConfigurationError):
            SparseEngineConfig(**kwargs)

    def test_codec_round_trip(self):
        config = config_from_payload({
            "engine": "hodge",
            "sparse": {"solver": "cg", "flow": "logit", "tol": 1e-6},
        })
        assert config.engine == "hodge"
        assert config.sparse.solver == "cg"
        assert config.sparse.flow == "logit"
        assert config.sparse.tol == 1e-6
        # Defaults survive partial payloads.
        assert config.sparse.max_solver_iterations == 2000

    def test_codec_rejects_bad_engine_and_fields(self):
        with pytest.raises(DataFormatError):
            config_from_payload({"engine": "spectral"})
        with pytest.raises(DataFormatError):
            config_from_payload({"sparse": {"solver": "gauss"}})
        with pytest.raises(DataFormatError):
            config_from_payload({"sparse": {"unknown_knob": 1}})


class TestLargeN:
    def test_sparse_engines_handle_n_1000_quickly(self):
        # A sparse random comparison graph at n=1000 — far beyond what
        # the dense path can touch in test time.  ~3 votes per object
        # on a ring + random chords keeps the graph connected.
        import time

        n = 1000
        rng = np.random.default_rng(0)
        votes = []
        for i in range(n):
            j = (i + 1) % n
            lo, hi = min(i, j), max(i, j)
            votes.append(Vote(worker=int(rng.integers(5)),
                              winner=lo, loser=hi))
        for a, b in rng.integers(0, n, size=(2 * n, 2)):
            if a == b:
                continue
            votes.append(Vote(worker=int(rng.integers(5)),
                              winner=int(min(a, b)), loser=int(max(a, b))))
        vote_set = VoteSet.from_votes(n, votes)
        for engine in ENGINES:
            start = time.perf_counter()
            report = solve_sparse_engine(
                vote_set, PipelineConfig(engine=engine), rng=0
            )
            elapsed = time.perf_counter() - start
            assert report.metadata["n_components"] == 1
            assert len(report.ranking.order) == n
            assert elapsed < 30.0

    def test_no_dense_matrix_materialised(self):
        inc = build_incidence(noisy_votes(60, 0, reps=1).arrays())
        assert sparse.issparse(inc.incidence)
        assert inc.incidence.nnz == 2 * inc.n_edges
