"""Integration tests for the ``policy=`` seam of ``adaptive_rank``:
acquisition-driven rounds, the columnar interim-inference path, and the
tie-breaking regressions of the legacy heuristic."""

import dataclasses

import numpy as np
import pytest

from repro.acquisition import AcquisitionPolicy, BudgetLedger
from repro.adaptive import (
    _interim_closure,
    _most_uncertain_pairs,
    adaptive_rank,
)
from repro.config import FAST_PIPELINE
from repro.exceptions import ConfigurationError
from repro.platform import InteractivePlatform
from repro.types import Ranking, Vote
from repro.workers import QualityLevel, WorkerPool, gaussian_preset


def make_platform(n=12, budget_queries=150, seed=33):
    truth = Ranking.random(n, rng=seed)
    pool = WorkerPool.from_distribution(
        12, gaussian_preset(QualityLevel.MEDIUM), rng=seed
    )
    platform = InteractivePlatform(
        pool, truth, budget=budget_queries * 0.025, reward=0.025, rng=seed
    )
    return truth, platform


class TestPolicySeam:
    @pytest.mark.parametrize("scorer", ["random", "uncertainty", "bdp",
                                        "infomax"])
    def test_scorer_names_drive_the_rounds(self, scorer):
        truth, platform = make_platform()
        result, stats = adaptive_rank(
            platform, config=FAST_PIPELINE, rng=7, policy=scorer,
            rounds=2,
        )
        assert sorted(result.ranking.order) == list(range(12))
        assert platform.remaining_queries() == 0
        assert len(stats) == 2
        assert all(s.queries_spent > 0 for s in stats)

    def test_policy_instance_is_driven_and_rebuilt(self):
        truth, platform = make_platform()
        policy = AcquisitionPolicy(12, "bdp")
        adaptive_rank(platform, config=FAST_PIPELINE, rng=7,
                      policy=policy, rounds=2)
        # Rebuilt at the start of the final round from the full vote
        # log so far: 45 seed votes plus the 52-vote first round.
        assert policy.posterior.n_observed == 97

    def test_universe_mismatch_rejected(self):
        _, platform = make_platform(n=12)
        with pytest.raises(ConfigurationError):
            adaptive_rank(platform, policy=AcquisitionPolicy(10, "bdp"),
                          rounds=1)

    def test_policy_none_keeps_the_legacy_heuristic(self):
        truth, platform = make_platform()
        result, stats = adaptive_rank(
            platform, config=FAST_PIPELINE, rng=7, policy=None, rounds=2,
        )
        assert sorted(result.ranking.order) == list(range(12))

    def test_policy_runs_reproducible(self):
        accuracies = []
        for _ in range(2):
            truth, platform = make_platform()
            result, _ = adaptive_rank(
                platform, config=FAST_PIPELINE, rng=7, policy="bdp",
                rounds=2,
            )
            accuracies.append(list(result.ranking.order))
        assert accuracies[0] == accuracies[1]


class TestColumnarInterim:
    """Satellite: interim inference rides the columnar vote path."""

    def test_columnar_matches_object_path(self):
        rng = np.random.default_rng(0)
        n = 10
        votes = [
            Vote(worker=int(k % 6), winner=int(i), loser=int(j))
            for k, (i, j) in enumerate(
                rng.choice(n, size=2, replace=False) for _ in range(150)
            )
        ]
        columnar = dataclasses.replace(FAST_PIPELINE,
                                       vote_path="columnar")
        objects = dataclasses.replace(FAST_PIPELINE, vote_path="object")
        closure_col = _interim_closure(
            n, votes, columnar, np.random.default_rng(5)
        )
        closure_obj = _interim_closure(
            n, votes, objects, np.random.default_rng(5)
        )
        np.testing.assert_allclose(closure_col, closure_obj,
                                   atol=1e-12)


class TestHeuristicTieBreak:
    """Satellite: `_most_uncertain_pairs` is deterministic per seed."""

    def test_same_generator_state_same_pairs(self):
        closure = np.full((8, 8), 0.5)
        np.fill_diagonal(closure, 0.0)
        first = _most_uncertain_pairs(closure, 6,
                                      np.random.default_rng(42))
        second = _most_uncertain_pairs(closure, 6,
                                       np.random.default_rng(42))
        assert first == second

    def test_all_tied_batch_is_not_pair_id_clustered(self):
        closure = np.full((10, 10), 0.5)
        np.fill_diagonal(closure, 0.0)
        pairs = _most_uncertain_pairs(closure, 5,
                                      np.random.default_rng(1))
        # Pure pair-id order would return (0,1), (0,2), ... (0,5).
        assert pairs != [(0, k) for k in range(1, 6)]

    def test_exact_post_jitter_ties_resolve_by_pair_id(self):
        class Degenerate:
            """A generator whose jitter is identically zero."""

            def uniform(self, low, high, size):
                return np.zeros(size)

        closure = np.full((5, 5), 0.5)
        np.fill_diagonal(closure, 0.0)
        pairs = _most_uncertain_pairs(closure, 4, Degenerate())
        assert pairs == [(0, 1), (0, 2), (0, 3), (0, 4)]


class TestLedgeredAdaptive:
    def test_policy_with_ledger_tracks_spend(self):
        truth, platform = make_platform(budget_queries=120)
        ledger = BudgetLedger(120, batch_size=40)
        policy = AcquisitionPolicy(12, "uncertainty", ledger)
        adaptive_rank(platform, config=FAST_PIPELINE, rng=3,
                      policy=policy, rounds=2)
        assert platform.remaining_queries() == 0
