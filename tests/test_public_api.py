"""Public-API surface tests: imports, __all__ hygiene, doc coverage."""

import importlib
import inspect

import pytest

import repro

SUBPACKAGES = [
    "repro.graphs",
    "repro.budget",
    "repro.assignment",
    "repro.workers",
    "repro.platform",
    "repro.truth",
    "repro.inference",
    "repro.baselines",
    "repro.metrics",
    "repro.datasets",
    "repro.experiments",
    "repro.service",
    "repro.streaming",
    "repro.server",
]

MODULES = SUBPACKAGES + [
    "repro.types",
    "repro.config",
    "repro.rng",
    "repro.exceptions",
    "repro.diagnostics",
    "repro.service.jobs",
    "repro.service.cache",
    "repro.service.shared_cache",
    "repro.service.retry",
    "repro.service.metrics",
    "repro.service.executor",
    "repro.server.app",
    "repro.server.prefork",
    "repro.server.prometheus",
    "repro.client",
    "repro.session",
    "repro.topk",
    "repro.adaptive",
    "repro.io",
    "repro.cli",
    "repro.graphs.digraph",
    "repro.graphs.task_graph",
    "repro.graphs.preference_graph",
    "repro.graphs.analysis",
    "repro.graphs.closure",
    "repro.graphs.hamiltonian",
    "repro.graphs.generators",
    "repro.budget.model",
    "repro.budget.planner",
    "repro.budget.optimizer",
    "repro.assignment.hits" if False else "repro.assignment.generator",
    "repro.assignment.fairness",
    "repro.assignment.assigner",
    "repro.workers.quality",
    "repro.workers.worker",
    "repro.workers.pool",
    "repro.workers.behaviors",
    "repro.platform.events",
    "repro.platform.pricing",
    "repro.platform.simulator",
    "repro.platform.interactive",
    "repro.truth.crh",
    "repro.truth.majority",
    "repro.truth.convergence",
    "repro.truth.dawid_skene",
    "repro.inference.smoothing",
    "repro.inference.propagation",
    "repro.inference.taps",
    "repro.inference.saps",
    "repro.inference.local_search",
    "repro.inference.pipeline",
    "repro.baselines.repeat_choice",
    "repro.baselines.quicksort",
    "repro.baselines.crowd_bt",
    "repro.baselines.btl",
    "repro.baselines.borda",
    "repro.baselines.copeland",
    "repro.baselines.rank_centrality",
    "repro.baselines.kemeny",
    "repro.metrics.kendall",
    "repro.metrics.spearman",
    "repro.metrics.accuracy",
    "repro.metrics.topk",
    "repro.datasets.synthetic",
    "repro.datasets.images",
    "repro.datasets.amt",
    "repro.experiments.scenarios",
    "repro.experiments.runner",
    "repro.experiments.reporting",
    "repro.experiments.export",
    "repro.experiments.replicate",
    "repro.streaming.buffer",
    "repro.streaming.incremental",
    "repro.streaming.stability",
    "repro.streaming.session",
]


@pytest.mark.parametrize("module_name", MODULES)
def test_module_imports_and_has_docstring(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__, f"{module_name} lacks a module docstring"


@pytest.mark.parametrize("package_name", ["repro"] + SUBPACKAGES)
def test_all_names_resolve(package_name):
    package = importlib.import_module(package_name)
    assert hasattr(package, "__all__"), f"{package_name} lacks __all__"
    for name in package.__all__:
        assert hasattr(package, name), f"{package_name}.{name} missing"


def test_version_string():
    assert repro.__version__.count(".") == 2


@pytest.mark.parametrize("package_name", SUBPACKAGES)
def test_public_callables_documented(package_name):
    """Every public class/function exported by a subpackage has a
    docstring."""
    package = importlib.import_module(package_name)
    for name in package.__all__:
        obj = getattr(package, name)
        if inspect.isclass(obj) or inspect.isfunction(obj):
            assert obj.__doc__, f"{package_name}.{name} lacks a docstring"


def test_public_classes_have_documented_public_methods():
    from repro.graphs import PreferenceGraph, TaskGraph, WeightedDigraph
    from repro.types import Ranking, VoteSet

    for cls in (WeightedDigraph, TaskGraph, PreferenceGraph, Ranking,
                VoteSet):
        for name, member in inspect.getmembers(cls):
            if name.startswith("_") or not callable(member):
                continue
            assert member.__doc__, f"{cls.__name__}.{name} lacks a docstring"
