"""Unit tests for repro.graphs.preference_graph."""

import numpy as np
import pytest

from repro.exceptions import GraphError
from repro.graphs import PreferenceGraph, TaskGraph


@pytest.fixture
def mixed_graph():
    """2 unanimous pairs, 1 contested pair over 4 objects."""
    return PreferenceGraph.from_direct_preferences(
        4, {(0, 1): 1.0, (1, 2): 0.75, (2, 3): 0.0}
    )


class TestFromDirectPreferences:
    def test_unanimous_creates_single_direction(self, mixed_graph):
        assert mixed_graph.has_edge(0, 1)
        assert not mixed_graph.has_edge(1, 0)
        assert mixed_graph.weight(0, 1) == 1.0

    def test_zero_preference_creates_reverse_only(self, mixed_graph):
        assert mixed_graph.has_edge(3, 2)
        assert not mixed_graph.has_edge(2, 3)

    def test_contested_creates_both_directions(self, mixed_graph):
        assert mixed_graph.weight(1, 2) == pytest.approx(0.75)
        assert mixed_graph.weight(2, 1) == pytest.approx(0.25)

    def test_rejects_non_canonical_key(self):
        with pytest.raises(GraphError):
            PreferenceGraph.from_direct_preferences(3, {(2, 1): 0.5})

    def test_rejects_out_of_range_preference(self):
        with pytest.raises(GraphError):
            PreferenceGraph.from_direct_preferences(3, {(0, 1): 1.5})


class TestOneEdges:
    def test_one_edges_found(self, mixed_graph):
        assert sorted(mixed_graph.one_edges()) == [(0, 1), (3, 2)]

    def test_no_one_edges_in_contested_graph(self):
        graph = PreferenceGraph.from_direct_preferences(2, {(0, 1): 0.6})
        assert graph.one_edges() == []


class TestStructureChecks:
    def test_compared_pairs(self, mixed_graph):
        assert mixed_graph.compared_pairs() == [(0, 1), (1, 2), (2, 3)]

    def test_is_instance_of(self, mixed_graph):
        task_graph = TaskGraph(4, [(0, 1), (1, 2), (2, 3)])
        assert mixed_graph.is_instance_of(task_graph)

    def test_not_instance_when_edge_missing(self, mixed_graph):
        task_graph = TaskGraph(4, [(0, 1), (1, 2)])
        assert not mixed_graph.is_instance_of(task_graph)

    def test_not_instance_when_sizes_differ(self, mixed_graph):
        assert not mixed_graph.is_instance_of(TaskGraph(5, [(0, 1)]))

    def test_validate_accepts_valid(self, mixed_graph):
        mixed_graph.validate()

    def test_validate_smoothed_rejects_missing_direction(self, mixed_graph):
        with pytest.raises(GraphError):
            mixed_graph.validate(smoothed=True)


class TestNormalisation:
    def test_normalized_pairs_sum_to_one(self):
        graph = PreferenceGraph(3)
        graph.add_edge(0, 1, 0.4)
        graph.add_edge(1, 0, 0.4)
        graph.add_edge(1, 2, 0.9)
        normalised = graph.normalized_pairs()
        assert normalised.weight(0, 1) == pytest.approx(0.5)
        assert normalised.weight(1, 2) == pytest.approx(1.0)
        normalised.validate()


class TestLogMatrix:
    def test_log_weight_matrix(self, mixed_graph):
        cost = mixed_graph.log_weight_matrix()
        assert cost[0, 1] == pytest.approx(0.0)  # -log 1
        assert cost[1, 2] == pytest.approx(-np.log(0.75))
        assert np.isinf(cost[2, 3])
        assert np.isinf(cost[0, 0])

    def test_copy_preserves_type(self, mixed_graph):
        clone = mixed_graph.copy()
        assert isinstance(clone, PreferenceGraph)
        assert sorted(clone.edges()) == sorted(mixed_graph.edges())
