"""Unit tests for repro.inference.saps (Algorithms 2-3)."""

import math

import numpy as np
import pytest

from repro.config import SAPSConfig
from repro.exceptions import InferenceError
from repro.inference.saps import (
    _random_swap,
    _reverse,
    _rotate,
    saps_search,
    saps_search_report,
)
from repro.inference.taps import branch_and_bound_search
from repro.types import Ranking


def sharp_matrix(n, forward=0.9):
    matrix = np.full((n, n), 1.0 - forward)
    for i in range(n):
        for j in range(i + 1, n):
            matrix[i, j] = forward
    np.fill_diagonal(matrix, 0.0)
    return matrix


def random_closure(n, seed):
    rng = np.random.default_rng(seed)
    matrix = np.zeros((n, n))
    for i in range(n):
        for j in range(i + 1, n):
            p = rng.uniform(0.05, 0.95)
            matrix[i, j] = p
            matrix[j, i] = 1.0 - p
    return matrix


class TestMoves:
    @pytest.mark.parametrize("move", [_rotate, _reverse, _random_swap])
    def test_moves_preserve_permutation(self, move):
        rng = np.random.default_rng(0)
        path = np.arange(12)
        for _ in range(100):
            candidate = move(path, rng)
            assert sorted(candidate.tolist()) == list(range(12))

    @pytest.mark.parametrize("move", [_rotate, _reverse, _random_swap])
    def test_moves_do_not_mutate_input(self, move):
        rng = np.random.default_rng(1)
        path = np.arange(10)
        original = path.copy()
        move(path, rng)
        assert np.array_equal(path, original)

    def test_moves_actually_move(self):
        rng = np.random.default_rng(2)
        path = np.arange(10)
        changed = sum(
            not np.array_equal(_reverse(path, rng), path) for _ in range(50)
        )
        assert changed > 25


class TestSAPSSearch:
    def test_finds_sharp_optimum(self):
        matrix = sharp_matrix(10)
        ranking, log_pref = saps_search(
            matrix, SAPSConfig(iterations=3000, restarts=2), rng=0
        )
        assert ranking == Ranking(range(10))
        assert log_pref == pytest.approx(9 * math.log(0.9))

    @pytest.mark.parametrize("init", ["greedy", "degree", "random"])
    def test_all_inits_work_on_sharp_instance(self, init):
        matrix = sharp_matrix(8)
        ranking, _ = saps_search(
            matrix, SAPSConfig(iterations=2000, restarts=1, init=init), rng=1
        )
        assert ranking == Ranking(range(8))

    def test_near_exact_on_random_instance(self):
        """SAPS should land within a small gap of the exact optimum."""
        matrix = random_closure(9, seed=5)
        _, exact_log = branch_and_bound_search(matrix)
        _, saps_log = saps_search(
            matrix, SAPSConfig(iterations=4000, restarts=3), rng=2
        )
        assert saps_log <= exact_log + 1e-9
        assert saps_log >= exact_log - 0.5

    def test_deterministic_with_seed(self):
        matrix = random_closure(8, seed=1)
        config = SAPSConfig(iterations=500, restarts=1)
        a, _ = saps_search(matrix, config, rng=9)
        b, _ = saps_search(matrix, config, rng=9)
        assert a == b

    def test_single_object(self):
        ranking, log_pref = saps_search(np.zeros((1, 1)))
        assert ranking == Ranking([0])
        assert log_pref == 0.0

    def test_two_objects(self):
        matrix = np.array([[0.0, 0.8], [0.2, 0.0]])
        ranking, _ = saps_search(matrix, SAPSConfig(iterations=10, restarts=1),
                                 rng=0)
        assert ranking == Ranking([0, 1])

    def test_incomplete_graph_without_path_raises(self):
        matrix = np.zeros((4, 4))
        matrix[0, 1] = 0.9  # vertices 2, 3 unreachable
        with pytest.raises(InferenceError):
            saps_search(matrix, SAPSConfig(iterations=50, restarts=1), rng=0)

    def test_report_diagnostics(self):
        matrix = sharp_matrix(6)
        report = saps_search_report(
            matrix, SAPSConfig(iterations=100, restarts=2), rng=0
        )
        assert report.restarts == 2
        assert report.proposed_moves == 2 * 100 * 3
        assert 0 < report.accepted_moves <= report.proposed_moves

    def test_restarts_none_uses_every_vertex(self):
        matrix = sharp_matrix(5)
        report = saps_search_report(
            matrix, SAPSConfig(iterations=50, restarts=None), rng=0
        )
        assert report.restarts == 5

    def test_polish_attribution(self):
        """A short hot anneal leaves disorder the polish pass removes;
        the report must attribute exactly that gain to the polish."""
        matrix = random_closure(20, seed=4)
        base = dict(iterations=60, restarts=1, temperature=2.0,
                    cooling_rate=0.9)
        rough = saps_search_report(
            matrix, SAPSConfig(**base, polish=False), rng=0
        )
        polished = saps_search_report(
            matrix, SAPSConfig(**base, polish=True), rng=0
        )
        assert rough.polish_improved is False
        assert rough.polish_delta == 0.0
        assert polished.polish_improved is True
        assert polished.polish_delta > 0.0
        assert polished.log_preference == pytest.approx(
            rough.log_preference + polished.polish_delta
        )
        # Polish work must not leak into the anneal counters.
        assert polished.proposed_moves == rough.proposed_moves
        assert polished.accepted_moves == rough.accepted_moves

    def test_better_temperature_schedule_not_worse(self):
        """Long cold anneal should match or beat a short hot one on the
        final preference (sanity of the Boltzmann machinery)."""
        matrix = random_closure(12, seed=7)
        _, hot = saps_search(
            matrix,
            SAPSConfig(iterations=200, restarts=1, temperature=5.0,
                       cooling_rate=0.99),
            rng=3,
        )
        _, cold = saps_search(
            matrix,
            SAPSConfig(iterations=5000, restarts=2, temperature=0.2,
                       cooling_rate=0.9995),
            rng=3,
        )
        assert cold >= hot - 1e-9


def _path_log_preference(matrix, order):
    return float(sum(math.log(matrix[a, b])
                     for a, b in zip(order, order[1:])))


class TestWarmStart:
    """``warm_start`` replaces the first restart's initial path; since
    the initial path seeds best-so-far, a warm run can never come back
    worse than the ranking it was handed."""

    def test_never_worse_than_seed_ranking(self):
        matrix = random_closure(12, seed=4)
        # A deliberately good seed: the cold optimum.
        seed_ranking, seed_log = saps_search(
            matrix, SAPSConfig(iterations=6000, restarts=2), rng=0
        )
        # ... annealed with a tiny budget that could only ruin it.
        report = saps_search_report(
            matrix, SAPSConfig(iterations=5, restarts=1), rng=1,
            warm_start=seed_ranking.order,
        )
        assert report.log_preference >= seed_log - 1e-9

    def test_never_worse_than_arbitrary_seed(self):
        matrix = random_closure(10, seed=8)
        warm = list(range(10))  # arbitrary, likely poor
        report = saps_search_report(
            matrix, SAPSConfig(iterations=300, restarts=1), rng=2,
            warm_start=warm,
        )
        assert report.log_preference \
            >= _path_log_preference(matrix, warm) - 1e-9

    def test_warm_start_still_improves(self):
        """A warm run with a real budget escapes a bad seed."""
        matrix = sharp_matrix(8)
        report = saps_search_report(
            matrix, SAPSConfig(iterations=2000, restarts=1), rng=3,
            warm_start=list(reversed(range(8))),
        )
        assert report.ranking == Ranking(range(8))

    def test_cold_run_unaffected_by_omitted_warm_start(self):
        matrix = random_closure(9, seed=2)
        config = SAPSConfig(iterations=800, restarts=2)
        a = saps_search_report(matrix, config, rng=5)
        b = saps_search_report(matrix, config, rng=5, warm_start=None)
        assert a.ranking == b.ranking
        assert a.log_preference == b.log_preference

    @pytest.mark.parametrize("warm", [
        [0, 1, 2],            # wrong length
        [0, 1, 2, 3, 3, 5, 6, 7, 8],  # repeated element
        [0, 1, 2, 3, 4, 5, 6, 7, 9],  # out of range
    ])
    def test_invalid_permutation_rejected(self, warm):
        matrix = random_closure(9, seed=2)
        with pytest.raises(InferenceError):
            saps_search_report(
                matrix, SAPSConfig(iterations=10, restarts=1), rng=0,
                warm_start=warm,
            )
