"""Unit tests for repro.inference.pipeline (Steps 1-4 end to end)."""

import pytest

from repro.config import (
    PipelineConfig,
    PropagationConfig,
    SAPSConfig,
    TAPSConfig,
)
from repro.exceptions import InferenceError
from repro.inference import RankingPipeline, infer_ranking
from repro.metrics import ranking_accuracy
from repro.types import Ranking, Vote, VoteSet


@pytest.fixture
def clean_votes():
    """3 perfect workers on a 5-object cycle-ish task set; truth is
    0 < 1 < 2 < 3 < 4."""
    pairs = [(0, 1), (1, 2), (2, 3), (3, 4), (0, 4), (0, 2), (1, 3), (2, 4)]
    votes = []
    for worker in range(3):
        for i, j in pairs:
            votes.append(Vote(worker=worker, winner=i, loser=j))
    return VoteSet.from_votes(5, votes)


class TestPipeline:
    def test_recovers_clean_ranking(self, clean_votes, fast_config):
        result = RankingPipeline(fast_config).run(clean_votes, rng=0)
        assert result.ranking == Ranking([0, 1, 2, 3, 4])

    def test_step_timings_present(self, clean_votes, fast_config):
        result = RankingPipeline(fast_config).run(clean_votes, rng=0)
        assert set(result.step_seconds) == {
            "truth_discovery",
            "smoothing",
            "propagation",
            "search",
        }
        assert all(t >= 0 for t in result.step_seconds.values())

    def test_metadata_populated(self, clean_votes, fast_config):
        result = RankingPipeline(fast_config).run(clean_votes, rng=0)
        assert result.metadata["search_algorithm"] == "saps"
        assert result.metadata["truth_iterations"] >= 1
        assert result.metadata["n_one_edges"] == 8  # all votes unanimous

    def test_direct_preferences_and_quality_exposed(self, clean_votes,
                                                    fast_config):
        result = RankingPipeline(fast_config).run(clean_votes, rng=0)
        assert len(result.direct_preferences) == 8
        assert set(result.worker_quality) == {0, 1, 2}

    def test_taps_search_mode(self, clean_votes):
        config = PipelineConfig(
            search="taps",
            taps=TAPSConfig(max_objects=6),
            propagation=PropagationConfig(max_hops=4),
        )
        result = RankingPipeline(config).run(clean_votes, rng=0)
        assert result.ranking == Ranking([0, 1, 2, 3, 4])
        assert result.metadata["tie_count"] >= 1

    def test_branch_and_bound_mode(self, clean_votes):
        config = PipelineConfig(
            search="branch_and_bound",
            propagation=PropagationConfig(max_hops=4),
        )
        result = RankingPipeline(config).run(clean_votes, rng=0)
        assert result.ranking == Ranking([0, 1, 2, 3, 4])

    def test_exact_modes_agree(self, clean_votes):
        taps_result = RankingPipeline(
            PipelineConfig(search="taps", taps=TAPSConfig(max_objects=6),
                           propagation=PropagationConfig(max_hops=4))
        ).run(clean_votes, rng=0)
        bnb_result = RankingPipeline(
            PipelineConfig(search="branch_and_bound",
                           propagation=PropagationConfig(max_hops=4))
        ).run(clean_votes, rng=0)
        assert taps_result.log_preference == pytest.approx(
            bnb_result.log_preference
        )

    def test_empty_votes_rejected(self, fast_config):
        with pytest.raises(InferenceError):
            RankingPipeline(fast_config).run(VoteSet.from_votes(3, []))

    def test_single_object_rejected(self, fast_config):
        votes = VoteSet.from_votes(1, [])
        with pytest.raises(InferenceError):
            RankingPipeline(fast_config).run(votes)

    def test_convenience_function(self, clean_votes, fast_config):
        result = infer_ranking(clean_votes, fast_config, rng=0)
        assert len(result.ranking) == 5

    def test_noisy_minority_is_outvoted(self, fast_config):
        """2 perfect workers + 1 anti-worker: pipeline follows majority."""
        pairs = [(0, 1), (1, 2), (0, 2)]
        votes = []
        for i, j in pairs:
            votes.append(Vote(worker=0, winner=i, loser=j))
            votes.append(Vote(worker=1, winner=i, loser=j))
            votes.append(Vote(worker=2, winner=j, loser=i))
        result = infer_ranking(VoteSet.from_votes(3, votes), fast_config,
                               rng=0)
        assert result.ranking == Ranking([0, 1, 2])

    def test_end_to_end_accuracy_on_simulation(self, medium_scenario,
                                               medium_votes, fast_config):
        result = infer_ranking(medium_votes, fast_config, rng=1)
        accuracy = ranking_accuracy(result.ranking,
                                    medium_scenario.ground_truth)
        assert accuracy > 0.85
