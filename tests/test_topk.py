"""Unit tests for repro.topk (the future-work top-k extension)."""

import numpy as np
import pytest

from repro.config import FAST_PIPELINE
from repro.exceptions import ConfigurationError
from repro.metrics import topk_precision
from repro.topk import topk_exact, topk_ranking
from repro.types import Ranking, Vote, VoteSet


def sharp_matrix(n, forward=0.9):
    matrix = np.full((n, n), 1.0 - forward)
    for i in range(n):
        for j in range(i + 1, n):
            matrix[i, j] = forward
    np.fill_diagonal(matrix, 0.0)
    return matrix


class TestTopkExact:
    def test_sharp_instance(self):
        ranking, _ = topk_exact(sharp_matrix(8), k=3)
        assert ranking == Ranking([0, 1, 2])

    def test_k_equals_one(self):
        ranking, _ = topk_exact(sharp_matrix(6), k=1)
        assert list(ranking) == [0]

    def test_k_equals_n_matches_full_search(self):
        from repro.inference.taps import branch_and_bound_search

        rng = np.random.default_rng(3)
        n = 6
        matrix = np.zeros((n, n))
        for i in range(n):
            for j in range(i + 1, n):
                p = rng.uniform(0.1, 0.9)
                matrix[i, j] = p
                matrix[j, i] = 1 - p
        topk, _ = topk_exact(matrix, k=n)
        full, _ = branch_and_bound_search(matrix)
        # With k = n the tail term is empty, so both maximise the same
        # objective.
        assert topk == full

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            topk_exact(sharp_matrix(5), k=0)
        with pytest.raises(ConfigurationError):
            topk_exact(sharp_matrix(5), k=6)
        with pytest.raises(ConfigurationError):
            topk_exact(sharp_matrix(25), k=3)

    def test_output_length(self):
        for k in (1, 2, 4):
            ranking, _ = topk_exact(sharp_matrix(7), k=k)
            assert len(ranking) == k


class TestTopkRanking:
    @pytest.fixture(scope="class")
    def clean_votes(self):
        pairs = [(i, j) for i in range(8) for j in range(i + 1, 8)]
        votes = []
        for worker in range(3):
            for i, j in pairs:
                votes.append(Vote(worker=worker, winner=i, loser=j))
        return VoteSet.from_votes(8, votes)

    def test_returns_head_of_full_ranking(self, clean_votes):
        top3 = topk_ranking(clean_votes, 3, FAST_PIPELINE, rng=0)
        assert list(top3) == [0, 1, 2]

    def test_precision_against_truth(self, clean_votes):
        top4 = topk_ranking(clean_votes, 4, FAST_PIPELINE, rng=0)
        truth = Ranking(range(8))
        padded = Ranking(list(top4) + [o for o in range(8) if o not in top4])
        assert topk_precision(padded, truth, 4) == 1.0

    def test_validation(self, clean_votes):
        with pytest.raises(ConfigurationError):
            topk_ranking(clean_votes, 0)
        with pytest.raises(ConfigurationError):
            topk_ranking(clean_votes, 9)
