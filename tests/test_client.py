"""Tests for the urllib-based ranking client (against a live server)."""

import socket
import threading

import pytest

from repro.client import RankingClient, ServerError, ServerUnavailableError
from repro.server import RankingServer, ServerConfig
from repro.service import (
    BatchExecutor,
    RankingJob,
    RetryPolicy,
    ScenarioSpec,
)
from repro.types import InferenceResult, Ranking


@pytest.fixture
def server():
    ranking_server = RankingServer(ServerConfig(
        port=0, workers=2, queue_depth=4, default_timeout=60.0,
        no_cache=True,
    ))
    ranking_server.start()
    yield ranking_server
    ranking_server.stop(drain_timeout=5.0)


@pytest.fixture
def client(server):
    return RankingClient(server.url, timeout=30.0)


class TestProbes:
    def test_health_and_ready(self, client):
        assert client.health() is True
        assert client.ready() is True

    def test_metrics_text(self, client):
        client.rank(scenario={"n_objects": 8, "selection_ratio": 0.5,
                              "n_workers": 6}, seed=1)
        text = client.metrics_text()
        assert "repro_jobs_succeeded_total 1" in text


class TestRank:
    def test_scenario_dict_round_trip(self, client):
        outcome = client.rank(
            scenario={"n_objects": 10, "selection_ratio": 0.5,
                      "n_workers": 8},
            seed=3,
        )
        assert outcome.ok
        assert sorted(outcome.result.ranking.order) == list(range(10))
        assert 0.0 <= outcome.extras["accuracy"] <= 1.0

    def test_config_dict_fills_defaults(self, client):
        outcome = client.rank(
            scenario={"n_objects": 8, "selection_ratio": 0.5, "n_workers": 6},
            config={"saps": {"iterations": 500, "restarts": 1}},
            seed=4,
        )
        assert outcome.ok
        assert sorted(outcome.result.ranking.order) == list(range(8))

    def test_votes_round_trip(self, client, tiny_votes):
        outcome = client.rank(votes=tiny_votes, seed=5)
        assert outcome.ok
        assert sorted(outcome.result.ranking.order) == [0, 1, 2, 3]

    def test_prepared_job(self, client):
        job = RankingJob(job_id="prep", scenario=ScenarioSpec(8, 0.5,
                                                              n_workers=6),
                         seed=2)
        outcome = client.rank_job(job)
        assert outcome.job_id == "prep"
        assert outcome.ok

    def test_failed_job_returns_result_not_raise(self, client, monkeypatch):
        def explode(self, job):
            raise ValueError("poisoned")

        monkeypatch.setattr(BatchExecutor, "_attempt", explode)
        outcome = client.rank(scenario={"n_objects": 8,
                                        "selection_ratio": 0.5}, seed=1)
        assert not outcome.ok
        assert "poisoned" in outcome.error

    def test_bad_request_raises_server_error(self, client):
        with pytest.raises(ServerError) as excinfo:
            client.rank(scenario={"n_objects": 8, "selection_ratio": 0.5},
                        seed=1, timeout=-2)
        assert excinfo.value.status == 400

    def test_batch(self, client):
        jobs = [RankingJob(job_id=f"c{i}",
                           scenario=ScenarioSpec(8, 0.5, n_workers=6),
                           seed=i)
                for i in range(3)]
        results = client.batch(jobs)
        assert [r.job_id for r in results] == ["c0", "c1", "c2"]
        assert all(r.ok for r in results)

    def test_empty_batch_never_touches_the_network(self):
        client = RankingClient("http://127.0.0.1:9")  # discard port
        assert client.batch([]) == []


class TestRetries:
    def test_unreachable_server_raises_after_retries(self):
        # Grab a port that nothing listens on.
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        client = RankingClient(
            f"http://127.0.0.1:{port}",
            retry=RetryPolicy(max_attempts=2, base_delay=0.0, max_delay=0.0),
        )
        with pytest.raises(ServerUnavailableError):
            client.rank(scenario={"n_objects": 8, "selection_ratio": 0.5},
                        seed=1)

    def test_backpressure_is_retried_until_capacity_frees(self, server,
                                                          monkeypatch):
        release = threading.Event()
        started = threading.Event()

        def blocked(self, job):
            started.set()
            assert release.wait(timeout=30)
            return (
                InferenceResult(ranking=Ranking([0, 1]), log_preference=0.0),
                {},
            )

        monkeypatch.setattr(BatchExecutor, "_attempt", blocked)
        saturating = RankingServer(ServerConfig(port=0, workers=1,
                                                queue_depth=1,
                                                no_cache=True))
        saturating.start()
        try:
            hog = RankingClient(saturating.url, timeout=30.0)
            hog_outcome = {}
            hog_thread = threading.Thread(target=lambda: hog_outcome.update(
                result=hog.rank_job(RankingJob(
                    job_id="hog",
                    scenario=ScenarioSpec(8, 0.5, n_workers=6), seed=1,
                ))
            ))
            hog_thread.start()
            assert started.wait(timeout=10)

            # While the gate is full the client sees 429s; once the hog
            # finishes, a retry lands and succeeds.
            retrying = RankingClient(
                saturating.url, timeout=30.0,
                retry=RetryPolicy(max_attempts=8, base_delay=0.05,
                                  max_delay=0.2),
            )
            release_timer = threading.Timer(0.3, release.set)
            release_timer.start()
            outcome = retrying.rank_job(RankingJob(
                job_id="patient",
                scenario=ScenarioSpec(8, 0.5, n_workers=6), seed=2,
            ))
            assert outcome.ok
            hog_thread.join(timeout=30)
            assert hog_outcome["result"].ok
            assert saturating.metrics.counter("http.rejected.saturated") >= 1
        finally:
            release.set()
            saturating.stop(drain_timeout=5.0)
