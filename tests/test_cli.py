"""Unit tests for the command-line interface."""

import json

import pytest

from repro.cli import main
from repro.datasets import save_votes_csv


@pytest.fixture
def votes_csv(tmp_path, tiny_votes):
    path = tmp_path / "votes.csv"
    save_votes_csv(tiny_votes, path)
    return str(path)


class TestRankCommand:
    def test_human_output(self, votes_csv, capsys):
        assert main(["rank", votes_csv, "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "ranking (most preferred first)" in out
        assert "objects: 4" in out

    def test_json_output(self, votes_csv, capsys):
        assert main(["rank", votes_csv, "--seed", "1", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert sorted(payload["ranking"]) == [0, 1, 2, 3]
        assert "worker_quality" in payload

    def test_search_choice(self, votes_csv, capsys):
        assert main(["rank", votes_csv, "--search", "branch_and_bound",
                     "--seed", "1"]) == 0

    def test_missing_file_is_error(self, capsys):
        with pytest.raises(SystemExit):
            main(["rank"])  # missing positional

    def test_bad_universe_reports_error(self, votes_csv, capsys):
        code = main(["rank", votes_csv, "--n-objects", "2"])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_top_k_truncates(self, votes_csv, capsys):
        assert main(["rank", votes_csv, "--seed", "1", "--top-k", "2",
                     "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["ranking"]) == 2

    def test_top_k_out_of_range(self, votes_csv, capsys):
        assert main(["rank", votes_csv, "--top-k", "9"]) == 2
        assert "top-k" in capsys.readouterr().err

    def test_save_round_trips(self, votes_csv, tmp_path, capsys):
        out = tmp_path / "result.json"
        assert main(["rank", votes_csv, "--seed", "1", "--save",
                     str(out)]) == 0
        from repro.io import load_result

        loaded = load_result(out)
        assert sorted(loaded.ranking.order) == [0, 1, 2, 3]


class TestPlanCommand:
    def test_plan_by_ratio(self, capsys):
        assert main(["plan", "10", "--ratio", "0.5", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "n_comparisons" in out
        assert "hp_likelihood_bound" in out

    def test_plan_by_budget_json(self, capsys):
        assert main(["plan", "10", "--budget", "5.0", "--json",
                     "--seed", "3"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["n_objects"] == 10
        assert payload["all_requirements_met"]

    def test_infeasible_budget_reports_error(self, capsys):
        code = main(["plan", "10", "--budget", "0.1"])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_ratio_and_budget_mutually_exclusive(self):
        with pytest.raises(SystemExit):
            main(["plan", "10", "--budget", "5", "--ratio", "0.5"])


class TestSimulateCommand:
    def test_simulate(self, capsys):
        assert main(["simulate", "12", "--ratio", "0.5", "--workers", "10",
                     "--seed", "2"]) == 0
        out = capsys.readouterr().out
        assert "accuracy" in out

    def test_simulate_json(self, capsys):
        assert main(["simulate", "12", "--ratio", "0.5", "--workers", "10",
                     "--quality", "uniform", "--level", "low",
                     "--seed", "2", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["n"] == 12
        assert 0.0 <= payload["accuracy"] <= 1.0


class TestVersion:
    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
