"""Differential equivalence suite for the execution backends.

The serial backend is the oracle: every result below must be
*bit-identical* on the thread and process backends — rankings, move
counters, pipeline metadata, batch job results.  This is the contract
that makes the backend choice a pure performance knob: switching
``--backend`` may change wall-clock, never answers.

The property that makes it hold is order preservation — every backend
returns results in input order, so deterministic reductions (SAPS's
"first minimum wins" across restarts) see the same sequence no matter
how execution interleaved.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.config import PipelineConfig, SAPSConfig
from repro.exceptions import ConfigurationError
from repro.inference import RankingPipeline
from repro.inference.saps import saps_search_report
from repro.server import ServerConfig
from repro.service.executor import BatchExecutor
from repro.service.jobs import RankingJob, ScenarioSpec
from repro.workers import parallel_map
from repro.workers.backends import (
    BACKEND_CHOICES,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    resolve_backend,
)

BACKENDS = ("serial", "thread", "process")


def _square(x: int) -> int:
    """Module-level so the process backend can pickle it by reference."""
    return x * x


def _preference_matrix(n: int, seed: int) -> np.ndarray:
    """A random consistent preference matrix (M[i,j] + M[j,i] == 1)."""
    rng = np.random.default_rng(seed)
    upper = rng.uniform(0.05, 0.95, size=(n, n))
    matrix = np.triu(upper, 1)
    matrix = matrix + np.tril(1.0 - matrix.T, -1)
    np.fill_diagonal(matrix, 0.0)
    return matrix


class TestParallelMapEquivalence:
    def test_results_match_serial_oracle(self):
        items = list(range(23))
        expected = parallel_map(_square, items, max_workers=1,
                                backend="serial")
        for backend in BACKENDS:
            assert parallel_map(_square, items, max_workers=4,
                                backend=backend) == expected

    def test_width_does_not_change_results(self):
        items = list(range(11))
        expected = [x * x for x in items]
        for backend in BACKENDS:
            for width in (1, 2, 7):
                assert parallel_map(_square, items, max_workers=width,
                                    backend=backend) == expected


class TestSAPSEquivalence:
    @pytest.mark.parametrize("kernel", ["incremental", "reference"])
    def test_rankings_bit_identical(self, kernel):
        matrix = _preference_matrix(18, seed=5)
        reports = {}
        for backend in BACKENDS:
            config = SAPSConfig(
                iterations=600, restarts=3, scale_with_objects=False,
                parallel_restarts=3, kernel=kernel, backend=backend,
            )
            reports[backend] = saps_search_report(matrix, config, rng=99)
        oracle = reports["serial"]
        for backend in ("thread", "process"):
            report = reports[backend]
            assert report.ranking == oracle.ranking
            assert report.log_preference == oracle.log_preference
            assert report.accepted_moves == oracle.accepted_moves
            assert report.proposed_moves == oracle.proposed_moves

    def test_backend_instance_accepted(self):
        matrix = _preference_matrix(10, seed=2)
        config = SAPSConfig(iterations=300, restarts=2,
                            scale_with_objects=False, parallel_restarts=2)
        oracle = saps_search_report(matrix, config, rng=4)
        for instance in (SerialBackend(), ThreadBackend(), ProcessBackend()):
            got = saps_search_report(
                matrix,
                SAPSConfig(iterations=300, restarts=2,
                           scale_with_objects=False, parallel_restarts=2,
                           backend=instance.name),
                rng=4,
            )
            assert got.ranking == oracle.ranking


class TestPipelineEquivalence:
    def test_full_pipeline_metadata_identical(self, medium_votes):
        results = {}
        for backend in BACKENDS:
            config = PipelineConfig(
                saps=SAPSConfig(iterations=800, restarts=2,
                                parallel_restarts=2, backend=backend),
            )
            results[backend] = RankingPipeline(config).run(
                medium_votes, np.random.default_rng(7)
            )
        oracle = results["serial"]
        for backend in ("thread", "process"):
            result = results[backend]
            assert result.ranking == oracle.ranking
            assert result.log_preference == oracle.log_preference
            assert result.metadata == oracle.metadata
            assert result.worker_quality == oracle.worker_quality
            assert result.direct_preferences == oracle.direct_preferences


class TestExecutorEquivalence:
    def test_job_results_identical(self):
        jobs = [
            RankingJob(
                job_id=f"j{i}",
                scenario=ScenarioSpec(n_objects=10, selection_ratio=0.5,
                                      n_workers=8),
                seed=50 + i,
            )
            for i in range(3)
        ]
        outputs = {}
        for backend in BACKENDS:
            report = BatchExecutor(workers=2, backend=backend).run(jobs)
            assert report.ok, [r.error for r in report.results]
            outputs[backend] = [
                (r.job_id, r.status, tuple(r.result.ranking.order),
                 r.result.log_preference, r.extras)
                for r in report.results
            ]
        assert outputs["thread"] == outputs["serial"]
        assert outputs["process"] == outputs["serial"]


@pytest.mark.slow
class TestLargeScaleEquivalence:
    """A paper-scale differential run (n = 200, the benchmark setting
    the acceptance speedup is measured at) — too heavy for tier-1."""

    @staticmethod
    def _config(backend):
        return SAPSConfig(
            iterations=4000, restarts=4, scale_with_objects=False,
            parallel_restarts=4, backend=backend,
        )

    def test_large_instance_identical(self):
        matrix = _preference_matrix(200, seed=11)
        oracle = saps_search_report(matrix, self._config("serial"), rng=17)
        for backend in ("thread", "process"):
            report = saps_search_report(matrix, self._config(backend),
                                        rng=17)
            assert report.ranking == oracle.ranking
            assert report.log_preference == oracle.log_preference

    @pytest.mark.skipif((os.cpu_count() or 1) < 4,
                        reason="speedup needs >= 4 cores; thread and "
                               "process are both serial on a small host")
    def test_process_beats_thread_on_multicore(self):
        # The acceptance bar of the backend layer: at n = 200 with 4
        # parallel restarts of the pure-Python kernel, real parallelism
        # must beat the GIL by >= 2x while returning the same ranking.
        matrix = _preference_matrix(200, seed=11)
        timings = {}
        rankings = {}
        for backend in ("thread", "process"):
            start = time.perf_counter()
            report = saps_search_report(matrix, self._config(backend),
                                        rng=17)
            timings[backend] = time.perf_counter() - start
            rankings[backend] = report.ranking
        assert rankings["process"] == rankings["thread"]
        assert timings["thread"] / timings["process"] >= 2.0, timings


class TestBackendSelection:
    def test_env_var_fills_the_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "serial")
        assert resolve_backend(None).name == "serial"
        monkeypatch.delenv("REPRO_BACKEND")
        assert resolve_backend(None).name == "thread"

    def test_explicit_choice_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "serial")
        assert resolve_backend("process").name == "process"
        assert resolve_backend(ThreadBackend()).name == "thread"

    def test_unknown_backend_rejected_everywhere(self):
        with pytest.raises(ConfigurationError):
            resolve_backend("gpu")
        with pytest.raises(ConfigurationError):
            SAPSConfig(backend="gpu")
        with pytest.raises(ConfigurationError):
            ServerConfig(backend="gpu")
        with pytest.raises(ConfigurationError):
            BatchExecutor(backend="gpu")

    def test_registry_is_the_closed_choice_set(self):
        assert set(BACKEND_CHOICES) == {"serial", "thread", "process"}
