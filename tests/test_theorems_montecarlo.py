"""Monte-Carlo verification of the paper's analytical results.

Section III-IV's formulas make probabilistic statements over the
``3^l`` uniformly random preference-graph instances of a task graph.
These tests *sample* that instance space and check the formulas hold
empirically — catching both implementation bugs and transcription errors
in the analytical module.
"""

import numpy as np
import pytest

from repro.graphs import (
    PreferenceGraph,
    TaskGraph,
    WeightedDigraph,
    count_preference_instances,
    prob_in_or_out_node,
)
from repro.graphs.analysis import hp_likelihood_lower_bound

SAMPLES = 4000


def random_instance(task_graph: TaskGraph, rng) -> WeightedDigraph:
    """Draw one of the 3^l preference instances uniformly (Sec. III)."""
    graph = WeightedDigraph(task_graph.n_vertices)
    for i, j in task_graph.edges():
        roll = rng.integers(3)
        if roll == 0:
            graph.add_edge(i, j, 1.0)
        elif roll == 1:
            graph.add_edge(j, i, 1.0)
        else:
            graph.add_edge(i, j, 0.5)
            graph.add_edge(j, i, 0.5)
    return graph


class TestEq2MonteCarlo:
    """Empirical ``Prob(v^IO)`` must match ``2 / 3^d``."""

    @pytest.mark.parametrize(
        "edges,vertex,degree",
        [
            ([(0, 1), (0, 2)], 0, 2),       # Figure 2(a) centre
            ([(0, 1), (0, 2)], 1, 1),       # Figure 2(a) leaf
            ([(0, 1), (1, 2), (0, 2)], 0, 2),  # Figure 2(b) triangle
        ],
    )
    def test_empirical_io_probability(self, edges, vertex, degree):
        task_graph = TaskGraph(3, edges)
        rng = np.random.default_rng(12)
        hits = 0
        for _ in range(SAMPLES):
            instance = random_instance(task_graph, rng)
            if instance.is_in_node(vertex) or instance.is_out_node(vertex):
                hits += 1
        expected = prob_in_or_out_node(degree)
        standard_error = np.sqrt(expected * (1 - expected) / SAMPLES)
        assert hits / SAMPLES == pytest.approx(expected,
                                               abs=4 * standard_error)


class TestTheorem43MonteCarlo:
    """Two in-nodes (or out-nodes) always kill the Hamiltonian path.

    Checked against the raw Held-Karp DP (``_held_karp_exists``), not
    :func:`has_hamiltonian_path`, which short-circuits on the very same
    condition and would make the test a tautology.
    """

    def test_no_instance_violates(self):
        from repro.graphs.hamiltonian import _held_karp_exists

        # A path task graph: its degree-1 endpoints become in/out-nodes
        # with probability 2/3 each, so the condition fires often.
        task_graph = TaskGraph(5, [(0, 1), (1, 2), (2, 3), (3, 4)])
        rng = np.random.default_rng(13)
        checked = 0
        for _ in range(600):
            instance = random_instance(task_graph, rng)
            if len(instance.in_nodes()) > 1 or len(instance.out_nodes()) > 1:
                checked += 1
                assert not _held_karp_exists(instance)
        assert checked > 50  # the condition actually occurred


class TestTheorem44MonteCarlo:
    """``Pr_l`` lower-bounds P(at most one in-node and one out-node)."""

    @pytest.mark.parametrize(
        "n,l,seed",
        [(5, 8, 14), (6, 9, 15), (6, 12, 16)],
    )
    def test_bound_holds_empirically(self, n, l, seed):
        from repro.graphs.generators import near_regular_task_graph

        task_graph = near_regular_task_graph(n, l, rng=seed)
        d_min, d_max = task_graph.degree_bounds()
        bound = hp_likelihood_lower_bound(n, d_min, d_max)
        if bound > 1.0:
            pytest.skip("bound exceeds 1 (not informative at this degree)")
        rng = np.random.default_rng(seed)
        good = 0
        for _ in range(SAMPLES):
            instance = random_instance(task_graph, rng)
            if (len(instance.in_nodes()) <= 1
                    and len(instance.out_nodes()) <= 1):
                good += 1
        empirical = good / SAMPLES
        standard_error = np.sqrt(max(empirical * (1 - empirical), 1e-6)
                                 / SAMPLES)
        assert empirical >= bound - 4 * standard_error


class TestEq1Exhaustive:
    """For a tiny task graph, enumerate all 3^l instances exactly."""

    def test_exact_io_count_matches_eq2(self):
        import itertools

        task_graph = TaskGraph(3, [(0, 1), (0, 2)])
        edges = list(task_graph.edges())
        total = 0
        io_count = {0: 0, 1: 0, 2: 0}
        for assignment in itertools.product(range(3), repeat=len(edges)):
            graph = WeightedDigraph(3)
            for (i, j), roll in zip(edges, assignment):
                if roll == 0:
                    graph.add_edge(i, j, 1.0)
                elif roll == 1:
                    graph.add_edge(j, i, 1.0)
                else:
                    graph.add_edge(i, j, 0.5)
                    graph.add_edge(j, i, 0.5)
            total += 1
            for v in range(3):
                if graph.is_in_node(v) or graph.is_out_node(v):
                    io_count[v] += 1
        assert total == count_preference_instances(task_graph) == 9
        # Eq. 2 exactly: vertex 0 has degree 2 -> 2/9; leaves -> 2/3.
        assert io_count[0] / total == pytest.approx(2 / 9)
        assert io_count[1] / total == pytest.approx(2 / 3)
        assert io_count[2] / total == pytest.approx(2 / 3)
