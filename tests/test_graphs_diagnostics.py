"""Unit tests for the task-graph diagnostics (degree histogram, diameter)."""

import pytest

from repro.exceptions import GraphError
from repro.graphs import TaskGraph, degree_histogram, diameter
from repro.graphs.generators import near_regular_task_graph, star_task_graph


class TestDegreeHistogram:
    def test_regular_graph_single_bucket(self):
        graph = TaskGraph(4, [(0, 1), (1, 2), (2, 3), (0, 3)])
        assert degree_histogram(graph) == {2: 4}

    def test_near_regular_two_buckets(self):
        graph = near_regular_task_graph(7, 12, rng=1)
        histogram = degree_histogram(graph)
        assert len(histogram) <= 2
        assert sum(histogram.values()) == 7

    def test_star_buckets(self):
        graph = star_task_graph(6)
        assert degree_histogram(graph) == {5: 1, 1: 5}


class TestDiameter:
    def test_path_graph(self):
        graph = TaskGraph(5, [(0, 1), (1, 2), (2, 3), (3, 4)])
        assert diameter(graph) == 4

    def test_complete_graph(self):
        assert diameter(TaskGraph.complete(6)) == 1

    def test_star(self):
        assert diameter(star_task_graph(8)) == 2

    def test_cycle(self):
        graph = TaskGraph(6, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5),
                              (0, 5)])
        assert diameter(graph) == 3

    def test_disconnected_rejected(self):
        graph = TaskGraph(4, [(0, 1), (2, 3)])
        with pytest.raises(GraphError):
            diameter(graph)

    def test_generated_plans_have_small_diameter(self):
        """Near-regular random plans at moderate density are
        small-world: the adaptive propagation depth comfortably covers
        the true diameter."""
        graph = near_regular_task_graph(60, 270, rng=3)  # degree 9
        assert diameter(graph) <= 5
