"""Equivalence and unit tests for the incremental SAPS kernel.

The contract under test: the incremental kernel (delta evaluation,
in-place moves, pre-fetched RNG blocks) is *observationally identical*
to the reference kernel (full re-sum per proposal, scalar RNG draws)
for any seed — same accepted moves, same best ranking, same cost to
float precision — while being several times faster (benchmarked by
``benchmarks/bench_saps.py``, not here).
"""

import math

import numpy as np
import pytest

from repro.config import SAPSConfig
from repro.exceptions import ConfigurationError, InferenceError
from repro.inference.delta import (
    apply_reverse,
    apply_rotate,
    apply_swap,
    cost_rows,
    path_cost,
    reverse_delta,
    reverse_diff_matrix,
    reverse_diff_rows,
    rotate_delta,
    swap_delta,
)
from repro.inference.saps import saps_search, saps_search_report
from repro.workers import parallel_map


def random_closure(n, seed):
    rng = np.random.default_rng(seed)
    matrix = np.zeros((n, n))
    for i in range(n):
        for j in range(i + 1, n):
            p = rng.uniform(0.05, 0.95)
            matrix[i, j] = p
            matrix[j, i] = 1.0 - p
    return matrix


def random_cost(n, seed):
    rng = np.random.default_rng(seed)
    cost = -np.log(rng.uniform(0.05, 0.95, (n, n)))
    np.fill_diagonal(cost, np.inf)
    return cost


class TestDeltas:
    """Each delta must equal the brute-force cost difference."""

    @pytest.mark.parametrize("n", [2, 3, 4, 10, 30])
    def test_rotate_delta_matches_resum(self, n):
        cost = random_cost(n, seed=n)
        rows = cost_rows(cost)
        rng = np.random.default_rng(n + 1)
        for _ in range(200):
            path = list(rng.permutation(n))
            first = int(rng.integers(0, n - 1))
            last = int(rng.integers(first + 2, n + 1))
            middle = int(rng.integers(first + 1, last))
            before = path_cost(cost, path)
            delta = rotate_delta(rows, path, first, middle, last)
            apply_rotate(path, first, middle, last)
            assert delta == pytest.approx(path_cost(cost, path) - before,
                                          abs=1e-9)

    @pytest.mark.parametrize("n", [2, 3, 4, 10, 30])
    def test_reverse_delta_matches_resum(self, n):
        cost = random_cost(n, seed=n)
        rows = cost_rows(cost)
        diff = reverse_diff_rows(cost)
        rng = np.random.default_rng(n + 2)
        for _ in range(200):
            path = list(rng.permutation(n))
            first = int(rng.integers(0, n - 1))
            last = int(rng.integers(first + 2, n + 1))
            before = path_cost(cost, path)
            delta = reverse_delta(rows, diff, path, first, last)
            apply_reverse(path, first, last)
            assert delta == pytest.approx(path_cost(cost, path) - before,
                                          abs=1e-9)

    def test_reverse_delta_vectorised_path_agrees(self):
        """Above the segment-length threshold the numpy gather must give
        the same delta as the scalar loop."""
        n = 300
        cost = random_cost(n, seed=0)
        rows = cost_rows(cost)
        diff_matrix = reverse_diff_matrix(cost)
        diff = diff_matrix.tolist()
        rng = np.random.default_rng(1)
        path = list(rng.permutation(n))
        for first, last in [(0, n), (3, n - 2), (10, 280)]:
            scalar = reverse_delta(rows, diff, path, first, last)
            vector = reverse_delta(rows, diff, path, first, last,
                                   diff_matrix=diff_matrix)
            assert vector == pytest.approx(scalar, abs=1e-9)

    @pytest.mark.parametrize("n", [2, 3, 4, 10, 30])
    def test_swap_delta_matches_resum(self, n):
        cost = random_cost(n, seed=n)
        rows = cost_rows(cost)
        rng = np.random.default_rng(n + 3)
        for _ in range(200):
            path = list(rng.permutation(n))
            i = int(rng.integers(0, n))
            j = int(rng.integers(0, n))
            before = path_cost(cost, path)
            delta = swap_delta(rows, path, i, j)
            apply_swap(path, i, j)
            assert delta == pytest.approx(path_cost(cost, path) - before,
                                          abs=1e-9)

    def test_diff_matrix_no_nan_with_inf_diagonal(self):
        cost = random_cost(6, seed=9)  # diagonal is +inf
        diff = reverse_diff_matrix(cost)
        assert not np.isnan(diff).any()


class TestKernelEquivalence:
    """Incremental and reference kernels are seed-for-seed identical."""

    @pytest.mark.parametrize("n", [2, 3, 10, 50])
    def test_kernels_agree(self, n):
        matrix = random_closure(n, seed=n)
        base = dict(iterations=400, restarts=2)
        inc = saps_search_report(
            matrix,
            SAPSConfig(**base, kernel="incremental", debug_checks=True,
                       resync_every=64),
            rng=7,
        )
        ref = saps_search_report(
            matrix, SAPSConfig(**base, kernel="reference"), rng=7
        )
        assert inc.ranking == ref.ranking
        assert inc.log_preference == pytest.approx(ref.log_preference,
                                                   abs=1e-9)
        assert inc.accepted_moves == ref.accepted_moves
        assert inc.proposed_moves == ref.proposed_moves

    @pytest.mark.parametrize("n", [2, 3, 10, 50])
    def test_incremental_cost_never_drifts(self, n):
        """``debug_checks`` asserts running == re-summed after *every*
        accepted move; a huge resync interval means the check alone
        guards the drift across the whole run."""
        matrix = random_closure(n, seed=n + 100)
        report = saps_search_report(
            matrix,
            SAPSConfig(iterations=600, restarts=1, kernel="incremental",
                       debug_checks=True, resync_every=10**9),
            rng=3,
        )
        assert report.proposed_moves == 600 * 3

    def test_incomplete_closure_falls_back_to_reference(self):
        """Any missing edge forces the reference kernel (inf-safe); the
        result must match an explicit reference run exactly."""
        matrix = random_closure(8, seed=5)
        matrix[2, 6] = 0.0  # knock out one direction
        config_inc = SAPSConfig(iterations=300, restarts=2,
                                kernel="incremental")
        config_ref = SAPSConfig(iterations=300, restarts=2,
                                kernel="reference")
        inc = saps_search_report(matrix, config_inc, rng=11)
        ref = saps_search_report(matrix, config_ref, rng=11)
        assert inc.ranking == ref.ranking
        assert inc.log_preference == ref.log_preference
        assert math.isfinite(inc.log_preference)

    def test_incomplete_graph_still_raises_without_path(self):
        matrix = np.zeros((4, 4))
        matrix[0, 1] = 0.9
        with pytest.raises(InferenceError):
            saps_search(matrix, SAPSConfig(iterations=50, restarts=1), rng=0)


class TestParallelRestarts:
    @pytest.mark.parametrize("n", [5, 12, 30])
    def test_serial_equals_parallel(self, n):
        """Same seed, same best ranking and cost, any thread count."""
        matrix = random_closure(n, seed=n + 40)
        base = dict(iterations=200, restarts=None)  # every-vertex restarts
        serial = saps_search_report(
            matrix, SAPSConfig(**base, parallel_restarts=1), rng=13
        )
        parallel = saps_search_report(
            matrix, SAPSConfig(**base, parallel_restarts=4), rng=13
        )
        assert serial.ranking == parallel.ranking
        assert serial.log_preference == parallel.log_preference
        assert serial.accepted_moves == parallel.accepted_moves
        assert serial.proposed_moves == parallel.proposed_moves

    def test_serial_equals_parallel_reference_kernel(self):
        matrix = random_closure(10, seed=77)
        base = dict(iterations=150, restarts=3, kernel="reference")
        serial = saps_search_report(
            matrix, SAPSConfig(**base, parallel_restarts=1), rng=5
        )
        parallel = saps_search_report(
            matrix, SAPSConfig(**base, parallel_restarts=3), rng=5
        )
        assert serial.ranking == parallel.ranking
        assert serial.log_preference == parallel.log_preference


class TestParallelMap:
    def test_preserves_order(self):
        out = parallel_map(lambda x: x * x, list(range(20)), max_workers=4)
        assert out == [x * x for x in range(20)]

    def test_serial_path(self):
        out = parallel_map(lambda x: x + 1, [1, 2, 3], max_workers=1)
        assert out == [2, 3, 4]

    def test_propagates_exceptions(self):
        def boom(x):
            raise ValueError(f"bad {x}")

        with pytest.raises(ValueError):
            parallel_map(boom, [1, 2], max_workers=2)

    def test_rejects_nonpositive_workers(self):
        with pytest.raises(ConfigurationError):
            parallel_map(lambda x: x, [1], max_workers=0)
