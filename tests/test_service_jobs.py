"""Unit tests for the batch-service job model and JSONL codecs."""

import json

import pytest

from repro.config import PipelineConfig, PropagationConfig, SAPSConfig
from repro.exceptions import ConfigurationError, DataFormatError
from repro.service import (
    JobResult,
    JobStatus,
    RankingJob,
    ScenarioSpec,
    dump_results_jsonl,
    iter_jobs_jsonl,
    job_from_payload,
    job_result_from_payload,
    job_result_to_payload,
    job_to_payload,
    load_jobs_jsonl,
)
from repro.service.jobs import config_from_payload, config_to_payload
from repro.types import InferenceResult, Ranking


class TestRankingJobValidation:
    def test_requires_exactly_one_work_source(self, tiny_votes):
        with pytest.raises(ConfigurationError):
            RankingJob(job_id="j")  # neither votes nor scenario
        with pytest.raises(ConfigurationError):
            RankingJob(job_id="j", votes=tiny_votes,
                       scenario=ScenarioSpec(5, 0.5))

    def test_requires_job_id(self, tiny_votes):
        with pytest.raises(ConfigurationError):
            RankingJob(job_id="", votes=tiny_votes)

    def test_scenario_spec_validates(self):
        with pytest.raises(ConfigurationError):
            ScenarioSpec(1, 0.5)
        with pytest.raises(ConfigurationError):
            ScenarioSpec(5, 0.0)
        with pytest.raises(ConfigurationError):
            ScenarioSpec(5, 0.5, quality="psychic")
        with pytest.raises(ConfigurationError):
            ScenarioSpec(5, 0.5, level="superb")


class TestConfigCodec:
    def test_round_trip_preserves_every_field(self):
        config = PipelineConfig(
            search="taps",
            truth_engine="em",
            saps=SAPSConfig(iterations=123, restarts=1),
            propagation=PropagationConfig(alpha=0.7, max_hops=4,
                                          method="walks"),
        )
        assert config_from_payload(config_to_payload(config)) == config

    def test_partial_payload_fills_defaults(self):
        config = config_from_payload({"search": "taps"})
        assert config.search == "taps"
        assert config.truth == PipelineConfig().truth

    def test_none_means_defaults(self):
        assert config_from_payload(None) == PipelineConfig()

    def test_unknown_field_raises(self):
        with pytest.raises(DataFormatError):
            config_from_payload({"exotic": 1})

    def test_invalid_value_raises_data_format(self):
        with pytest.raises(DataFormatError):
            config_from_payload({"search": "bogosort"})
        with pytest.raises(DataFormatError):
            config_from_payload({"saps": {"iterations": -1}})


class TestJobCodec:
    def test_votes_job_round_trip(self, tiny_votes):
        job = RankingJob(job_id="j1", votes=tiny_votes, seed=7)
        clone = job_from_payload(job_to_payload(job))
        assert clone.job_id == "j1"
        assert clone.seed == 7
        assert clone.votes == tiny_votes
        assert clone.config == job.config

    def test_scenario_job_round_trip(self):
        job = RankingJob(job_id="sim", seed=3,
                         scenario=ScenarioSpec(12, 0.4, n_workers=9,
                                               workers_per_task=3,
                                               quality="uniform",
                                               level="low"))
        clone = job_from_payload(job_to_payload(job))
        assert clone.scenario == job.scenario

    def test_schema_tag_enforced(self):
        with pytest.raises(DataFormatError):
            job_from_payload({"job_id": "j"})
        with pytest.raises(DataFormatError):
            job_from_payload({"schema": "repro.job/999", "job_id": "j"})
        with pytest.raises(DataFormatError):
            job_from_payload([1, 2, 3])

    def test_malformed_votes_raise(self):
        with pytest.raises(DataFormatError):
            job_from_payload({"schema": "repro.job/1", "job_id": "j",
                              "votes": {"n_objects": 3,
                                        "votes": [[0, 1, 1]]}})

    def test_non_integer_seed_raises(self, tiny_votes):
        payload = job_to_payload(RankingJob(job_id="j", votes=tiny_votes))
        payload["seed"] = "soon"
        with pytest.raises(DataFormatError):
            job_from_payload(payload)


class TestJsonlStreams:
    def test_blank_and_comment_lines_skipped(self, tiny_votes):
        line = json.dumps(job_to_payload(
            RankingJob(job_id="a", votes=tiny_votes, seed=1)))
        jobs = list(iter_jobs_jsonl(["", "# jobs below", line, "   "]))
        assert [job.job_id for job in jobs] == ["a"]

    def test_error_carries_line_number(self):
        with pytest.raises(DataFormatError, match=":2:"):
            list(iter_jobs_jsonl(["", "{not json"], source=""))

    def test_load_jobs_file_round_trip(self, tmp_path, tiny_votes):
        path = tmp_path / "jobs.jsonl"
        payloads = [
            job_to_payload(RankingJob(job_id=f"j{i}", votes=tiny_votes,
                                      seed=i))
            for i in range(3)
        ]
        path.write_text("".join(json.dumps(p) + "\n" for p in payloads))
        jobs = load_jobs_jsonl(path)
        assert [job.job_id for job in jobs] == ["j0", "j1", "j2"]

    def test_load_missing_file_raises_data_format(self, tmp_path):
        with pytest.raises(DataFormatError):
            load_jobs_jsonl(tmp_path / "nope.jsonl")

    def test_dump_results_jsonl(self):
        result = InferenceResult(ranking=Ranking([1, 0]),
                                 log_preference=-0.5)
        ok = JobResult(job_id="a", status=JobStatus.SUCCEEDED,
                       result=result, attempts=1, seconds=0.1,
                       extras={"accuracy": 1.0})
        bad = JobResult(job_id="b", status=JobStatus.FAILED,
                        error="InferenceError: boom", attempts=2,
                        seconds=0.2)
        lines = dump_results_jsonl([ok, bad]).splitlines()
        first, second = (json.loads(line) for line in lines)
        assert first["schema"] == "repro.job_result/1"
        assert first["ranking"] == [1, 0]
        assert first["extras"] == {"accuracy": 1.0}
        assert first["result"]["schema"] == "repro.inference_result/1"
        assert second["status"] == "failed"
        assert "ranking" not in second
        assert second["error"].startswith("InferenceError")


class TestJobResultRoundTrip:
    def test_succeeded_result_round_trips(self):
        result = InferenceResult(ranking=Ranking([1, 0]),
                                 log_preference=-0.5,
                                 step_seconds={"search": 0.25})
        original = JobResult(job_id="a", status=JobStatus.SUCCEEDED,
                             result=result, attempts=2, from_cache=False,
                             seconds=0.125, extras={"accuracy": 0.9})
        decoded = job_result_from_payload(job_result_to_payload(original))
        assert decoded.job_id == "a"
        assert decoded.status is JobStatus.SUCCEEDED
        assert decoded.result.ranking == result.ranking
        assert decoded.result.step_seconds == {"search": 0.25}
        assert decoded.attempts == 2
        assert decoded.seconds == pytest.approx(0.125)
        assert decoded.extras == {"accuracy": 0.9}

    def test_failed_result_round_trips(self):
        original = JobResult(job_id="b", status=JobStatus.FAILED,
                             error="InferenceError: boom", attempts=3)
        decoded = job_result_from_payload(job_result_to_payload(original))
        assert decoded.status is JobStatus.FAILED
        assert decoded.result is None
        assert decoded.error == "InferenceError: boom"

    def test_wrong_schema_rejected(self):
        with pytest.raises(DataFormatError):
            job_result_from_payload({"schema": "repro.job/1", "job_id": "a",
                                     "status": "succeeded"})

    def test_unknown_status_rejected(self):
        with pytest.raises(DataFormatError):
            job_result_from_payload({"schema": "repro.job_result/1",
                                     "job_id": "a", "status": "exploded"})

    def test_missing_job_id_rejected(self):
        with pytest.raises(DataFormatError):
            job_result_from_payload({"schema": "repro.job_result/1",
                                     "status": "succeeded"})
