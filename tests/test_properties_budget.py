"""Property-based tests for the budget and assignment layers."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.assignment import (
    assign_hits,
    batch_into_hits,
    generate_assignment,
    verify_assignment,
)
from repro.budget import BudgetModel, plan_for_budget, plan_for_selection_ratio
from repro.exceptions import BudgetError


class TestBudgetModelProperties:
    @given(st.floats(0.01, 1e6), st.integers(1, 50),
           st.floats(0.001, 10.0))
    def test_affordable_count_is_affordable(self, total, w, reward):
        model = BudgetModel(total=total, workers_per_task=w, reward=reward)
        count = model.affordable_comparisons()
        assert model.can_afford(count)
        # One more comparison must overdraw (up to float slack).
        assert model.cost_of(count + 1) > total - 1e-6

    @given(st.integers(0, 10_000), st.integers(1, 20),
           st.floats(0.001, 1.0))
    def test_required_budget_roundtrip(self, count, w, reward):
        model = BudgetModel.required_budget(count, workers_per_task=w,
                                            reward=reward)
        assert model.affordable_comparisons() == count

    @given(st.floats(0.01, 1e4), st.integers(1, 20), st.integers(2, 200))
    def test_selection_ratio_bounds(self, total, w, n):
        model = BudgetModel(total=total, workers_per_task=w)
        assert 0.0 <= model.selection_ratio(n) <= 1.0


class TestPlanProperties:
    @given(st.integers(3, 60), st.floats(0.01, 1.0), st.integers(1, 10))
    @settings(max_examples=60)
    def test_plan_always_feasible(self, n, ratio, w):
        plan = plan_for_selection_ratio(n, ratio, workers_per_task=w)
        max_pairs = n * (n - 1) // 2
        assert n - 1 <= plan.n_comparisons <= max_pairs
        assert plan.budget.can_afford(plan.n_comparisons)
        assert plan.total_votes == plan.n_comparisons * w

    @given(st.integers(3, 40), st.floats(1.0, 500.0), st.integers(1, 5))
    @settings(max_examples=60)
    def test_plan_for_budget_never_overdraws(self, n, total, w):
        model = BudgetModel(total=total, workers_per_task=w)
        try:
            plan = plan_for_budget(n, model)
        except BudgetError:
            # The budget cannot even pay for a spanning plan.
            assert model.affordable_comparisons() < n - 1
            return
        assert plan.spend <= total + 1e-9


class TestAssignmentProperties:
    @given(st.integers(4, 30), st.floats(0.1, 1.0), st.integers(1, 4),
           st.integers(0, 2**31))
    @settings(max_examples=40, deadline=None)
    def test_generated_assignment_meets_requirements(self, n, ratio, c,
                                                     seed):
        plan = plan_for_selection_ratio(n, ratio, workers_per_task=3)
        assignment = generate_assignment(plan, rng=seed,
                                         comparisons_per_hit=c)
        report = verify_assignment(assignment)
        assert report.all_requirements_met
        pairs = assignment.all_pairs()
        assert len(pairs) == plan.n_comparisons
        assert len(set(pairs)) == len(pairs)

    @given(st.integers(4, 25), st.integers(2, 8), st.integers(1, 6),
           st.integers(0, 2**31))
    @settings(max_examples=40, deadline=None)
    def test_worker_assignment_invariants(self, n, m, w, seed):
        if w > m:
            return
        plan = plan_for_selection_ratio(n, 0.5, workers_per_task=w)
        assignment = generate_assignment(plan, rng=seed)
        worker_assignment = assign_hits(assignment, n_workers=m,
                                        workers_per_hit=w, rng=seed)
        for workers in worker_assignment.hit_workers:
            assert len(workers) == w
            assert len(set(workers)) == w
            assert all(0 <= worker < m for worker in workers)
        assert worker_assignment.total_votes == plan.n_comparisons * w
