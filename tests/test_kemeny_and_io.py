"""Unit tests for the Kemeny baseline and the io persistence module."""

import numpy as np
import pytest

from repro.baselines import kemeny_local_search
from repro.config import FAST_PIPELINE
from repro.exceptions import DataFormatError, InferenceError
from repro.inference import infer_ranking
from repro.io import load_result, save_result
from repro.metrics import kendall_tau_distance, ranking_accuracy
from repro.types import Ranking, Vote, VoteSet


def noisy_votes(n, n_workers=5, error=0.1, seed=0):
    rng = np.random.default_rng(seed)
    votes = []
    for worker in range(n_workers):
        for i in range(n):
            for j in range(i + 1, n):
                if rng.random() < error:
                    votes.append(Vote(worker=worker, winner=j, loser=i))
                else:
                    votes.append(Vote(worker=worker, winner=i, loser=j))
    return VoteSet.from_votes(n, votes)


class TestKemeny:
    def test_perfect_votes_recover_truth(self):
        ranking, disagreement = kemeny_local_search(noisy_votes(8, error=0.0))
        assert ranking == Ranking(range(8))
        assert disagreement == 0.0

    def test_disagreement_counts_contradicted_votes(self):
        votes = VoteSet.from_votes(2, [
            Vote(worker=0, winner=0, loser=1),
            Vote(worker=1, winner=0, loser=1),
            Vote(worker=2, winner=1, loser=0),
        ])
        ranking, disagreement = kemeny_local_search(votes)
        assert ranking == Ranking([0, 1])
        assert disagreement == 1.0

    def test_noise_tolerance(self):
        votes = noisy_votes(12, error=0.15, seed=2)
        ranking, _ = kemeny_local_search(votes, rng=2)
        assert ranking_accuracy(ranking, Ranking(range(12))) > 0.9

    def test_objective_not_worse_than_borda_start(self):
        from repro.baselines import borda_count

        votes = noisy_votes(10, error=0.2, seed=3)
        wins = np.zeros((10, 10))
        for vote in votes:
            wins[vote.winner, vote.loser] += 1

        def objective(ranking):
            total = 0.0
            order = list(ranking.order)
            for a in range(len(order)):
                for b in range(a + 1, len(order)):
                    total += wins[order[b], order[a]]
            return total

        borda = borda_count(votes, rng=3)
        kemeny, disagreement = kemeny_local_search(votes, rng=3)
        assert disagreement <= objective(borda) + 1e-9
        assert disagreement == pytest.approx(objective(kemeny))

    def test_empty_rejected(self):
        with pytest.raises(InferenceError):
            kemeny_local_search(VoteSet.from_votes(3, []))

    def test_runner_dispatch(self):
        from repro.datasets import make_scenario
        from repro.experiments import run_baseline_arm
        from repro.experiments.runner import collect_votes

        scenario = make_scenario(12, 0.6, n_workers=10, workers_per_task=4,
                                 rng=4)
        votes = collect_votes(scenario, rng=4)
        record = run_baseline_arm(scenario, "kemeny", rng=4, votes=votes)
        assert record.algorithm == "kemeny"
        assert record.accuracy > 0.7


class TestResultIO:
    @pytest.fixture
    def result(self, tiny_votes):
        return infer_ranking(tiny_votes, FAST_PIPELINE, rng=0)

    def test_round_trip(self, tmp_path, result):
        path = tmp_path / "result.json"
        save_result(result, path)
        loaded = load_result(path)
        assert loaded.ranking == result.ranking
        assert loaded.log_preference == pytest.approx(result.log_preference)
        assert loaded.worker_quality == pytest.approx(result.worker_quality)
        assert loaded.direct_preferences == pytest.approx(
            result.direct_preferences
        )
        assert loaded.metadata["search_algorithm"] == "saps"

    def test_wrong_schema_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"schema": "other/9", "ranking": [0]}')
        with pytest.raises(DataFormatError):
            load_result(path)

    def test_invalid_json_rejected(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(DataFormatError):
            load_result(path)

    def test_malformed_ranking_rejected(self, tmp_path, result):
        path = tmp_path / "dup.json"
        save_result(result, path)
        import json

        payload = json.loads(path.read_text())
        payload["ranking"] = [0, 0, 1]
        path.write_text(json.dumps(payload))
        with pytest.raises(Exception):
            load_result(path)

    def test_missing_field_rejected(self, tmp_path):
        path = tmp_path / "missing.json"
        path.write_text(
            '{"schema": "repro.inference_result/1", "ranking": [0, 1]}'
        )
        with pytest.raises(DataFormatError):
            load_result(path)
