"""Unit tests for repro.workers (quality, worker, pool)."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.types import Ranking
from repro.workers import (
    GaussianQuality,
    QualityLevel,
    SimulatedWorker,
    UniformQuality,
    WorkerPool,
    gaussian_preset,
    uniform_preset,
)
from repro.workers.quality import error_probability


class TestQualityDistributions:
    def test_gaussian_sigmas_non_negative(self):
        sigmas = GaussianQuality(0.1).sample_sigmas(100, rng=0)
        assert np.all(sigmas >= 0)

    def test_gaussian_scale(self):
        tight = GaussianQuality(0.01).sample_sigmas(500, rng=0).mean()
        loose = GaussianQuality(1.0).sample_sigmas(500, rng=0).mean()
        assert loose > tight * 10

    def test_uniform_range(self):
        sigmas = UniformQuality(0.1, 0.3).sample_sigmas(200, rng=1)
        assert np.all((sigmas >= 0.1) & (sigmas <= 0.3))

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            GaussianQuality(0.0)
        with pytest.raises(ConfigurationError):
            UniformQuality(0.3, 0.1)
        with pytest.raises(ConfigurationError):
            GaussianQuality(0.1).sample_sigmas(0)

    def test_paper_presets(self):
        assert gaussian_preset(QualityLevel.HIGH).sigma_s == 0.01
        assert gaussian_preset(QualityLevel.MEDIUM).sigma_s == 0.1
        assert gaussian_preset(QualityLevel.LOW).sigma_s == 1.0
        assert uniform_preset(QualityLevel.HIGH) == UniformQuality(0.0, 0.2)
        assert uniform_preset(QualityLevel.MEDIUM) == UniformQuality(0.1, 0.3)
        assert uniform_preset(QualityLevel.LOW) == UniformQuality(0.2, 0.4)

    def test_describe(self):
        assert "Gaussian" in GaussianQuality(0.1).describe()
        assert "Uniform" in UniformQuality(0, 0.2).describe()

    def test_error_probability_bounds(self):
        for _ in range(10):
            assert 0.0 <= error_probability(0.5, rng=3) <= 1.0

    def test_error_probability_zero_sigma(self):
        assert error_probability(0.0) == 0.0

    def test_error_probability_validation(self):
        with pytest.raises(ConfigurationError):
            error_probability(-0.1)


class TestSimulatedWorker:
    def test_perfect_worker_never_errs(self):
        truth = Ranking([0, 1, 2])
        worker = SimulatedWorker(worker_id=0, sigma=0.0,
                                 rng=np.random.default_rng(0))
        for _ in range(50):
            vote = worker.vote(0, 2, truth)
            assert vote.winner == 0

    def test_noisy_worker_sometimes_errs(self):
        truth = Ranking([0, 1, 2])
        worker = SimulatedWorker(worker_id=0, sigma=2.0,
                                 rng=np.random.default_rng(0))
        outcomes = {worker.vote(0, 2, truth).winner for _ in range(200)}
        assert outcomes == {0, 2}

    def test_expected_error_probability(self):
        worker = SimulatedWorker(worker_id=0, sigma=0.1,
                                 rng=np.random.default_rng(0))
        assert worker.expected_error_probability() == pytest.approx(
            0.1 * np.sqrt(2 / np.pi)
        )

    def test_expected_error_clipped(self):
        worker = SimulatedWorker(worker_id=0, sigma=50.0,
                                 rng=np.random.default_rng(0))
        assert worker.expected_error_probability() == 1.0

    def test_negative_sigma_rejected(self):
        with pytest.raises(ConfigurationError):
            SimulatedWorker(worker_id=0, sigma=-0.1)

    def test_vote_carries_worker_id(self):
        truth = Ranking([0, 1])
        worker = SimulatedWorker(worker_id=7, sigma=0.0,
                                 rng=np.random.default_rng(0))
        assert worker.vote(0, 1, truth).worker == 7


class TestWorkerPool:
    def test_from_distribution_size(self):
        pool = WorkerPool.from_distribution(8, GaussianQuality(0.1), rng=0)
        assert len(pool) == 8

    def test_ids_are_sequential(self):
        pool = WorkerPool.from_distribution(5, GaussianQuality(0.1), rng=0)
        assert [w.worker_id for w in pool] == list(range(5))

    def test_indexing(self):
        pool = WorkerPool.from_distribution(5, GaussianQuality(0.1), rng=0)
        assert pool[3].worker_id == 3
        with pytest.raises(ConfigurationError):
            pool[9]

    def test_sigmas_shape(self):
        pool = WorkerPool.from_distribution(5, UniformQuality(0.1, 0.3), rng=0)
        assert pool.sigmas().shape == (5,)

    def test_expected_accuracies_in_unit_interval(self):
        pool = WorkerPool.from_distribution(20, GaussianQuality(1.0), rng=0)
        accuracies = pool.expected_accuracies()
        assert np.all((accuracies >= 0) & (accuracies <= 1))

    def test_sample_distinct(self):
        pool = WorkerPool.from_distribution(10, GaussianQuality(0.1), rng=0)
        chosen = pool.sample(5, rng=1)
        ids = [w.worker_id for w in chosen]
        assert len(set(ids)) == 5

    def test_sample_too_many_rejected(self):
        pool = WorkerPool.from_distribution(3, GaussianQuality(0.1), rng=0)
        with pytest.raises(ConfigurationError):
            pool.sample(4)

    def test_empty_pool_rejected(self):
        with pytest.raises(ConfigurationError):
            WorkerPool([])

    def test_non_contiguous_ids_rejected(self):
        workers = [
            SimulatedWorker(worker_id=0, sigma=0.1, rng=np.random.default_rng(0)),
            SimulatedWorker(worker_id=2, sigma=0.1, rng=np.random.default_rng(1)),
        ]
        with pytest.raises(ConfigurationError):
            WorkerPool(workers)

    def test_independent_vote_streams(self):
        """Two workers with identical sigma should not produce identical
        vote sequences (independent rng streams)."""
        pool = WorkerPool.from_distribution(2, UniformQuality(0.9, 0.901), rng=0)
        truth = Ranking.identity(2)
        seq0 = [pool[0].vote(0, 1, truth).winner for _ in range(50)]
        seq1 = [pool[1].vote(0, 1, truth).winner for _ in range(50)]
        assert seq0 != seq1
