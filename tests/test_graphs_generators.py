"""Unit tests for repro.graphs.generators (Algorithm 1's construction)."""

import numpy as np
import pytest

from repro.exceptions import AssignmentError, GraphError
from repro.graphs import (
    erdos_renyi_task_graph,
    near_regular_task_graph,
    random_hamiltonian_path,
    star_task_graph,
)


class TestRandomHamiltonianPath:
    def test_is_permutation(self):
        path = random_hamiltonian_path(10, rng=0)
        assert sorted(path) == list(range(10))

    def test_deterministic_with_seed(self):
        assert random_hamiltonian_path(8, rng=3) == random_hamiltonian_path(8, rng=3)

    def test_too_small(self):
        with pytest.raises(GraphError):
            random_hamiltonian_path(1)


class TestNearRegularTaskGraph:
    @pytest.mark.parametrize(
        "n,l",
        [(5, 4), (5, 10), (10, 20), (10, 9), (20, 50), (50, 200), (7, 12)],
    )
    def test_edge_count_exact(self, n, l):
        graph = near_regular_task_graph(n, l, rng=1)
        assert graph.n_vertices == n
        assert graph.n_edges == l

    @pytest.mark.parametrize("n,l", [(10, 20), (12, 30), (30, 90)])
    def test_near_regular(self, n, l):
        graph = near_regular_task_graph(n, l, rng=2)
        d_min, d_max = graph.degree_bounds()
        assert d_max - d_min <= 1

    def test_exactly_regular_when_divisible(self):
        # n=10, l=25 -> degree 5 everywhere.
        graph = near_regular_task_graph(10, 25, rng=3)
        assert graph.is_regular()

    def test_connected(self):
        for seed in range(5):
            graph = near_regular_task_graph(15, 25, rng=seed)
            assert graph.is_connected()

    def test_contains_seed_path(self):
        seed_path = list(range(8))
        graph = near_regular_task_graph(8, 16, rng=0, seed_path=seed_path)
        assert graph.contains_path(seed_path)

    def test_bad_seed_path_rejected(self):
        with pytest.raises(AssignmentError):
            near_regular_task_graph(5, 6, seed_path=[0, 1, 2, 3, 3])

    def test_infeasible_budget_rejected(self):
        with pytest.raises(AssignmentError):
            near_regular_task_graph(5, 3)  # below n-1
        with pytest.raises(AssignmentError):
            near_regular_task_graph(5, 11)  # above C(5,2)

    def test_complete_graph_budget(self):
        graph = near_regular_task_graph(6, 15, rng=4)
        assert graph.n_edges == 15
        assert graph.is_regular()

    def test_large_instance_fast(self):
        graph = near_regular_task_graph(500, 12475, rng=5)  # r ~ 0.1
        assert graph.n_edges == 12475
        d_min, d_max = graph.degree_bounds()
        assert d_max - d_min <= 1
        assert graph.is_connected()

    def test_randomness_varies_graphs(self):
        a = set(near_regular_task_graph(12, 24, rng=1).edges())
        b = set(near_regular_task_graph(12, 24, rng=2).edges())
        assert a != b


class TestStarTaskGraph:
    def test_structure(self):
        graph = star_task_graph(5, center=2)
        assert graph.n_edges == 4
        assert graph.degree(2) == 4
        assert all(graph.degree(v) == 1 for v in range(5) if v != 2)

    def test_bad_center(self):
        with pytest.raises(GraphError):
            star_task_graph(5, center=5)


class TestErdosRenyi:
    def test_edge_count(self):
        graph = erdos_renyi_task_graph(20, 40, rng=1)
        assert graph.n_edges == 40

    def test_connected_by_default(self):
        graph = erdos_renyi_task_graph(15, 30, rng=2)
        assert graph.is_connected()

    def test_unconnected_allowed(self):
        graph = erdos_renyi_task_graph(20, 5, rng=3, ensure_connected=False)
        assert graph.n_edges == 5

    def test_infeasible_rejected(self):
        with pytest.raises(AssignmentError):
            erdos_renyi_task_graph(5, 11)

    def test_impossible_connectivity_raises(self):
        # 2 edges can never connect 20 vertices.
        with pytest.raises(AssignmentError):
            erdos_renyi_task_graph(20, 2, rng=4, max_attempts=5)
