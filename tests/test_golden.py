"""Golden regression tests: seeded end-to-end outputs must stay stable.

These lock in concrete numeric behaviour under fixed seeds so that
accidental behaviour changes (a reordered RNG draw, a changed default)
surface as test failures rather than silent accuracy drift.  Tolerances
are tight but not exact — numpy minor versions may reorder float
reductions.

When a change *intentionally* alters results (e.g. a better default),
update the constants here and document the change in EXPERIMENTS.md.
"""

import pytest

from repro import FAST_PIPELINE, rank_with_crowd
from repro.datasets import make_scenario
from repro.experiments import run_pipeline_arm
from repro.experiments.runner import collect_votes
from repro.truth import discover_truth
from repro.types import Ranking
from repro.workers import QualityLevel, WorkerPool, gaussian_preset


class TestGoldenEndToEnd:
    def test_medium_quality_accuracy_band(self):
        """n=50, r=0.3, Gaussian medium, seed 7: accuracy locked."""
        scenario = make_scenario(50, 0.3, n_workers=30, workers_per_task=5,
                                 rng=7)
        record = run_pipeline_arm(scenario, FAST_PIPELINE, rng=7)
        assert record.accuracy == pytest.approx(0.93, abs=0.04)

    def test_facade_deterministic_ranking_prefix(self):
        """The facade's full output is a deterministic function of the
        seed: the top of the ranking must not drift."""
        truth = Ranking.random(20, rng=123)
        pool = WorkerPool.from_distribution(
            15, gaussian_preset(QualityLevel.HIGH), rng=123
        )
        outcome = rank_with_crowd(truth, pool, selection_ratio=0.5,
                                  workers_per_task=5, config=FAST_PIPELINE,
                                  rng=123)
        again_pool = WorkerPool.from_distribution(
            15, gaussian_preset(QualityLevel.HIGH), rng=123
        )
        outcome_again = rank_with_crowd(truth, again_pool,
                                        selection_ratio=0.5,
                                        workers_per_task=5,
                                        config=FAST_PIPELINE, rng=123)
        assert outcome.ranking == outcome_again.ranking
        # High-quality crowd at r=0.5 recovers the truth's head.
        assert outcome.ranking.order[:3] == truth.order[:3]

    def test_truth_discovery_iteration_count_stable(self):
        """Seeded CRH iteration count is part of the behavioural
        contract (the convergence benchmark depends on it)."""
        scenario = make_scenario(30, 0.4, n_workers=20, workers_per_task=5,
                                 rng=99)
        votes = collect_votes(scenario, rng=99)
        result = discover_truth(votes)
        assert result.trace.converged
        assert result.iterations <= 20

    def test_vote_count_exact(self):
        """The plan arithmetic is exact: votes = round(r*C(n,2)) * w."""
        scenario = make_scenario(30, 0.4, n_workers=20, workers_per_task=5,
                                 rng=99)
        votes = collect_votes(scenario, rng=99)
        assert len(votes) == round(0.4 * 435) * 5

    def test_quality_estimates_monotone_with_sigma(self):
        """Across a seeded run, workers' estimated quality must be
        anti-correlated with their true sigma."""
        import numpy as np

        scenario = make_scenario(40, 0.5, n_workers=20, workers_per_task=6,
                                 quality="uniform", level=QualityLevel.LOW,
                                 rng=17)
        votes = collect_votes(scenario, rng=17)
        result = discover_truth(votes)
        sigmas = scenario.pool.sigmas()
        estimated = np.array([result.worker_quality[k]
                              for k in range(len(sigmas))])
        correlation = np.corrcoef(sigmas, estimated)[0, 1]
        assert correlation < -0.5
