"""Regression tests: ``collect_votes`` is a pure function of
``(scenario, seed)`` with order-independent per-worker streams.

Before the per-worker child-stream fix, worker noise came from the
stateful streams the pool was *constructed* with: a second
``collect_votes`` call on the same scenario returned different votes
(the streams had advanced), and any extra draw by one behaviour model
shifted every later worker's noise.  These tests pin the fixed
contract.
"""

import numpy as np
import pytest

from repro.datasets import make_scenario
from repro.datasets.adversarial import make_adversarial_scenario
from repro.experiments.runner import collect_votes
from repro.types import Ranking
from repro.workers import DriftingWorker, WorkerPool


def _vote_tuples(votes):
    return [(v.worker, v.winner, v.loser) for v in votes.votes]


class TestPureFunctionOfSeed:
    def test_repeated_calls_identical(self):
        """Two rounds with the same seed return identical votes, even
        though the first round consumed the pool's worker streams."""
        scenario = make_scenario(15, 0.5, n_workers=10, workers_per_task=4,
                                 rng=23)
        first = collect_votes(scenario, rng=77)
        second = collect_votes(scenario, rng=77)
        assert _vote_tuples(first) == _vote_tuples(second)

    def test_different_seeds_differ(self):
        scenario = make_scenario(15, 0.5, n_workers=10, workers_per_task=4,
                                 rng=23)
        first = collect_votes(scenario, rng=77)
        second = collect_votes(scenario, rng=78)
        assert _vote_tuples(first) != _vote_tuples(second)

    def test_adversarial_scenarios_are_seed_stable(self):
        """The behaviour-model pools (stateful drift clocks, shared
        coins) round-trip through collect_votes deterministically."""
        for family in ("spammer", "clique", "drift", "correlated"):
            scenario = make_adversarial_scenario(family, 12, 0.5,
                                                 n_workers=8,
                                                 workers_per_task=3, rng=5)
            first = collect_votes(scenario, rng=9)
            second = collect_votes(scenario, rng=9)
            assert _vote_tuples(first) == _vote_tuples(second), family


class TestOrderIndependence:
    def test_per_worker_streams_keyed_by_id(self):
        """A worker's noise depends only on its own child stream: the
        same worker id gets the same stream no matter what other
        workers did in between."""
        truth = Ranking(list(range(10)))
        pairs = [(i, j) for i in range(10) for j in range(i + 1, 10)]

        def votes_of_worker_3(extra_draws_by_others):
            pool = WorkerPool([
                DriftingWorker(worker_id=k, sigma=0.2, sigma_end=0.9,
                               horizon=20)
                for k in range(5)
            ])
            pool.reseed(np.random.default_rng(42))
            # Other workers burn arbitrary amounts of their own streams
            # (behaviour models interleaving); worker 3 must not care.
            for k in (0, 1, 2, 4):
                for _ in range(extra_draws_by_others * (k + 1)):
                    pool[k].vote(0, 1, truth)
            return [(v.winner, v.loser)
                    for v in (pool[3].vote(i, j, truth) for i, j in pairs)]

        assert votes_of_worker_3(0) == votes_of_worker_3(7)

    def test_reseed_rewinds_drift_clock(self):
        worker = DriftingWorker(worker_id=0, sigma=0.0, sigma_end=1.0,
                                horizon=10)
        worker.reseed(np.random.default_rng(1))
        truth = Ranking([0, 1, 2])
        for _ in range(10):
            worker.vote(0, 1, truth)
        assert worker.current_sigma() == pytest.approx(1.0)
        worker.reseed(np.random.default_rng(1))
        assert worker.votes_cast == 0
        assert worker.current_sigma() == pytest.approx(0.0)
