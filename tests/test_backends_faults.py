"""Fault injection for the execution backends and the executor on top.

These tests kill worker processes mid-task (``os._exit``, ``SIGKILL``)
and hang tasks past their deadlines, then assert the failure surfaces
as the right *typed* error in the right slot while everything else
completes — never a hang, never a lost task.  The ``hang_guard``
fixture converts any deadlock these faults might expose into a test
failure instead of a wedged run.

POSIX-only by nature (signals, ``fork``); the suite already assumes as
much elsewhere.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import sys
import time

import pytest

from repro.exceptions import (
    ConfigurationError,
    TaskTimeoutError,
    WorkerCrashedError,
)
from repro.service import executor as executor_module
from repro.service.executor import BatchExecutor, _attempt_job
from repro.service.jobs import RankingJob, ScenarioSpec
from repro.service.retry import NO_RETRY, RetryPolicy, default_is_transient
from repro.workers.backends import (
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
)

pytestmark = pytest.mark.usefixtures("hang_guard")

_FORK_AVAILABLE = "fork" in multiprocessing.get_all_start_methods()

# Communicates a tmp flag path into `_crash_once_attempt`; forked
# workers inherit the value set by the test.
_CRASH_FLAG = ""


# -- module-level task functions (picklable into worker processes) ----------

def _identity(x):
    return x


def _die_on_three(x):
    if x == 3:
        os._exit(42)
    return x * x


def _die_on_multiples_of_three(x):
    if x % 3 == 0:
        os._exit(9)
    return x * x


def _sigkill_self(x):
    if x == 0:
        os.kill(os.getpid(), signal.SIGKILL)
    return x


def _always_exit(x):
    os._exit(7)


def _sleep_if_negative(x):
    if x < 0:
        time.sleep(60.0)
    return x


def _crash_once_attempt(job):
    """First call kills its worker; later calls run the real attempt."""
    if not os.path.exists(_CRASH_FLAG):
        with open(_CRASH_FLAG, "w"):
            pass
        os._exit(3)
    return _attempt_job(job)


# -- backend-level crash isolation ------------------------------------------

class TestProcessCrashIsolation:
    def test_crash_is_typed_and_others_complete(self):
        outcomes = ProcessBackend().map(
            _die_on_three, list(range(6)), max_workers=2,
            return_exceptions=True,
        )
        assert isinstance(outcomes[3], WorkerCrashedError)
        assert "exit code 42" in str(outcomes[3])
        assert "task 3" in str(outcomes[3])
        for index in (0, 1, 2, 4, 5):
            # Tasks after the crash completing proves the dead worker
            # was respawned rather than its slot going dark.
            assert outcomes[index] == index * index

    def test_sigkill_mid_task(self):
        outcomes = ProcessBackend().map(
            _sigkill_self, [0, 1, 2], max_workers=2,
            return_exceptions=True,
        )
        assert isinstance(outcomes[0], WorkerCrashedError)
        assert outcomes[1:] == [1, 2]

    def test_raising_mode_raises_the_crash(self):
        with pytest.raises(WorkerCrashedError, match="task 3"):
            ProcessBackend().map(_die_on_three, list(range(6)),
                                 max_workers=2)

    def test_every_task_crashing_never_hangs(self):
        outcomes = ProcessBackend().map(
            _always_exit, list(range(4)), max_workers=2,
            return_exceptions=True,
        )
        assert all(isinstance(o, WorkerCrashedError) for o in outcomes)

    def test_crash_is_transient_for_the_retry_loop(self):
        assert default_is_transient(WorkerCrashedError("died")) is True
        # A timeout is not: the same job would time out again.
        assert default_is_transient(TaskTimeoutError("late")) is False


# -- deadlines ---------------------------------------------------------------

class TestDeadlines:
    def test_process_hung_task_is_killed_at_deadline(self):
        start = time.monotonic()
        outcomes = ProcessBackend().map(
            _sleep_if_negative, [1, -1, 2], max_workers=3, timeout=0.5,
            return_exceptions=True,
        )
        elapsed = time.monotonic() - start
        assert outcomes[0] == 1 and outcomes[2] == 2
        assert isinstance(outcomes[1], TaskTimeoutError)
        assert "worker killed" in str(outcomes[1])
        assert elapsed < 10.0  # nowhere near the 60s sleep

    def test_thread_hung_task_is_abandoned_at_deadline(self):
        outcomes = ThreadBackend().map(
            _sleep_if_negative, [1, -1, 2], max_workers=3, timeout=0.3,
            return_exceptions=True,
        )
        assert outcomes[0] == 1 and outcomes[2] == 2
        assert isinstance(outcomes[1], TaskTimeoutError)
        assert "abandoned" in str(outcomes[1])

    def test_serial_accepts_but_cannot_enforce_timeouts(self):
        assert SerialBackend().map(
            _identity, [1, 2], max_workers=1, timeout=5.0,
        ) == [1, 2]

    @pytest.mark.parametrize("backend", [ThreadBackend(), ProcessBackend()])
    def test_non_positive_timeout_rejected(self, backend):
        with pytest.raises(ConfigurationError):
            backend.map(_identity, [1], max_workers=1, timeout=0.0)


# -- the executor built on top ----------------------------------------------

def _scenario_jobs(count, n_objects=10):
    return [
        RankingJob(
            job_id=f"f{i}",
            scenario=ScenarioSpec(n_objects=n_objects, selection_ratio=0.5,
                                  n_workers=8),
            seed=70 + i,
        )
        for i in range(count)
    ]


class TestExecutorFaults:
    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_exhausted_deadline_times_out_on_every_backend(self, backend):
        executor = BatchExecutor(
            workers=2, backend=backend, retry=NO_RETRY,
            deadline=time.monotonic() - 0.1,
        )
        report = executor.run(_scenario_jobs(3))
        assert [r.status.value for r in report.results] == ["timed_out"] * 3
        assert all("deadline" in r.error for r in report.results)

    def test_process_timeout_kills_the_worker(self):
        executor = BatchExecutor(
            workers=1, backend="process", retry=NO_RETRY, timeout=0.01,
        )
        report = executor.run(_scenario_jobs(1, n_objects=60))
        (result,) = report.results
        assert result.status.value == "timed_out"
        assert "worker killed" in result.error

    @pytest.mark.skipif(not _FORK_AVAILABLE,
                        reason="crash-retry injection relies on fork "
                               "inheriting the patched attempt body")
    def test_crashed_attempt_is_retried_on_a_fresh_worker(
            self, tmp_path, monkeypatch):
        monkeypatch.setattr(sys.modules[__name__], "_CRASH_FLAG",
                            str(tmp_path / "crashed-once"))
        monkeypatch.setattr(executor_module, "_attempt_job",
                            _crash_once_attempt)
        executor = BatchExecutor(
            workers=1, backend="process",
            retry=RetryPolicy(max_attempts=2, base_delay=0.01,
                              max_delay=0.01),
        )
        report = executor.run(_scenario_jobs(1))
        (result,) = report.results
        assert result.status.value == "succeeded"
        assert result.attempts == 2

    @pytest.mark.skipif(not _FORK_AVAILABLE,
                        reason="crash-retry injection relies on fork "
                               "inheriting the patched attempt body")
    def test_unrecoverable_crash_fails_the_job_not_the_batch(
            self, monkeypatch):
        monkeypatch.setattr(executor_module, "_attempt_job", _always_exit)
        executor = BatchExecutor(workers=2, backend="process",
                                 retry=NO_RETRY)
        report = executor.run(_scenario_jobs(2))
        assert [r.status.value for r in report.results] == ["failed"] * 2
        assert all("WorkerCrashedError" in r.error for r in report.results)


@pytest.mark.slow
class TestCrashSoak:
    """Many crash/respawn cycles in one map call — exercises the pool's
    replacement path far past what the tier-1 tests need."""

    def test_interleaved_crashes_over_many_tasks(self):
        items = list(range(60))  # every third task kills its worker
        outcomes = ProcessBackend().map(
            _die_on_multiples_of_three, items, max_workers=4,
            return_exceptions=True,
        )
        for index, outcome in enumerate(outcomes):
            if index % 3 == 0:
                assert isinstance(outcome, WorkerCrashedError)
            else:
                assert outcome == index * index

    def test_repeated_maps_reuse_nothing_poisoned(self):
        backend = ProcessBackend()
        for round_number in range(5):
            outcomes = backend.map(
                _die_on_three, list(range(5)), max_workers=2,
                return_exceptions=True,
            )
            assert isinstance(outcomes[3], WorkerCrashedError)
            assert [outcomes[i] for i in (0, 1, 2, 4)] == [0, 1, 4, 16]
