"""Tests for :meth:`repro.streaming.RankingSession.suggest` and the
``scorer`` knob of :class:`~repro.streaming.SessionConfig`."""

import pytest

from repro.config import FAST_PIPELINE
from repro.datasets import make_scenario
from repro.exceptions import ConfigurationError
from repro.experiments.runner import collect_votes
from repro.streaming import (
    RankingSession,
    SessionConfig,
    session_from_payload,
    session_to_payload,
)

def fast_config(**overrides):
    defaults = dict(pipeline=FAST_PIPELINE, seed=11, warm_iterations=300,
                    early_stop=False)
    defaults.update(overrides)
    return SessionConfig(**defaults)


@pytest.fixture(scope="module")
def votes():
    scenario = make_scenario(10, 0.6, n_workers=8, rng=5)
    return list(collect_votes(scenario, rng=5).votes)


class TestSuggest:
    def test_fresh_session_suggests_canonical_pairs(self):
        session = RankingSession("s", 10, fast_config())
        pairs = session.suggest(4)
        assert len(pairs) == 4
        for lo, hi in pairs:
            assert 0 <= lo < hi < 10

    def test_deterministic_for_fixed_state(self, votes):
        session = RankingSession("s", 10, fast_config())
        session.ingest(votes[:120])
        assert session.suggest(6) == session.suggest(6)

    def test_suggestions_shift_with_evidence(self, votes):
        session = RankingSession("s", 10, fast_config())
        before = session.suggest(8)
        session.ingest(votes[:150])
        after = session.suggest(8)
        assert before != after

    def test_scorer_knob_changes_the_batch(self, votes):
        batches = {}
        for scorer in ("bdp", "random"):
            session = RankingSession(
                f"s-{scorer}", 10, fast_config(scorer=scorer)
            )
            session.ingest(votes[:120])
            batches[scorer] = session.suggest(8)
        assert batches["bdp"] != batches["random"]

    def test_k_validated(self):
        session = RankingSession("s", 10, fast_config())
        with pytest.raises(ConfigurationError):
            session.suggest(0)
        with pytest.raises(ConfigurationError):
            session.suggest(-3)

    def test_unknown_scorer_rejected_at_config_time(self):
        with pytest.raises(ConfigurationError):
            fast_config(scorer="simulated-annealing")


class TestScorerCodec:
    def test_scorer_round_trips_through_payload(self, votes):
        session = RankingSession("s", 10,
                                 fast_config(scorer="uncertainty"))
        session.ingest(votes[:80])
        payload = session_to_payload(session)
        assert payload["session_config"]["scorer"] == "uncertainty"
        restored = session_from_payload(payload)
        assert restored.config.scorer == "uncertainty"

    def test_default_scorer_is_bdp(self):
        assert SessionConfig().scorer == "bdp"

    def test_restored_session_suggests_after_reingest(self, votes):
        session = RankingSession("s", 10, fast_config())
        session.ingest(votes[:80])
        restored = session_from_payload(session_to_payload(session))
        pairs = restored.suggest(5)
        assert len(pairs) == 5
