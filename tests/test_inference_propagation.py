"""Unit tests for repro.inference.propagation (Step 3)."""

import numpy as np
import pytest

from repro.config import PropagationConfig
from repro.exceptions import InferenceError
from repro.graphs import PreferenceGraph
from repro.inference.propagation import propagate_matrix, propagate_preferences


@pytest.fixture
def smoothed_chain():
    """Strongly connected smoothed chain 0 -> 1 -> 2 -> 3 (0.9/0.1)."""
    graph = PreferenceGraph(4)
    for i in range(3):
        graph.add_edge(i, i + 1, 0.9)
        graph.add_edge(i + 1, i, 0.1)
    return graph


class TestPropagateMatrix:
    def test_output_is_complete_and_normalised(self, smoothed_chain):
        matrix = propagate_matrix(smoothed_chain)
        n = 4
        for i in range(n):
            for j in range(n):
                if i == j:
                    assert matrix[i, j] == 0.0
                else:
                    assert 0.0 < matrix[i, j] < 1.0
        off = ~np.eye(n, dtype=bool)
        assert np.allclose((matrix + matrix.T)[off], 1.0)

    def test_transitivity_direction(self, smoothed_chain):
        """The hidden pair (0, 3) must lean the transitive way."""
        matrix = propagate_matrix(smoothed_chain)
        assert matrix[0, 3] > 0.5
        assert matrix[3, 0] < 0.5

    def test_direct_edges_dominate_with_alpha_one(self, smoothed_chain):
        matrix = propagate_matrix(
            smoothed_chain, PropagationConfig(alpha=1.0, max_hops=3)
        )
        assert matrix[0, 1] == pytest.approx(0.9, abs=1e-6)

    def test_alpha_zero_uses_only_indirect(self, smoothed_chain):
        """With alpha=0 a directly compared pair is still scored via its
        2-hop walks, not its direct edge."""
        full = propagate_matrix(
            smoothed_chain, PropagationConfig(alpha=0.0, max_hops=3)
        )
        assert full[0, 1] != pytest.approx(0.9, abs=1e-3)
        assert 0.0 < full[0, 1] < 1.0

    def test_exact_and_walk_methods_agree_on_direction(self, smoothed_chain):
        exact = propagate_matrix(
            smoothed_chain, PropagationConfig(method="exact", max_hops=3)
        )
        walks = propagate_matrix(
            smoothed_chain, PropagationConfig(method="walks", max_hops=3)
        )
        assert np.array_equal(exact > 0.5, walks > 0.5)

    def test_auto_selects_exact_for_small_n(self, smoothed_chain):
        auto = propagate_matrix(
            smoothed_chain,
            PropagationConfig(method="auto", exact_threshold=9, max_hops=3),
        )
        exact = propagate_matrix(
            smoothed_chain, PropagationConfig(method="exact", max_hops=3)
        )
        assert np.allclose(auto, exact)

    def test_single_object_rejected(self):
        with pytest.raises(InferenceError):
            propagate_matrix(PreferenceGraph(1))

    def test_no_evidence_pair_gets_half(self):
        """Two disconnected contested pairs: cross pairs have no paths at
        all, so they normalise to 0.5."""
        graph = PreferenceGraph(4)
        graph.add_edge(0, 1, 0.8)
        graph.add_edge(1, 0, 0.2)
        graph.add_edge(2, 3, 0.8)
        graph.add_edge(3, 2, 0.2)
        matrix = propagate_matrix(graph, PropagationConfig(max_hops=3))
        assert matrix[0, 2] == pytest.approx(0.5)
        assert matrix[1, 3] == pytest.approx(0.5)


class TestPropagatePreferences:
    def test_returns_complete_graph(self, smoothed_chain):
        closure = propagate_preferences(smoothed_chain)
        assert closure.is_complete()
        closure.validate(smoothed=True)

    def test_theorem_5_1_hp_always_exists(self, smoothed_chain):
        """A complete graph is always Hamiltonian."""
        from repro.graphs.hamiltonian import has_hamiltonian_path

        closure = propagate_preferences(smoothed_chain)
        assert has_hamiltonian_path(closure)

    def test_matches_matrix_form(self, smoothed_chain):
        closure = propagate_preferences(smoothed_chain)
        matrix = propagate_matrix(smoothed_chain)
        assert np.allclose(closure.weight_matrix(), matrix)
