"""Pre-fork serving tests: SO_REUSEPORT groups, respawn, CLI drain."""

import json
import os
import re
import signal
import socket
import subprocess
import sys
import time
import urllib.request
from pathlib import Path
from queue import Empty, Queue
from threading import Thread

import pytest

import repro
from repro.exceptions import ConfigurationError
from repro.server import PreforkSupervisor, RankingServer, ServerConfig

SRC_DIR = str(Path(repro.__file__).resolve().parents[1])

needs_reuseport = pytest.mark.skipif(
    not hasattr(socket, "SO_REUSEPORT"),
    reason="platform lacks SO_REUSEPORT",
)

#: A small, seeded (therefore cacheable and deterministic) job.
JOB = {
    "job_id": "prefork-e2e",
    "seed": 11,
    "scenario": {"n_objects": 8, "selection_ratio": 0.5,
                 "n_workers": 6, "workers_per_task": 5},
}


def _post_json(url, payload, timeout=60.0):
    body = json.dumps(payload).encode()
    request = urllib.request.Request(
        url, data=body,
        headers={"Content-Type": "application/json"}, method="POST",
    )
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return response.status, json.loads(response.read())


def _get_json(url, timeout=30.0):
    with urllib.request.urlopen(url, timeout=timeout) as response:
        return response.status, json.loads(response.read())


class TestConfig:
    def test_processes_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            ServerConfig(processes=0)
        with pytest.raises(ConfigurationError):
            ServerConfig(processes=-2)

    def test_single_process_default(self):
        assert ServerConfig().processes == 1
        assert ServerConfig().reuse_port is False

    @needs_reuseport
    def test_multi_process_accepted_where_supported(self):
        assert ServerConfig(processes=4).processes == 4


@needs_reuseport
class TestReusePortBinding:
    def test_two_servers_share_one_port(self):
        first = RankingServer(
            ServerConfig(port=0, workers=1, reuse_port=True)
        )
        second = RankingServer(
            ServerConfig(port=first.port, workers=1, reuse_port=True)
        )
        try:
            first.start()
            second.start()
            assert first.port == second.port
            status, payload = _get_json(first.url + "/healthz")
            assert status == 200
            assert payload["status"] == "ok"
        finally:
            second.stop()
            first.stop()

    def test_plain_servers_still_conflict(self):
        first = RankingServer(ServerConfig(port=0, workers=1))
        try:
            first.start()
            with pytest.raises(OSError):
                RankingServer(
                    ServerConfig(port=first.port, workers=1)
                )
        finally:
            first.stop()


@needs_reuseport
class TestPreforkSupervisor:
    def _config(self, tmp_path, **overrides):
        settings = dict(port=0, workers=1, processes=2, drain_grace=5.0,
                        cache_dir=str(tmp_path / "cache"))
        settings.update(overrides)
        return ServerConfig(**settings)

    def test_group_serves_and_drains_clean(self, tmp_path):
        events = []
        supervisor = PreforkSupervisor(
            self._config(tmp_path),
            on_event=lambda name, info: events.append((name, info)),
        )
        supervisor.start()
        try:
            assert len(supervisor.pids) == 2
            assert len(set(supervisor.pids)) == 2
            status, _ = _get_json(supervisor.url + "/healthz")
            assert status == 200
            status, result = _post_json(supervisor.url + "/v1/rank", JOB)
            assert status == 200
            assert result["status"] == "succeeded"
            assert sorted(result["ranking"]) == list(range(8))
        finally:
            assert supervisor.stop() is True
        started = [info for name, info in events if name == "child_started"]
        assert len(started) == 2
        assert {info["index"] for info in started} == {0, 1}

    def test_port_zero_resolves_once_for_the_group(self, tmp_path):
        with PreforkSupervisor(self._config(tmp_path)) as supervisor:
            assert supervisor.port > 0
            assert supervisor.url.endswith(f":{supervisor.port}")
            # Every child answers on the one shared port.
            for _ in range(4):
                status, _ = _get_json(supervisor.url + "/readyz")
                assert status == 200

    def test_crashed_child_is_respawned(self, tmp_path):
        events = []
        supervisor = PreforkSupervisor(
            self._config(tmp_path),
            on_event=lambda name, info: events.append(name),
        )
        supervisor.start()
        try:
            victim = supervisor.pids[0]
            os.kill(victim, signal.SIGKILL)
            deadline = time.monotonic() + 30.0
            while supervisor.respawns == 0:
                supervisor.poll()
                if time.monotonic() > deadline:
                    pytest.fail("crashed child was never respawned")
                time.sleep(0.05)
            assert victim not in supervisor.pids
            assert len(supervisor.pids) == 2
            assert "child_exit" in events
            assert "child_respawned" in events
            # The healed group still serves on the same port.
            deadline = time.monotonic() + 30.0
            while True:
                try:
                    status, _ = _get_json(supervisor.url + "/healthz",
                                          timeout=5.0)
                    assert status == 200
                    break
                except OSError:
                    if time.monotonic() > deadline:
                        raise
                    time.sleep(0.1)
        finally:
            supervisor.stop()

    def test_stop_is_idempotent_and_start_is_once(self, tmp_path):
        supervisor = PreforkSupervisor(
            self._config(tmp_path, processes=1)
        )
        supervisor.start()
        with pytest.raises(ConfigurationError):
            supervisor.start()
        assert supervisor.stop() is True
        assert supervisor.stop() is True
        with pytest.raises(ConfigurationError):
            supervisor.start()


class TestSharedCacheAcrossServers:
    def test_second_generation_serves_from_spill(self, tmp_path):
        config = ServerConfig(port=0, workers=1, cache_dir=str(tmp_path))
        with RankingServer(config) as first:
            status, cold = _post_json(first.url + "/v1/rank", JOB)
        assert status == 200
        assert cold["from_cache"] is False

        with RankingServer(ServerConfig(
            port=0, workers=1, cache_dir=str(tmp_path)
        )) as second:
            status, warm = _post_json(second.url + "/v1/rank", JOB)
        assert status == 200
        assert warm["from_cache"] is True
        assert warm["ranking"] == cold["ranking"]


@needs_reuseport
class TestServeProcessesCLI:
    def _spawn(self, *extra_args):
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
        return subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0",
             "--workers", "1", "--processes", "2",
             "--drain-grace", "5", *extra_args],
            stderr=subprocess.PIPE,
            text=True,
            env=env,
        )

    def _await_url(self, process, timeout=60.0):
        lines = Queue()

        def pump():
            for line in process.stderr:
                lines.put(line)

        Thread(target=pump, daemon=True).start()
        deadline = time.monotonic() + timeout
        seen = []
        while time.monotonic() < deadline:
            try:
                line = lines.get(timeout=0.5)
            except Empty:
                if process.poll() is not None:
                    break
                continue
            seen.append(line)
            match = re.search(r"serving on (http://\S+)", line)
            if match:
                return match.group(1)
        pytest.fail(f"group never announced its address; stderr: {seen!r}")

    def test_sigterm_drains_the_group_and_exits_zero(self, tmp_path):
        process = self._spawn("--cache-dir", str(tmp_path / "cache"))
        try:
            url = self._await_url(process)
            status, result = _post_json(url + "/v1/rank", JOB)
            assert status == 200
            assert result["status"] == "succeeded"
            process.send_signal(signal.SIGTERM)
            assert process.wait(timeout=60) == 0
        finally:
            if process.poll() is None:
                process.kill()
                process.wait(timeout=10)
