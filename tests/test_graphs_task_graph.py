"""Unit tests for repro.graphs.task_graph."""

import pytest

from repro.exceptions import GraphError, VertexNotFoundError
from repro.graphs import TaskGraph


@pytest.fixture
def path4():
    return TaskGraph(4, [(0, 1), (1, 2), (2, 3)])


class TestConstruction:
    def test_needs_two_vertices(self):
        with pytest.raises(GraphError):
            TaskGraph(1)

    def test_initial_edges(self, path4):
        assert path4.n_edges == 3
        assert path4.has_edge(1, 0)

    def test_duplicate_edge_rejected(self):
        graph = TaskGraph(3, [(0, 1)])
        with pytest.raises(GraphError):
            graph.add_edge(1, 0)

    def test_self_loop_rejected(self):
        with pytest.raises(Exception):
            TaskGraph(3, [(1, 1)])


class TestAccessors:
    def test_edges_sorted_canonical(self):
        graph = TaskGraph(3, [(2, 1), (1, 0)])
        assert list(graph.edges()) == [(0, 1), (1, 2)]

    def test_degrees(self, path4):
        assert path4.degrees() == [1, 2, 2, 1]
        assert path4.degree_bounds() == (1, 2)

    def test_neighbors(self, path4):
        assert sorted(path4.neighbors(1)) == [0, 2]

    def test_unknown_vertex(self, path4):
        with pytest.raises(VertexNotFoundError):
            path4.degree(9)

    def test_contains_protocol(self, path4):
        assert (0, 1) in path4
        assert (0, 3) not in path4

    def test_remove_edge(self, path4):
        path4.remove_edge(1, 2)
        assert not path4.has_edge(1, 2)
        assert path4.n_edges == 2

    def test_remove_missing_edge_raises(self, path4):
        with pytest.raises(GraphError):
            path4.remove_edge(0, 3)


class TestRegularity:
    def test_path_is_near_regular_not_regular(self, path4):
        assert not path4.is_regular()
        assert path4.is_near_regular()

    def test_cycle_is_regular(self):
        graph = TaskGraph(4, [(0, 1), (1, 2), (2, 3), (0, 3)])
        assert graph.is_regular()

    def test_star_is_not_near_regular(self):
        graph = TaskGraph(4, [(0, 1), (0, 2), (0, 3)])
        assert not graph.is_near_regular()


class TestConnectivity:
    def test_path_connected(self, path4):
        assert path4.is_connected()

    def test_disconnected(self):
        graph = TaskGraph(4, [(0, 1), (2, 3)])
        assert not graph.is_connected()

    def test_contains_path(self, path4):
        assert path4.contains_path([0, 1, 2, 3])
        assert not path4.contains_path([0, 2, 1, 3])


class TestDerived:
    def test_selection_ratio(self, path4):
        assert path4.selection_ratio() == pytest.approx(3 / 6)

    def test_complement_edges(self, path4):
        assert sorted(path4.complement_edges()) == [(0, 2), (0, 3), (1, 3)]

    def test_complete_graph(self):
        graph = TaskGraph.complete(5)
        assert graph.n_edges == 10
        assert graph.is_regular()
        assert graph.selection_ratio() == 1.0
