"""Bounded retry with exponential backoff for the batch service.

The service distinguishes *transient* failures (worth re-running: an
injected platform hiccup, a flaky I/O layer, an explicitly raised
:class:`TransientJobError`) from *deterministic* ones (a
:class:`~repro.exceptions.ReproError` from validation or inference —
re-running the same job with the same seed would fail identically, so
retrying only burns budget).  :func:`call_with_retry` implements the
loop; :class:`RetryPolicy` is the immutable schedule.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Optional, TypeVar

from ..diagnostics import get_logger
from ..exceptions import ConfigurationError, ReproError, WorkerCrashedError

_log = get_logger("service.retry")

T = TypeVar("T")


class TransientJobError(ReproError):
    """A failure the caller believes would not repeat — always retried.

    Raise this (or wrap a lower-level error in it) from custom job
    runners to opt a failure into the retry loop despite being a
    :class:`ReproError`.
    """


class RetryExhaustedError(ReproError):
    """Every allowed attempt failed with a transient error.

    The final underlying error is available as ``__cause__`` and the
    number of attempts as :attr:`attempts`.
    """

    def __init__(self, message: str, attempts: int):
        super().__init__(message)
        self.attempts = attempts


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential-backoff schedule: bounded attempts, capped delays.

    Attributes
    ----------
    max_attempts:
        Total tries including the first (1 disables retrying).
    base_delay:
        Seconds slept after the first failed attempt.
    multiplier:
        Geometric growth factor applied per subsequent failure.
    max_delay:
        Upper clamp on any single sleep.
    """

    max_attempts: int = 3
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 2.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError("max_attempts must be >= 1")
        if self.base_delay < 0:
            raise ConfigurationError("base_delay must be non-negative")
        if self.multiplier < 1:
            raise ConfigurationError("multiplier must be >= 1")
        if self.max_delay < self.base_delay:
            raise ConfigurationError("max_delay must be >= base_delay")

    def delay_for(self, failed_attempts: int) -> float:
        """Seconds to sleep after ``failed_attempts`` failures (>= 1)."""
        if failed_attempts < 1:
            raise ConfigurationError("failed_attempts must be >= 1")
        delay = self.base_delay * self.multiplier ** (failed_attempts - 1)
        return min(delay, self.max_delay)


#: A policy that never retries (single attempt, no sleeping).
NO_RETRY = RetryPolicy(max_attempts=1, base_delay=0.0, max_delay=0.0)


def default_is_transient(error: BaseException) -> bool:
    """The service's default transience classifier.

    * :class:`TransientJobError` — explicitly transient, retried.
    * :class:`~repro.exceptions.WorkerCrashedError` — the worker
      process died (possibly OOM-killed or signalled by the
      environment), retried on a fresh worker.
    * any other :class:`~repro.exceptions.ReproError` — deterministic
      (bad config, malformed data, infeasible inference), not retried.
    * :class:`ConnectionError` / :class:`OSError` — environmental,
      retried.
    * everything else — assumed deterministic, not retried.
    """
    if isinstance(error, (TransientJobError, WorkerCrashedError)):
        return True
    if isinstance(error, ReproError):
        return False
    return isinstance(error, (ConnectionError, OSError, TimeoutError))


def call_with_retry(
    fn: Callable[[], T],
    policy: Optional[RetryPolicy] = None,
    *,
    is_transient: Callable[[BaseException], bool] = default_is_transient,
    sleep: Callable[[float], None] = time.sleep,
    label: str = "job",
) -> "RetryOutcome[T]":
    """Call ``fn`` under a retry policy; return value plus attempt count.

    Non-transient errors propagate unchanged on first occurrence.  When
    every attempt fails transiently, :class:`RetryExhaustedError` is
    raised with the last failure chained as ``__cause__``.

    Parameters
    ----------
    fn:
        Zero-argument callable performing one attempt.
    policy:
        Schedule (defaults to :class:`RetryPolicy`'s defaults).
    is_transient:
        Failure classifier (defaults to :func:`default_is_transient`).
    sleep:
        Injectable sleeper — tests pass a recorder to avoid real delays.
    label:
        Human-readable work name used in log lines and errors.
    """
    policy = policy or RetryPolicy()
    last_error: Optional[BaseException] = None
    for attempt in range(1, policy.max_attempts + 1):
        try:
            value = fn()
        except Exception as error:  # noqa: BLE001 — classified below
            if not is_transient(error):
                raise
            last_error = error
            if attempt == policy.max_attempts:
                break
            delay = policy.delay_for(attempt)
            _log.info(
                "%s: transient failure on attempt %d/%d (%s); retrying in %.3fs",
                label, attempt, policy.max_attempts, error, delay,
            )
            if delay > 0:
                sleep(delay)
        else:
            return RetryOutcome(value=value, attempts=attempt)
    raise RetryExhaustedError(
        f"{label}: all {policy.max_attempts} attempts failed "
        f"(last: {last_error})",
        attempts=policy.max_attempts,
    ) from last_error


@dataclass(frozen=True)
class RetryOutcome:
    """A successful :func:`call_with_retry` call: value + attempts used."""

    value: T  # type: ignore[valid-type]
    attempts: int
