"""Cross-process coordination for the result cache's spill directory.

One spill directory can back the caches of N server processes — the
paper's non-interactive setting makes every ranking job independent, so
horizontal scale-out only needs the *cache* to be shared, not the
compute.  Two primitives make that sharing safe and cheap:

:class:`FileLock`
    An advisory cross-process lock over one lock file, built on
    ``fcntl.flock``.  flock ties the lock to the open file description,
    so two ``FileLock`` holders exclude each other whether they live in
    one process (separate opens of the same path conflict) or in many.
    On platforms without :mod:`fcntl` it degrades to a process-local
    lock — correct for a single process, best-effort across several —
    and the degradation is observable via :data:`HAVE_FCNTL`.

:class:`SpillIndex`
    An append-only key journal (``cache.index``) next to the spill
    files, written under the directory's ``cache.lock``.  Appends are
    serialized across processes; the *last* occurrence of a key is its
    most recent write, so deduplicating from the tail yields keys in
    recency order — which is what lets :meth:`SpillIndex.prune` bound
    the spill directory by deleting oldest-first, and what lets a fresh
    process warm its memory tier with the hottest entries first.

The spill *files* themselves need no locking: :func:`repro.io.
save_result` writes them atomically (tempfile + ``os.replace``), so any
file a reader can open is complete.  The lock only guards the index and
the prune/rewrite cycle.
"""

from __future__ import annotations

import os
import threading
from contextlib import contextmanager
from pathlib import Path
from typing import Iterator, List, Optional, Union

from ..diagnostics import get_logger
from ..exceptions import ConfigurationError

try:  # pragma: no cover - import guard exercised only off-POSIX
    import fcntl
except ImportError:  # pragma: no cover - Windows fallback
    fcntl = None  # type: ignore[assignment]

_log = get_logger("service.shared_cache")

#: True when real cross-process locking (``fcntl.flock``) is available.
HAVE_FCNTL = fcntl is not None

#: File names the shared tier owns inside a spill directory.  Both are
#: invisible to the ``<key>.json`` spill namespace.
INDEX_FILENAME = "cache.index"
LOCK_FILENAME = "cache.lock"

#: Journal compaction trigger: rewrite once the journal holds this many
#: times more lines than unique keys (and at least _COMPACT_FLOOR lines).
_COMPACT_FACTOR = 8
_COMPACT_FLOOR = 256

# Process-local fallback locks for platforms without fcntl, keyed by
# resolved lock-file path so two FileLock instances still exclude.
_fallback_locks: dict = {}
_fallback_registry_lock = threading.Lock()


class FileLock:
    """Advisory lock over one lock file, shared- or exclusive-mode.

    Usage::

        lock = FileLock(spill_dir / "cache.lock")
        with lock.exclusive():
            ...  # mutate the index / prune spill files
        with lock.shared():
            ...  # read the index

    Each acquisition opens its own file descriptor, so concurrent
    holders in the *same* process exclude each other too (flock
    conflicts between distinct open file descriptions).  Locks release
    on file-descriptor close, so a crashed process can never leave the
    directory wedged — the kernel drops its locks with it.
    """

    def __init__(self, path: Union[str, Path]):
        self._path = Path(path)

    @property
    def path(self) -> Path:
        return self._path

    @contextmanager
    def exclusive(self) -> Iterator[None]:
        """Hold the write lock (one holder total)."""
        with self._hold(exclusive=True):
            yield

    @contextmanager
    def shared(self) -> Iterator[None]:
        """Hold the read lock (any number of shared holders)."""
        with self._hold(exclusive=False):
            yield

    @contextmanager
    def _hold(self, exclusive: bool) -> Iterator[None]:
        if fcntl is None:  # pragma: no cover - non-POSIX fallback
            with _fallback_lock(self._path):
                yield
            return
        self._path.parent.mkdir(parents=True, exist_ok=True)
        fd = os.open(self._path, os.O_RDWR | os.O_CREAT, 0o644)
        try:
            fcntl.flock(fd, fcntl.LOCK_EX if exclusive else fcntl.LOCK_SH)
            yield
        finally:
            # Closing the descriptor releases the flock.
            os.close(fd)

    def __repr__(self) -> str:
        return f"FileLock({str(self._path)!r})"


def _fallback_lock(path: Path) -> threading.RLock:  # pragma: no cover
    key = str(path.resolve()) if path.parent.exists() else str(path)
    with _fallback_registry_lock:
        return _fallback_locks.setdefault(key, threading.RLock())


class SpillIndex:
    """On-disk index of the keys spilled into one cache directory.

    The index is a newline-separated journal of keys: every persisted
    write appends its key (under the exclusive lock), so replaying the
    journal and keeping each key's *last* occurrence reconstructs all
    keys in oldest-to-newest write order.  The journal self-compacts
    once rewrites dominate, and :meth:`rebuild` recovers it from a
    plain directory scan (pre-index spill directories, deleted index).
    """

    def __init__(self, directory: Union[str, Path]):
        self._dir = Path(directory)
        self._index_path = self._dir / INDEX_FILENAME
        self._lock = FileLock(self._dir / LOCK_FILENAME)

    @property
    def directory(self) -> Path:
        return self._dir

    @property
    def path(self) -> Path:
        return self._index_path

    @property
    def lock(self) -> FileLock:
        return self._lock

    # -- writes -------------------------------------------------------------

    def record(self, key: str) -> None:
        """Journal one persisted key (called after its spill file landed)."""
        if "\n" in key or "/" in key or not key:
            raise ConfigurationError(
                f"invalid spill index key: {key!r}"
            )
        self._dir.mkdir(parents=True, exist_ok=True)
        with self._lock.exclusive():
            with open(self._index_path, "a") as handle:
                handle.write(key + "\n")
            self._maybe_compact()

    def prune(self, max_files: int) -> List[str]:
        """Bound the spill directory to ``max_files`` entries.

        Deletes the oldest spill files beyond the bound (newest writes
        survive), drops keys whose files are already gone, and rewrites
        the journal to the survivor set — all under the exclusive lock,
        so two processes pruning concurrently cannot double-delete or
        tear the index.  Returns the keys whose files were removed.
        """
        if max_files < 1:
            raise ConfigurationError(
                f"max_files must be >= 1, got {max_files}"
            )
        removed: List[str] = []
        with self._lock.exclusive():
            keys = [key for key in self._read_keys()
                    if (self._dir / f"{key}.json").exists()]
            survivors = keys[-max_files:]
            for key in keys[: max(0, len(keys) - max_files)]:
                try:
                    (self._dir / f"{key}.json").unlink()
                except FileNotFoundError:
                    continue
                except OSError as error:
                    _log.warning("could not prune spill file %s: %s",
                                 key, error)
                    survivors.insert(0, key)
                    continue
                removed.append(key)
            self._rewrite(survivors)
        if removed:
            _log.debug("pruned %d spill file(s)", len(removed))
        return removed

    def rebuild(self) -> List[str]:
        """Regenerate the journal from a directory scan (oldest first).

        Used when the index is missing or stale relative to the spill
        files (a pre-index directory, or files written by an older
        library).  Ordering falls back to file modification time.
        """
        with self._lock.exclusive():
            files = sorted(
                self._dir.glob("*.json"),
                key=lambda p: (p.stat().st_mtime, p.name),
            )
            keys = [path.stem for path in files]
            self._rewrite(keys)
        return keys

    # -- reads --------------------------------------------------------------

    def keys(self) -> List[str]:
        """All journaled keys, oldest write first (deduplicated)."""
        with self._lock.shared():
            return self._read_keys()

    def __len__(self) -> int:
        return len(self.keys())

    def __contains__(self, key: str) -> bool:
        return key in set(self.keys())

    # -- internals (caller holds the lock) ----------------------------------

    def _read_keys(self) -> List[str]:
        try:
            lines = self._index_path.read_text().splitlines()
        except FileNotFoundError:
            return []
        except OSError as error:
            _log.warning("cannot read spill index %s: %s",
                         self._index_path, error)
            return []
        seen = set()
        ordered: List[str] = []
        for key in reversed(lines):
            if key and key not in seen:
                seen.add(key)
                ordered.append(key)
        ordered.reverse()
        return ordered

    def _rewrite(self, keys: List[str]) -> None:
        text = "".join(key + "\n" for key in keys)
        tmp = self._index_path.with_name(self._index_path.name + ".tmp")
        tmp.write_text(text)
        os.replace(tmp, self._index_path)

    def _maybe_compact(self) -> None:
        try:
            lines = self._index_path.read_text().splitlines()
        except OSError:
            return
        if len(lines) < _COMPACT_FLOOR:
            return
        unique = len(set(lines))
        if len(lines) > _COMPACT_FACTOR * max(unique, 1):
            self._rewrite(self._read_keys())


def spill_index_for(
    persist_dir: Optional[Union[str, Path]],
) -> Optional[SpillIndex]:
    """Build a :class:`SpillIndex` for a cache's persist dir (or None)."""
    if persist_dir is None:
        return None
    return SpillIndex(persist_dir)
