"""repro.service — concurrent batch ranking with caching and retries.

The batch subsystem turns the one-shot inference pipeline into a
service-shaped workload: many independent ranking jobs (per item-set /
HIT batch) executed over a worker pool, with a content-addressed result
cache so identical work is never paid for twice, bounded retries with
exponential backoff around transient failures, per-job timeouts, and a
metrics registry summarising the whole run.

Quickstart
----------
>>> from repro.service import BatchExecutor, RankingJob, ResultCache
>>> from repro.service import ScenarioSpec
>>> jobs = [RankingJob(job_id=f"j{i}",
...                    scenario=ScenarioSpec(12, 0.5, n_workers=10),
...                    seed=i)
...         for i in range(4)]
>>> report = BatchExecutor(workers=2, cache=ResultCache()).run(jobs)
>>> report.ok
True

The CLI exposes the same machinery as ``repro batch`` (JSONL in,
JSONL out); see :mod:`repro.service.jobs` for the line formats.
"""

from .cache import ResultCache, fingerprint_job
from .executor import BatchExecutor, BatchReport, JobTimeoutError, run_batch
from .shared_cache import HAVE_FCNTL, FileLock, SpillIndex
from .jobs import (
    BATCH_METRICS_SCHEMA,
    JOB_RESULT_SCHEMA,
    JOB_SCHEMA,
    JobResult,
    JobStatus,
    RankingJob,
    ScenarioSpec,
    dump_results_jsonl,
    iter_jobs_jsonl,
    job_from_payload,
    job_result_from_payload,
    job_result_to_payload,
    job_to_payload,
    load_jobs_jsonl,
)
from .metrics import MetricsRegistry, TimerStats
from .retry import (
    NO_RETRY,
    RetryExhaustedError,
    RetryOutcome,
    RetryPolicy,
    TransientJobError,
    call_with_retry,
    default_is_transient,
)

__all__ = [
    "BATCH_METRICS_SCHEMA",
    "JOB_RESULT_SCHEMA",
    "JOB_SCHEMA",
    "BatchExecutor",
    "BatchReport",
    "FileLock",
    "HAVE_FCNTL",
    "JobResult",
    "JobStatus",
    "JobTimeoutError",
    "MetricsRegistry",
    "NO_RETRY",
    "RankingJob",
    "ResultCache",
    "RetryExhaustedError",
    "RetryOutcome",
    "RetryPolicy",
    "ScenarioSpec",
    "SpillIndex",
    "TimerStats",
    "TransientJobError",
    "call_with_retry",
    "default_is_transient",
    "dump_results_jsonl",
    "fingerprint_job",
    "iter_jobs_jsonl",
    "job_from_payload",
    "job_result_from_payload",
    "job_result_to_payload",
    "job_to_payload",
    "load_jobs_jsonl",
    "run_batch",
]
