"""Content-addressed result cache for the batch ranking service.

Two identical jobs — same canonicalised votes (or scenario), same
pipeline configuration, same seed — must produce the same ranking, so
the second one never needs to run.  :func:`fingerprint_job` derives a
stable SHA-256 key from the job's semantic content (vote *order* is
irrelevant; dict key order is irrelevant), and :class:`ResultCache`
maps keys to :class:`~repro.types.InferenceResult` values through a
thread-safe in-memory LRU, optionally spilling every entry to a
directory of :mod:`repro.io`-schema JSON files so caches survive
process restarts.

A job without a seed is *not* deterministic (fresh entropy per run) and
therefore gets a unique, uncacheable fingerprint.
"""

from __future__ import annotations

import dataclasses
import hashlib
import itertools
import json
import threading
from collections import OrderedDict
from pathlib import Path
from typing import Dict, Optional, Union

from ..diagnostics import get_logger
from ..exceptions import ConfigurationError, DataFormatError
from ..io import load_result, save_result
from ..types import InferenceResult
from .jobs import RankingJob, config_to_payload

_log = get_logger("service.cache")

#: Monotonic source for the fingerprints of uncacheable (seedless) jobs.
_unique_counter = itertools.count()


def fingerprint_job(job: RankingJob) -> str:
    """Return the content hash (hex SHA-256) identifying a job's work.

    The hash covers the canonicalised votes (sorted, so collection order
    does not matter) or the scenario spec, the full pipeline config and
    the seed.  Jobs without a seed draw fresh entropy on every run, so
    each call returns a distinct ``unseeded/...`` key that can never
    collide with a real content hash.
    """
    if job.seed is None:
        return f"unseeded/{next(_unique_counter)}"
    material: Dict[str, object] = {
        "config": config_to_payload(job.config),
        "seed": job.seed,
    }
    if job.votes is not None:
        material["votes"] = {
            "n_objects": job.votes.n_objects,
            "votes": sorted(
                (v.worker, v.winner, v.loser) for v in job.votes
            ),
        }
    if job.scenario is not None:
        material["scenario"] = dataclasses.asdict(job.scenario)
    canonical = json.dumps(material, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class ResultCache:
    """Thread-safe LRU cache of inference results, keyed by content hash.

    Parameters
    ----------
    max_entries:
        In-memory capacity; the least recently *used* entry is evicted
        first.  Persisted files are never evicted.
    persist_dir:
        Optional directory for JSON spill files (created on demand).
        Every stored entry is written as ``<key>.json`` in the
        :mod:`repro.io` schema; in-memory misses fall back to the
        directory, and a corrupt or truncated spill file is logged,
        deleted and treated as a miss — never an error.
    """

    def __init__(
        self,
        max_entries: int = 256,
        persist_dir: Optional[Union[str, Path]] = None,
    ):
        if max_entries < 1:
            raise ConfigurationError(
                f"max_entries must be >= 1, got {max_entries}"
            )
        self._max_entries = max_entries
        self._persist_dir = Path(persist_dir) if persist_dir else None
        self._entries: "OrderedDict[str, InferenceResult]" = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._disk_loads = 0
        self._corrupt_dropped = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def max_entries(self) -> int:
        """The configured in-memory capacity."""
        return self._max_entries

    def get(self, key: str) -> Optional[InferenceResult]:
        """Look up a fingerprint; returns ``None`` on a miss.

        Unseeded fingerprints (``unseeded/...``) always miss.  A hit
        refreshes the entry's LRU recency.  When a persistence directory
        is configured, an in-memory miss consults it and re-warms the
        memory tier on success.
        """
        if key.startswith("unseeded/"):
            with self._lock:
                self._misses += 1
            return None
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self._hits += 1
                return self._entries[key]
        result = self._load_persisted(key)
        with self._lock:
            if result is not None:
                self._hits += 1
                self._disk_loads += 1
                self._store(key, result)
            else:
                self._misses += 1
        return result

    def put(self, key: str, result: InferenceResult) -> None:
        """Store a result under its fingerprint (and persist if enabled).

        Unseeded fingerprints are not stored — the work they label is
        not reproducible.
        """
        if key.startswith("unseeded/"):
            return
        with self._lock:
            self._store(key, result)
        if self._persist_dir is not None:
            try:
                self._persist_dir.mkdir(parents=True, exist_ok=True)
                save_result(result, self._persist_dir / f"{key}.json")
            except OSError as error:
                _log.warning("cache persist failed for %s: %s", key, error)

    def clear(self) -> None:
        """Drop every in-memory entry (persisted files are kept)."""
        with self._lock:
            self._entries.clear()

    def stats(self) -> Dict[str, int]:
        """Counters snapshot: hits, misses, evictions, disk loads, size."""
        with self._lock:
            return {
                "hits": self._hits,
                "misses": self._misses,
                "evictions": self._evictions,
                "disk_loads": self._disk_loads,
                "corrupt_dropped": self._corrupt_dropped,
                "size": len(self._entries),
            }

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 when none yet)."""
        with self._lock:
            total = self._hits + self._misses
            return self._hits / total if total else 0.0

    # -- internals ----------------------------------------------------------

    def _store(self, key: str, result: InferenceResult) -> None:
        # Caller holds the lock.
        self._entries[key] = result
        self._entries.move_to_end(key)
        while len(self._entries) > self._max_entries:
            evicted, _ = self._entries.popitem(last=False)
            self._evictions += 1
            _log.debug("evicted cache entry %s", evicted)

    def _load_persisted(self, key: str) -> Optional[InferenceResult]:
        if self._persist_dir is None:
            return None
        path = self._persist_dir / f"{key}.json"
        try:
            return load_result(path)
        except DataFormatError as error:
            # A spill file that exists but does not decode is corrupt or
            # truncated (interrupted write, disk fault, schema drift): it
            # can never become readable again, so drop it — keeping it
            # would re-pay the failed parse on every future lookup.
            if path.exists():
                _log.warning("dropping corrupt cache file %s: %s", path, error)
                with self._lock:
                    self._corrupt_dropped += 1
                try:
                    path.unlink()
                except OSError as unlink_error:
                    _log.warning("could not delete corrupt cache file %s: %s",
                                 path, unlink_error)
            return None
