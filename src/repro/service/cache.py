"""Content-addressed result cache for the batch ranking service.

Two identical jobs — same canonicalised votes (or scenario), same
pipeline configuration, same seed — must produce the same ranking, so
the second one never needs to run.  :func:`fingerprint_job` derives a
stable SHA-256 key from the job's semantic content (vote *order* is
irrelevant; dict key order is irrelevant), and :class:`ResultCache`
maps keys to :class:`~repro.types.InferenceResult` values through a
thread-safe in-memory LRU, optionally spilling every entry to a
directory of :mod:`repro.io`-schema JSON files so caches survive
process restarts.  Spill writes are atomic and journaled in an on-disk
index (:mod:`repro.service.shared_cache`), so one spill directory can
be shared by N processes — each process's memory tier misses fall
through to the common disk tier, which is how the pre-fork server
shares cache hits across its children.

A job without a seed is *not* deterministic (fresh entropy per run) and
therefore gets a unique, uncacheable fingerprint.
"""

from __future__ import annotations

import dataclasses
import hashlib
import itertools
import json
import os
import threading
from collections import OrderedDict
from pathlib import Path
from typing import Dict, List, Optional, Union

from ..diagnostics import get_logger
from ..exceptions import ConfigurationError, DataFormatError
from ..io import result_from_payload, save_result
from ..types import InferenceResult
from .jobs import RankingJob, config_to_payload
from .shared_cache import SpillIndex, spill_index_for

_log = get_logger("service.cache")

#: Monotonic source for the fingerprints of uncacheable (seedless) jobs.
_unique_counter = itertools.count()


def fingerprint_job(job: RankingJob) -> str:
    """Return the content hash (hex SHA-256) identifying a job's work.

    The hash covers the canonicalised votes (sorted, so collection order
    does not matter) or the scenario spec, the full pipeline config and
    the seed.  Jobs without a seed draw fresh entropy on every run, so
    each call returns a distinct ``unseeded/...`` key that can never
    collide with a real content hash.
    """
    if job.seed is None:
        return f"unseeded/{next(_unique_counter)}"
    material: Dict[str, object] = {
        "config": config_to_payload(job.config),
        "seed": job.seed,
    }
    if job.votes is not None:
        material["votes"] = {
            "n_objects": job.votes.n_objects,
            "votes": sorted(
                (v.worker, v.winner, v.loser) for v in job.votes
            ),
        }
    if job.scenario is not None:
        material["scenario"] = dataclasses.asdict(job.scenario)
    canonical = json.dumps(material, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class ResultCache:
    """Thread-safe LRU cache of inference results, keyed by content hash.

    Parameters
    ----------
    max_entries:
        In-memory capacity; the least recently *used* entry is evicted
        first.  Persisted files are never evicted by the memory tier.
    persist_dir:
        Optional directory for JSON spill files (created on demand).
        Every stored entry is written **atomically** as ``<key>.json``
        in the :mod:`repro.io` schema and journaled in the directory's
        :class:`~repro.service.shared_cache.SpillIndex`; in-memory
        misses fall back to the directory.  Because writes are atomic,
        the directory is safe to share between processes — N caches
        pointed at one ``persist_dir`` serve each other's entries
        (``disk_loads`` counts those cross-tier hits).  A spill file
        that exists but does not decode is genuinely corrupt (disk
        fault, schema drift); it is logged, deleted and treated as a
        miss — never an error — and the drop is guarded so a peer's
        concurrent replacement or concurrent drop is never deleted or
        double-counted.
    max_spill_files:
        Optional bound on the number of spill files; beyond it the
        oldest entries are pruned (under the directory's advisory file
        lock, so concurrent pruners cooperate).  ``None`` keeps every
        spill file forever.
    """

    def __init__(
        self,
        max_entries: int = 256,
        persist_dir: Optional[Union[str, Path]] = None,
        max_spill_files: Optional[int] = None,
    ):
        if max_entries < 1:
            raise ConfigurationError(
                f"max_entries must be >= 1, got {max_entries}"
            )
        if max_spill_files is not None and max_spill_files < 1:
            raise ConfigurationError(
                f"max_spill_files must be >= 1 or None, got {max_spill_files}"
            )
        if max_spill_files is not None and persist_dir is None:
            raise ConfigurationError(
                "max_spill_files requires persist_dir"
            )
        self._max_entries = max_entries
        self._persist_dir = Path(persist_dir) if persist_dir else None
        self._max_spill_files = max_spill_files
        self._index: Optional[SpillIndex] = spill_index_for(self._persist_dir)
        self._entries: "OrderedDict[str, InferenceResult]" = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._disk_loads = 0
        self._corrupt_dropped = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def max_entries(self) -> int:
        """The configured in-memory capacity."""
        return self._max_entries

    def get(self, key: str) -> Optional[InferenceResult]:
        """Look up a fingerprint; returns ``None`` on a miss.

        Unseeded fingerprints (``unseeded/...``) always miss.  A hit
        refreshes the entry's LRU recency.  When a persistence directory
        is configured, an in-memory miss consults it and re-warms the
        memory tier on success.
        """
        if key.startswith("unseeded/"):
            with self._lock:
                self._misses += 1
            return None
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self._hits += 1
                return self._entries[key]
        result = self._load_persisted(key)
        with self._lock:
            if result is not None:
                self._hits += 1
                self._disk_loads += 1
                self._store(key, result)
            else:
                self._misses += 1
        return result

    def put(self, key: str, result: InferenceResult) -> None:
        """Store a result under its fingerprint (and persist if enabled).

        Unseeded fingerprints are not stored — the work they label is
        not reproducible.
        """
        if key.startswith("unseeded/"):
            return
        with self._lock:
            self._store(key, result)
        if self._persist_dir is not None:
            try:
                self._persist_dir.mkdir(parents=True, exist_ok=True)
                save_result(result, self._persist_dir / f"{key}.json")
                self._index.record(key)
                if self._max_spill_files is not None:
                    self._index.prune(self._max_spill_files)
            except OSError as error:
                _log.warning("cache persist failed for %s: %s", key, error)

    def clear(self) -> None:
        """Drop every in-memory entry (persisted files are kept)."""
        with self._lock:
            self._entries.clear()

    # -- shared spill tier ---------------------------------------------------

    def persisted_keys(self) -> List[str]:
        """Keys currently journaled in the spill directory, oldest first.

        Falls back to (and repairs the index from) a directory scan
        when spill files exist that the journal does not know — a
        pre-index directory, or one populated by an older library.
        """
        if self._index is None:
            return []
        keys = self._index.keys()
        known = set(keys)
        if any(path.stem not in known
               for path in self._persist_dir.glob("*.json")):
            keys = self._index.rebuild()
        return keys

    def warm(self, limit: Optional[int] = None) -> int:
        """Preload the most recently written spill entries into memory.

        A fresh process (a pre-fork server child, a respawned worker)
        pointed at a shared ``persist_dir`` starts with an empty memory
        tier; warming pulls up to ``limit`` entries (default: the
        memory capacity) so its first requests hit RAM instead of disk.
        Counts neither hits nor misses — it is prefetch, not lookup.
        Returns the number of entries loaded.
        """
        if self._persist_dir is None:
            return 0
        budget = self._max_entries if limit is None else limit
        if budget < 1:
            return 0
        loaded = 0
        # Oldest-to-newest over the newest `budget` keys, so the most
        # recent write ends up most-recent in the LRU as well.
        for key in self.persisted_keys()[-budget:]:
            result = self._load_persisted(key)
            if result is None:
                continue
            with self._lock:
                self._store(key, result)
            loaded += 1
        if loaded:
            _log.debug("warmed %d entr%s from %s", loaded,
                       "y" if loaded == 1 else "ies", self._persist_dir)
        return loaded

    def stats(self) -> Dict[str, int]:
        """Counters snapshot: hits, misses, evictions, disk loads, size."""
        with self._lock:
            return {
                "hits": self._hits,
                "misses": self._misses,
                "evictions": self._evictions,
                "disk_loads": self._disk_loads,
                "corrupt_dropped": self._corrupt_dropped,
                "size": len(self._entries),
            }

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 when none yet)."""
        with self._lock:
            total = self._hits + self._misses
            return self._hits / total if total else 0.0

    # -- internals ----------------------------------------------------------

    def _store(self, key: str, result: InferenceResult) -> None:
        # Caller holds the lock.
        self._entries[key] = result
        self._entries.move_to_end(key)
        while len(self._entries) > self._max_entries:
            evicted, _ = self._entries.popitem(last=False)
            self._evictions += 1
            _log.debug("evicted cache entry %s", evicted)

    def _load_persisted(self, key: str) -> Optional[InferenceResult]:
        if self._persist_dir is None:
            return None
        path = self._persist_dir / f"{key}.json"
        try:
            with open(path, "rb") as handle:
                # The identity of what we read: if the decode fails, we
                # may only drop the file while it still *is* this file.
                read_stat = os.fstat(handle.fileno())
                raw = handle.read()
        except FileNotFoundError:
            return None  # plain miss, nothing to drop
        except OSError as error:
            _log.warning("cannot read cache file %s: %s", path, error)
            return None
        try:
            payload = json.loads(raw.decode("utf-8"))
            return result_from_payload(payload, source=str(path))
        except (UnicodeDecodeError, json.JSONDecodeError,
                DataFormatError) as error:
            # Spill writes are atomic (repro.io.atomic_write_text), so a
            # file that opened but does not decode is genuinely corrupt
            # (disk fault, schema drift) — never a torn in-progress
            # write.  Drop it so the failed parse is paid once, not on
            # every future lookup.
            self._drop_corrupt(path, read_stat, error)
            return None

    def _drop_corrupt(self, path: Path, read_stat: os.stat_result,
                      error: Exception) -> None:
        """Delete a corrupt spill file without racing peers.

        Two guards keep concurrent cache instances (other threads or
        other processes on a shared ``persist_dir``) safe:

        * the file is only unlinked while it is still the same inode we
          read — a writer that *replaced* it since (``os.replace``
          publishes a complete new file) keeps its fresh entry;
        * a peer reader that dropped the same corrupt file first wins
          the unlink; we observe ``FileNotFoundError`` and do **not**
          count, so ``corrupt_dropped`` totals once per corrupt file
          across all racers, not once per observer.
        """
        try:
            current = os.stat(path)
        except OSError:
            return  # already gone — a peer dropped (and counted) it
        if (current.st_ino, current.st_dev) != \
                (read_stat.st_ino, read_stat.st_dev):
            return  # replaced by a fresh write since we read; keep it
        try:
            path.unlink()
        except FileNotFoundError:
            return  # lost the unlink race to a peer reader
        except OSError as unlink_error:
            _log.warning("could not delete corrupt cache file %s: %s",
                         path, unlink_error)
            return
        _log.warning("dropped corrupt cache file %s: %s", path, error)
        with self._lock:
            self._corrupt_dropped += 1
