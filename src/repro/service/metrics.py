"""Lightweight run metrics for the batch service.

A :class:`MetricsRegistry` is a thread-safe bag of named **counters**
(monotonic totals: jobs succeeded, cache hits, retries, ...) and
**timers** (count / total / min / max / mean of observed durations:
whole-job latency, per-pipeline-step latency aggregated from
:attr:`~repro.types.InferenceResult.step_seconds`).  It deliberately has
no external dependencies and no background machinery: callers record,
:meth:`~MetricsRegistry.snapshot` renders one JSON-ready dict, done.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, Mapping

from ..exceptions import ConfigurationError


@dataclass
class TimerStats:
    """Aggregate of one named duration series."""

    count: int = 0
    total: float = 0.0
    min: float = float("inf")
    max: float = 0.0

    def observe(self, seconds: float) -> None:
        """Fold one observation into the aggregate."""
        self.count += 1
        self.total += seconds
        self.min = min(self.min, seconds)
        self.max = max(self.max, seconds)

    def as_dict(self) -> Dict[str, float]:
        """JSON-ready view, with a derived mean."""
        return {
            "count": self.count,
            "total": round(self.total, 6),
            "mean": round(self.total / self.count, 6) if self.count else 0.0,
            "min": round(self.min, 6) if self.count else 0.0,
            "max": round(self.max, 6),
        }


class MetricsRegistry:
    """Thread-safe counters + timers with a JSON snapshot.

    Naming convention (dots as separators): ``jobs.succeeded``,
    ``cache.hits``, ``retry.attempts``, timer ``job.seconds``, timers
    ``step.<pipeline step>`` for the Fig.-4 style breakdown.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, float] = {}
        self._timers: Dict[str, TimerStats] = {}

    def increment(self, name: str, value: float = 1) -> None:
        """Add ``value`` (default 1) to counter ``name``."""
        if not name:
            raise ConfigurationError("counter name must be non-empty")
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + value

    def observe(self, name: str, seconds: float) -> None:
        """Record one duration under timer ``name``."""
        if not name:
            raise ConfigurationError("timer name must be non-empty")
        if seconds < 0:
            raise ConfigurationError("duration must be non-negative")
        with self._lock:
            self._timers.setdefault(name, TimerStats()).observe(seconds)

    def observe_steps(self, step_seconds: Mapping[str, float]) -> None:
        """Fold a result's per-step timings into ``step.<name>`` timers."""
        for step, seconds in step_seconds.items():
            self.observe(f"step.{step}", seconds)

    def counter(self, name: str) -> float:
        """Current value of a counter (0 when never incremented)."""
        with self._lock:
            return self._counters.get(name, 0)

    def snapshot(self) -> Dict[str, object]:
        """One JSON-ready dict: counters, timers, derived rates.

        Derived values currently include ``cache_hit_rate`` — cache hits
        over all cache lookups — whenever any lookup was recorded.
        """
        with self._lock:
            counters = dict(self._counters)
            timers = {
                name: stats.as_dict() for name, stats in self._timers.items()
            }
        derived: Dict[str, float] = {}
        lookups = counters.get("cache.hits", 0) + counters.get("cache.misses", 0)
        if lookups:
            derived["cache_hit_rate"] = round(
                counters.get("cache.hits", 0) / lookups, 6
            )
        return {"counters": counters, "timers": timers, "derived": derived}
