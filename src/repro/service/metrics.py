"""Lightweight run metrics for the batch service.

A :class:`MetricsRegistry` is a thread-safe bag of named **counters**
(monotonic totals: jobs succeeded, cache hits, retries, ...) and
**timers** (count / total / min / max / mean plus p50/p95/p99 tail
percentiles of observed durations: whole-job latency,
per-pipeline-step latency aggregated from
:attr:`~repro.types.InferenceResult.step_seconds`).  It deliberately has
no external dependencies and no background machinery: callers record,
:meth:`~MetricsRegistry.snapshot` renders one JSON-ready dict, done.

Percentiles come from a bounded reservoir per timer (Vitter's
Algorithm R over a deterministically seeded picker), so memory stays
constant no matter how many observations arrive while the quantile
estimates remain unbiased over the full series.
"""

from __future__ import annotations

import math
import random
import threading
from dataclasses import dataclass, field
from typing import Dict, List, Mapping

from ..exceptions import ConfigurationError

#: Default number of samples each timer retains for percentile estimates.
DEFAULT_RESERVOIR_CAPACITY = 512

#: The tail percentiles every timer reports (p50/p95/p99).
REPORTED_PERCENTILES = (50.0, 95.0, 99.0)


@dataclass
class TimerStats:
    """Aggregate of one named duration series.

    Besides the exact running aggregates (count/total/min/max), a
    bounded reservoir of at most ``reservoir_capacity`` samples supports
    approximate percentiles: below capacity the reservoir is exact;
    beyond it each observation replaces a uniformly random slot
    (Algorithm R), keeping every past observation equally likely to be
    represented.  The replacement picker is seeded deterministically so
    identical observation sequences yield identical percentile reports.
    """

    count: int = 0
    total: float = 0.0
    min: float = float("inf")
    max: float = 0.0
    reservoir_capacity: int = DEFAULT_RESERVOIR_CAPACITY
    _samples: List[float] = field(default_factory=list, repr=False)

    def __post_init__(self) -> None:
        if self.reservoir_capacity < 1:
            raise ConfigurationError(
                f"reservoir_capacity must be >= 1, got {self.reservoir_capacity}"
            )
        self._picker = random.Random(0x5EED)

    def observe(self, seconds: float) -> None:
        """Fold one observation into the aggregate."""
        self.count += 1
        self.total += seconds
        self.min = min(self.min, seconds)
        self.max = max(self.max, seconds)
        if len(self._samples) < self.reservoir_capacity:
            self._samples.append(seconds)
        else:
            slot = self._picker.randrange(self.count)
            if slot < self.reservoir_capacity:
                self._samples[slot] = seconds

    def copy(self) -> "TimerStats":
        """An independent clone (own reservoir and picker state)."""
        dup = TimerStats(
            count=self.count,
            total=self.total,
            min=self.min,
            max=self.max,
            reservoir_capacity=self.reservoir_capacity,
            _samples=list(self._samples),
        )
        dup._picker.setstate(self._picker.getstate())
        return dup

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile ``q`` (in (0, 100]) over the reservoir.

        Returns 0.0 before the first observation.  Exact while fewer
        than ``reservoir_capacity`` observations were made; an unbiased
        estimate afterwards.
        """
        if not 0 < q <= 100:
            raise ConfigurationError(f"percentile must be in (0, 100], got {q}")
        if not self._samples:
            return 0.0
        ordered = sorted(self._samples)
        rank = max(1, math.ceil(q / 100.0 * len(ordered)))
        return ordered[rank - 1]

    def percentiles(self) -> Dict[str, float]:
        """The reported tail percentiles as ``{"p50": ..., ...}``."""
        return {
            f"p{q:g}": self.percentile(q) for q in REPORTED_PERCENTILES
        }

    def as_dict(self) -> Dict[str, float]:
        """JSON-ready view, with a derived mean and tail percentiles."""
        payload = {
            "count": self.count,
            "total": round(self.total, 6),
            "mean": round(self.total / self.count, 6) if self.count else 0.0,
            "min": round(self.min, 6) if self.count else 0.0,
            "max": round(self.max, 6),
        }
        for name, value in self.percentiles().items():
            payload[name] = round(value, 6)
        return payload


class MetricsRegistry:
    """Thread-safe counters + timers with a JSON snapshot.

    Naming convention (dots as separators): ``jobs.succeeded``,
    ``cache.hits``, ``retry.attempts``, timer ``job.seconds``, timers
    ``step.<pipeline step>`` for the Fig.-4 style breakdown, and
    ``http.*`` for the serving layer.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, float] = {}
        self._timers: Dict[str, TimerStats] = {}

    def increment(self, name: str, value: float = 1) -> None:
        """Add ``value`` (default 1) to counter ``name``."""
        if not name:
            raise ConfigurationError("counter name must be non-empty")
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + value

    def observe(self, name: str, seconds: float) -> None:
        """Record one duration under timer ``name``."""
        if not name:
            raise ConfigurationError("timer name must be non-empty")
        if seconds < 0:
            raise ConfigurationError("duration must be non-negative")
        with self._lock:
            self._timers.setdefault(name, TimerStats()).observe(seconds)

    def observe_steps(self, step_seconds: Mapping[str, float]) -> None:
        """Fold a result's per-step timings into ``step.<name>`` timers."""
        for step, seconds in step_seconds.items():
            self.observe(f"step.{step}", seconds)

    def counter(self, name: str) -> float:
        """Current value of a counter (0 when never incremented)."""
        with self._lock:
            return self._counters.get(name, 0)

    def timer(self, name: str) -> TimerStats:
        """A point-in-time copy of one timer (empty when never observed).

        Taken under the registry lock, so percentile computations on the
        returned object never race concurrent ``observe`` calls mutating
        the live reservoir.
        """
        with self._lock:
            stats = self._timers.get(name)
            return stats.copy() if stats is not None else TimerStats()

    def snapshot(self) -> Dict[str, object]:
        """One JSON-ready dict: counters, timers, derived rates.

        Derived values currently include ``cache_hit_rate`` — cache hits
        over all cache lookups — whenever any lookup was recorded.
        """
        with self._lock:
            counters = dict(self._counters)
            timers = {
                name: stats.as_dict() for name, stats in self._timers.items()
            }
        derived: Dict[str, float] = {}
        lookups = counters.get("cache.hits", 0) + counters.get("cache.misses", 0)
        if lookups:
            derived["cache_hit_rate"] = round(
                counters.get("cache.hits", 0) / lookups, 6
            )
        return {"counters": counters, "timers": timers, "derived": derived}
