"""Concurrent batch execution of ranking jobs.

:class:`BatchExecutor` drives many independent :class:`RankingJob`\\ s
through the inference pipeline over a thread pool, with:

* **caching** — each job is fingerprinted
  (:func:`~repro.service.cache.fingerprint_job`) and looked up before
  any work happens; results of seeded jobs are stored back;
* **robustness** — a per-job wall-clock timeout, bounded
  exponential-backoff retries for transient failures, and full
  isolation: a poisoned job yields a ``FAILED``/``TIMED_OUT``
  :class:`~repro.service.jobs.JobResult` instead of taking the batch
  down;
* **observability** — every decision is counted/timed in a
  :class:`~repro.service.metrics.MetricsRegistry`, including the
  per-step latency breakdown aggregated from each result.

Batch fan-out always happens on threads: results flow straight into
the shared in-memory cache and metrics registry, and jobs need no
pickling to reach a thread.  The pluggable part is where each
*attempt*'s actual work runs, selected by the ``backend`` parameter
(see :mod:`repro.workers.backends`):

* ``serial`` — the whole batch degenerates to a sequential in-thread
  loop (the determinism oracle);
* ``thread`` (default) — the attempt runs inline or, when a budget
  applies, on a daemon thread that is *abandoned* (not killed — Python
  cannot) when the deadline passes;
* ``process`` — the attempt runs in a child process: a timed-out
  worker is genuinely killed, and a crashed worker (segfault,
  ``os._exit``, OOM kill) surfaces as a transient
  :class:`~repro.exceptions.WorkerCrashedError` that the retry loop
  re-runs on a fresh worker instead of hanging the batch.

Per-job seeds keep parallel execution bit-identical to serial
execution on every backend — each attempt builds its own generator
from ``job.seed``, never sharing a stream across jobs.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Tuple, Union

import numpy as np

from ..config import PipelineConfig
from ..diagnostics import get_logger
from ..exceptions import ConfigurationError, ReproError, TaskTimeoutError
from ..inference import RankingPipeline
from ..types import InferenceResult
from ..workers import QualityLevel
from ..workers.backends import ExecutionBackend, resolve_backend
from .cache import ResultCache, fingerprint_job
from .jobs import JobResult, JobStatus, RankingJob, ScenarioSpec
from .metrics import MetricsRegistry
from .retry import RetryExhaustedError, RetryPolicy, call_with_retry

_log = get_logger("service.executor")


class JobTimeoutError(ReproError):
    """A job attempt exceeded the executor's per-job timeout."""


@dataclass(frozen=True)
class BatchReport:
    """Everything one :meth:`BatchExecutor.run` call produced.

    Attributes
    ----------
    results:
        One :class:`JobResult` per submitted job, in submission order.
    metrics:
        The metrics registry snapshot taken after the batch drained.
    """

    results: Tuple[JobResult, ...]
    metrics: Dict[str, object] = field(default_factory=dict)

    @property
    def succeeded(self) -> List[JobResult]:
        """Results that produced a ranking (including cache hits)."""
        return [r for r in self.results if r.status is JobStatus.SUCCEEDED]

    @property
    def failed(self) -> List[JobResult]:
        """Results that failed terminally (excluding timeouts)."""
        return [r for r in self.results if r.status is JobStatus.FAILED]

    @property
    def timed_out(self) -> List[JobResult]:
        """Results abandoned at the per-job deadline."""
        return [r for r in self.results if r.status is JobStatus.TIMED_OUT]

    @property
    def ok(self) -> bool:
        """True iff every job succeeded."""
        return len(self.succeeded) == len(self.results)

    def by_id(self, job_id: str) -> JobResult:
        """The result for ``job_id`` (raises ``KeyError`` if absent)."""
        for result in self.results:
            if result.job_id == job_id:
                return result
        raise KeyError(job_id)


class BatchExecutor:
    """Run batches of ranking jobs concurrently with cache + retries.

    Parameters
    ----------
    workers:
        Pool width.  1 degenerates to serial execution (still with
        cache, retries and timeouts) — useful as the determinism oracle.
    cache:
        Result cache; ``None`` disables caching entirely.
    retry:
        Transient-failure schedule (defaults to :class:`RetryPolicy`'s
        defaults; pass :data:`~repro.service.retry.NO_RETRY` to disable).
    timeout:
        Per-job wall-clock seconds budget covering *each attempt*
        individually; ``None`` means unbounded.  Timed-out jobs are not
        retried — with the same seed they would time out again.
    deadline:
        Absolute :func:`time.monotonic` instant after which no further
        work is started: attempts are bounded by the time remaining,
        retry backoff never sleeps past it, and jobs reaching it come
        back ``TIMED_OUT``.  Unlike ``timeout`` this is one budget for
        the whole run — attempts, retries and queued jobs all draw from
        it — which is what a per-request deadline maps onto.
    metrics:
        Registry to record into (a fresh one is created if omitted);
        exposed as :attr:`metrics` and snapshotted into every
        :class:`BatchReport`.
    backend:
        Where each attempt's work runs: ``"serial"``, ``"thread"``,
        ``"process"``, an :class:`~repro.workers.backends.ExecutionBackend`
        instance, or ``None`` to defer to the ``REPRO_BACKEND``
        environment variable (then ``"thread"``).  ``"serial"`` also
        forces the batch itself to run sequentially.  Note the
        ``process`` backend executes the canonical attempt body
        (:func:`_attempt_job`) in the child, so instance-level
        ``_attempt`` overrides only take effect on the serial/thread
        paths.
    """

    def __init__(
        self,
        workers: int = 1,
        *,
        cache: Optional[ResultCache] = None,
        retry: Optional[RetryPolicy] = None,
        timeout: Optional[float] = None,
        deadline: Optional[float] = None,
        metrics: Optional[MetricsRegistry] = None,
        backend: Union[None, str, ExecutionBackend] = None,
    ):
        if workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {workers}")
        if timeout is not None and timeout <= 0:
            raise ConfigurationError("timeout must be positive or None")
        self._workers = workers
        self._cache = cache
        self._retry = retry or RetryPolicy()
        self._timeout = timeout
        self._deadline = deadline
        self._metrics = metrics or MetricsRegistry()
        self._backend = resolve_backend(backend)

    @property
    def backend(self) -> ExecutionBackend:
        """The execution backend attempts run on."""
        return self._backend

    @property
    def metrics(self) -> MetricsRegistry:
        """The live metrics registry (shared across ``run`` calls)."""
        return self._metrics

    @property
    def cache(self) -> Optional[ResultCache]:
        """The result cache, if caching is enabled."""
        return self._cache

    def run(self, jobs: Iterable[RankingJob]) -> BatchReport:
        """Execute every job; never raises for individual job failures.

        Results come back in submission order regardless of completion
        order.  Duplicate jobs within one batch are executed
        independently (later ones typically hit the cache warmed by the
        first to finish).
        """
        job_list = list(jobs)
        _log.info("batch start: %d jobs, %d workers", len(job_list),
                  self._workers)
        batch_start = time.perf_counter()
        if not job_list:
            return BatchReport(results=(), metrics=self._metrics.snapshot())
        if self._workers == 1 or self._backend.name == "serial":
            results = [self._execute(job) for job in job_list]
        else:
            with ThreadPoolExecutor(max_workers=self._workers) as pool:
                results = list(pool.map(self._execute, job_list))
        self._metrics.observe("batch.seconds",
                              time.perf_counter() - batch_start)
        report = BatchReport(results=tuple(results),
                             metrics=self._metrics.snapshot())
        _log.info(
            "batch done: %d succeeded, %d failed, %d timed out",
            len(report.succeeded), len(report.failed),
            len(report.timed_out),
        )
        return report

    # -- one job ------------------------------------------------------------

    def _execute(self, job: RankingJob) -> JobResult:
        """Run one job end to end; converts every failure into a result."""
        start = time.perf_counter()
        try:
            outcome = self._execute_guarded(job, start)
        except Exception as error:  # noqa: BLE001 — isolation boundary
            # Unexpected orchestration failure: still never escapes.
            _log.exception("job %s: unexpected executor error", job.job_id)
            outcome = JobResult(
                job_id=job.job_id,
                status=JobStatus.FAILED,
                error=f"{type(error).__name__}: {error}",
                attempts=1,
                seconds=time.perf_counter() - start,
            )
        self._record(outcome)
        return outcome

    def _execute_guarded(self, job: RankingJob, start: float) -> JobResult:
        key = fingerprint_job(job) if self._cache is not None else None
        if key is not None:
            cached = self._cache.get(key)
            self._metrics.increment(
                "cache.hits" if cached is not None else "cache.misses"
            )
            if cached is not None:
                _log.debug("job %s: served from cache", job.job_id)
                return JobResult(
                    job_id=job.job_id,
                    status=JobStatus.SUCCEEDED,
                    result=cached,
                    attempts=0,
                    from_cache=True,
                    seconds=time.perf_counter() - start,
                )

        attempt_count = [0]

        def one_attempt() -> Tuple[InferenceResult, Dict[str, object]]:
            attempt_count[0] += 1
            return self._run_with_timeout(job)

        try:
            retried = call_with_retry(
                one_attempt, self._retry, label=f"job {job.job_id}",
                sleep=self._backoff_sleep,
            )
        except JobTimeoutError as error:
            _log.warning("job %s: %s", job.job_id, error)
            return JobResult(
                job_id=job.job_id,
                status=JobStatus.TIMED_OUT,
                error=f"{type(error).__name__}: {error}",
                attempts=attempt_count[0],
                seconds=time.perf_counter() - start,
            )
        except RetryExhaustedError as error:
            cause = error.__cause__
            detail = (f"{type(cause).__name__}: {cause}" if cause is not None
                      else str(error))
            _log.warning("job %s: retries exhausted (%s)", job.job_id, detail)
            return JobResult(
                job_id=job.job_id,
                status=JobStatus.FAILED,
                error=detail,
                attempts=attempt_count[0],
                seconds=time.perf_counter() - start,
            )
        except Exception as error:  # noqa: BLE001 — deterministic failure
            _log.warning("job %s: failed (%s: %s)", job.job_id,
                         type(error).__name__, error)
            return JobResult(
                job_id=job.job_id,
                status=JobStatus.FAILED,
                error=f"{type(error).__name__}: {error}",
                attempts=attempt_count[0],
                seconds=time.perf_counter() - start,
            )

        result, extras = retried.value
        if retried.attempts > 1:
            self._metrics.increment("retry.recovered")
        if key is not None:
            self._cache.put(key, result)
        return JobResult(
            job_id=job.job_id,
            status=JobStatus.SUCCEEDED,
            result=result,
            attempts=retried.attempts,
            seconds=time.perf_counter() - start,
            extras=extras,
        )

    def _record(self, outcome: JobResult) -> None:
        self._metrics.increment(f"jobs.{outcome.status.value}")
        self._metrics.increment("jobs.total")
        if outcome.attempts > 1:
            self._metrics.increment("retry.attempts", outcome.attempts - 1)
        self._metrics.observe("job.seconds", outcome.seconds)
        if outcome.result is not None and not outcome.from_cache:
            self._metrics.observe_steps(outcome.result.step_seconds)

    def _backoff_sleep(self, delay: float) -> None:
        """Retry backoff that never sleeps past the run deadline."""
        if self._deadline is not None:
            delay = min(delay, max(0.0, self._deadline - time.monotonic()))
        if delay > 0:
            time.sleep(delay)

    # -- one attempt --------------------------------------------------------

    def _attempt_budget(self) -> Optional[float]:
        """Wall-clock seconds the next attempt may use.

        The smaller of the per-attempt ``timeout`` and the time left
        until the absolute ``deadline``; ``None`` when both are
        unbounded.  Raises :class:`JobTimeoutError` once the deadline
        has already passed — queued jobs and post-backoff retries give
        up here instead of starting doomed work.
        """
        budget = self._timeout
        if self._deadline is not None:
            remaining = self._deadline - time.monotonic()
            if remaining <= 0:
                raise JobTimeoutError("run deadline exhausted before attempt")
            budget = remaining if budget is None else min(budget, remaining)
        return budget

    def _run_with_timeout(
        self, job: RankingJob
    ) -> Tuple[InferenceResult, Dict[str, object]]:
        """One attempt, bounded by the per-job timeout / run deadline.

        On the process backend the attempt runs in a child process that
        is genuinely killed at the budget.  On the serial/thread paths
        a budgeted attempt runs on a daemon thread; if it outlives its
        budget it is abandoned and :class:`JobTimeoutError` is raised
        (the stray thread cannot poison later jobs — it shares no
        mutable state with them).
        """
        budget = self._attempt_budget()
        if self._backend.name == "process":
            return self._attempt_in_process(job, budget)
        if budget is None:
            return self._attempt(job)
        box: List[Tuple[str, object]] = []

        def target() -> None:
            try:
                box.append(("ok", self._attempt(job)))
            except BaseException as error:  # noqa: BLE001 — re-raised below
                box.append(("err", error))

        thread = threading.Thread(
            target=target, daemon=True,
            name=f"repro-job-{job.job_id}",
        )
        thread.start()
        thread.join(budget)
        if thread.is_alive():
            raise JobTimeoutError(
                f"attempt exceeded {budget:g}s (abandoned)"
            )
        kind, payload = box[0]
        if kind == "err":
            raise payload  # type: ignore[misc]
        return payload  # type: ignore[return-value]

    def _attempt_in_process(
        self, job: RankingJob, budget: Optional[float]
    ) -> Tuple[InferenceResult, Dict[str, object]]:
        """One attempt in an isolated worker process.

        A budget overrun kills the worker and raises
        :class:`JobTimeoutError`; a worker death mid-attempt surfaces
        as :class:`~repro.exceptions.WorkerCrashedError`, which the
        default retry classifier treats as transient (the crash may be
        environmental — OOM kill, operator signal — and a fresh worker
        gets a clean chance).
        """
        try:
            (value,) = self._backend.map(
                _attempt_job, [job], max_workers=1, timeout=budget,
            )
        except TaskTimeoutError as error:
            raise JobTimeoutError(
                f"attempt exceeded {budget:g}s (worker killed)"
            ) from error
        return value

    def _attempt(
        self, job: RankingJob
    ) -> Tuple[InferenceResult, Dict[str, object]]:
        """Execute the job's actual work once (the monkeypatchable seam).

        Serial/thread attempts flow through this method, so tests can
        replace it per instance; process attempts pickle the
        module-level :func:`_attempt_job` into the child instead (a
        bound method would drag the executor's locks along).
        """
        return _attempt_job(job)

    @staticmethod
    def _run_scenario(
        job: RankingJob, spec: ScenarioSpec, rng: np.random.Generator
    ) -> Tuple[InferenceResult, Dict[str, object]]:
        # Imported lazily: session pulls in the platform simulator, which
        # pure votes-only deployments never need.
        from ..datasets import make_scenario
        from ..session import rank_with_crowd

        scenario = make_scenario(
            spec.n_objects,
            spec.selection_ratio,
            n_workers=spec.n_workers,
            workers_per_task=spec.workers_per_task,
            quality=spec.quality,
            level=QualityLevel(spec.level),
            rng=rng,
        )
        outcome = rank_with_crowd(
            scenario.ground_truth,
            scenario.pool,
            selection_ratio=spec.selection_ratio,
            workers_per_task=spec.workers_per_task,
            config=job.config,
            rng=rng,
        )
        return outcome.result, {"accuracy": outcome.accuracy}


def _attempt_job(
    job: RankingJob,
) -> Tuple[InferenceResult, Dict[str, object]]:
    """The canonical attempt body: run one job's work once.

    Module-level (hence picklable by reference) so the process backend
    can ship it to a worker.  Votes jobs run the Steps 1-4 pipeline
    directly; scenario jobs simulate the whole non-interactive round
    first and additionally report the accuracy against the scenario's
    latent ground truth.
    """
    rng = np.random.default_rng(job.seed)
    if job.votes is not None:
        pipeline = RankingPipeline(job.config)
        return pipeline.run(job.votes, rng), {}
    return BatchExecutor._run_scenario(job, job.scenario, rng)


def run_batch(
    jobs: Iterable[RankingJob],
    *,
    workers: int = 1,
    cache: Optional[ResultCache] = None,
    retry: Optional[RetryPolicy] = None,
    timeout: Optional[float] = None,
    deadline: Optional[float] = None,
    backend: Union[None, str, ExecutionBackend] = None,
) -> BatchReport:
    """One-call convenience: build a :class:`BatchExecutor` and run."""
    executor = BatchExecutor(
        workers, cache=cache, retry=retry, timeout=timeout,
        deadline=deadline, backend=backend,
    )
    return executor.run(jobs)
