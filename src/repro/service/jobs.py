"""Job and result models for the batch ranking service.

A :class:`RankingJob` is one self-contained unit of aggregation work:
either an explicit :class:`~repro.types.VoteSet` (real crowd data) or a
:class:`ScenarioSpec` describing a fully simulated run (the Sec. VI
setting), plus the :class:`~repro.config.PipelineConfig` to infer with
and an optional seed.  Jobs and their outcomes travel as versioned
JSONL — one JSON object per line, schema-tagged exactly like
:mod:`repro.io` — so batches can be produced, queued and consumed by
independent tools.

.. code-block:: json

    {"schema": "repro.job/1", "job_id": "hit-batch-7", "seed": 7,
     "votes": {"n_objects": 4, "votes": [[0, 0, 1], [1, 2, 3]]},
     "config": {"search": "saps", "propagation": {"alpha": 0.6}}}

    {"schema": "repro.job/1", "job_id": "sim-a", "seed": 3,
     "scenario": {"n_objects": 20, "selection_ratio": 0.5,
                  "n_workers": 15, "workers_per_task": 5}}
"""

from __future__ import annotations

import dataclasses
import enum
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Union

from ..config import (
    PipelineConfig,
    PropagationConfig,
    SAPSConfig,
    SmoothingConfig,
    SparseEngineConfig,
    TAPSConfig,
    TruthDiscoveryConfig,
)
from ..exceptions import ConfigurationError, DataFormatError
from ..io import result_from_payload, result_to_payload
from ..types import InferenceResult, Vote, VoteSet

#: Schema tag for one job line.
JOB_SCHEMA = "repro.job/1"

#: Schema tag for one result line.
JOB_RESULT_SCHEMA = "repro.job_result/1"

#: Schema tag for the trailing metrics record of a batch stream.
BATCH_METRICS_SCHEMA = "repro.batch_metrics/1"


class JobStatus(str, enum.Enum):
    """Terminal state of one job's execution."""

    SUCCEEDED = "succeeded"
    FAILED = "failed"
    TIMED_OUT = "timed_out"


@dataclass(frozen=True)
class ScenarioSpec:
    """A fully simulated experiment arm, by knobs rather than votes.

    Mirrors :func:`repro.datasets.make_scenario`; resolution to a
    concrete scenario (ground truth + worker pool + collected votes)
    happens inside the executor, deterministically from the job's seed.
    """

    n_objects: int
    selection_ratio: float
    n_workers: int = 50
    workers_per_task: int = 5
    quality: str = "gaussian"
    level: str = "medium"

    def __post_init__(self) -> None:
        if self.n_objects < 2:
            raise ConfigurationError(
                f"scenario needs at least 2 objects, got {self.n_objects}"
            )
        if not 0 < self.selection_ratio <= 1:
            raise ConfigurationError(
                f"selection_ratio must be in (0, 1], got {self.selection_ratio}"
            )
        if self.quality not in ("gaussian", "uniform"):
            raise ConfigurationError(
                f"quality must be 'gaussian' or 'uniform', got {self.quality!r}"
            )
        if self.level not in ("high", "medium", "low"):
            raise ConfigurationError(
                f"level must be 'high', 'medium' or 'low', got {self.level!r}"
            )


@dataclass(frozen=True)
class RankingJob:
    """One unit of work for the batch service.

    Exactly one of ``votes`` (aggregate these votes) or ``scenario``
    (simulate, then aggregate) must be provided.  ``seed`` pins every
    stochastic component of the job, making re-execution — and therefore
    result caching — deterministic.
    """

    job_id: str
    votes: Optional[VoteSet] = None
    scenario: Optional[ScenarioSpec] = None
    config: PipelineConfig = field(default_factory=PipelineConfig)
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if not self.job_id:
            raise ConfigurationError("job_id must be a non-empty string")
        if (self.votes is None) == (self.scenario is None):
            raise ConfigurationError(
                f"job {self.job_id!r}: exactly one of votes/scenario required"
            )


@dataclass(frozen=True)
class JobResult:
    """Terminal outcome of one job, cache- and retry-aware.

    Attributes
    ----------
    job_id:
        The originating job's id.
    status:
        Terminal :class:`JobStatus`.
    result:
        The inference output when ``status`` is ``SUCCEEDED``.
    error:
        ``"ExceptionType: message"`` when the job failed or timed out.
    attempts:
        Number of execution attempts made (0 for a pure cache hit).
    from_cache:
        True when the result was served from the cache.
    seconds:
        Wall-clock seconds spent on this job inside the service
        (including retries and backoff waits).
    extras:
        Job-kind specific additions — scenario jobs report the
        simulation's ``accuracy`` against its latent ground truth.
    """

    job_id: str
    status: JobStatus
    result: Optional[InferenceResult] = None
    error: Optional[str] = None
    attempts: int = 0
    from_cache: bool = False
    seconds: float = 0.0
    extras: Dict[str, object] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """True iff the job produced a ranking."""
        return self.status is JobStatus.SUCCEEDED


# ---------------------------------------------------------------------------
# Config codec
# ---------------------------------------------------------------------------

_SUBCONFIGS = {
    "truth": TruthDiscoveryConfig,
    "smoothing": SmoothingConfig,
    "propagation": PropagationConfig,
    "saps": SAPSConfig,
    "taps": TAPSConfig,
    "sparse": SparseEngineConfig,
}


def config_to_payload(config: PipelineConfig) -> Dict[str, object]:
    """Encode a :class:`PipelineConfig` as a JSON-ready nested dict."""
    return dataclasses.asdict(config)


def config_from_payload(
    payload: object, source: str = "<payload>"
) -> PipelineConfig:
    """Decode a (possibly partial) config dict.

    Unknown keys and invalid values raise :class:`DataFormatError`;
    omitted keys fall back to the library defaults, so a job line may
    specify only the knobs it cares about.
    """
    if payload is None:
        return PipelineConfig()
    if not isinstance(payload, dict):
        raise DataFormatError(f"{source}: config must be an object")
    kwargs: Dict[str, object] = {}
    try:
        for key, value in payload.items():
            if key in _SUBCONFIGS:
                if not isinstance(value, dict):
                    raise DataFormatError(
                        f"{source}: config.{key} must be an object"
                    )
                kwargs[key] = _SUBCONFIGS[key](**value)
            elif key in ("search", "truth_engine", "vote_path", "engine"):
                kwargs[key] = value
            else:
                raise DataFormatError(
                    f"{source}: unknown config field {key!r}"
                )
        return PipelineConfig(**kwargs)
    except (ConfigurationError, TypeError) as error:
        raise DataFormatError(f"{source}: invalid config ({error})") from None


# ---------------------------------------------------------------------------
# Job codec
# ---------------------------------------------------------------------------

def job_to_payload(job: RankingJob) -> Dict[str, object]:
    """Encode a job as a JSON-ready dict (schema-tagged)."""
    payload: Dict[str, object] = {
        "schema": JOB_SCHEMA,
        "job_id": job.job_id,
        "config": config_to_payload(job.config),
    }
    if job.seed is not None:
        payload["seed"] = job.seed
    if job.votes is not None:
        payload["votes"] = {
            "n_objects": job.votes.n_objects,
            "votes": [[v.worker, v.winner, v.loser] for v in job.votes],
        }
    if job.scenario is not None:
        payload["scenario"] = dataclasses.asdict(job.scenario)
    return payload


def job_from_payload(payload: object, source: str = "<payload>") -> RankingJob:
    """Decode a dict produced by :func:`job_to_payload`.

    Raises
    ------
    DataFormatError
        On a wrong/missing schema tag or any malformed field.
    """
    if not isinstance(payload, dict) or payload.get("schema") != JOB_SCHEMA:
        raise DataFormatError(
            f"{source}: expected schema {JOB_SCHEMA!r}, got "
            f"{payload.get('schema') if isinstance(payload, dict) else type(payload)!r}"
        )
    job_id = payload.get("job_id")
    if not isinstance(job_id, str) or not job_id:
        raise DataFormatError(f"{source}: job_id must be a non-empty string")
    seed = payload.get("seed")
    if seed is not None and not isinstance(seed, int):
        raise DataFormatError(f"{source}: seed must be an integer")
    votes: Optional[VoteSet] = None
    if "votes" in payload:
        votes = _votes_from_payload(payload["votes"], source)
    scenario: Optional[ScenarioSpec] = None
    if "scenario" in payload:
        raw = payload["scenario"]
        if not isinstance(raw, dict):
            raise DataFormatError(f"{source}: scenario must be an object")
        try:
            scenario = ScenarioSpec(**raw)
        except (ConfigurationError, TypeError) as error:
            raise DataFormatError(
                f"{source}: invalid scenario ({error})"
            ) from None
    config = config_from_payload(payload.get("config"), source)
    try:
        return RankingJob(job_id=job_id, votes=votes, scenario=scenario,
                          config=config, seed=seed)
    except ConfigurationError as error:
        raise DataFormatError(f"{source}: {error}") from None


def _votes_from_payload(raw: object, source: str) -> VoteSet:
    if not isinstance(raw, dict):
        raise DataFormatError(f"{source}: votes must be an object")
    try:
        n_objects = int(raw["n_objects"])
        votes = [
            Vote(worker=int(w), winner=int(a), loser=int(b))
            for w, a, b in raw["votes"]
        ]
        return VoteSet.from_votes(n_objects, votes)
    except (KeyError, TypeError, ValueError, ConfigurationError) as error:
        raise DataFormatError(f"{source}: malformed votes ({error})") from None


def job_result_to_payload(outcome: JobResult) -> Dict[str, object]:
    """Encode a job outcome as a JSON-ready dict for the result stream.

    Successful jobs inline the full :mod:`repro.io` result payload under
    ``"result"``, so a batch line round-trips through
    :func:`repro.io.result_from_payload` unchanged.
    """
    payload: Dict[str, object] = {
        "schema": JOB_RESULT_SCHEMA,
        "job_id": outcome.job_id,
        "status": outcome.status.value,
        "attempts": outcome.attempts,
        "from_cache": outcome.from_cache,
        "seconds": round(outcome.seconds, 6),
    }
    if outcome.result is not None:
        payload["ranking"] = list(outcome.result.ranking.order)
        payload["result"] = result_to_payload(outcome.result)
    if outcome.error is not None:
        payload["error"] = outcome.error
    if outcome.extras:
        payload["extras"] = {
            key: value for key, value in outcome.extras.items()
            if isinstance(value, (int, float, str, bool, type(None)))
        }
    return payload


def job_result_from_payload(
    payload: object, source: str = "<payload>"
) -> JobResult:
    """Decode a dict produced by :func:`job_result_to_payload`.

    The inverse codec lets result streams — JSONL batch output, HTTP
    responses from :mod:`repro.server` — round-trip back into
    :class:`JobResult` objects (including the full
    :class:`~repro.types.InferenceResult` when one was inlined).

    Raises
    ------
    DataFormatError
        On a wrong/missing schema tag or any malformed field.
    """
    if not isinstance(payload, dict) or payload.get("schema") != JOB_RESULT_SCHEMA:
        raise DataFormatError(
            f"{source}: expected schema {JOB_RESULT_SCHEMA!r}, got "
            f"{payload.get('schema') if isinstance(payload, dict) else type(payload)!r}"
        )
    job_id = payload.get("job_id")
    if not isinstance(job_id, str) or not job_id:
        raise DataFormatError(f"{source}: job_id must be a non-empty string")
    try:
        status = JobStatus(payload.get("status"))
    except ValueError:
        raise DataFormatError(
            f"{source}: unknown status {payload.get('status')!r}"
        ) from None
    result: Optional[InferenceResult] = None
    if "result" in payload:
        result = result_from_payload(payload["result"], source=source)
    error = payload.get("error")
    if error is not None and not isinstance(error, str):
        raise DataFormatError(f"{source}: error must be a string")
    extras = payload.get("extras", {})
    if not isinstance(extras, dict):
        raise DataFormatError(f"{source}: extras must be an object")
    try:
        return JobResult(
            job_id=job_id,
            status=status,
            result=result,
            error=error,
            attempts=int(payload.get("attempts", 0)),
            from_cache=bool(payload.get("from_cache", False)),
            seconds=float(payload.get("seconds", 0.0)),
            extras=dict(extras),
        )
    except (TypeError, ValueError) as err:
        raise DataFormatError(f"{source}: malformed field ({err})") from None


# ---------------------------------------------------------------------------
# JSONL streams
# ---------------------------------------------------------------------------

def iter_jobs_jsonl(lines: Iterable[str], source: str = "<stream>") -> Iterator[RankingJob]:
    """Yield jobs from an iterable of JSONL lines.

    Blank lines and ``#`` comment lines are skipped.  Errors carry the
    1-based line number.
    """
    for lineno, line in enumerate(lines, start=1):
        text = line.strip()
        if not text or text.startswith("#"):
            continue
        where = f"{source}:{lineno}"
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as error:
            raise DataFormatError(f"{where}: invalid JSON ({error})") from None
        yield job_from_payload(payload, source=where)


def load_jobs_jsonl(path: Union[str, Path]) -> List[RankingJob]:
    """Load a whole JSONL job file (see :func:`iter_jobs_jsonl`).

    Raises
    ------
    DataFormatError
        On an unreadable file or any malformed line.
    """
    path = Path(path)
    try:
        text = path.read_text()
    except OSError as error:
        raise DataFormatError(f"{path}: cannot read ({error})") from None
    return list(iter_jobs_jsonl(text.splitlines(), source=str(path)))


def dump_results_jsonl(outcomes: Iterable[JobResult]) -> str:
    """Serialise job outcomes as a JSONL string (one line per job)."""
    return "".join(
        json.dumps(job_result_to_payload(outcome), sort_keys=True) + "\n"
        for outcome in outcomes
    )
