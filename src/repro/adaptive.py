"""An interactive counterpart of the paper's method, for comparison.

The paper argues (Sec. I-II) that non-interactive crowdsourcing must
maximise result quality in a single round, and its evaluation contrasts
against CrowdBT as the interactive representative.  This module provides
the *natural interactive variant of the paper's own machinery*, so the
interactive-vs-non-interactive trade-off can be studied like-for-like:

1. spend a fraction of the budget on a fair Algorithm-1 seed round;
2. repeat: run Steps 1-3 on everything collected so far, find the
   *most uncertain* pairs of the closure (normalised weight nearest
   0.5), and spend the next budget slice querying exactly those pairs;
3. when the budget is gone, run Step 4 once for the final ranking.

This is textbook uncertainty sampling on top of the paper's inference —
more accurate per comparison than the one-shot plan, but it requires the
requester to stay in the loop for every round, which is precisely what
time-sensitive tasks rule out (the paper's motivation), and each round
pays a full Steps-1-3 re-inference.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Tuple, Union

import numpy as np

from .config import PipelineConfig
from .exceptions import ConfigurationError, InferenceError
from .graphs.preference_graph import PreferenceGraph
from .inference.propagation import propagate_matrix
from .inference.smoothing import (
    direct_preference_matrix,
    smooth_matrix,
    smooth_preferences,
)
from .platform.interactive import InteractivePlatform
from .rng import SeedLike, ensure_rng
from .truth.crh import discover_truth
from .truth.dawid_skene import discover_truth_em
from .types import InferenceResult, Vote, VoteSet

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from .acquisition import AcquisitionPolicy


@dataclass(frozen=True)
class AdaptiveRoundStats:
    """Diagnostics for one adaptive round."""

    round_index: int
    queries_spent: int
    pairs_targeted: int
    mean_uncertainty: float


def adaptive_rank(
    platform: InteractivePlatform,
    *,
    config: Optional[PipelineConfig] = None,
    seed_fraction: float = 0.3,
    rounds: int = 4,
    workers_per_query: int = 1,
    rng: SeedLike = None,
    policy: Union["AcquisitionPolicy", str, None] = None,
) -> Tuple[InferenceResult, List[AdaptiveRoundStats]]:
    """Rank interactively: seed round + value-targeted refinement.

    Parameters
    ----------
    platform:
        The interactive crowd platform holding the budget.
    config:
        Inference configuration (Steps 1-4) reused every round.
    seed_fraction:
        Fraction of the total query budget spent on the initial fair
        spread (round-robin over a random near-regular plan).
    rounds:
        Number of adaptive refinement rounds after the seed.
    workers_per_query:
        Votes collected per targeted pair per round.
    rng:
        Randomness for pair tie-breaking and inference.
    policy:
        Pair-selection seam.  ``None`` keeps the module's historical
        closure-uncertainty heuristic; otherwise an
        :class:`~repro.acquisition.AcquisitionPolicy` (or a scorer
        registry name such as ``"bdp"``) delegates each round's pair
        selection to the acquisition subsystem: the policy's posterior
        is rebuilt from all collected votes with the round's fresh
        worker-quality estimates, the interim closure is attached, and
        the top-scored pairs become the round's queries.

    Returns
    -------
    (result, round_stats):
        The final inference result and per-round diagnostics.

    Raises
    ------
    ConfigurationError
        For out-of-range parameters.
    InferenceError
        If the budget affords no queries at all.
    """
    if not 0.0 < seed_fraction <= 1.0:
        raise ConfigurationError(
            f"seed_fraction must be in (0, 1], got {seed_fraction}"
        )
    if rounds < 0:
        raise ConfigurationError(f"rounds must be >= 0, got {rounds}")
    if workers_per_query < 1:
        raise ConfigurationError(
            f"workers_per_query must be >= 1, got {workers_per_query}"
        )
    generator = ensure_rng(rng)
    pipeline_config = config or PipelineConfig()
    n = platform.n_objects
    total_budget = platform.remaining_queries()
    if total_budget < 1:
        raise InferenceError("budget affords zero queries")
    if isinstance(policy, str):
        from .acquisition import AcquisitionPolicy

        policy = AcquisitionPolicy(
            n, scorer=policy, workers_per_query=workers_per_query
        )
    if policy is not None and policy.n_objects != n:
        raise ConfigurationError(
            f"policy universe ({policy.n_objects} objects) does not match "
            f"the platform ({n} objects)"
        )

    votes: List[Vote] = []
    stats: List[AdaptiveRoundStats] = []

    # -- seed round: spread queries fairly over a random plan ------------
    seed_budget = max(n - 1, int(total_budget * seed_fraction))
    seed_budget = min(seed_budget, total_budget)
    seed_pairs = _fair_seed_pairs(n, seed_budget, generator)
    for i, j in seed_pairs:
        if not platform.can_query():
            break
        votes.append(platform.query(i, j))

    # -- adaptive rounds ---------------------------------------------------
    per_round = (platform.remaining_queries() // max(rounds, 1)
                 if rounds else 0)
    for round_index in range(rounds):
        if not platform.can_query():
            break
        budget = per_round if round_index < rounds - 1 else (
            platform.remaining_queries()
        )
        if budget < 1:
            continue
        closure, truth = _interim_inference(
            n, votes, pipeline_config, generator
        )
        pair_budget = max(1, budget // workers_per_query)
        if policy is not None:
            policy.rebuild(votes, truth.worker_quality)
            policy.attach_closure(closure)
            targets = policy.suggest(pair_budget)
        else:
            targets = _most_uncertain_pairs(closure, pair_budget, generator)
        spent = 0
        uncertainties = []
        for i, j in targets:
            for _ in range(workers_per_query):
                if not platform.can_query() or spent >= budget:
                    break
                votes.append(platform.query(i, j))
                spent += 1
            uncertainties.append(abs(closure[i, j] - 0.5))
        stats.append(AdaptiveRoundStats(
            round_index=round_index,
            queries_spent=spent,
            pairs_targeted=len(targets),
            mean_uncertainty=float(np.mean(uncertainties))
            if uncertainties else 0.0,
        ))

    # -- final inference ---------------------------------------------------
    from .inference.pipeline import RankingPipeline

    vote_set = VoteSet.from_votes(n, votes)
    result = RankingPipeline(pipeline_config).run(vote_set, generator)
    return result, stats


def _fair_seed_pairs(n: int, budget: int, generator) -> List[Tuple[int, int]]:
    """A near-regular pair spread for the seed round."""
    from .graphs.generators import near_regular_task_graph

    max_pairs = n * (n - 1) // 2
    n_edges = min(max(budget, n - 1), max_pairs)
    graph = near_regular_task_graph(n, n_edges, generator)
    pairs = list(graph.edges())
    generator.shuffle(pairs)
    return pairs[:budget] if budget < len(pairs) else pairs


def _interim_inference(
    n: int, votes: List[Vote], config: PipelineConfig, generator
) -> Tuple[np.ndarray, object]:
    """Steps 1-3 on the votes collected so far: ``(closure, truth)``.

    Follows ``config.vote_path``: the columnar matrix kernels
    (``direct_preference_matrix`` / ``smooth_matrix``) on the default
    path, the historical object-graph path
    (``PreferenceGraph`` / ``smooth_preferences``) when configured —
    both produce the same closure (differential-tested).
    """
    vote_set = VoteSet.from_votes(n, votes)
    discover = (discover_truth_em if config.truth_engine == "em"
                else discover_truth)
    truth = discover(vote_set, config.truth)
    if config.vote_path == "columnar":
        arrays = vote_set.arrays()
        direct = direct_preference_matrix(arrays, truth.preference_vector)
        smoothing = smooth_matrix(
            direct, truth.preference_vector, arrays,
            truth.quality_vector, config.smoothing, generator,
        )
        smoothed = smoothing.matrix
    else:
        graph = PreferenceGraph.from_direct_preferences(n, truth.preferences)
        smoothing = smooth_preferences(
            graph, vote_set, truth.worker_quality, config.smoothing,
            generator,
        )
        smoothed = smoothing.graph
    return propagate_matrix(smoothed, config.propagation), truth


def _interim_closure(
    n: int, votes: List[Vote], config: PipelineConfig, generator
) -> np.ndarray:
    """Steps 1-3 on the votes collected so far (closure only)."""
    closure, _ = _interim_inference(n, votes, config, generator)
    return closure


def _most_uncertain_pairs(
    closure: np.ndarray, count: int, generator
) -> List[Tuple[int, int]]:
    """The ``count`` unordered pairs with weight closest to 0.5."""
    n = closure.shape[0]
    i_idx, j_idx = np.triu_indices(n, k=1)
    uncertainty = np.abs(closure[i_idx, j_idx] - 0.5)
    # Sub-1e-9 jitter perturbs near-ties so repeated rounds don't always
    # requery the same frontier in the same order; the *stable* sort then
    # resolves exact post-jitter ties by pair id, keeping the selection
    # deterministic for a fixed closure and generator state.
    jitter = generator.uniform(0.0, 1e-9, size=len(uncertainty))
    order = np.argsort(uncertainty + jitter, kind="stable")
    chosen = order[: min(count, len(order))]
    return [(int(i_idx[k]), int(j_idx[k])) for k in chosen]
