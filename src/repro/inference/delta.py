"""Incremental cost evaluation for Hamiltonian-path moves (Step 4).

All Step-4 searches minimise ``d(P) = sum cost[p_i, p_{i+1}]`` over
consecutive pairs of a permutation ``P``.  The three SAPS proposals —
Rotate, Reverse, RandomSwap — and the polish pass's reinsertions only
change the edges at the slice boundaries, so ``d(P') - d(P)`` can be
computed from those few edges instead of re-summing all ``n - 1``:

* **Rotate(first, middle, last)** — the slice ``P[first:last]`` becomes
  ``P[middle:last] + P[first:middle]``.  Edges internal to either block
  are untouched; exactly three edges change (fewer at the path ends):

  - ``(P[first-1], P[first])  -> (P[first-1], P[middle])``
  - ``(P[middle-1], P[middle]) -> (P[last-1], P[first])``  (new junction)
  - ``(P[last-1], P[last])    -> (P[middle-1], P[last])``

  O(1) per proposal.

* **Reverse(first, last)** — every internal edge flips direction, so
  the internal contribution is ``sum cost[b, a] - cost[a, b]`` over the
  old consecutive pairs ``(a, b)``, plus the two boundary swaps.  O(k)
  for a slice of length ``k`` (the cost matrix is directed, so the
  internal sum does not cancel).

* **Swap(i, j)** — at most four edges change (three when ``i``/``j``
  are adjacent, zero when equal).  O(1) per proposal.

Single-vertex reinsertion (the polish move) is a Rotate: moving ``P[k]``
to slot ``s < k`` is ``Rotate(s, k, k+1)``; to slot ``s > k`` it is
``Rotate(k, k+1, s+1)``.

The delta functions take the cost matrix as a *row-indexable* table —
``rows[a][b]`` — so the annealing hot loop can pass a nested Python
list (scalar lookups into a list-of-lists are several times faster than
``ndarray[a, b]``) while casual callers pass the ndarray itself.  The
``apply_*`` helpers mutate the path (Python list or ndarray) in place;
no per-proposal copies.

Infinite edges: deltas are computed with ordinary float arithmetic, so
they are exact whenever the edges *removed* from the path are finite
(``+inf - finite = +inf`` rejects a candidate naturally; ``inf - inf``
would be NaN).  Callers that may hold a path with infinite edges — an
incomplete closure — must fall back to full re-evaluation, as
:func:`repro.inference.saps.saps_search_report` does.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

import numpy as np

#: A permutation as a mutable sequence (ndarray in SAPS, list in polish).
PathLike = Union[np.ndarray, List[int]]


def path_cost(cost: np.ndarray, path: Sequence[int]) -> float:
    """``d(P) = sum cost[p_i, p_{i+1}]`` (vectorised full re-sum)."""
    arr = np.asarray(path)
    return float(cost[arr[:-1], arr[1:]].sum())


def cost_rows(cost: np.ndarray) -> List[List[float]]:
    """The cost matrix as a nested list for fast scalar lookups."""
    return cost.tolist()


def reverse_diff_matrix(cost: np.ndarray) -> np.ndarray:
    """``diff[a, b] = cost[b, a] - cost[a, b]``, the per-edge change of
    flipping edge ``(a, b)``; one lookup per internal Reverse edge.

    The diagonal is zeroed first so ``inf - inf`` never produces NaN
    (diagonal entries are never path edges anyway).
    """
    finite = cost.copy()
    np.fill_diagonal(finite, 0.0)
    return np.ascontiguousarray(finite.T - finite)


def reverse_diff_rows(cost: np.ndarray) -> List[List[float]]:
    """:func:`reverse_diff_matrix` as a nested list (scalar lookups)."""
    return reverse_diff_matrix(cost).tolist()


# ---------------------------------------------------------------------------
# Deltas
# ---------------------------------------------------------------------------

def rotate_delta(
    rows: Sequence[Sequence[float]],
    path: Sequence[int],
    first: int,
    middle: int,
    last: int,
) -> float:
    """``d(P') - d(P)`` for Rotate(first, middle, last); O(1).

    Contract: ``0 <= first < middle < last <= len(path)`` (both blocks
    non-empty), as guaranteed by
    :func:`repro.inference.saps._two_indices` plus the middle draw.
    """
    a = path[first]          # head of the left block
    b = path[middle - 1]     # tail of the left block
    m = path[middle]         # head of the right block
    e = path[last - 1]       # tail of the right block
    delta = rows[e][a] - rows[b][m]
    if first > 0:
        p = path[first - 1]
        delta += rows[p][m] - rows[p][a]
    if last < len(path):
        q = path[last]
        delta += rows[b][q] - rows[e][q]
    return delta


#: Segment length above which :func:`reverse_delta` gathers the internal
#: sum with numpy instead of a scalar loop.  The list-to-ndarray
#: conversion plus fancy-indexing overhead only amortises on long
#: segments; the crossover measured ~180 internal edges.
_REVERSE_VECTOR_THRESHOLD = 192


def reverse_delta(
    rows: Sequence[Sequence[float]],
    diff: Sequence[Sequence[float]],
    path: Sequence[int],
    first: int,
    last: int,
    diff_matrix: Optional[np.ndarray] = None,
) -> float:
    """``d(P') - d(P)`` for Reverse(first, last); O(last - first).

    ``diff`` must come from :func:`reverse_diff_rows` of the same cost
    matrix as ``rows``.  When ``diff_matrix`` (the same table as an
    ndarray) is given, long segments switch to a vectorised gather —
    the scalar loop wins below ~190 internal edges, numpy above.
    """
    if (diff_matrix is not None
            and last - first > _REVERSE_VECTOR_THRESHOLD):
        seg = np.asarray(path[first:last], dtype=np.intp)
        delta = float(diff_matrix[seg[:-1], seg[1:]].sum())
    else:
        delta = 0.0
        prev = path[first]
        for index in range(first + 1, last):
            nxt = path[index]
            delta += diff[prev][nxt]
            prev = nxt
    if first > 0:
        p = path[first - 1]
        delta += rows[p][path[last - 1]] - rows[p][path[first]]
    if last < len(path):
        q = path[last]
        delta += rows[path[first]][q] - rows[path[last - 1]][q]
    return delta


def swap_delta(
    rows: Sequence[Sequence[float]],
    path: Sequence[int],
    i: int,
    j: int,
) -> float:
    """``d(P') - d(P)`` for swapping positions ``i`` and ``j``; O(1)."""
    if i == j:
        return 0.0
    if i > j:
        i, j = j, i
    n = len(path)
    u, v = path[i], path[j]
    if j == i + 1:
        delta = rows[v][u] - rows[u][v]
        if i > 0:
            p = path[i - 1]
            delta += rows[p][v] - rows[p][u]
        if j < n - 1:
            q = path[j + 1]
            delta += rows[u][q] - rows[v][q]
        return delta
    delta = 0.0
    if i > 0:
        p = path[i - 1]
        delta += rows[p][v] - rows[p][u]
    s = path[i + 1]
    delta += rows[v][s] - rows[u][s]
    t = path[j - 1]
    delta += rows[t][u] - rows[t][v]
    if j < n - 1:
        q = path[j + 1]
        delta += rows[u][q] - rows[v][q]
    return delta


# ---------------------------------------------------------------------------
# In-place applications
# ---------------------------------------------------------------------------

def apply_rotate(path: PathLike, first: int, middle: int, last: int) -> None:
    """In-place ``std::rotate`` of ``path[first:last]`` around ``middle``."""
    if isinstance(path, np.ndarray):
        path[first:last] = np.concatenate(
            (path[middle:last], path[first:middle])
        )
    else:
        path[first:last] = path[middle:last] + path[first:middle]


def apply_reverse(path: PathLike, first: int, last: int) -> None:
    """In-place reversal of ``path[first:last]``."""
    if isinstance(path, np.ndarray):
        path[first:last] = path[first:last][::-1].copy()
    else:
        path[first:last] = path[first:last][::-1]


def apply_swap(path: PathLike, i: int, j: int) -> None:
    """In-place swap of positions ``i`` and ``j``."""
    path[i], path[j] = path[j], path[i]
