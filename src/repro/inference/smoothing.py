"""Step 2: preference smoothing of unanimous edges (Sec. V-B).

A *1-edge* ``(i, j)`` means every worker who answered the pair voted
``i ≺ j`` in this round; the opposite preference is unobserved, and these
unanimous edges are exactly what creates in-/out-nodes and breaks the
Hamiltonian-path traversal (Theorem 4.3).  Smoothing estimates the unseen
reverse preference from the quality of the workers who answered:

    ``w_ij <- w_ij - mean_k(err_k)``,  ``w_ji <- w_ji + mean_k(err_k)``

with ``err_k`` the error of worker ``k`` under ``N(0, sigma_k^2)`` and
``sigma_k = -log(q_k)``.  Two readings of "the error" are supported: the
deterministic expectation ``E|eps| = sigma_k * sqrt(2/pi)`` (default) and
a sampled draw (the paper's stochastic phrasing).  Only 1-edges are
touched — the paper smooths nothing else, "aiming to minimize the amounts
of errors introduced by estimation".
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

from ..config import SmoothingConfig
from ..exceptions import InferenceError
from ..graphs.preference_graph import PreferenceGraph
from ..rng import SeedLike, ensure_rng
from ..types import VoteSet, WorkerId, canonical_pair


@dataclass(frozen=True)
class SmoothingResult:
    """Output of Step 2.

    Attributes
    ----------
    graph:
        The smoothed preference graph (both directions present for every
        compared pair, weights summing to 1 per pair).
    n_one_edges:
        How many unanimous edges were smoothed (the quantity the paper's
        Fig. 4 discussion ties to the Gaussian-vs-Uniform runtime gap).
    adjustments:
        Per smoothed directed edge, the amount moved to the reverse
        direction.
    """

    graph: PreferenceGraph
    n_one_edges: int
    adjustments: Dict[Tuple[int, int], float]


def worker_sigma(quality: float, config: SmoothingConfig) -> float:
    """The paper's ``sigma_k = -log(q_k)``, clipped into a sane band.

    ``q_k = 1`` would give sigma 0 (no smoothing at all) and ``q_k -> 0``
    would give an unbounded sigma; both ends are clipped so smoothed
    weights stay strictly inside (0, 1).
    """
    if not 0.0 < quality <= 1.0:
        raise InferenceError(f"worker quality {quality} outside (0, 1]")
    sigma = -math.log(quality) if quality < 1.0 else 0.0
    return float(min(max(sigma, config.sigma_floor), config.sigma_cap))


def _worker_error(
    sigma: float, config: SmoothingConfig, rng: np.random.Generator
) -> float:
    """One worker's estimated error mass ``err_k`` on a unanimous edge."""
    if config.mode == "expected":
        return sigma * math.sqrt(2.0 / math.pi)
    return float(abs(rng.normal(0.0, sigma)))


def smooth_preferences(
    graph: PreferenceGraph,
    votes: VoteSet,
    worker_quality: Mapping[WorkerId, float],
    config: Optional[SmoothingConfig] = None,
    rng: SeedLike = None,
) -> SmoothingResult:
    """Smooth every 1-edge of ``graph`` using the answering workers' quality.

    Parameters
    ----------
    graph:
        The direct preference graph from Step 1
        (:meth:`PreferenceGraph.from_direct_preferences`).
    votes:
        The raw votes — needed to find *which* workers answered each
        unanimous pair.
    worker_quality:
        Step 1's estimated ``q_k``.
    config:
        Smoothing configuration.
    rng:
        Only used in ``mode="sampled"``.

    Raises
    ------
    InferenceError
        If a 1-edge has no recorded votes (inconsistent inputs) or a
        quality is missing for an answering worker.
    """
    config = config if config is not None else SmoothingConfig()
    generator = ensure_rng(rng)
    votes_by_pair = votes.by_pair()
    smoothed = graph.copy()
    adjustments: Dict[Tuple[int, int], float] = {}

    one_edges = graph.one_edges()
    for u, v in one_edges:
        pair = canonical_pair(u, v)
        pair_votes = votes_by_pair.get(pair)
        if not pair_votes:
            raise InferenceError(
                f"1-edge ({u} -> {v}) has no recorded votes; the vote set "
                "does not match the preference graph"
            )
        errors: List[float] = []
        for vote in pair_votes:
            if vote.worker not in worker_quality:
                raise InferenceError(
                    f"no quality estimate for worker {vote.worker} "
                    f"answering pair {pair}"
                )
            sigma = worker_sigma(worker_quality[vote.worker], config)
            errors.append(_worker_error(sigma, config, generator))
        shift = float(np.mean(errors))
        # A unanimous edge may become uninformative (0.5/0.5) under very
        # unreliable workers but must never *invert*: the crowd said
        # i ≺ j, so the smoothed w_ij stays >= 0.5.  The lower clip keeps
        # both directions strictly positive (strong connectivity).
        shift = min(max(shift, config.min_weight), 0.5)

        smoothed.remove_edge(u, v)
        smoothed.add_edge(u, v, 1.0 - shift)
        if smoothed.has_edge(v, u):  # pragma: no cover - 1-edge => absent
            smoothed.remove_edge(v, u)
        smoothed.add_edge(v, u, shift)
        adjustments[(u, v)] = shift

    return SmoothingResult(
        graph=smoothed,
        n_one_edges=len(one_edges),
        adjustments=adjustments,
    )
