"""Step 2: preference smoothing of unanimous edges (Sec. V-B).

A *1-edge* ``(i, j)`` means every worker who answered the pair voted
``i ≺ j`` in this round; the opposite preference is unobserved, and these
unanimous edges are exactly what creates in-/out-nodes and breaks the
Hamiltonian-path traversal (Theorem 4.3).  Smoothing estimates the unseen
reverse preference from the quality of the workers who answered:

    ``w_ij <- w_ij - mean_k(err_k)``,  ``w_ji <- w_ji + mean_k(err_k)``

with ``err_k`` the error of worker ``k`` under ``N(0, sigma_k^2)`` and
``sigma_k = -log(q_k)``.  Two readings of "the error" are supported: the
deterministic expectation ``E|eps| = sigma_k * sqrt(2/pi)`` (default) and
a sampled draw (the paper's stochastic phrasing).  Only 1-edges are
touched — the paper smooths nothing else, "aiming to minimize the amounts
of errors introduced by estimation".

Two implementations are provided:

* :func:`smooth_preferences` — the original object path over a
  :class:`~repro.graphs.preference_graph.PreferenceGraph`; kept as the
  compatibility API and as the oracle the fast path is differenced
  against;
* :func:`smooth_matrix` — the columnar fast path: identifies 1-edges
  from the Step-1 truth vector, computes ``sigma_k`` once per distinct
  worker, and applies every shift with ``np.bincount`` over the
  pre-flattened vote arrays (:class:`~repro.types.VoteArrays`).

**Sampled-mode RNG draw-order contract.**  Both implementations consume
exactly one ``|N(0, sigma_k^2)|`` draw per (1-edge, vote) in the same
order: 1-edges in lexicographic ``(source, target)`` order, and votes
within an edge in original vote-set order.  ``numpy``'s vectorized
``Generator.normal(0, sigma_array)`` draws element-wise from the same
bit stream as the equivalent sequence of scalar calls, so for a fixed
seed the two paths produce bit-identical shifts.  (The object path
iterates ``graph.one_edges()``, which for Step-1 graphs built by
:meth:`PreferenceGraph.from_direct_preferences` over the sorted pair
table is exactly lexicographic ``(source, target)`` order — pinned by a
regression test.)
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple, Union

import numpy as np

from ..config import SmoothingConfig
from ..exceptions import InferenceError
from ..graphs.preference_graph import ONE_EDGE_TOLERANCE, PreferenceGraph
from ..rng import SeedLike, ensure_rng
from ..types import VoteArrays, VoteSet, WorkerId, canonical_pair


@dataclass(frozen=True)
class SmoothingResult:
    """Output of Step 2 (object path).

    Attributes
    ----------
    graph:
        The smoothed preference graph (both directions present for every
        compared pair, weights summing to 1 per pair).
    n_one_edges:
        How many unanimous edges were smoothed (the quantity the paper's
        Fig. 4 discussion ties to the Gaussian-vs-Uniform runtime gap).
    adjustments:
        Per smoothed directed edge, the amount moved to the reverse
        direction.
    """

    graph: PreferenceGraph
    n_one_edges: int
    adjustments: Dict[Tuple[int, int], float]


@dataclass(frozen=True)
class MatrixSmoothingResult:
    """Output of Step 2 (columnar fast path).

    Same information as :class:`SmoothingResult` with the graph replaced
    by its dense weight matrix — the representation Steps 3-4 consume
    directly.
    """

    matrix: np.ndarray
    n_one_edges: int
    adjustments: Dict[Tuple[int, int], float]


def worker_sigma(quality: float, config: SmoothingConfig) -> float:
    """The paper's ``sigma_k = -log(q_k)``, clipped into a sane band.

    ``q_k = 1`` would give sigma 0 (no smoothing at all) and ``q_k -> 0``
    would give an unbounded sigma; both ends are clipped so smoothed
    weights stay strictly inside (0, 1).
    """
    if not 0.0 < quality <= 1.0:
        raise InferenceError(f"worker quality {quality} outside (0, 1]")
    sigma = -math.log(quality) if quality < 1.0 else 0.0
    return float(min(max(sigma, config.sigma_floor), config.sigma_cap))


def _worker_error(
    sigma: float, config: SmoothingConfig, rng: np.random.Generator
) -> float:
    """One worker's estimated error mass ``err_k`` on a unanimous edge."""
    if config.mode == "expected":
        return sigma * math.sqrt(2.0 / math.pi)
    return float(abs(rng.normal(0.0, sigma)))


def smooth_preferences(
    graph: PreferenceGraph,
    votes: VoteSet,
    worker_quality: Mapping[WorkerId, float],
    config: Optional[SmoothingConfig] = None,
    rng: SeedLike = None,
) -> SmoothingResult:
    """Smooth every 1-edge of ``graph`` using the answering workers' quality.

    Parameters
    ----------
    graph:
        The direct preference graph from Step 1
        (:meth:`PreferenceGraph.from_direct_preferences`).
    votes:
        The raw votes — needed to find *which* workers answered each
        unanimous pair.
    worker_quality:
        Step 1's estimated ``q_k``.
    config:
        Smoothing configuration.
    rng:
        Only used in ``mode="sampled"``.

    Raises
    ------
    InferenceError
        If a 1-edge has no recorded votes (inconsistent inputs) or a
        quality is missing for an answering worker.
    """
    config = config if config is not None else SmoothingConfig()
    generator = ensure_rng(rng)
    votes_by_pair = votes.by_pair()
    smoothed = graph.copy()
    adjustments: Dict[Tuple[int, int], float] = {}
    # sigma_k is a pure function of the worker's quality — compute it
    # once per distinct worker, not once per (edge, vote).
    sigma_cache: Dict[WorkerId, float] = {}

    one_edges = graph.one_edges()
    for u, v in one_edges:
        pair = canonical_pair(u, v)
        pair_votes = votes_by_pair.get(pair)
        if not pair_votes:
            raise InferenceError(
                f"1-edge ({u} -> {v}) has no recorded votes; the vote set "
                "does not match the preference graph"
            )
        errors: List[float] = []
        for vote in pair_votes:
            sigma = sigma_cache.get(vote.worker)
            if sigma is None:
                if vote.worker not in worker_quality:
                    raise InferenceError(
                        f"no quality estimate for worker {vote.worker} "
                        f"answering pair {pair}"
                    )
                sigma = worker_sigma(worker_quality[vote.worker], config)
                sigma_cache[vote.worker] = sigma
            errors.append(_worker_error(sigma, config, generator))
        shift = float(np.mean(errors))
        # A unanimous edge may become uninformative (0.5/0.5) under very
        # unreliable workers but must never *invert*: the crowd said
        # i ≺ j, so the smoothed w_ij stays >= 0.5.  The lower clip keeps
        # both directions strictly positive (strong connectivity).
        shift = min(max(shift, config.min_weight), 0.5)

        smoothed.remove_edge(u, v)
        smoothed.add_edge(u, v, 1.0 - shift)
        if smoothed.has_edge(v, u):  # pragma: no cover - 1-edge => absent
            smoothed.remove_edge(v, u)
        smoothed.add_edge(v, u, shift)
        adjustments[(u, v)] = shift

    return SmoothingResult(
        graph=smoothed,
        n_one_edges=len(one_edges),
        adjustments=adjustments,
    )


def direct_preference_matrix(
    arrays: VoteArrays, truth_vector: np.ndarray
) -> np.ndarray:
    """Step-1 output as a dense weight matrix (fast-path ``G_P``).

    The matrix analogue of
    :meth:`PreferenceGraph.from_direct_preferences`: for each compared
    pair ``(i, j)`` (canonical ``i < j``) with estimated preference
    ``x_ij``, entry ``[i, j] = x_ij`` when positive and
    ``[j, i] = 1 - x_ij`` when ``x_ij < 1``; absent edges stay 0.
    """
    x = np.asarray(truth_vector, dtype=np.float64)
    if x.shape != (arrays.n_pairs,):
        raise InferenceError(
            f"truth vector of shape {x.shape} does not match the "
            f"{arrays.n_pairs}-pair vote table"
        )
    if arrays.n_pairs and (float(x.min()) < 0.0 or float(x.max()) > 1.0):
        raise InferenceError("truth vector entries outside [0, 1]")
    n = arrays.n_objects
    matrix = np.zeros((n, n), dtype=np.float64)
    forward = x > 0.0
    matrix[arrays.pair_lo[forward], arrays.pair_hi[forward]] = x[forward]
    reverse = x < 1.0
    matrix[arrays.pair_hi[reverse], arrays.pair_lo[reverse]] = \
        1.0 - x[reverse]
    return matrix


def smooth_matrix(
    direct: np.ndarray,
    truth_vector: np.ndarray,
    arrays: VoteArrays,
    worker_quality: Union[Mapping[WorkerId, float], np.ndarray],
    config: Optional[SmoothingConfig] = None,
    rng: SeedLike = None,
) -> MatrixSmoothingResult:
    """Vectorized Step 2 over the columnar vote arrays.

    Numerically identical to running :func:`smooth_preferences` on the
    graph built from the same truth vector (see the module docstring for
    the sampled-mode draw-order contract; per-edge means via
    ``np.bincount`` accumulate in the same sequential order as the
    object path's ``np.mean`` for the realistic <= 8 votes per pair).

    Parameters
    ----------
    direct:
        Dense Step-1 weight matrix (:func:`direct_preference_matrix`);
        not mutated.
    truth_vector:
        Step-1 preference estimates aligned with ``arrays``' pair table
        — 1-edges are identified directly from it (``x >= 1 - tol`` is
        a unanimous ``lo -> hi`` edge, ``x <= tol`` a unanimous
        ``hi -> lo`` edge).
    arrays:
        Columnar vote view; every pair in the table carries at least one
        vote by construction, so the object path's "1-edge without
        votes" failure mode cannot occur here.
    worker_quality:
        Either a quality vector aligned with ``arrays.worker_ids`` or a
        mapping that must cover every voting worker (the object path
        only requires quality for workers on unanimous pairs; the fast
        path checks all of them up front).
    """
    config = config if config is not None else SmoothingConfig()
    generator = ensure_rng(rng)
    x = np.asarray(truth_vector, dtype=np.float64)
    sigma = _sigma_vector(arrays, worker_quality, config)
    src, dst, pair_of_edge = _one_edge_table(x, arrays)
    n_edges = int(src.shape[0])

    smoothed = np.array(direct, dtype=np.float64, copy=True)
    if n_edges == 0:
        return MatrixSmoothingResult(matrix=smoothed, n_one_edges=0,
                                     adjustments={})

    shift = _edge_shifts(arrays, sigma, pair_of_edge, config, generator)
    smoothed[src, dst] = 1.0 - shift
    smoothed[dst, src] = shift
    adjustments = {
        (u, v): s
        for u, v, s in zip(src.tolist(), dst.tolist(), shift.tolist())
    }
    return MatrixSmoothingResult(
        matrix=smoothed,
        n_one_edges=n_edges,
        adjustments=adjustments,
    )


def resmooth_pairs(
    previous: np.ndarray,
    truth_vector: np.ndarray,
    arrays: VoteArrays,
    worker_quality: Union[Mapping[WorkerId, float], np.ndarray],
    pair_mask: np.ndarray,
    config: Optional[SmoothingConfig] = None,
    rng: SeedLike = None,
) -> MatrixSmoothingResult:
    """Steps 1-2 applied to a *subset* of pairs over a previous matrix.

    The streaming session's incremental update: given the last smoothed
    matrix, refresh only the entries of pairs flagged in ``pair_mask``
    (a boolean vector over the columnar pair table — the pairs that
    received new votes, plus every pair answered by a worker who did).
    For each flagged pair the entry is rebuilt exactly as the full path
    would: the direct weight from the current truth vector, then the
    1-edge smoothing shift where the pair is unanimous.  Entries of
    unflagged pairs are carried over untouched — the incremental
    approximation that makes per-vote updates cheap; a periodic full
    :func:`smooth_matrix` rebuild (and the batch-equivalence guarantee
    of a session's full recompute) bounds the drift.

    With ``pair_mask`` all-true and ``previous`` the direct matrix of
    the same truth vector, the result is identical to
    :func:`smooth_matrix` (pinned by a regression test).
    """
    config = config if config is not None else SmoothingConfig()
    generator = ensure_rng(rng)
    x = np.asarray(truth_vector, dtype=np.float64)
    mask = np.asarray(pair_mask, dtype=bool)
    if x.shape != (arrays.n_pairs,) or mask.shape != (arrays.n_pairs,):
        raise InferenceError(
            f"truth vector {x.shape} / pair mask {mask.shape} do not "
            f"match the {arrays.n_pairs}-pair vote table"
        )
    smoothed = np.array(previous, dtype=np.float64, copy=True)
    if not mask.any():
        return MatrixSmoothingResult(matrix=smoothed, n_one_edges=0,
                                     adjustments={})

    # Direct weights for the flagged pairs (same zero-for-absent rule
    # as direct_preference_matrix, both directions rewritten).
    lo, hi, xm = arrays.pair_lo[mask], arrays.pair_hi[mask], x[mask]
    smoothed[lo, hi] = np.where(xm > 0.0, xm, 0.0)
    smoothed[hi, lo] = np.where(xm < 1.0, 1.0 - xm, 0.0)

    sigma = _sigma_vector(arrays, worker_quality, config)
    src, dst, pair_of_edge = _one_edge_table(x, arrays, mask)
    n_edges = int(src.shape[0])
    if n_edges == 0:
        return MatrixSmoothingResult(matrix=smoothed, n_one_edges=0,
                                     adjustments={})
    shift = _edge_shifts(arrays, sigma, pair_of_edge, config, generator)
    smoothed[src, dst] = 1.0 - shift
    smoothed[dst, src] = shift
    adjustments = {
        (u, v): s
        for u, v, s in zip(src.tolist(), dst.tolist(), shift.tolist())
    }
    return MatrixSmoothingResult(
        matrix=smoothed,
        n_one_edges=n_edges,
        adjustments=adjustments,
    )


def _sigma_vector(
    arrays: VoteArrays,
    worker_quality: Union[Mapping[WorkerId, float], np.ndarray],
    config: SmoothingConfig,
) -> np.ndarray:
    """Per-distinct-worker sigma, through the same scalar
    :func:`worker_sigma` as the object path (bit-identical clipping and
    log)."""
    if isinstance(worker_quality, np.ndarray):
        qualities = worker_quality.tolist()
    else:
        workers = arrays.workers()
        missing = [w for w in workers if w not in worker_quality]
        if missing:
            raise InferenceError(
                f"no quality estimate for worker {missing[0]}"
            )
        qualities = [worker_quality[w] for w in workers]
    if len(qualities) != arrays.n_workers:
        raise InferenceError(
            f"{len(qualities)} worker qualities for {arrays.n_workers} "
            "voting workers"
        )
    return np.array([worker_sigma(q, config) for q in qualities],
                    dtype=np.float64)


def _one_edge_table(
    x: np.ndarray,
    arrays: VoteArrays,
    pair_mask: Optional[np.ndarray] = None,
) -> tuple:
    """1-edges from the truth vector, in the object path's draw order:
    lexicographic ``(source, target)``.  ``pair_mask`` restricts the
    table to a subset of pairs (the incremental path)."""
    one_forward = x >= 1.0 - ONE_EDGE_TOLERANCE
    one_reverse = (1.0 - x) >= 1.0 - ONE_EDGE_TOLERANCE
    if pair_mask is not None:
        one_forward = one_forward & pair_mask
        one_reverse = one_reverse & pair_mask
    src = np.concatenate([arrays.pair_lo[one_forward],
                          arrays.pair_hi[one_reverse]])
    dst = np.concatenate([arrays.pair_hi[one_forward],
                          arrays.pair_lo[one_reverse]])
    pair_of_edge = np.concatenate([np.nonzero(one_forward)[0],
                                   np.nonzero(one_reverse)[0]])
    order = np.lexsort((dst, src))
    return src[order], dst[order], pair_of_edge[order]


def _edge_shifts(
    arrays: VoteArrays,
    sigma: np.ndarray,
    pair_of_edge: np.ndarray,
    config: SmoothingConfig,
    generator: np.random.Generator,
) -> np.ndarray:
    """Per-1-edge smoothing shift: the mean worker error over the
    edge's votes, clipped into ``[min_weight, 0.5]``.

    Gathers each edge's votes edge-major, original order within edge:
    votes stably sorted by pair give contiguous per-pair blocks.
    """
    n_edges = int(pair_of_edge.shape[0])
    by_pair_order = np.argsort(arrays.pair_idx, kind="stable")
    counts = np.bincount(arrays.pair_idx, minlength=arrays.n_pairs)
    block_start = np.concatenate(([0], np.cumsum(counts)))[:-1]
    lengths = counts[pair_of_edge]
    out_start = np.cumsum(lengths) - lengths
    flat = np.arange(int(lengths.sum()))
    within = flat - np.repeat(out_start, lengths)
    vote_rows = by_pair_order[np.repeat(block_start[pair_of_edge], lengths)
                              + within]

    per_vote_sigma = sigma[arrays.worker_idx[vote_rows]]
    if config.mode == "expected":
        errors = per_vote_sigma * math.sqrt(2.0 / math.pi)
    else:
        errors = np.abs(generator.normal(0.0, per_vote_sigma))

    edge_of_vote = np.repeat(np.arange(n_edges), lengths)
    shift = (np.bincount(edge_of_vote, weights=errors, minlength=n_edges)
             / lengths)
    return np.clip(shift, config.min_weight, 0.5)
