"""Deterministic local-search polish for Step-4 rankings.

Simulated annealing leaves small residual disorder; a deterministic
first-improvement pass over two classical neighbourhoods removes it at
negligible cost:

* **adjacent swaps** (bubble moves) — fixes single transpositions, the
  dominant residual error mode on near-tie pairs;
* **single-vertex reinsertion** (Or-opt with segment length 1) — fixes
  one object parked a few positions away from home.

Both neighbourhoods are scored through the shared incremental kernel
(:mod:`repro.inference.delta`): an adjacent swap is
:func:`~repro.inference.delta.swap_delta` (3 edges) and a reinsertion is
a rotation of the slice between the vertex and its target slot, so
:func:`~repro.inference.delta.rotate_delta` prices it from at most 4
edges.  A full sweep is therefore O(n) / O(n * window) *edge lookups*,
not path re-summations.  Used via
:class:`~repro.config.SAPSConfig.polish` or standalone.

Infinite edges are safe here: every edge *removed* from the current path
is finite (the path's total cost is finite throughout), so a delta is
either finite or ``+inf`` (the candidate uses a missing edge) — never
NaN — and ``+inf`` deltas are simply never improvements.
"""

from __future__ import annotations

import math
from typing import List, Tuple, Union

import numpy as np

from ..exceptions import InferenceError
from ..graphs.digraph import WeightedDigraph
from ..types import Ranking
from .delta import apply_rotate, apply_swap, path_cost, rotate_delta, swap_delta
from .taps import _as_matrix


def polish_ranking(
    weights: Union[np.ndarray, WeightedDigraph],
    ranking: Ranking,
    *,
    max_sweeps: int = 20,
    reinsertion_window: int = 8,
) -> Tuple[Ranking, float]:
    """First-improvement local search from ``ranking``.

    Alternates adjacent-swap sweeps and bounded-window reinsertion
    sweeps until neither improves, or ``max_sweeps`` is hit.

    Returns
    -------
    (ranking, log_preference):
        The polished ranking and its log preference (``-d(P)``).

    Raises
    ------
    InferenceError
        If the initial ranking has no finite-cost path in ``weights``.
    """
    matrix = _as_matrix(weights)
    n = matrix.shape[0]
    if len(ranking) != n:
        raise InferenceError(
            f"ranking covers {len(ranking)} objects, weights cover {n}"
        )
    with np.errstate(divide="ignore"):
        cost = np.where(matrix > 0.0, -np.log(np.maximum(matrix, 1e-300)),
                        np.inf)
    np.fill_diagonal(cost, np.inf)

    path = list(ranking.order)
    if math.isinf(path_cost(cost, path)):
        raise InferenceError("initial ranking has no finite-cost path")

    rows = cost.tolist()
    for _ in range(max_sweeps):
        improved = _swap_sweep(rows, path)
        improved |= _reinsertion_sweep(rows, path, reinsertion_window)
        if not improved:
            break
    return Ranking(path), -path_cost(cost, path)


def _path_cost(cost: np.ndarray, path) -> float:
    return path_cost(cost, path)


def _swap_sweep(rows: List[List[float]], path: List[int]) -> bool:
    """One pass of first-improvement adjacent swaps (in place)."""
    improved = False
    for k in range(len(path) - 1):
        if swap_delta(rows, path, k, k + 1) < -1e-12:
            apply_swap(path, k, k + 1)
            improved = True
    return improved


def _reinsertion_sweep(
    rows: List[List[float]], path: List[int], window: int
) -> bool:
    """Move single vertices to their best slot within ``window`` positions.

    Moving ``path[k]`` to slot ``s < k`` is ``Rotate(s, k, k+1)``; to
    slot ``s > k`` it is ``Rotate(k, k+1, s+1)`` — so each candidate is
    priced by :func:`~repro.inference.delta.rotate_delta` from at most
    four edges instead of a full path re-sum.
    """
    n = len(path)
    improved = False
    for k in range(n):
        best_delta = -1e-12
        best_slot = None
        lo = max(0, k - window)
        hi = min(n - 1, k + window)
        for slot in range(lo, hi + 1):
            if slot == k:
                continue
            if slot < k:
                delta = rotate_delta(rows, path, slot, k, k + 1)
            else:
                delta = rotate_delta(rows, path, k, k + 1, slot + 1)
            if delta < best_delta:
                best_delta = delta
                best_slot = slot
        if best_slot is not None:
            if best_slot < k:
                apply_rotate(path, best_slot, k, k + 1)
            else:
                apply_rotate(path, k, k + 1, best_slot + 1)
            improved = True
    return improved
