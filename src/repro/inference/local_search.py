"""Deterministic local-search polish for Step-4 rankings.

Simulated annealing leaves small residual disorder; a deterministic
first-improvement pass over two classical neighbourhoods removes it at
negligible cost:

* **adjacent swaps** (bubble moves) — fixes single transpositions, the
  dominant residual error mode on near-tie pairs;
* **single-vertex reinsertion** (Or-opt with segment length 1) — fixes
  one object parked a few positions away from home.

Both evaluate the ``d(P) = sum -log w`` objective incrementally (an
adjacent swap touches at most 3 edges, a reinsertion at most 6), so a
full sweep is O(n) / O(n * window).  Used via
:class:`~repro.config.SAPSConfig.polish` or standalone.
"""

from __future__ import annotations

import math
from typing import Tuple, Union

import numpy as np

from ..exceptions import InferenceError
from ..graphs.digraph import WeightedDigraph
from ..types import Ranking
from .taps import _as_matrix


def polish_ranking(
    weights: Union[np.ndarray, WeightedDigraph],
    ranking: Ranking,
    *,
    max_sweeps: int = 20,
    reinsertion_window: int = 8,
) -> Tuple[Ranking, float]:
    """First-improvement local search from ``ranking``.

    Alternates adjacent-swap sweeps and bounded-window reinsertion
    sweeps until neither improves, or ``max_sweeps`` is hit.

    Returns
    -------
    (ranking, log_preference):
        The polished ranking and its log preference (``-d(P)``).

    Raises
    ------
    InferenceError
        If the initial ranking has no finite-cost path in ``weights``.
    """
    matrix = _as_matrix(weights)
    n = matrix.shape[0]
    if len(ranking) != n:
        raise InferenceError(
            f"ranking covers {len(ranking)} objects, weights cover {n}"
        )
    with np.errstate(divide="ignore"):
        cost = np.where(matrix > 0.0, -np.log(np.maximum(matrix, 1e-300)),
                        np.inf)
    np.fill_diagonal(cost, np.inf)

    path = list(ranking.order)
    total = _path_cost(cost, path)
    if math.isinf(total):
        raise InferenceError("initial ranking has no finite-cost path")

    for _ in range(max_sweeps):
        improved = _swap_sweep(cost, path)
        improved |= _reinsertion_sweep(cost, path, reinsertion_window)
        if not improved:
            break
    return Ranking(path), -_path_cost(cost, path)


def _path_cost(cost: np.ndarray, path) -> float:
    arr = np.asarray(path)
    return float(cost[arr[:-1], arr[1:]].sum())


def _edge(cost: np.ndarray, path, a: int, b: int) -> float:
    """Cost of the edge between positions a and b, inf-safe bounds."""
    if a < 0 or b >= len(path):
        return 0.0
    return float(cost[path[a], path[b]])


def _swap_sweep(cost: np.ndarray, path) -> bool:
    """One pass of first-improvement adjacent swaps (in place)."""
    n = len(path)
    improved = False
    for k in range(n - 1):
        before = (_edge(cost, path, k - 1, k)
                  + float(cost[path[k], path[k + 1]])
                  + _edge(cost, path, k + 1, k + 2))
        after = (
            (0.0 if k == 0 else float(cost[path[k - 1], path[k + 1]]))
            + float(cost[path[k + 1], path[k]])
            + (0.0 if k + 2 >= n else float(cost[path[k], path[k + 2]]))
        )
        if after < before - 1e-12:
            path[k], path[k + 1] = path[k + 1], path[k]
            improved = True
    return improved


def _reinsertion_sweep(cost: np.ndarray, path, window: int) -> bool:
    """Move single vertices to a better slot within ``window`` positions.

    Each candidate move is evaluated by full path cost — O(n) with numpy
    fancy indexing, and the window bound keeps the sweep O(n * window)
    evaluations; correctness over cleverness for a polish pass.
    """
    n = len(path)
    improved = False
    current_cost = _path_cost(cost, path)
    for k in range(n):
        vertex = path[k]
        best_cost = current_cost - 1e-12
        best_candidate = None
        lo = max(0, k - window)
        hi = min(n - 1, k + window)
        for slot in range(lo, hi + 1):
            if slot == k:
                continue
            candidate = path[:k] + path[k + 1:]
            candidate.insert(slot, vertex)
            cand_cost = _path_cost(cost, candidate)
            if cand_cost < best_cost:
                best_cost = cand_cost
                best_candidate = candidate
        if best_candidate is not None:
            path[:] = best_candidate
            current_cost = best_cost
            improved = True
    return improved
