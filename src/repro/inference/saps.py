"""Step 4 heuristic: simulated-annealing path search (Sec. V-D2).

Faithful implementation of Algorithms 2 and 3.  The objective is the
negative-log form: find the Hamiltonian path ``P`` minimising
``d(P) = sum_{(u,v) in P} -log w_uv`` (equivalently maximising
``Pr[P] = prod w_uv``).  Each iteration proposes three permutations of the
current path — Rotate, Reverse, RandomSwap — and accepts each through the
Boltzmann rule of Algorithm 3 (better always; worse with probability
``exp(-(d_next - d_i) / T)``), then cools ``T <- T * c``.

Algorithm 2 restarts the anneal from every vertex with a greedy initial
path ("selecting the nearest neighbors, or by ranking the nodes based on
the difference of their out-/in- edge weights"); the config can cap the
restart count, since on large complete closures a handful of restarts
already reaches the plateau the paper reports.

Two move-evaluation kernels share the proposal machinery:

* the **incremental** kernel (default) scores each proposal by the
  ``d(P') - d(P)`` of the few edges the move actually changes
  (:mod:`repro.inference.delta`), applies accepted moves in place, and
  re-syncs the running cost against a full re-sum every
  ``resync_every`` accepted moves to bound float drift;
* the **reference** kernel copies the path and re-sums all ``n - 1``
  edges per proposal — the pre-optimisation cost model, kept as the
  benchmark baseline (``benchmarks/bench_saps.py``), as the cross-check
  oracle in tests, and as the automatic fallback on incomplete closures
  where ``+inf`` edge costs make deltas ill-defined.

Both kernels draw from the restart's random stream in exactly the same
order (three index floats + one acceptance float per Rotate, two + one
per Reverse/RandomSwap), so a fixed seed accepts the same move sequence
under either kernel.  Restarts each get their own child stream spawned
from the run RNG up front, which makes the restart loop embarrassingly
parallel (``SAPSConfig.parallel_restarts``) without changing results:
serial and parallel runs reduce the same per-restart outcomes in the
same order.  The restart loop dispatches through
:mod:`repro.workers.backends` (``SAPSConfig.backend``), so the same
guarantee extends across the serial, thread and process backends — the
anneal is pure Python and GIL-bound, which makes the process backend
the only one that actually uses multiple cores.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from ..config import SAPSConfig
from ..exceptions import InferenceError
from ..graphs.digraph import WeightedDigraph
from ..rng import SeedLike, ensure_rng, spawn_rngs
from ..types import Ranking
from ..workers.pool import parallel_map
from .delta import (
    apply_rotate,
    apply_swap,
    cost_rows,
    path_cost,
    reverse_delta,
    reverse_diff_matrix,
    rotate_delta,
    swap_delta,
)
from .taps import _as_matrix

#: Iterations' worth of random draws pre-fetched per block by the
#: incremental kernel (10 floats per iteration: 4 + 3 + 3).
_RNG_BLOCK = 256

#: Floats consumed per iteration (Rotate 4, Reverse 3, RandomSwap 3).
_DRAWS_PER_ITERATION = 10


@dataclass(frozen=True)
class SAPSReport:
    """Diagnostics of one SAPS run (exposed for the benchmarks).

    Field semantics — precise, so benchmark attribution stays honest:

    ranking / log_preference:
        The final result, *including* the optional deterministic polish
        pass when ``config.polish`` is set.
    restarts:
        Number of anneal restarts actually run.
    iterations_per_restart:
        Annealing iterations per restart (after ``scale_with_objects``).
    accepted_moves / proposed_moves:
        Boltzmann-accepted / proposed moves of the *anneal only* — the
        polish pass is deterministic first-improvement search and its
        work is excluded from both counters.
    polish_improved / polish_delta:
        Whether the polish pass strictly improved the objective, and by
        how much (its log-preference gain, >= 0).  Both are zero/False
        when ``config.polish`` is off, so the polish contribution to
        ``log_preference`` is always attributable.
    """

    ranking: Ranking
    log_preference: float
    restarts: int
    iterations_per_restart: int
    accepted_moves: int
    proposed_moves: int
    polish_improved: bool = False
    polish_delta: float = 0.0


def saps_search(
    weights: Union[np.ndarray, WeightedDigraph],
    config: Optional[SAPSConfig] = None,
    rng: SeedLike = None,
) -> Tuple[Ranking, float]:
    """Find a high-preference HP; returns ``(ranking, log_probability)``.

    The input is expected to be the complete Step-3 closure (every
    ordered pair has a positive weight); on incomplete graphs SAPS still
    runs but treats missing edges as cost ``+inf`` and raises
    :class:`InferenceError` if no finite-cost path is ever found.
    """
    report = saps_search_report(weights, config, rng)
    return report.ranking, report.log_preference


def saps_search_report(
    weights: Union[np.ndarray, WeightedDigraph],
    config: Optional[SAPSConfig] = None,
    rng: SeedLike = None,
    warm_start: Optional[Sequence[int]] = None,
) -> SAPSReport:
    """As :func:`saps_search`, returning full diagnostics.

    ``warm_start`` (a permutation of the ``n`` objects, e.g. a previous
    ranking's order) replaces the *first* restart's greedy initial path:
    that restart anneals from the given path instead of building one
    from a start vertex.  Because the initial path seeds the restart's
    best-so-far cost, the warm restart can never return a worse path
    than the one handed in — streaming sessions exploit this to run a
    sharply reduced schedule (``restarts=1``, few iterations) per vote
    delta without risking a regression below the previous ranking.
    With ``warm_start=None`` the run is unchanged, bit for bit.
    """
    config = config if config is not None else SAPSConfig()
    matrix = _as_matrix(weights)
    n = matrix.shape[0]
    if n == 1:
        return SAPSReport(Ranking([0]), 0.0, 0, config.iterations, 0, 0)
    generator = ensure_rng(rng)

    # Cost matrix: d(P) sums cost[u, v] = -log w_uv; +inf for no edge.
    with np.errstate(divide="ignore"):
        cost = np.where(matrix > 0.0, -np.log(np.maximum(matrix, 1e-300)),
                        np.inf)
    np.fill_diagonal(cost, np.inf)

    start_vertices: List[Union[int, np.ndarray]] = \
        _restart_vertices(matrix, config, n, generator)
    if warm_start is not None:
        warm = np.array([int(v) for v in warm_start], dtype=np.int64)
        if warm.shape != (n,) or \
                not np.array_equal(np.sort(warm), np.arange(n)):
            raise InferenceError(
                f"SAPS warm start must be a permutation of the {n} "
                "objects"
            )
        start_vertices[0] = warm
    iterations = config.iterations
    if config.scale_with_objects and n > 100:
        iterations = int(config.iterations * n / 100)

    # Incremental deltas need finite edge costs everywhere a move could
    # look; any missing edge (incomplete closure) falls back to the
    # full-re-sum reference kernel, which handles +inf exactly.
    off_diagonal = ~np.eye(n, dtype=bool)
    complete = bool(np.isfinite(cost[off_diagonal]).all())
    kernel = config.kernel if complete else "reference"
    shared = _RestartShared(matrix=matrix, cost=cost, kernel=kernel,
                            iterations=iterations, config=config)

    # One child stream per restart: restarts become order-independent
    # (parallelisable) while staying reproducible from the run RNG.
    # Each task is a picklable (shared, start, stream) triple, so the
    # restart loop runs unchanged on the serial, thread and process
    # backends — scheduling never touches the random streams.
    streams = spawn_rngs(generator, len(start_vertices))
    tasks = [(shared, start, stream)
             for start, stream in zip(start_vertices, streams)]
    outcomes = parallel_map(_run_restart, tasks,
                            max_workers=config.parallel_restarts,
                            backend=config.backend)

    best_cost = math.inf
    best_order: Optional[List[int]] = None
    accepted = 0
    proposed = 0
    for restart_cost, restart_path, restart_accepted, restart_proposed \
            in outcomes:
        accepted += restart_accepted
        proposed += restart_proposed
        # Strict < : the earliest restart keeps ties, exactly as the
        # serial loop would, so parallel order cannot change the result.
        if restart_cost < best_cost:
            best_cost = restart_cost
            best_order = restart_path

    if best_order is None or math.isinf(best_cost):
        raise InferenceError(
            "SAPS found no finite-cost Hamiltonian path; run Steps 2-3 "
            "first so the closure is complete"
        )
    ranking = Ranking([int(v) for v in best_order])
    polish_improved = False
    polish_delta = 0.0
    if config.polish:
        from .local_search import polish_ranking

        ranking, log_pref = polish_ranking(matrix, ranking)
        polish_delta = max(0.0, log_pref - (-best_cost))
        polish_improved = polish_delta > 1e-12
        best_cost = -log_pref
    return SAPSReport(
        ranking=ranking,
        log_preference=-best_cost,
        restarts=len(start_vertices),
        iterations_per_restart=iterations,
        accepted_moves=accepted,
        proposed_moves=proposed,
        polish_improved=polish_improved,
        polish_delta=polish_delta,
    )


def _restart_vertices(
    matrix: np.ndarray, config: SAPSConfig, n: int, generator
) -> List[int]:
    """Start vertices: all (faithful Algorithm 2) or a sampled cap."""
    if config.restarts is None or config.restarts >= n:
        return list(range(n))
    chosen = generator.choice(n, size=config.restarts, replace=False)
    return [int(v) for v in chosen]


def _initial_path(
    matrix: np.ndarray,
    cost: np.ndarray,
    start: int,
    config: SAPSConfig,
    generator,
) -> np.ndarray:
    """Algorithm 2 line 3: greedy / degree-difference / random init."""
    n = matrix.shape[0]
    if config.init == "random":
        path = generator.permutation(n)
        # Rotate the start vertex to the front to honour the restart.
        idx = int(np.where(path == start)[0][0])
        return np.roll(path, -idx)
    if config.init == "degree":
        score = matrix.sum(axis=1) - matrix.sum(axis=0)
        order = sorted(range(n), key=lambda v: -score[v])
        order.remove(start)
        return np.array([start] + order, dtype=np.int64)
    # "greedy": nearest neighbour by weight (lowest cost edge).
    visited = np.zeros(n, dtype=bool)
    visited[start] = True
    path = [start]
    current = start
    for _ in range(n - 1):
        row = np.where(visited, np.inf, cost[current])
        nxt = int(np.argmin(row))
        if math.isinf(row[nxt]):
            # Dead end on an incomplete graph: fill with any unvisited.
            nxt = int(np.flatnonzero(~visited)[0])
        visited[nxt] = True
        path.append(nxt)
        current = nxt
    return np.array(path, dtype=np.int64)


def _path_cost(cost: np.ndarray, path) -> float:
    """``d(P) = sum -log w`` along consecutive pairs (vectorised)."""
    return path_cost(cost, path)


# ---------------------------------------------------------------------------
# Restart task (module-level so every execution backend can dispatch it)
# ---------------------------------------------------------------------------

class _RestartShared:
    """Read-only per-run state shared by every restart task.

    One instance is referenced by all restart tasks: the thread and
    serial backends share it (and its lazily built incremental-kernel
    tables) in memory, while the process backend pickles only the raw
    matrices — the derived tables are rebuilt once per worker process
    (O(n^2), negligible next to the anneal) rather than shipped over
    the pipe.
    """

    __slots__ = ("matrix", "cost", "kernel", "iterations", "config",
                 "_tables")

    def __init__(self, matrix: np.ndarray, cost: np.ndarray, kernel: str,
                 iterations: int, config: SAPSConfig):
        self.matrix = matrix
        self.cost = cost
        self.kernel = kernel
        self.iterations = iterations
        self.config = config
        self._tables = None

    def tables(self):
        """(rows, diff, diff_matrix) for the incremental kernel.

        Built on first use; the single-attribute assignment keeps the
        lazy initialisation safe under concurrent restart threads.
        """
        tables = self._tables
        if tables is None:
            diff_matrix = reverse_diff_matrix(self.cost)
            tables = (cost_rows(self.cost), diff_matrix.tolist(),
                      diff_matrix)
            self._tables = tables
        return tables

    def __getstate__(self):
        return (self.matrix, self.cost, self.kernel, self.iterations,
                self.config)

    def __setstate__(self, state):
        (self.matrix, self.cost, self.kernel, self.iterations,
         self.config) = state
        self._tables = None


def _run_restart(task) -> Tuple[float, List[int], int, int]:
    """One anneal restart: ``(shared, start_vertex, stream)`` in,
    ``(best_cost, best_path, accepted, proposed)`` out.

    Module-level (not a closure) so the process backend can pickle it
    by reference; both kernels consume ``stream`` identically, so the
    outcome depends only on the task — never on which backend or worker
    ran it.
    """
    shared, start, stream = task
    config = shared.config
    if isinstance(start, np.ndarray):
        # Warm restart: the task carries the initial path itself.
        initial = start
    else:
        initial = _initial_path(shared.matrix, shared.cost, start, config,
                                stream)
    if shared.kernel == "reference":
        return _anneal_reference(shared.cost, initial, shared.iterations,
                                 config, stream)
    rows, diff, diff_matrix = shared.tables()
    return _anneal_incremental(shared.cost, rows, diff, diff_matrix,
                               initial, shared.iterations, config, stream)


# ---------------------------------------------------------------------------
# Annealing kernels
# ---------------------------------------------------------------------------

def _anneal_incremental(
    cost: np.ndarray,
    rows: List[List[float]],
    diff: List[List[float]],
    diff_matrix: np.ndarray,
    initial: np.ndarray,
    iterations: int,
    config: SAPSConfig,
    stream: np.random.Generator,
) -> Tuple[float, List[int], int, int]:
    """One restart with incremental move evaluation (the hot path).

    The path lives in a Python list (scalar list-of-lists lookups beat
    ``ndarray[a, b]`` severalfold in this loop); proposals cost
    O(1)-O(k) boundary-edge lookups via :mod:`repro.inference.delta`;
    accepted moves mutate the path in place; random draws come in
    pre-fetched blocks (bit-identical to the reference kernel's scalar
    draws).  Requires every off-diagonal cost to be finite — the caller
    guarantees it.
    """
    n = len(initial)
    path: List[int] = [int(v) for v in initial]
    current = path_cost(cost, path)
    best_cost = current
    best_path = list(path)
    accepted = 0
    since_resync = 0
    temperature = config.temperature
    cooling = config.cooling_rate
    resync_every = config.resync_every
    debug = config.debug_checks
    exp = math.exp

    def after_accept(delta: float) -> None:
        nonlocal current, best_cost, best_path, accepted, since_resync
        current += delta
        accepted += 1
        since_resync += 1
        if debug:
            resummed = path_cost(cost, path)
            assert abs(resummed - current) <= 1e-9 * max(1.0, abs(resummed)), (
                f"incremental cost drifted: running={current!r} "
                f"recomputed={resummed!r}"
            )
        if since_resync >= resync_every:
            current = path_cost(cost, path)
            since_resync = 0
        if current < best_cost:
            best_cost = current
            best_path = list(path)

    done = 0
    while done < iterations:
        todo = min(iterations - done, _RNG_BLOCK)
        done += todo
        # .tolist(): scalar reads from a Python list are ~3x cheaper
        # than ndarray item access, and this loop reads 10 per iteration.
        block = stream.random(_DRAWS_PER_ITERATION * todo).tolist()
        c = 0
        for _ in range(todo):
            # Rotate(first, middle, last)
            first = int(block[c] * (n - 1))
            last = first + 2 + int(block[c + 1] * (n - first - 1))
            middle = first + 1 + int(block[c + 2] * (last - first - 1))
            u = block[c + 3]
            c += 4
            delta = rotate_delta(rows, path, first, middle, last)
            if delta < 0.0 or u < exp(-delta / temperature):
                path[first:last] = path[middle:last] + path[first:middle]
                after_accept(delta)

            # Reverse(first, last)
            first = int(block[c] * (n - 1))
            last = first + 2 + int(block[c + 1] * (n - first - 1))
            u = block[c + 2]
            c += 3
            delta = reverse_delta(rows, diff, path, first, last,
                                  diff_matrix=diff_matrix)
            if delta < 0.0 or u < exp(-delta / temperature):
                path[first:last] = path[first:last][::-1]
                after_accept(delta)

            # RandomSwap(i, j)
            i = int(block[c] * n)
            j = int(block[c + 1] * n)
            u = block[c + 2]
            c += 3
            delta = swap_delta(rows, path, i, j)
            if delta < 0.0 or u < exp(-delta / temperature):
                path[i], path[j] = path[j], path[i]
                after_accept(delta)

            temperature *= cooling
            if temperature < 1e-300:
                temperature = 1e-300
    return best_cost, best_path, accepted, 3 * iterations


def _anneal_reference(
    cost: np.ndarray,
    initial: np.ndarray,
    iterations: int,
    config: SAPSConfig,
    stream: np.random.Generator,
) -> Tuple[float, List[int], int, int]:
    """One restart with full re-evaluation per proposal.

    Every proposal copies the path and re-sums all ``n - 1`` edges —
    the pre-optimisation cost model.  Kept as the benchmark baseline,
    the cross-check oracle, and the only kernel that handles ``+inf``
    edges (incomplete closures) exactly.
    """
    path = initial
    current = path_cost(cost, path)
    best_cost = current
    best_path = path.copy()
    accepted = 0
    proposed = 0
    temperature = config.temperature
    for _ in range(iterations):
        for move in (_rotate, _reverse, _random_swap):
            candidate = move(path, stream)
            cand_cost = path_cost(cost, candidate)
            proposed += 1
            # The acceptance draw is always consumed so both kernels
            # walk the random stream identically.
            u = stream.random()
            if cand_cost < current:
                accept = True
            elif math.isinf(cand_cost):
                accept = False
            else:
                accept = bool(
                    u < math.exp(-(cand_cost - current) / temperature)
                )
            if accept:
                path, current = candidate, cand_cost
                accepted += 1
                if current < best_cost:
                    best_cost = current
                    best_path = path.copy()
        temperature *= config.cooling_rate
        if temperature < 1e-300:
            temperature = 1e-300
    return best_cost, [int(v) for v in best_path], accepted, proposed


# ---------------------------------------------------------------------------
# Moves (pure forms: copy, then apply — used by the reference kernel)
# ---------------------------------------------------------------------------

def _rotate(path: np.ndarray, generator) -> np.ndarray:
    """Rotate(P, first, middle, last): std::rotate semantics on a slice.

    ``_two_indices`` guarantees ``last - first >= 2``, so both blocks
    are non-empty and no degenerate-span guard is needed.
    """
    n = len(path)
    first, last = _two_indices(n, generator)
    middle = first + 1 + int(generator.random() * (last - first - 1))
    out = path.copy()
    apply_rotate(out, first, middle, last)
    return out


def _reverse(path: np.ndarray, generator) -> np.ndarray:
    """Reverse(P, first, last): reverse the slice between two indices."""
    n = len(path)
    first, last = _two_indices(n, generator)
    out = path.copy()
    out[first:last] = path[first:last][::-1]
    return out


def _random_swap(path: np.ndarray, generator) -> np.ndarray:
    """RandomSwap(P, first, last): swap two random positions."""
    n = len(path)
    i = int(generator.random() * n)
    j = int(generator.random() * n)
    out = path.copy()
    apply_swap(out, i, j)
    return out


def _two_indices(n: int, generator) -> Tuple[int, int]:
    """Two slice bounds spanning at least two elements.

    Contract (relied on by every move kernel, checked by the property
    suite): for any ``n >= 2``, returns ``(first, last)`` with
    ``0 <= first < last <= n`` and ``last - first >= 2`` — ``first``
    uniform on ``[0, n-2]``, ``last`` uniform on ``[first+2, n]``.
    Exactly two floats are consumed from ``generator`` so the
    incremental kernel can pre-fetch draws in fixed-size blocks.
    """
    first = int(generator.random() * (n - 1))
    last = first + 2 + int(generator.random() * (n - first - 1))
    return first, last
