"""Step 4 heuristic: simulated-annealing path search (Sec. V-D2).

Faithful implementation of Algorithms 2 and 3.  The objective is the
negative-log form: find the Hamiltonian path ``P`` minimising
``d(P) = sum_{(u,v) in P} -log w_uv`` (equivalently maximising
``Pr[P] = prod w_uv``).  Each iteration proposes three permutations of the
current path — Rotate, Reverse, RandomSwap — and accepts each through the
Boltzmann rule of Algorithm 3 (better always; worse with probability
``exp(-(d_next - d_i) / T)``), then cools ``T <- T * c``.

Algorithm 2 restarts the anneal from every vertex with a greedy initial
path ("selecting the nearest neighbors, or by ranking the nodes based on
the difference of their out-/in- edge weights"); the config can cap the
restart count, since on large complete closures a handful of restarts
already reaches the plateau the paper reports.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple, Union

import numpy as np

from ..config import SAPSConfig
from ..exceptions import InferenceError
from ..graphs.digraph import WeightedDigraph
from ..rng import SeedLike, ensure_rng
from ..types import Ranking
from .taps import _as_matrix


@dataclass(frozen=True)
class SAPSReport:
    """Diagnostics of one SAPS run (exposed for the benchmarks)."""

    ranking: Ranking
    log_preference: float
    restarts: int
    iterations_per_restart: int
    accepted_moves: int
    proposed_moves: int


def saps_search(
    weights: Union[np.ndarray, WeightedDigraph],
    config: Optional[SAPSConfig] = None,
    rng: SeedLike = None,
) -> Tuple[Ranking, float]:
    """Find a high-preference HP; returns ``(ranking, log_probability)``.

    The input is expected to be the complete Step-3 closure (every
    ordered pair has a positive weight); on incomplete graphs SAPS still
    runs but treats missing edges as cost ``+inf`` and raises
    :class:`InferenceError` if no finite-cost path is ever found.
    """
    report = saps_search_report(weights, config, rng)
    return report.ranking, report.log_preference


def saps_search_report(
    weights: Union[np.ndarray, WeightedDigraph],
    config: Optional[SAPSConfig] = None,
    rng: SeedLike = None,
) -> SAPSReport:
    """As :func:`saps_search`, returning full diagnostics."""
    config = config if config is not None else SAPSConfig()
    matrix = _as_matrix(weights)
    n = matrix.shape[0]
    if n == 1:
        return SAPSReport(Ranking([0]), 0.0, 0, config.iterations, 0, 0)
    generator = ensure_rng(rng)

    # Cost matrix: d(P) sums cost[u, v] = -log w_uv; +inf for no edge.
    with np.errstate(divide="ignore"):
        cost = np.where(matrix > 0.0, -np.log(np.maximum(matrix, 1e-300)),
                        np.inf)
    np.fill_diagonal(cost, np.inf)

    start_vertices = _restart_vertices(matrix, config, n, generator)
    iterations = config.iterations
    if config.scale_with_objects and n > 100:
        iterations = int(config.iterations * n / 100)
    best_path: Optional[np.ndarray] = None
    best_cost = math.inf
    accepted = 0
    proposed = 0

    for start in start_vertices:
        path = _initial_path(matrix, cost, start, config, generator)
        current_cost = _path_cost(cost, path)
        if current_cost < best_cost:
            best_cost, best_path = current_cost, path.copy()

        temperature = config.temperature
        for _ in range(iterations):
            for move in (_rotate, _reverse, _random_swap):
                candidate = move(path, generator)
                cand_cost = _path_cost(cost, candidate)
                proposed += 1
                if _accept(current_cost, cand_cost, temperature, generator):
                    path, current_cost = candidate, cand_cost
                    accepted += 1
                    if current_cost < best_cost:
                        best_cost = current_cost
                        best_path = path.copy()
            temperature *= config.cooling_rate
            if temperature < 1e-300:
                temperature = 1e-300

    if best_path is None or math.isinf(best_cost):
        raise InferenceError(
            "SAPS found no finite-cost Hamiltonian path; run Steps 2-3 "
            "first so the closure is complete"
        )
    ranking = Ranking(best_path.tolist())
    if config.polish:
        from .local_search import polish_ranking

        ranking, log_pref = polish_ranking(matrix, ranking)
        best_cost = -log_pref
    return SAPSReport(
        ranking=ranking,
        log_preference=-best_cost,
        restarts=len(start_vertices),
        iterations_per_restart=iterations,
        accepted_moves=accepted,
        proposed_moves=proposed,
    )


def _restart_vertices(
    matrix: np.ndarray, config: SAPSConfig, n: int, generator
) -> List[int]:
    """Start vertices: all (faithful Algorithm 2) or a sampled cap."""
    if config.restarts is None or config.restarts >= n:
        return list(range(n))
    chosen = generator.choice(n, size=config.restarts, replace=False)
    return [int(v) for v in chosen]


def _initial_path(
    matrix: np.ndarray,
    cost: np.ndarray,
    start: int,
    config: SAPSConfig,
    generator,
) -> np.ndarray:
    """Algorithm 2 line 3: greedy / degree-difference / random init."""
    n = matrix.shape[0]
    if config.init == "random":
        path = generator.permutation(n)
        # Rotate the start vertex to the front to honour the restart.
        idx = int(np.where(path == start)[0][0])
        return np.roll(path, -idx)
    if config.init == "degree":
        score = matrix.sum(axis=1) - matrix.sum(axis=0)
        order = sorted(range(n), key=lambda v: -score[v])
        order.remove(start)
        return np.array([start] + order, dtype=np.int64)
    # "greedy": nearest neighbour by weight (lowest cost edge).
    visited = np.zeros(n, dtype=bool)
    visited[start] = True
    path = [start]
    current = start
    for _ in range(n - 1):
        row = np.where(visited, np.inf, cost[current])
        nxt = int(np.argmin(row))
        if math.isinf(row[nxt]):
            # Dead end on an incomplete graph: fill with any unvisited.
            nxt = int(np.flatnonzero(~visited)[0])
        visited[nxt] = True
        path.append(nxt)
        current = nxt
    return np.array(path, dtype=np.int64)


def _path_cost(cost: np.ndarray, path: np.ndarray) -> float:
    """``d(P) = sum -log w`` along consecutive pairs (vectorised)."""
    return float(cost[path[:-1], path[1:]].sum())


def _accept(current: float, candidate: float, temperature: float,
            generator) -> bool:
    """Algorithm 3's Boltzmann acceptance rule."""
    if candidate < current:
        return True
    if math.isinf(candidate):
        return False
    delta = candidate - current
    return bool(generator.random() < math.exp(-delta / temperature))


def _rotate(path: np.ndarray, generator) -> np.ndarray:
    """Rotate(P, first, middle, last): std::rotate semantics on a slice."""
    n = len(path)
    first, last = _two_indices(n, generator)
    if last - first < 2:
        return path.copy()
    middle = int(generator.integers(first + 1, last))
    out = path.copy()
    out[first:last] = np.concatenate((path[middle:last], path[first:middle]))
    return out


def _reverse(path: np.ndarray, generator) -> np.ndarray:
    """Reverse(P, first, last): reverse the slice between two indices."""
    n = len(path)
    first, last = _two_indices(n, generator)
    out = path.copy()
    out[first:last] = path[first:last][::-1]
    return out


def _random_swap(path: np.ndarray, generator) -> np.ndarray:
    """RandomSwap(P, first, last): swap two random positions."""
    n = len(path)
    i = int(generator.integers(n))
    j = int(generator.integers(n))
    out = path.copy()
    out[i], out[j] = out[j], out[i]
    return out


def _two_indices(n: int, generator) -> Tuple[int, int]:
    """Two sorted indices ``0 <= first < last <= n`` spanning >= 2 items."""
    first = int(generator.integers(0, n - 1))
    last = int(generator.integers(first + 2, n + 1)) if first + 2 <= n else n
    return first, last
