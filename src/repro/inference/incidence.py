"""Shared sparse-incidence assembly over the comparison graph.

Every large-``n`` consumer of a vote set — the HodgeRank / graph
least-squares engines (:mod:`repro.inference.engines`) and the sparse
Rank Centrality baseline (:mod:`repro.baselines.rank_centrality`) —
needs the same three derived structures:

* the **edge table**: one row per distinct canonical pair ``(lo, hi)``
  with its vote count and the number of votes preferring ``lo``
  (already half-built as :class:`~repro.types.VoteArrays`' pair table);
* the **gradient incidence matrix** ``B`` of the comparison graph
  (``n_edges x n_objects``, ``+1`` at ``lo`` and ``-1`` at ``hi``), so a
  score vector ``s`` induces the edge flow ``B s`` with
  ``(B s)_e = s_lo - s_hi``;
* the **connected components** of the (undirected) comparison graph,
  which determine the null space of any least-squares system on ``B``.

``build_incidence`` assembles all of it **once per arrays object** and
memoizes the result on the :class:`~repro.types.VoteArrays` instance,
mirroring :meth:`repro.types.VoteSet.arrays` caching: the arrays are
immutable by contract, so repeated calls — e.g. the ``lsq`` engine after
``rank_centrality`` on the same votes — are free.  Nothing here ever
materialises an ``n x n`` dense matrix.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import sparse
from scipy.sparse.csgraph import connected_components

from ..exceptions import InferenceError
from ..types import VoteArrays

#: Attribute name of the per-arrays memo slot (see :func:`build_incidence`).
_MEMO_ATTR = "_incidence_memo"


@dataclass(frozen=True)
class SparseIncidence:
    """The shared sparse view of a vote set's comparison graph.

    Attributes
    ----------
    n_objects:
        Size of the object universe (isolated objects included).
    edge_lo / edge_hi:
        The distinct canonical pairs, lexicographically sorted —
        aliases of the arrays' pair table.
    counts:
        Votes observed per edge (``float64``, always ``>= 1``).
    value_sum:
        Per edge, the number of votes preferring the canonical-low
        object (sum of the paper's ``x_ij^k``); ``counts - value_sum``
        votes preferred the high object.
    incidence:
        CSR gradient matrix ``B`` (``n_edges x n_objects``): row ``e``
        holds ``+1`` at ``edge_lo[e]`` and ``-1`` at ``edge_hi[e]``.
    labels:
        Connected-component label per object id (objects that never
        appear in a vote form their own singleton components).
    n_components:
        Number of connected components; ``1`` means the least-squares
        system has the single global-shift null vector and no anchoring
        beyond mean-centring is needed.
    """

    n_objects: int
    edge_lo: np.ndarray
    edge_hi: np.ndarray
    counts: np.ndarray
    value_sum: np.ndarray
    incidence: sparse.csr_matrix
    labels: np.ndarray
    n_components: int

    @property
    def n_edges(self) -> int:
        return int(self.edge_lo.shape[0])

    def mean_value(self) -> np.ndarray:
        """Per-edge unweighted vote mean (fraction preferring ``lo``)."""
        return self.value_sum / self.counts


def build_incidence(arrays: VoteArrays) -> SparseIncidence:
    """The sparse incidence view of a vote set, built once and memoized.

    The result is cached on the arrays object itself (sound because
    :class:`~repro.types.VoteArrays` is immutable by contract), so every
    consumer sharing the arrays — engines, baselines, tests — shares one
    assembly.

    Raises
    ------
    InferenceError
        On an empty vote set (no edges to assemble).
    """
    memo = arrays.__dict__.get(_MEMO_ATTR)
    if memo is not None:
        return memo
    if arrays.n_votes == 0:
        raise InferenceError("cannot build incidence from an empty vote set")
    n = arrays.n_objects
    n_edges = arrays.n_pairs
    edge_lo = arrays.pair_lo
    edge_hi = arrays.pair_hi
    counts = np.bincount(arrays.pair_idx, minlength=n_edges).astype(np.float64)
    value_sum = np.bincount(
        arrays.pair_idx, weights=arrays.value, minlength=n_edges
    )

    rows = np.repeat(np.arange(n_edges, dtype=np.int64), 2)
    cols = np.empty(2 * n_edges, dtype=np.int64)
    cols[0::2] = edge_lo
    cols[1::2] = edge_hi
    data = np.empty(2 * n_edges, dtype=np.float64)
    data[0::2] = 1.0
    data[1::2] = -1.0
    incidence = sparse.csr_matrix(
        (data, (rows, cols)), shape=(n_edges, n)
    )

    ones = np.ones(n_edges, dtype=np.int8)
    adjacency = sparse.coo_matrix(
        (ones, (edge_lo, edge_hi)), shape=(n, n)
    )
    n_components, labels = connected_components(
        adjacency, directed=False, return_labels=True
    )

    built = SparseIncidence(
        n_objects=n,
        edge_lo=edge_lo,
        edge_hi=edge_hi,
        counts=counts,
        value_sum=value_sum,
        incidence=incidence,
        labels=labels,
        n_components=int(n_components),
    )
    object.__setattr__(arrays, _MEMO_ATTR, built)
    return built


def quality_edge_weights(
    arrays: VoteArrays, quality_vector: np.ndarray
) -> np.ndarray:
    """Per-edge quality mass: ``w_e = sum over votes on e of q_worker``.

    ``quality_vector`` must be aligned with the arrays' worker table
    (the Step-1 :attr:`~repro.truth.crh.TruthDiscoveryResult.quality_vector`).
    This is the *weighted* analogue of ``counts`` — it cannot be part of
    the memoized :class:`SparseIncidence` because the qualities change
    per truth-discovery run, but it is a single ``bincount`` pass.

    Raises
    ------
    InferenceError
        If the quality vector does not match the worker table.
    """
    quality = np.asarray(quality_vector, dtype=np.float64)
    if quality.shape != (arrays.n_workers,):
        raise InferenceError(
            f"quality vector of shape {quality.shape} does not match the "
            f"{arrays.n_workers}-worker vote table"
        )
    return np.bincount(
        arrays.pair_idx,
        weights=quality[arrays.worker_idx],
        minlength=arrays.n_pairs,
    )
