"""Step 4 exact search: TAPS and branch-and-bound (Sec. V-D1).

**TAPS** adapts Fagin's threshold algorithm (TA) to Hamiltonian-path
preference maximisation.  It builds ``n - 1`` lists — list ``i`` holds
``(path_id, weight of the i-th edge of that path)`` for *every* HP, sorted
by weight descending — then performs sorted access in parallel across the
lists, random-accessing each newly seen path to compute its full
preference probability, and halts as soon as the best probability seen
reaches the threshold ``theta = prod_i w_i`` of the last sorted-access
weights.  Faithful to the paper, and therefore factorial in space — gated
by :class:`~repro.config.TAPSConfig.max_objects`.

**Branch-and-bound** is this library's scalable exact alternative: a DFS
over path prefixes in log space with an admissible upper bound from each
vertex's best outgoing weight.  It returns the same argmax as TAPS (ties
may resolve differently) and handles ``n`` in the tens on sharp instances.
"""

from __future__ import annotations

import itertools
import math
from typing import List, Optional, Sequence, Set, Tuple, Union

import numpy as np

from ..config import TAPSConfig
from ..exceptions import InferenceError
from ..graphs.digraph import WeightedDigraph
from ..types import Ranking


def _as_matrix(weights: Union[np.ndarray, WeightedDigraph]) -> np.ndarray:
    """Accept either a weight matrix or a digraph for the searches."""
    if isinstance(weights, WeightedDigraph):
        return weights.weight_matrix()
    mat = np.asarray(weights, dtype=np.float64)
    if mat.ndim != 2 or mat.shape[0] != mat.shape[1]:
        raise InferenceError(f"weight matrix must be square, got {mat.shape}")
    return mat


def taps_search(
    weights: Union[np.ndarray, WeightedDigraph],
    config: Optional[TAPSConfig] = None,
) -> Tuple[List[Ranking], float]:
    """Threshold-based path search: all top-1 HPs and their probability.

    Returns
    -------
    (paths, probability):
        Every Hamiltonian path attaining the maximum preference
        probability (ties included, as in the paper's Step 1), and that
        probability.

    Raises
    ------
    InferenceError
        If ``n`` exceeds ``config.max_objects`` or no HP has positive
        probability (incomplete graph with no viable path).
    """
    config = config if config is not None else TAPSConfig()
    matrix = _as_matrix(weights)
    n = matrix.shape[0]
    if n > config.max_objects:
        raise InferenceError(
            f"TAPS is factorial; n={n} exceeds max_objects="
            f"{config.max_objects}.  Use branch_and_bound_search or SAPS."
        )
    if n == 1:
        return [Ranking([0])], 1.0

    paths = list(itertools.permutations(range(n)))
    n_lists = n - 1
    # lists[i] = [(weight of i-th edge, path_id)], sorted descending.
    lists: List[List[Tuple[float, int]]] = []
    for i in range(n_lists):
        entries = [
            (float(matrix[path[i], path[i + 1]]), path_id)
            for path_id, path in enumerate(paths)
        ]
        entries.sort(key=lambda e: -e[0])
        lists.append(entries)

    def preference(path: Sequence[int]) -> float:
        prob = 1.0
        for u, v in zip(path, path[1:]):
            prob *= matrix[u, v]
        return float(prob)

    best: float = -1.0
    output: List[int] = []
    seen: Set[int] = set()
    for depth in range(len(paths)):
        # Sorted access in parallel to each list (Step 1).
        last_weights = []
        for i in range(n_lists):
            weight, path_id = lists[i][depth]
            last_weights.append(weight)
            if path_id not in seen:
                seen.add(path_id)
                # Random access: full preference probability of the path.
                prob = preference(paths[path_id])
                if prob > best:
                    best, output = prob, [path_id]
                elif prob == best:
                    output.append(path_id)
        # Threshold check (Step 2).
        threshold = math.prod(last_weights)
        if best >= threshold:
            break

    if best <= 0.0:
        raise InferenceError("no Hamiltonian path with positive probability")
    return [Ranking(paths[pid]) for pid in sorted(set(output))], best


def branch_and_bound_search(
    weights: Union[np.ndarray, WeightedDigraph],
    *,
    max_objects: int = 30,
) -> Tuple[Ranking, float]:
    """Exact max-probability HP by DFS with an admissible bound.

    Works in log space.  The bound for a prefix ending at ``v`` with
    remaining set ``R`` is the prefix score plus ``v``'s best outgoing
    log weight plus the ``|R| - 1`` largest best-outgoing log weights of
    the vertices in ``R`` — an upper bound because a completion uses one
    outgoing edge from ``v`` and from all but the final vertex of ``R``.

    Returns
    -------
    (ranking, log_probability)

    Raises
    ------
    InferenceError
        If ``n`` exceeds ``max_objects`` or no HP exists.
    """
    matrix = _as_matrix(weights)
    n = matrix.shape[0]
    if n > max_objects:
        raise InferenceError(
            f"branch-and-bound on n={n} exceeds max_objects={max_objects}"
        )
    if n == 1:
        return Ranking([0]), 0.0

    with np.errstate(divide="ignore"):
        log_w = np.where(matrix > 0.0, np.log(np.maximum(matrix, 1e-300)),
                         -np.inf)
    np.fill_diagonal(log_w, -np.inf)
    best_out = log_w.max(axis=1)  # best outgoing log weight per vertex

    best_score = -math.inf
    best_path: Optional[List[int]] = None

    # Order start vertices by optimism so good incumbents appear early.
    starts = sorted(range(n), key=lambda v: -best_out[v])

    def dfs(vertex: int, remaining: Set[int], score: float,
            path: List[int]) -> None:
        nonlocal best_score, best_path
        if not remaining:
            if score > best_score:
                best_score = score
                best_path = list(path)
            return
        # Admissible bound for this prefix.
        outs = sorted((best_out[r] for r in remaining), reverse=True)
        bound = score + best_out[vertex] + sum(outs[: len(outs) - 1])
        if bound <= best_score:
            return
        # Explore heaviest edges first for tighter early incumbents.
        children = sorted(remaining, key=lambda u: -log_w[vertex, u])
        for nxt in children:
            edge = log_w[vertex, nxt]
            if edge == -math.inf:
                continue
            remaining.remove(nxt)
            path.append(nxt)
            dfs(nxt, remaining, score + edge, path)
            path.pop()
            remaining.add(nxt)

    for start in starts:
        remaining = set(range(n)) - {start}
        dfs(start, remaining, 0.0, [start])

    if best_path is None:
        raise InferenceError("no Hamiltonian path exists")
    return Ranking(best_path), best_score
