"""Result inference (Sec. V): Steps 1-4 over collected votes.

* Step 1 lives in :mod:`repro.truth` (truth discovery);
* :mod:`~repro.inference.smoothing` — Step 2: 1-edge smoothing;
* :mod:`~repro.inference.propagation` — Step 3: indirect preferences by
  transitivity, alpha-blend and pair normalisation;
* :mod:`~repro.inference.taps` — Step 4 exact: threshold-based path
  search (plus a branch-and-bound exact search for moderate ``n``);
* :mod:`~repro.inference.saps` — Step 4 heuristic: simulated-annealing
  path search (Algorithms 2-3);
* :mod:`~repro.inference.incidence` — shared sparse incidence assembly
  over the comparison graph (memoized per
  :class:`~repro.types.VoteArrays`);
* :mod:`~repro.inference.engines` — sparse large-``n`` Step 1-3
  engines (HodgeRank / graph least squares) behind
  ``PipelineConfig.engine``;
* :mod:`~repro.inference.pipeline` — the end-to-end inference pipeline.
"""

from .engines import (
    SPARSE_ENGINES,
    EngineReport,
    graph_lsq_rank,
    hodge_rank,
    solve_sparse_engine,
)
from .incidence import SparseIncidence, build_incidence, quality_edge_weights
from .smoothing import (
    MatrixSmoothingResult,
    SmoothingResult,
    direct_preference_matrix,
    smooth_matrix,
    smooth_preferences,
)
from .propagation import propagate_matrix, propagate_preferences
from .taps import taps_search, branch_and_bound_search
from .saps import saps_search
from .local_search import polish_ranking
from .pipeline import RankingPipeline, infer_ranking

__all__ = [
    "SPARSE_ENGINES",
    "EngineReport",
    "SparseIncidence",
    "build_incidence",
    "quality_edge_weights",
    "solve_sparse_engine",
    "hodge_rank",
    "graph_lsq_rank",
    "MatrixSmoothingResult",
    "SmoothingResult",
    "direct_preference_matrix",
    "smooth_matrix",
    "smooth_preferences",
    "propagate_matrix",
    "propagate_preferences",
    "taps_search",
    "branch_and_bound_search",
    "saps_search",
    "polish_ranking",
    "RankingPipeline",
    "infer_ranking",
]
