"""The end-to-end result-inference pipeline (Sec. V, Steps 1-4).

:class:`RankingPipeline` wires truth discovery, smoothing, propagation and
the path search together, timing each step (the Fig. 4 breakdown) and
collecting diagnostics (iteration counts, 1-edge counts) into the returned
:class:`~repro.types.InferenceResult`.

For the common case, :func:`infer_ranking` is a one-call convenience.
"""

from __future__ import annotations

import math
import time
from typing import Optional

from ..config import PipelineConfig
from ..diagnostics import get_logger
from ..exceptions import InferenceError
from ..graphs.preference_graph import PreferenceGraph
from ..rng import SeedLike, ensure_rng
from ..types import InferenceResult, VoteSet
from ..truth.crh import discover_truth
from ..truth.dawid_skene import discover_truth_em
from .propagation import propagate_matrix
from .saps import saps_search_report
from .smoothing import direct_preference_matrix, smooth_matrix, smooth_preferences
from .taps import branch_and_bound_search, taps_search

_log = get_logger("inference.pipeline")


class RankingPipeline:
    """Configured Steps 1-4; reusable across vote sets."""

    def __init__(self, config: Optional[PipelineConfig] = None):
        # A dataclass default here would be evaluated once at import
        # time and silently shared by every pipeline; resolve per call.
        self._config = config if config is not None else PipelineConfig()

    @property
    def config(self) -> PipelineConfig:
        return self._config

    def run(self, votes: VoteSet, rng: SeedLike = None) -> InferenceResult:
        """Infer a full ranking from one round of collected votes.

        Raises
        ------
        InferenceError
            On empty votes, or when the requested exact search is
            infeasible for the instance size.
        """
        if votes.n_objects < 2:
            raise InferenceError("need at least 2 objects to rank")
        if len(votes) == 0:
            raise InferenceError("cannot infer a ranking from zero votes")
        generator = ensure_rng(rng)
        config = self._config

        # Sparse engines replace Steps 2-4 with one least-squares solve
        # over the comparison graph (see repro.inference.engines); the
        # dense path below is the paper's crh_saps pipeline.
        if config.engine != "crh_saps":
            from .engines import solve_sparse_engine

            report = solve_sparse_engine(votes, config, generator)
            return InferenceResult(
                ranking=report.ranking,
                log_preference=report.log_preference,
                worker_quality=report.worker_quality,
                direct_preferences=report.direct_preferences,
                step_seconds=report.step_seconds,
                metadata=report.metadata,
            )
        step_seconds = {}

        columnar = config.vote_path == "columnar"

        # Step 1: truth discovery of direct preferences.
        start = time.perf_counter()
        discover = (discover_truth_em if config.truth_engine == "em"
                    else discover_truth)
        truth = discover(votes, config.truth)
        if columnar:
            arrays = votes.arrays()
            direct = direct_preference_matrix(arrays, truth.preference_vector)
        else:
            direct_graph = PreferenceGraph.from_direct_preferences(
                votes.n_objects, truth.preferences
            )
        step_seconds["truth_discovery"] = time.perf_counter() - start

        # Step 2: smoothing of unanimous edges.
        start = time.perf_counter()
        if columnar:
            smoothing = smooth_matrix(
                direct, truth.preference_vector, arrays,
                truth.quality_vector, config.smoothing, generator,
            )
            smoothed = smoothing.matrix
        else:
            smoothing = smooth_preferences(
                direct_graph, votes, truth.worker_quality, config.smoothing,
                generator,
            )
            smoothed = smoothing.graph
        step_seconds["smoothing"] = time.perf_counter() - start

        # Step 3: indirect preferences and normalised complete closure.
        start = time.perf_counter()
        closure = propagate_matrix(smoothed, config.propagation)
        step_seconds["propagation"] = time.perf_counter() - start

        # Step 4: best-ranking search.
        start = time.perf_counter()
        if config.search == "taps":
            rankings, probability = taps_search(closure, config.taps)
            ranking = rankings[0]
            log_pref = math.log(probability) if probability > 0 else float("-inf")
            search_meta = {"tie_count": len(rankings)}
        elif config.search == "branch_and_bound":
            ranking, log_pref = branch_and_bound_search(closure)
            search_meta = {}
        else:
            report = saps_search_report(closure, config.saps, generator)
            ranking, log_pref = report.ranking, report.log_preference
            search_meta = {
                "saps_restarts": report.restarts,
                "saps_accepted_moves": report.accepted_moves,
                "saps_proposed_moves": report.proposed_moves,
                "saps_polish_improved": report.polish_improved,
            }
        step_seconds["search"] = time.perf_counter() - start

        _log.debug(
            "pipeline done: n=%d votes=%d search=%s timings=%s",
            votes.n_objects, len(votes), config.search,
            {k: round(v, 4) for k, v in step_seconds.items()},
        )
        metadata = {
            "truth_iterations": truth.iterations,
            "truth_converged": truth.trace.converged,
            "n_one_edges": smoothing.n_one_edges,
            "search_algorithm": config.search,
            **search_meta,
        }
        return InferenceResult(
            ranking=ranking,
            log_preference=log_pref,
            worker_quality=truth.worker_quality,
            direct_preferences=truth.preferences,
            step_seconds=step_seconds,
            metadata=metadata,
        )


def infer_ranking(
    votes: VoteSet,
    config: Optional[PipelineConfig] = None,
    rng: SeedLike = None,
) -> InferenceResult:
    """One-call inference with default (or supplied) configuration."""
    return RankingPipeline(config or PipelineConfig()).run(votes, rng)
