"""Step 3: indirect preferences by transitivity (Sec. V-C).

From the smoothed graph, the indirect preference of every ordered pair is
the aggregated product-weight over paths between them
(:mod:`repro.graphs.closure`); the final preference blends direct and
indirect evidence,

    ``w_check_ij = alpha * w_ij + (1 - alpha) * w*_ij``,

and is then pair-normalised to satisfy the probability constraint
``w_ij + w_ji = 1``.  The output graph is **complete** (every ordered pair
carries a strictly positive weight), which is what makes Theorem 5.1's
"an HP always exists" guarantee hold downstream.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..config import PropagationConfig
from ..exceptions import InferenceError
from ..graphs.closure import propagate_exact_paths, propagate_walks
from ..graphs.preference_graph import PreferenceGraph


def propagate_matrix(
    smoothed: PreferenceGraph,
    config: Optional[PropagationConfig] = None,
) -> np.ndarray:
    """Step 3 as a dense matrix: the normalised complete closure weights.

    This is the high-performance entry point the pipeline uses for large
    ``n`` (the Step-4 searches consume the matrix directly); see
    :func:`propagate_preferences` for the graph-object wrapper.

    Returns
    -------
    numpy.ndarray
        ``(n, n)`` matrix with zero diagonal, ``W + W.T = 1`` off the
        diagonal, entries clipped inside ``(0, 1)``.
    """
    config = config if config is not None else PropagationConfig()
    n = smoothed.n_vertices
    if n < 2:
        raise InferenceError("propagation needs at least 2 objects")

    direct = smoothed.weight_matrix()
    max_hops = config.max_hops
    if max_hops is None:
        max_hops = _adaptive_hops(n, smoothed.n_edges)
    method = config.method
    if method == "auto":
        method = "exact" if n <= config.exact_threshold else "walks"
    if method == "exact":
        indirect = propagate_exact_paths(smoothed, max_length=max_hops,
                                         max_vertices=max(n, 1))
    else:
        indirect = propagate_walks(direct, max_hops, ensure_coverage=True)

    combined = config.alpha * direct + (1.0 - config.alpha) * indirect
    return _normalise_matrix(combined)


def propagate_preferences(
    smoothed: PreferenceGraph,
    config: Optional[PropagationConfig] = None,
) -> PreferenceGraph:
    """Compute the complete, normalised closure ``G_P^*`` of Step 3.

    Parameters
    ----------
    smoothed:
        The Step-2 output (strongly connected whenever the task graph was
        connected).
    config:
        Blend factor ``alpha``, hop bound and kernel selection.

    Returns
    -------
    PreferenceGraph
        A complete graph with ``w_ij + w_ji = 1`` and
        ``w in [min_clip, 1 - min_clip]`` for every ordered pair.
    """
    return _matrix_to_graph(propagate_matrix(smoothed, config))


def _adaptive_hops(n: int, n_directed_edges: int) -> int:
    """Density-adaptive walk depth (PropagationConfig.max_hops = None).

    ``mean_degree = n_directed_edges / n`` equals the task-graph degree
    ``2l/n`` on a smoothed graph (each compared pair carries both
    directions).  Sparse plans need proportionally deeper walks before
    the mid-range transitivity signal saturates; depth beyond ~20 hops
    has shown no further accuracy gain (DESIGN.md §5).
    """
    mean_degree = max(n_directed_edges / max(n, 1), 1.0)
    depth = int(np.ceil(1.5 * n / mean_degree))
    return max(2, min(max(depth, 8), 20, n - 1))


#: Weights are clipped into [_MIN_CLIP, 1 - _MIN_CLIP] after
#: normalisation so every ordered pair keeps a representable edge
#: (a weight of exactly 0 would mean "no edge" per the graph model).
_MIN_CLIP = 1e-9


def _normalise_matrix(combined: np.ndarray) -> np.ndarray:
    """Pair-normalise a combined weight matrix.

    For each unordered pair ``{i, j}``: ``p = c_ij / (c_ij + c_ji)``
    (0.5 when both are zero — no evidence either way), clipped away from
    {0, 1} so both directed edges exist.
    """
    n = combined.shape[0]
    total = combined + combined.T
    with np.errstate(invalid="ignore", divide="ignore"):
        p = np.where(total > 0.0, combined / np.maximum(total, 1e-300), 0.5)
    p = np.clip(p, _MIN_CLIP, 1.0 - _MIN_CLIP)
    np.fill_diagonal(p, 0.0)
    return p


def _matrix_to_graph(p: np.ndarray) -> PreferenceGraph:
    """Materialise a normalised matrix as a complete PreferenceGraph."""
    n = p.shape[0]
    graph = PreferenceGraph(n)
    for i in range(n):
        for j in range(n):
            if i != j:
                graph.add_edge(i, j, float(p[i, j]))
    return graph
