"""Step 3: indirect preferences by transitivity (Sec. V-C).

From the smoothed graph, the indirect preference of every ordered pair is
the aggregated product-weight over paths between them
(:mod:`repro.graphs.closure`); the final preference blends direct and
indirect evidence,

    ``w_check_ij = alpha * w_ij + (1 - alpha) * w*_ij``,

and is then pair-normalised to satisfy the probability constraint
``w_ij + w_ji = 1``.  The output graph is **complete** (every ordered pair
carries a strictly positive weight), which is what makes Theorem 5.1's
"an HP always exists" guarantee hold downstream.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from ..config import PropagationConfig
from ..exceptions import InferenceError
from ..graphs.closure import propagate_exact_paths, propagate_walks
from ..graphs.digraph import WeightedDigraph
from ..graphs.preference_graph import PreferenceGraph


def propagate_matrix(
    smoothed: Union[PreferenceGraph, np.ndarray],
    config: Optional[PropagationConfig] = None,
) -> np.ndarray:
    """Step 3 as a dense matrix: the normalised complete closure weights.

    This is the high-performance entry point the pipeline uses (the
    Step-4 searches consume the matrix directly); see
    :func:`propagate_preferences` for the graph-object wrapper.

    Parameters
    ----------
    smoothed:
        The Step-2 output, either as a :class:`PreferenceGraph` or as
        its dense weight matrix (the columnar fast path's
        representation; zero entries mean "no edge").  Both forms
        produce bit-identical results: the walk kernel operates on the
        dense matrix either way, and the exact kernel's accumulation
        order is weight-determined (see
        :func:`~repro.graphs.closure.propagate_exact_paths`).

    Returns
    -------
    numpy.ndarray
        ``(n, n)`` matrix with zero diagonal, ``W + W.T = 1`` off the
        diagonal, entries clipped inside ``(0, 1)``.
    """
    config = config if config is not None else PropagationConfig()
    if isinstance(smoothed, np.ndarray):
        direct = np.asarray(smoothed, dtype=np.float64)
        if direct.ndim != 2 or direct.shape[0] != direct.shape[1]:
            raise InferenceError(
                f"smoothed matrix must be square, got {direct.shape}"
            )
        n = direct.shape[0]
        n_edges = int(np.count_nonzero(direct))
        graph: Optional[WeightedDigraph] = None
    else:
        direct = smoothed.weight_matrix()
        n = smoothed.n_vertices
        n_edges = smoothed.n_edges
        graph = smoothed
    if n < 2:
        raise InferenceError("propagation needs at least 2 objects")

    max_hops = config.max_hops
    if max_hops is None:
        max_hops = _adaptive_hops(n, n_edges)
    method = config.method
    if method == "auto":
        method = "exact" if n <= config.exact_threshold else "walks"
    if method == "exact":
        if graph is None:
            graph = WeightedDigraph.from_weight_matrix(direct)
        indirect = propagate_exact_paths(graph, max_length=max_hops,
                                         max_vertices=max(n, 1))
    else:
        indirect = propagate_walks(direct, max_hops, ensure_coverage=True)

    combined = config.alpha * direct + (1.0 - config.alpha) * indirect
    return _normalise_matrix(combined)


def propagate_preferences(
    smoothed: PreferenceGraph,
    config: Optional[PropagationConfig] = None,
) -> PreferenceGraph:
    """Compute the complete, normalised closure ``G_P^*`` of Step 3.

    Parameters
    ----------
    smoothed:
        The Step-2 output (strongly connected whenever the task graph was
        connected).
    config:
        Blend factor ``alpha``, hop bound and kernel selection.

    Returns
    -------
    PreferenceGraph
        A complete graph with ``w_ij + w_ji = 1`` and
        ``w in [min_clip, 1 - min_clip]`` for every ordered pair.
    """
    return PreferenceGraph.from_matrix(propagate_matrix(smoothed, config))


def _adaptive_hops(n: int, n_directed_edges: int) -> int:
    """Density-adaptive walk depth (PropagationConfig.max_hops = None).

    ``mean_degree = n_directed_edges / n`` equals the task-graph degree
    ``2l/n`` on a smoothed graph (each compared pair carries both
    directions).  Sparse plans need proportionally deeper walks before
    the mid-range transitivity signal saturates; depth beyond ~20 hops
    has shown no further accuracy gain (DESIGN.md §5).
    """
    mean_degree = max(n_directed_edges / max(n, 1), 1.0)
    depth = int(np.ceil(1.5 * n / mean_degree))
    return max(2, min(max(depth, 8), 20, n - 1))


#: Weights are clipped into [_MIN_CLIP, 1 - _MIN_CLIP] after
#: normalisation so every ordered pair keeps a representable edge
#: (a weight of exactly 0 would mean "no edge" per the graph model).
_MIN_CLIP = 1e-9


def _normalise_matrix(combined: np.ndarray) -> np.ndarray:
    """Pair-normalise a combined weight matrix.

    For each unordered pair ``{i, j}``: ``p = c_ij / (c_ij + c_ji)``
    (0.5 when both are zero — no evidence either way), clipped away from
    {0, 1} so both directed edges exist.
    """
    n = combined.shape[0]
    total = combined + combined.T
    with np.errstate(invalid="ignore", divide="ignore"):
        p = np.where(total > 0.0, combined / np.maximum(total, 1e-300), 0.5)
    p = np.clip(p, _MIN_CLIP, 1.0 - _MIN_CLIP)
    np.fill_diagonal(p, 0.0)
    return p
