"""Sparse large-``n`` ranking engines: HodgeRank and graph least squares.

The paper's Step 2-4 machinery (dense smoothing matrix, matrix-power
propagation, annealing path search) is quadratic-to-cubic in ``n`` and
caps practical instances at a few hundred objects.  This module provides
two alternative Step 1-3 engines that reduce ranking to a **sparse
linear system** over the comparison graph, solvable in near-linear time
in the number of observed pairs — ``n`` in the thousands is routine.

Both engines estimate a latent score ``s`` per object by least squares
on the graph's gradient flow: with ``B`` the edge-object incidence
matrix (:mod:`repro.inference.incidence`), per-edge flows ``y`` and
weights ``w``, they solve

    ``min_s  sum_e w_e (s_lo(e) - s_hi(e) - y_e)^2``
    ``  ==   min_s  || diag(sqrt(w)) (B s - y) ||^2``

and rank by descending score.  The two engines differ only in where the
flow and weights come from:

* ``engine="hodge"`` — **HodgeRank** (Jiang et al.; Xu et al., "HodgeRank
  with Information Maximization").  Step 1 truth discovery (CRH or EM)
  runs first, exactly as in the paper's pipeline; the discovered per-pair
  preference ``x_e`` becomes the flow (``y_e = 2 x_e - 1`` linearly, or
  the Bradley-Terry log-odds with ``flow="logit"``) and the edge weight
  is the answering workers' **quality mass** ``w_e = sum_k q_k`` — the
  same quality signal Step 2 smoothing uses, so spammers are
  down-weighted in the solve.
* ``engine="lsq"`` — the **graph least-squares ranker** of Christoforou
  et al. ("Ranking a set of objects: a graph based least-square
  approach").  No worker model: every vote contributes one unit equation
  ``s_winner - s_loser = 1``, which aggregates per edge to
  ``y_e = 2 mean(x_e) - 1`` with ``w_e = counts_e``.  Cheaper (skips
  Step 1) and the natural unweighted control for the engine matrix.

The least-squares system is solved with LSQR (default) or CG on the
normal equations; no dense ``n x n`` matrix is ever materialised.

**Degenerate comparison graphs.**  ``B``'s null space is one constant
vector per connected component, so scores are only determined *within*
a component.  A disconnected graph is therefore anchored explicitly:
components are ordered largest-first, equal-sized components by a
tie-break draw from the run RNG (deterministic for a fixed seed), then
by smallest member id; each component's scores are shifted so components
occupy disjoint score bands in that order.  The condition is surfaced as
a typed :class:`~repro.exceptions.DegenerateGraphWarning` *and* recorded
in the result metadata (``n_components``, ``engine_warnings``) instead
of silently returning one arbitrary solution of a singular system.
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass
from typing import Dict, Optional, Tuple, Union

import numpy as np
from scipy import sparse
from scipy.sparse import linalg as sparse_linalg

from ..config import PipelineConfig
from ..diagnostics import get_logger
from ..exceptions import DegenerateGraphWarning, InferenceError
from ..rng import SeedLike, ensure_rng
from ..types import Pair, Ranking, VoteArrays, VoteSet, WorkerId
from ..truth.crh import discover_truth
from ..truth.dawid_skene import discover_truth_em
from .incidence import SparseIncidence, build_incidence, quality_edge_weights

_log = get_logger("inference.engines")

#: Engines implemented by this module (PipelineConfig.engine values
#: other than the default dense "crh_saps" path).
SPARSE_ENGINES: Tuple[str, ...] = ("hodge", "lsq")

#: Score gap inserted between anchored components — any positive
#: constant works (rankings only need disjoint bands); 1.0 keeps the
#: adjusted scores human-readable.
_COMPONENT_GAP = 1.0


@dataclass(frozen=True)
class EngineReport:
    """Everything a sparse engine run produced.

    ``scores`` is the anchored latent score vector (higher = ranked
    earlier); the remaining fields mirror
    :class:`~repro.types.InferenceResult` so the pipeline can wrap the
    report without recomputation.
    """

    ranking: Ranking
    scores: np.ndarray
    log_preference: float
    worker_quality: Dict[WorkerId, float]
    direct_preferences: Dict[Pair, float]
    step_seconds: Dict[str, float]
    metadata: Dict[str, object]


def solve_sparse_engine(
    votes: Union[VoteSet, VoteArrays],
    config: Optional[PipelineConfig] = None,
    rng: SeedLike = None,
) -> EngineReport:
    """Run one sparse engine (``config.engine``) over a vote set.

    Parameters
    ----------
    votes:
        A frozen :class:`~repro.types.VoteSet` or a pre-built columnar
        :class:`~repro.types.VoteArrays` view.
    config:
        Pipeline configuration; ``config.engine`` selects ``"hodge"`` or
        ``"lsq"`` and ``config.sparse`` holds the solver knobs.
    rng:
        Run RNG; consumed only for the cross-component anchoring
        tie-break (a connected graph consumes no randomness at all).

    Raises
    ------
    InferenceError
        On empty votes or an engine this module does not implement.
    """
    config = config if config is not None else PipelineConfig()
    engine = config.engine
    if engine not in SPARSE_ENGINES:
        raise InferenceError(
            f"engine {engine!r} is not a sparse engine; expected one of "
            f"{', '.join(SPARSE_ENGINES)}"
        )
    generator = ensure_rng(rng)
    arrays = votes.arrays() if isinstance(votes, VoteSet) else votes
    if arrays.n_votes == 0:
        raise InferenceError("cannot infer a ranking from zero votes")
    if arrays.n_objects < 2:
        raise InferenceError("need at least 2 objects to rank")
    sp = config.sparse
    step_seconds: Dict[str, float] = {}
    metadata: Dict[str, object] = {
        "engine": engine,
        "search_algorithm": "score_argsort",
    }

    # Step 1 (hodge only): quality-aware truth discovery; the lsq engine
    # is by construction unweighted and skips the worker model entirely.
    start = time.perf_counter()
    incidence = build_incidence(arrays)
    if engine == "hodge":
        discover = (discover_truth_em if config.truth_engine == "em"
                    else discover_truth)
        truth = discover(arrays, config.truth)
        x = truth.preference_vector
        edge_weights = quality_edge_weights(arrays, truth.quality_vector)
        worker_quality = truth.worker_quality
        direct_preferences = truth.preferences
        metadata["truth_iterations"] = truth.iterations
        metadata["truth_converged"] = truth.trace.converged
    else:
        x = incidence.mean_value()
        edge_weights = incidence.counts
        worker_quality = {}
        direct_preferences = dict(zip(arrays.pairs(), x.tolist()))
    step_seconds["truth_discovery"] = time.perf_counter() - start

    # Sparse weighted least-squares solve on the gradient flow.
    start = time.perf_counter()
    flow = _flow(x, sp.flow, sp.logit_clip)
    raw_scores, solver_meta = _solve(
        incidence, flow, np.maximum(edge_weights, 1e-12),
        solver=sp.solver, tol=sp.tol,
        max_iterations=sp.max_solver_iterations,
    )
    step_seconds["solve"] = time.perf_counter() - start

    # Anchoring + ranking: argsort within components, components in a
    # deterministic (seeded) order, scores shifted into disjoint bands.
    start = time.perf_counter()
    scores, order, anchor_meta = _anchor_and_order(
        raw_scores, incidence, generator
    )
    ranking = Ranking(order.tolist())
    log_preference = _path_log_preference(scores, order)
    step_seconds["ranking"] = time.perf_counter() - start

    metadata.update(solver_meta)
    metadata.update(anchor_meta)
    metadata["n_edges"] = incidence.n_edges
    if incidence.n_components > 1:
        message = (
            f"comparison graph has {incidence.n_components} connected "
            f"components; scores are only determined within a component "
            f"— applied per-component anchoring (largest first, seeded "
            f"tie-break among equal sizes, then smallest member id)"
        )
        warnings.warn(message, DegenerateGraphWarning, stacklevel=2)
        metadata["engine_warnings"] = [message]
        _log.warning("engine %s: %s", engine, message)

    _log.debug(
        "engine %s done: n=%d edges=%d components=%d timings=%s",
        engine, arrays.n_objects, incidence.n_edges,
        incidence.n_components,
        {k: round(v, 4) for k, v in step_seconds.items()},
    )
    return EngineReport(
        ranking=ranking,
        scores=scores,
        log_preference=log_preference,
        worker_quality=worker_quality,
        direct_preferences=direct_preferences,
        step_seconds=step_seconds,
        metadata=metadata,
    )


def hodge_rank(
    votes: Union[VoteSet, VoteArrays],
    config: Optional[PipelineConfig] = None,
    rng: SeedLike = None,
) -> Tuple[Ranking, np.ndarray]:
    """Convenience wrapper: HodgeRank ``(ranking, scores)`` on a vote set."""
    base = config if config is not None else PipelineConfig()
    report = solve_sparse_engine(votes, base.with_(engine="hodge"), rng)
    return report.ranking, report.scores


def graph_lsq_rank(
    votes: Union[VoteSet, VoteArrays],
    config: Optional[PipelineConfig] = None,
    rng: SeedLike = None,
) -> Tuple[Ranking, np.ndarray]:
    """Convenience wrapper: graph least-squares ``(ranking, scores)``."""
    base = config if config is not None else PipelineConfig()
    report = solve_sparse_engine(votes, base.with_(engine="lsq"), rng)
    return report.ranking, report.scores


# ---------------------------------------------------------------------------
# Internals
# ---------------------------------------------------------------------------

def _flow(x: np.ndarray, flow: str, clip: float) -> np.ndarray:
    """Map per-edge preferences ``x in [0, 1]`` to gradient flows.

    ``linear`` is the uniform-model flow ``2x - 1`` (HodgeRank's
    arithmetic-mean flow); ``logit`` is the Bradley-Terry log-odds,
    clipped so unanimous edges stay finite — the sparse analogue of the
    dense path's Step-2 treatment of 1-edges.
    """
    if flow == "logit":
        xc = np.clip(x, clip, 1.0 - clip)
        return np.log(xc / (1.0 - xc))
    return 2.0 * x - 1.0


def _solve(
    incidence: SparseIncidence,
    flow: np.ndarray,
    edge_weights: np.ndarray,
    *,
    solver: str,
    tol: float,
    max_iterations: int,
) -> Tuple[np.ndarray, Dict[str, object]]:
    """Solve ``min_s ||diag(sqrt(w)) (B s - y)||`` without densifying."""
    scale = np.sqrt(edge_weights)
    system = incidence.incidence.multiply(scale[:, None]).tocsr()
    rhs = scale * flow
    if solver == "cg":
        # Normal equations L s = B^T W y.  The weighted graph Laplacian
        # L is singular (one null vector per component) but PSD, and the
        # right-hand side lies in its range, so CG converges to a valid
        # minimiser; a vanishing Tikhonov shift guards the edge cases
        # without moving the minimiser beyond solver tolerance.
        laplacian = (system.T @ system).tocsr()
        laplacian = laplacian + 1e-10 * sparse.identity(
            laplacian.shape[0], format="csr"
        )
        b = system.T @ rhs
        iterations = 0

        def _count(_):
            nonlocal iterations
            iterations += 1

        scores, info = sparse_linalg.cg(
            laplacian, b, rtol=tol, maxiter=max_iterations,
            callback=_count,
        )
        residual = float(np.linalg.norm(laplacian @ scores - b))
        return scores, {
            "solver": "cg",
            "solver_iterations": iterations,
            "solver_stop": int(info),
            "solver_residual": residual,
        }
    scores, istop, itn, r1norm = sparse_linalg.lsqr(
        system, rhs, atol=tol, btol=tol, iter_lim=max_iterations
    )[:4]
    return scores, {
        "solver": "lsqr",
        "solver_iterations": int(itn),
        "solver_stop": int(istop),
        "solver_residual": float(r1norm),
    }


def _anchor_and_order(
    raw_scores: np.ndarray,
    incidence: SparseIncidence,
    rng: np.random.Generator,
) -> Tuple[np.ndarray, np.ndarray, Dict[str, object]]:
    """Anchor component score bands and produce the descending order.

    Connected graph: scores are mean-centred (the canonical
    representative of the solution family) and ordered by descending
    score, ties broken by object id via the stable argsort.

    Disconnected graph: each component keeps its internal least-squares
    ordering; components are laid out in deterministic order — size
    descending, then a tie-break key drawn from the run RNG (one draw
    per component, in label order), then smallest member id — with a
    fixed gap between consecutive score bands.
    """
    labels = incidence.labels
    n_components = incidence.n_components
    if n_components == 1:
        scores = raw_scores - raw_scores.mean()
        order = np.argsort(-scores, kind="stable")
        return scores, order, {"n_components": 1}

    sizes = np.bincount(labels, minlength=n_components)
    tie_break = rng.random(n_components)
    min_member = np.full(n_components, incidence.n_objects, dtype=np.int64)
    np.minimum.at(min_member, labels,
                  np.arange(incidence.n_objects, dtype=np.int64))
    component_order = np.lexsort((min_member, tie_break, -sizes))

    scores = raw_scores.astype(np.float64).copy()
    top = 0.0
    for component in component_order:
        mask = labels == component
        member_scores = scores[mask]
        scores[mask] = member_scores - member_scores.max() + top
        top = scores[mask].min() - _COMPONENT_GAP
    order = np.argsort(-scores, kind="stable")
    return scores, order, {"n_components": int(n_components)}


def _path_log_preference(scores: np.ndarray, order: np.ndarray) -> float:
    """``log Pr[P]`` of the score path under the implied edge model.

    The score engines have no closure matrix, but consecutive ranked
    objects imply an edge probability ``sigma(s_a - s_b)``; the product
    over the ranked path is the score-model analogue of the dense
    path's Hamiltonian-path objective (comparable *within* an engine,
    not across engines).
    """
    if order.shape[0] < 2:
        return 0.0
    ordered = scores[order]
    diffs = ordered[:-1] - ordered[1:]
    probs = 1.0 / (1.0 + np.exp(-diffs))
    probs = np.clip(probs, 1e-12, 1.0 - 1e-12)
    return float(np.log(probs).sum())
