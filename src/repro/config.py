"""Configuration dataclasses for every tunable stage of the pipeline.

Each stage of the two-step strategy (task assignment, result inference
Steps 1-4) has its own small config object; :class:`PipelineConfig` bundles
them.  Every config validates itself on construction so that a bad
parameter fails loudly at setup time rather than deep inside a run.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from .exceptions import ConfigurationError


@dataclass(frozen=True)
class TruthDiscoveryConfig:
    """Step 1 (Sec. V-A): iterative truth discovery of direct preferences.

    Attributes
    ----------
    max_iterations:
        Hard cap on CRH iterations.  The paper reports convergence within
        10 iterations for most cases; the default leaves headroom.
    tolerance:
        Convergence threshold on the change of both the estimated
        preferences ``x_ij`` and worker qualities ``q_k`` between
        consecutive iterations.
    criterion:
        Norm used for the change: ``"mean"`` (average absolute delta,
        default — under it the algorithm matches the paper's
        "convergence within 10 iterations for most cases") or ``"max"``
        (worst single delta; stricter, a few stragglers keep it busy
        for tens of iterations).  The paper does not specify the norm.
    alpha:
        Confidence-interval parameter of the chi-square weight (Eq. 5);
        the weight uses the ``alpha/2`` percentile.
    min_error:
        Floor on a worker's summed squared disagreement in Eq. 5.  The
        paper leaves the zero-disagreement case unspecified; with a
        tiny floor a single perfectly agreeing worker would get an
        astronomically large weight, and after the ``q in [0, 1]``
        normalisation *every other worker* would collapse to ~0 quality
        (which then wrecks the Step-2 smoothing via
        ``sigma = -log q``).  The default of a quarter squared vote
        keeps quality ratios meaningful.
    strict:
        If true, raise :class:`~repro.exceptions.ConvergenceError` when the
        iteration cap is hit before the tolerance is met.
    """

    max_iterations: int = 50
    tolerance: float = 1e-4
    criterion: str = "mean"
    alpha: float = 0.05
    min_error: float = 0.25
    strict: bool = False

    def __post_init__(self) -> None:
        if self.max_iterations < 1:
            raise ConfigurationError("max_iterations must be >= 1")
        if not 0 < self.tolerance < 1:
            raise ConfigurationError("tolerance must be in (0, 1)")
        if self.criterion not in ("mean", "max"):
            raise ConfigurationError(
                f"criterion must be 'mean' or 'max', got {self.criterion!r}"
            )
        if not 0 < self.alpha < 1:
            raise ConfigurationError("alpha must be in (0, 1)")
        if self.min_error <= 0:
            raise ConfigurationError("min_error must be positive")


@dataclass(frozen=True)
class SmoothingConfig:
    """Step 2 (Sec. V-B): smoothing of unanimous (weight-1) edges.

    Attributes
    ----------
    mode:
        ``"expected"`` uses the deterministic expected absolute error
        ``E|eps_k| = sigma_k * sqrt(2/pi)`` of each worker; ``"sampled"``
        draws ``|N(0, sigma_k^2)|`` samples, matching the paper's
        stochastic reading.
    sigma_floor / sigma_cap:
        Clips on ``sigma_k = -log(q_k)`` so a perfect worker
        (``q_k = 1``) still contributes a tiny error and a terrible
        worker cannot push a weight out of (0, 1).
    min_weight:
        Lower bound on any smoothed weight; also implicitly the upper
        bound ``1 - min_weight``.  Keeps the smoothed graph strongly
        connected with strictly positive edge weights.
    """

    mode: str = "expected"
    sigma_floor: float = 1e-3
    sigma_cap: float = 2.0
    min_weight: float = 1e-3

    def __post_init__(self) -> None:
        if self.mode not in ("expected", "sampled"):
            raise ConfigurationError(
                f"mode must be 'expected' or 'sampled', got {self.mode!r}"
            )
        if not 0 < self.sigma_floor <= self.sigma_cap:
            raise ConfigurationError("need 0 < sigma_floor <= sigma_cap")
        if not 0 < self.min_weight < 0.5:
            raise ConfigurationError("min_weight must be in (0, 0.5)")


@dataclass(frozen=True)
class PropagationConfig:
    """Step 3 (Sec. V-C): indirect preferences via transitivity.

    Attributes
    ----------
    alpha:
        Blend between direct and indirect preference:
        ``w_check = alpha * w_direct + (1 - alpha) * w_indirect``.
    max_hops:
        Longest path/walk length considered for indirect preference.
        The paper allows up to ``n - 1``; bounded hops keep the signal
        while staying polynomial.  Deep propagation matters: at sparse
        budgets, short-hop aggregates leave mid-range pairs noisy
        enough for the Step-4 product objective to cherry-pick
        overestimated edges (see DESIGN.md §5).  ``None`` (default)
        adapts the depth to the plan's density:
        ``clamp(ceil(1.5 * n / mean_degree), 8, 20)`` — sparser plans
        need deeper propagation before the signal saturates.
    method:
        ``"walks"`` aggregates walk products with matrix powers
        (polynomial, default); ``"exact"`` enumerates simple paths
        (exponential, small ``n`` only); ``"auto"`` picks ``"exact"``
        when ``n <= exact_threshold`` else ``"walks"``.
    exact_threshold:
        The crossover size for ``method="auto"``.
    """

    alpha: float = 0.5
    max_hops: Optional[int] = None
    method: str = "auto"
    exact_threshold: int = 9

    def __post_init__(self) -> None:
        if not 0 <= self.alpha <= 1:
            raise ConfigurationError("alpha must be in [0, 1]")
        if self.max_hops is not None and self.max_hops < 2:
            raise ConfigurationError("max_hops must be >= 2 (>=1 hop is direct)")
        if self.method not in ("walks", "exact", "auto"):
            raise ConfigurationError(
                f"method must be 'walks', 'exact' or 'auto', got {self.method!r}"
            )
        if self.exact_threshold < 2:
            raise ConfigurationError("exact_threshold must be >= 2")


@dataclass(frozen=True)
class SAPSConfig:
    """Step 4 heuristic (Sec. V-D2): simulated-annealing path search.

    Mirrors Algorithm 2: ``iterations`` is the paper's ``N``,
    ``temperature`` its ``T`` and ``cooling_rate`` its ``c``.

    Attributes
    ----------
    restarts:
        Number of start vertices.  Algorithm 2 restarts from *every*
        vertex; that is O(n) full anneals, so the default caps restarts
        and ``restarts=None`` restores the faithful every-vertex loop.
    init:
        Initial-path heuristic per Algorithm 2 line 3: ``"greedy"``
        (nearest-neighbour by weight), ``"degree"`` (rank by out-minus-in
        weight difference — the default; nearest-neighbour chains into
        degenerate zigzags on noisy closures) or ``"random"``.
    scale_with_objects:
        When true (default) the iteration budget grows linearly past
        100 objects (``iterations * n / 100``): the move space is
        O(n^2), and a fixed budget that converges at n=100 visibly
        under-optimises at n=200+.
    polish:
        Run the deterministic local-search pass
        (:func:`repro.inference.local_search.polish_ranking`) on the
        best path found.  Guaranteed never to lower ``Pr[P]``; off by
        default because a converged anneal is already a local optimum
        of these neighbourhoods and the extra objective drops do not
        translate into Kendall-accuracy gains (the objective and the
        metric decouple near the optimum; see EXPERIMENTS.md E8).
        Enable it for short/hot annealing schedules or when the
        objective itself is what matters.
    parallel_restarts:
        Worker width for the restart loop (1 = run restarts serially,
        the default).  Every restart draws its own child random stream
        from the run RNG up front, so serial and parallel execution
        produce bit-identical best paths for the same seed; the knob
        only changes wall-clock scheduling, never results.
    backend:
        Execution backend for the restart loop: ``"serial"``,
        ``"thread"`` or ``"process"`` (see
        :mod:`repro.workers.backends`).  ``None`` (default) defers to
        the ``REPRO_BACKEND`` environment variable, then ``"thread"``.
        The annealing kernel is pure Python, so only ``"process"``
        escapes the GIL and uses multiple cores; results are
        bit-identical across all three for the same seed.
    kernel:
        Move-evaluation strategy: ``"incremental"`` (default) computes
        each proposal's ``d(P') - d(P)`` from the O(1)-O(k) boundary
        edges and applies accepted moves in place;  ``"reference"``
        re-sums all ``n - 1`` edges per proposal (the pre-optimisation
        behaviour, kept as the benchmark baseline and cross-check
        oracle).  Both kernels consume the random stream identically,
        so for a fixed seed they accept the same moves and return the
        same ranking.  Incomplete closures (any missing edge) always
        use the reference kernel — +inf edge costs make deltas
        ill-defined.
    resync_every:
        Accepted moves between full re-summations of the incremental
        running cost.  The resync bounds float drift from accumulated
        deltas; each one is O(n), so the amortised overhead is
        negligible.
    debug_checks:
        When true, the incremental kernel asserts after *every*
        accepted move that the running cost matches a full
        :func:`~repro.inference.delta.path_cost` re-computation (1e-9
        relative).  For tests and debugging — O(n) per accepted move.
    """

    iterations: int = 20000
    temperature: float = 0.2
    cooling_rate: float = 0.9995
    restarts: Optional[int] = 2
    init: str = "degree"
    scale_with_objects: bool = True
    polish: bool = False
    parallel_restarts: int = 1
    backend: Optional[str] = None
    kernel: str = "incremental"
    resync_every: int = 512
    debug_checks: bool = False

    def __post_init__(self) -> None:
        if self.iterations < 1:
            raise ConfigurationError("iterations must be >= 1")
        if self.temperature <= 0:
            raise ConfigurationError("temperature must be positive")
        if not 0 < self.cooling_rate < 1:
            raise ConfigurationError("cooling_rate must be in (0, 1)")
        if self.restarts is not None and self.restarts < 1:
            raise ConfigurationError("restarts must be >= 1 or None")
        if self.init not in ("greedy", "degree", "random"):
            raise ConfigurationError(
                f"init must be 'greedy', 'degree' or 'random', got {self.init!r}"
            )
        if self.parallel_restarts < 1:
            raise ConfigurationError("parallel_restarts must be >= 1")
        if self.backend is not None and \
                self.backend not in ("serial", "thread", "process"):
            raise ConfigurationError(
                f"backend must be 'serial', 'thread', 'process' or None, "
                f"got {self.backend!r}"
            )
        if self.kernel not in ("incremental", "reference"):
            raise ConfigurationError(
                f"kernel must be 'incremental' or 'reference', got "
                f"{self.kernel!r}"
            )
        if self.resync_every < 1:
            raise ConfigurationError("resync_every must be >= 1")


@dataclass(frozen=True)
class SparseEngineConfig:
    """Sparse large-``n`` engine knobs (``PipelineConfig.engine`` =
    ``"hodge"`` or ``"lsq"``; see :mod:`repro.inference.engines`).

    Attributes
    ----------
    solver:
        ``"lsqr"`` (default) solves the weighted least-squares system
        directly; ``"cg"`` runs conjugate gradients on the normal
        equations (the weighted graph Laplacian).  Both are sparse
        iterative methods — no dense ``n x n`` matrix is built.
    flow:
        Mapping from per-edge preference ``x in [0, 1]`` to the
        gradient flow the scores must fit: ``"linear"`` is
        ``2x - 1`` (HodgeRank's uniform/arithmetic-mean model,
        default); ``"logit"`` is the Bradley-Terry log-odds
        ``log(x / (1 - x))``.
    tol:
        Solver tolerance (LSQR ``atol``/``btol``; CG ``rtol``).
    max_solver_iterations:
        Iteration cap for either solver.
    logit_clip:
        With ``flow="logit"``, preferences are clipped into
        ``[clip, 1 - clip]`` so unanimous edges keep a finite flow —
        the sparse analogue of Step 2's 1-edge smoothing.
    """

    solver: str = "lsqr"
    flow: str = "linear"
    tol: float = 1e-8
    max_solver_iterations: int = 2000
    logit_clip: float = 0.01

    def __post_init__(self) -> None:
        if self.solver not in ("lsqr", "cg"):
            raise ConfigurationError(
                f"solver must be 'lsqr' or 'cg', got {self.solver!r}"
            )
        if self.flow not in ("linear", "logit"):
            raise ConfigurationError(
                f"flow must be 'linear' or 'logit', got {self.flow!r}"
            )
        if not 0 < self.tol < 1:
            raise ConfigurationError("tol must be in (0, 1)")
        if self.max_solver_iterations < 1:
            raise ConfigurationError("max_solver_iterations must be >= 1")
        if not 0 < self.logit_clip < 0.5:
            raise ConfigurationError("logit_clip must be in (0, 0.5)")


@dataclass(frozen=True)
class TAPSConfig:
    """Step 4 exact (Sec. V-D1): threshold-based path search.

    TAPS materialises ``n - 1`` sorted lists over all ``n!`` Hamiltonian
    paths, so it is only feasible for small ``n``; ``max_objects`` guards
    against accidental blow-ups.
    """

    max_objects: int = 9

    def __post_init__(self) -> None:
        if not 2 <= self.max_objects <= 11:
            raise ConfigurationError("max_objects must be in [2, 11]")


@dataclass(frozen=True)
class PipelineConfig:
    """Full result-inference configuration (Steps 1-4).

    ``truth_engine`` selects the Step-1 algorithm: ``"crh"`` is the
    paper's iterative weighted-averaging (Eq. 4-5); ``"em"`` is the
    Dawid-Skene-style EM alternative from the same truth-discovery
    family (Sec. VII), which additionally exploits systematically
    inverted workers.

    ``vote_path`` selects the Steps 1-3 implementation: ``"columnar"``
    (default) hands dense matrices straight through
    truth vector -> direct matrix -> smoothed matrix -> closure, never
    materialising a :class:`~repro.graphs.preference_graph.PreferenceGraph`;
    ``"object"`` is the per-edge graph-object compatibility path.  Both
    produce bit-identical results (rankings, log-preference, smoothing
    adjustments) — the object path exists as a cross-check oracle and
    for callers that want the intermediate graphs.

    ``engine`` selects the Step 1-3 *strategy* one level above
    ``vote_path``: ``"crh_saps"`` (default) is the paper's dense
    pipeline (truth discovery -> smoothing -> propagation -> path
    search, on whichever ``vote_path``); ``"hodge"`` and ``"lsq"`` are
    the sparse least-squares engines of
    :mod:`repro.inference.engines`, which replace Steps 2-4 with one
    sparse solve over the comparison graph and scale to ``n`` in the
    thousands (see :data:`LARGE_N_PIPELINE`).  For the sparse engines,
    ``search``/``smoothing``/``propagation``/``saps``/``taps`` are
    ignored; ``truth`` and ``truth_engine`` still drive Step 1 for
    ``"hodge"``, and ``sparse`` holds the solver knobs.
    """

    truth: TruthDiscoveryConfig = field(default_factory=TruthDiscoveryConfig)
    smoothing: SmoothingConfig = field(default_factory=SmoothingConfig)
    propagation: PropagationConfig = field(default_factory=PropagationConfig)
    saps: SAPSConfig = field(default_factory=SAPSConfig)
    taps: TAPSConfig = field(default_factory=TAPSConfig)
    sparse: SparseEngineConfig = field(default_factory=SparseEngineConfig)
    search: str = "saps"
    truth_engine: str = "crh"
    vote_path: str = "columnar"
    engine: str = "crh_saps"

    def __post_init__(self) -> None:
        if self.search not in ("saps", "taps", "branch_and_bound"):
            raise ConfigurationError(
                "search must be 'saps', 'taps' or 'branch_and_bound', "
                f"got {self.search!r}"
            )
        if self.truth_engine not in ("crh", "em"):
            raise ConfigurationError(
                f"truth_engine must be 'crh' or 'em', got "
                f"{self.truth_engine!r}"
            )
        if self.vote_path not in ("columnar", "object"):
            raise ConfigurationError(
                f"vote_path must be 'columnar' or 'object', got "
                f"{self.vote_path!r}"
            )
        if self.engine not in ("crh_saps", "hodge", "lsq"):
            raise ConfigurationError(
                f"engine must be 'crh_saps', 'hodge' or 'lsq', got "
                f"{self.engine!r}"
            )

    def with_(self, **kwargs) -> "PipelineConfig":
        """Return a copy with the given fields replaced (convenience)."""
        return replace(self, **kwargs)


#: A conservative configuration suitable for quick tests / examples.
FAST_PIPELINE = PipelineConfig(
    saps=SAPSConfig(iterations=3000, restarts=1),
    propagation=PropagationConfig(max_hops=6, method="walks"),
)

#: The documented large-``n`` preset (CLI ``--preset large-n``): the
#: HodgeRank sparse engine, the accuracy-vs-wall-clock winner of the
#: BENCH_engines.json n-sweep — quality-weighted like the dense
#: pipeline but solving one sparse least-squares system, so n in the
#: thousands completes in seconds where the dense path is infeasible.
LARGE_N_PIPELINE = PipelineConfig(engine="hodge")
