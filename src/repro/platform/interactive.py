"""The interactive crowd platform (the baselines' setting).

Interactive crowdsourced ranking (e.g. CrowdBT) works in rounds: the
requester picks the next comparison based on everything seen so far,
submits it, receives one worker's vote, updates its model, and repeats
until the budget runs out.  This platform exposes exactly that query
interface, paying per answer from the same :class:`PaymentLedger` so
budget parity with the non-interactive setting is enforced, not assumed.
"""

from __future__ import annotations

from typing import Optional

from ..exceptions import AssignmentError, BudgetError
from ..rng import SeedLike, ensure_rng
from ..types import Ranking, Vote
from ..workers.pool import WorkerPool
from .events import EventLog
from .pricing import PaymentLedger


class InteractivePlatform:
    """Round-based comparison oracle over a simulated worker pool."""

    def __init__(
        self,
        pool: WorkerPool,
        ground_truth: Ranking,
        budget: float,
        reward: float = 0.025,
        rng: SeedLike = None,
    ):
        if len(ground_truth) < 2:
            raise AssignmentError("ground truth must rank at least 2 objects")
        self._pool = pool
        self._truth = ground_truth
        self._ledger = PaymentLedger(budget=budget, reward_per_comparison=reward)
        self._events = EventLog()
        self._rng = ensure_rng(rng)

    @property
    def ledger(self) -> PaymentLedger:
        return self._ledger

    @property
    def events(self) -> EventLog:
        return self._events

    @property
    def n_objects(self) -> int:
        return len(self._truth)

    def remaining_queries(self) -> int:
        """How many more single comparisons the budget affords."""
        return int(self._ledger.remaining / self._ledger.reward + 1e-9)

    def can_query(self) -> bool:
        return self._ledger.can_pay(1)

    def query(
        self, i: int, j: int, worker_id: Optional[int] = None
    ) -> Vote:
        """Ask one (random or chosen) worker to compare ``(O_i, O_j)``.

        Charges one reward.  Raises :class:`BudgetError` when the budget
        is exhausted — interactive algorithms use :meth:`can_query` as
        their loop condition.
        """
        if not self._ledger.can_pay(1):
            raise BudgetError("interactive budget exhausted")
        if worker_id is None:
            worker_id = int(self._rng.integers(len(self._pool)))
        worker = self._pool[worker_id]
        vote = worker.vote(i, j, self._truth)
        self._ledger.pay(worker_id, n_comparisons=1)
        self._events.record(
            "vote", worker=worker_id, winner=vote.winner, loser=vote.loser
        )
        return vote
