"""Payment ledger: tracks per-worker earnings against the budget.

Each pairwise comparison answered earns the worker the fixed reward ``r``
(Sec. II: "each pairwise comparison receives a reward r, which is the same
for all workers").  The ledger rejects payments that would overdraw the
requester's budget, which is how the simulator *enforces* (rather than
merely assumes) the paper's budget constraint.

Bookkeeping is integral: the ledger counts paid comparisons and derives
money amounts as ``count * reward``, so a hundred thousand 2.5-cent
payments cannot drift past the budget through float accumulation.
"""

from __future__ import annotations

from typing import Dict

from ..exceptions import BudgetError
from ..types import WorkerId


class PaymentLedger:
    """Tracks spend against a fixed budget (unit-count bookkeeping)."""

    def __init__(self, budget: float, reward_per_comparison: float):
        if budget < 0:
            raise BudgetError(f"budget must be non-negative, got {budget}")
        if reward_per_comparison <= 0:
            raise BudgetError(
                f"reward must be positive, got {reward_per_comparison}"
            )
        self._budget = float(budget)
        self._reward = float(reward_per_comparison)
        #: Budget expressed in whole comparisons (floor, as in Sec. II).
        self._budget_units = int(self._budget / self._reward + 1e-9)
        self._units_paid = 0
        self._earned_units: Dict[WorkerId, int] = {}

    @property
    def budget(self) -> float:
        return self._budget

    @property
    def reward(self) -> float:
        """Reward paid per single answered comparison."""
        return self._reward

    @property
    def spent(self) -> float:
        return self._units_paid * self._reward

    @property
    def remaining(self) -> float:
        return self._budget - self.spent

    def can_pay(self, n_comparisons: int = 1) -> bool:
        """Whether ``n_comparisons`` more single-answer payments fit."""
        return self._units_paid + n_comparisons <= self._budget_units

    def pay(self, worker: WorkerId, n_comparisons: int = 1) -> float:
        """Pay a worker for ``n_comparisons`` answered comparisons.

        Raises
        ------
        BudgetError
            If the payment would overdraw the budget — the simulator
            treats this as a programming error in the caller's plan, not
            a recoverable condition.
        """
        if n_comparisons < 1:
            raise BudgetError(f"n_comparisons must be >= 1, got {n_comparisons}")
        if not self.can_pay(n_comparisons):
            raise BudgetError(
                f"payment of {n_comparisons * self._reward:.4f} would "
                f"overdraw budget (spent {self.spent:.4f} of "
                f"{self._budget:.4f})"
            )
        self._units_paid += n_comparisons
        self._earned_units[worker] = (
            self._earned_units.get(worker, 0) + n_comparisons
        )
        return n_comparisons * self._reward

    def earnings(self) -> Dict[WorkerId, float]:
        """Per-worker total earnings (copy)."""
        return {
            worker: units * self._reward
            for worker, units in self._earned_units.items()
        }

    def __repr__(self) -> str:
        return (
            f"PaymentLedger(spent={self.spent:.4f}, "
            f"budget={self._budget:.4f}, workers={len(self._earned_units)})"
        )
