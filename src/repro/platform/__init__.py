"""Crowd-platform simulator: the library's Amazon Mechanical Turk stand-in.

The paper's scaled experiments use simulated workers with the error model
of Sec. VI-A4; this package provides the surrounding marketplace:

* :class:`~repro.platform.simulator.NonInteractivePlatform` — the paper's
  setting: publish all HITs once, collect all votes, close;
* :class:`~repro.platform.interactive.InteractivePlatform` — the
  round-based setting required by the CrowdBT baseline: the requester
  repeatedly asks for single comparisons until the budget runs out;
* :mod:`~repro.platform.pricing` — the payment ledger;
* :mod:`~repro.platform.events` — an audit log of platform activity.
"""

from .events import EventLog, PlatformEvent
from .pricing import PaymentLedger
from .simulator import CrowdsourcingRun, NonInteractivePlatform
from .interactive import InteractivePlatform

__all__ = [
    "EventLog",
    "PlatformEvent",
    "PaymentLedger",
    "CrowdsourcingRun",
    "NonInteractivePlatform",
    "InteractivePlatform",
]
