"""The non-interactive crowd platform (the paper's core setting).

One call to :meth:`NonInteractivePlatform.run` performs the entire
crowdsourcing round: publish every HIT, route each to its assigned
workers, collect their (noisy) votes, pay them, and close.  After the run
the platform refuses further task submission — that refusal *is* the
non-interactive constraint, and the CrowdBT baseline's need for an
:class:`~repro.platform.interactive.InteractivePlatform` instead is
exactly the paper's Table-I time story.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..assignment.assigner import WorkerAssignment
from ..exceptions import AssignmentError
from ..rng import SeedLike, ensure_rng
from ..types import Ranking, Vote, VoteSet
from ..workers.pool import WorkerPool
from .events import EventLog
from .pricing import PaymentLedger


@dataclass(frozen=True)
class CrowdsourcingRun:
    """Everything that came back from one non-interactive round.

    Attributes
    ----------
    votes:
        All collected votes.
    ledger:
        The final payment ledger (spend, per-worker earnings).
    events:
        The full platform audit log.
    """

    votes: VoteSet
    ledger: PaymentLedger
    events: EventLog


class NonInteractivePlatform:
    """A single-round crowd marketplace over a simulated worker pool."""

    def __init__(self, pool: WorkerPool, ground_truth: Ranking):
        if len(ground_truth) < 2:
            raise AssignmentError("ground truth must rank at least 2 objects")
        self._pool = pool
        self._truth = ground_truth
        self._closed = False

    @property
    def closed(self) -> bool:
        return self._closed

    def run(
        self,
        assignment: WorkerAssignment,
        *,
        dropout: float = 0.0,
        rng: SeedLike = None,
    ) -> CrowdsourcingRun:
        """Execute the one allowed crowdsourcing round.

        Parameters
        ----------
        assignment:
            The HITs and their assigned workers.
        dropout:
            Probability in ``[0, 1)`` that an assigned worker abandons a
            HIT without answering (a pervasive real-AMT failure mode).
            Abandoned HIT copies are not paid; the requester simply gets
            fewer votes back — exactly what the non-interactive setting
            must tolerate, since there is no second round to re-post.
        rng:
            Randomness for the dropout draws.

        Raises
        ------
        AssignmentError
            On a second call (non-interactive means *once*), when the
            assignment references workers outside the pool, when the
            assignment's objects do not match the ground-truth universe,
            or for an out-of-range dropout.
        """
        if not 0.0 <= dropout < 1.0:
            raise AssignmentError(
                f"dropout must be in [0, 1), got {dropout}"
            )
        generator = ensure_rng(rng)
        if self._closed:
            raise AssignmentError(
                "non-interactive platform already ran its single round"
            )
        task_assignment = assignment.task_assignment
        if task_assignment.plan.n_objects != len(self._truth):
            raise AssignmentError(
                f"assignment ranks {task_assignment.plan.n_objects} objects "
                f"but the platform universe has {len(self._truth)}"
            )

        events = EventLog()
        ledger = PaymentLedger(
            budget=task_assignment.plan.budget.total,
            reward_per_comparison=task_assignment.plan.budget.reward,
        )
        votes: List[Vote] = []
        for hit, worker_ids in zip(task_assignment.hits, assignment.hit_workers):
            events.record("publish", hit_id=hit.hit_id, pairs=len(hit))
            for worker_id in worker_ids:
                if worker_id >= len(self._pool):
                    raise AssignmentError(
                        f"HIT {hit.hit_id} assigned to unknown worker "
                        f"{worker_id} (pool size {len(self._pool)})"
                    )
                if dropout > 0.0 and generator.random() < dropout:
                    events.record(
                        "abandon", hit_id=hit.hit_id, worker=worker_id
                    )
                    continue
                worker = self._pool[worker_id]
                for i, j in hit.pairs:
                    vote = worker.vote(i, j, self._truth)
                    votes.append(vote)
                    events.record(
                        "vote",
                        hit_id=hit.hit_id,
                        worker=worker_id,
                        winner=vote.winner,
                        loser=vote.loser,
                    )
                ledger.pay(worker_id, n_comparisons=len(hit))
                events.record(
                    "payment", worker=worker_id, comparisons=len(hit)
                )
        self._closed = True
        events.record("close", total_votes=len(votes), spent=ledger.spent)
        return CrowdsourcingRun(
            votes=VoteSet.from_votes(len(self._truth), votes),
            ledger=ledger,
            events=events,
        )
