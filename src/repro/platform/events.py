"""Platform audit log.

Every marketplace action (publish, vote, payment, close) is appended to an
:class:`EventLog`.  The log gives tests and examples an inspectable record
of *what the platform did*, and enforces the non-interactive contract: a
closed platform refuses further activity.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional


@dataclass(frozen=True)
class PlatformEvent:
    """One timestamped platform action.

    ``sequence`` is a monotonically increasing logical clock (the
    simulator has no wall-clock); ``kind`` is one of ``"publish"``,
    ``"vote"``, ``"payment"``, ``"close"``; ``detail`` carries
    event-specific fields.
    """

    sequence: int
    kind: str
    detail: Dict[str, object] = field(default_factory=dict)


class EventLog:
    """Append-only event log with a logical clock."""

    def __init__(self) -> None:
        self._events: List[PlatformEvent] = []
        self._clock = itertools.count()

    def record(self, kind: str, **detail: object) -> PlatformEvent:
        """Append an event and return it."""
        event = PlatformEvent(
            sequence=next(self._clock), kind=kind, detail=dict(detail)
        )
        self._events.append(event)
        return event

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[PlatformEvent]:
        return iter(self._events)

    def of_kind(self, kind: str) -> List[PlatformEvent]:
        """All events of one kind, in order."""
        return [e for e in self._events if e.kind == kind]

    def last(self, kind: Optional[str] = None) -> Optional[PlatformEvent]:
        """Most recent event (optionally of one kind), or ``None``."""
        if kind is None:
            return self._events[-1] if self._events else None
        for event in reversed(self._events):
            if event.kind == kind:
                return event
        return None
