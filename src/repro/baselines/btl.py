"""Bradley-Terry-Luce maximum likelihood (Hunter's MM algorithm).

Classical score-based aggregation: each object gets a positive strength
``gamma_i`` with ``P(i beats j) = gamma_i / (gamma_i + gamma_j)``; the
MLE is found by minorise-maximise iterations (Hunter 2004).  Not a paper
baseline, but the natural "what if we ignore worker quality and just fit
BT" ablation — CrowdBT reduces to this when every worker is perfectly
reliable.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..exceptions import InferenceError
from ..types import Ranking, VoteSet


def bradley_terry_mle(
    votes: VoteSet,
    *,
    max_iterations: int = 500,
    tolerance: float = 1e-8,
    regularization: float = 0.1,
) -> Tuple[Ranking, np.ndarray]:
    """Fit BTL strengths by MM and return ``(ranking, strengths)``.

    Parameters
    ----------
    votes:
        Collected pairwise votes (aggregated into win counts).
    max_iterations / tolerance:
        MM stopping rule (relative change of the strength vector).
    regularization:
        Pseudo-count of wins added in both directions of every *observed*
        pair, keeping strengths finite when an object never loses
        (standard add-smoothing for the BT likelihood).

    Raises
    ------
    InferenceError
        On an empty vote set.
    """
    if len(votes) == 0:
        raise InferenceError("BTL needs at least one vote")
    n = votes.n_objects
    arrays = votes.arrays()
    wins = np.zeros((n, n), dtype=np.float64)  # wins[i, j] = #(i beat j)
    np.add.at(wins, (arrays.winner, arrays.loser), 1.0)
    observed = (wins + wins.T) > 0
    wins = wins + regularization * observed

    gamma = np.ones(n, dtype=np.float64)
    total_wins = wins.sum(axis=1)
    pair_counts = wins + wins.T
    for _ in range(max_iterations):
        denom_matrix = pair_counts / np.add.outer(gamma, gamma)
        np.fill_diagonal(denom_matrix, 0.0)
        denominator = denom_matrix.sum(axis=1)
        new_gamma = total_wins / np.maximum(denominator, 1e-300)
        new_gamma = np.maximum(new_gamma, 1e-300)
        new_gamma /= new_gamma.sum()
        delta = float(np.max(np.abs(new_gamma - gamma)))
        gamma = new_gamma
        if delta < tolerance:
            break

    order = np.argsort(-gamma, kind="stable")
    return Ranking(order.tolist()), gamma
