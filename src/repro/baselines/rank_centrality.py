"""Rank Centrality (Negahban, Oh, Shah) — spectral pairwise aggregation.

A well-known score-based aggregator from the pairwise-preference family
the paper surveys: build a random walk on the comparison graph where the
walk moves from ``i`` to ``j`` proportionally to the fraction of votes
``j`` won against ``i``; the stationary distribution ranks the objects
(a stronger object accumulates more stationary mass).  Included as an
extra baseline for the ablation benches — under the BTL worker model its
scores are consistent, so it is a strong score-based reference.

Two transition-chain representations are provided behind one public
function:

* ``method="dense"`` — the original ``n x n`` construction, kept as the
  small-``n`` differential oracle;
* ``method="sparse"`` — the same chain assembled as a ``scipy.sparse``
  CSR matrix from the shared edge table
  (:func:`repro.inference.incidence.build_incidence`), with power
  iteration as sparse mat-vecs.  Memory and per-iteration cost are
  O(observed pairs) instead of O(n^2), so the baseline scales to the
  same large ``n`` as the sparse inference engines.

``method="auto"`` (default) picks dense below
:data:`SPARSE_THRESHOLD` objects — bit-compatible with the historical
behaviour on every committed benchmark — and sparse above it.  The two
paths compute identical transition entries; only float summation order
differs in the mat-vec, so scores agree to ~1e-12 (checked by the
differential suite).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np
from scipy import sparse

from ..exceptions import ConfigurationError, InferenceError
from ..inference.incidence import build_incidence
from ..types import Ranking, VoteSet

#: ``method="auto"`` crossover: below this many objects the dense oracle
#: runs (unchanged historical behaviour), at or above it the CSR chain.
SPARSE_THRESHOLD = 128


def rank_centrality(
    votes: VoteSet,
    *,
    max_iterations: int = 10_000,
    tolerance: float = 1e-10,
    regularization: float = 0.1,
    method: str = "auto",
) -> Tuple[Ranking, np.ndarray]:
    """Rank objects by the stationary distribution of the vote walk.

    Parameters
    ----------
    votes:
        Collected pairwise votes.
    max_iterations / tolerance:
        Power-iteration stopping rule on the L1 change of the
        stationary estimate.
    regularization:
        Pseudo-votes added in both directions of every *observed* pair,
        keeping the chain irreducible on its comparison graph.
    method:
        ``"dense"`` (n x n oracle), ``"sparse"`` (CSR chain over
        observed pairs only), or ``"auto"`` (default; dense below
        :data:`SPARSE_THRESHOLD` objects, sparse at or above).

    Returns
    -------
    (ranking, scores):
        The ranking (most preferred first) and the stationary
        probabilities, indexed by object id.

    Raises
    ------
    InferenceError
        On an empty vote set.
    ConfigurationError
        On an unknown ``method``.
    """
    if method not in ("auto", "dense", "sparse"):
        raise ConfigurationError(
            f"method must be 'auto', 'dense' or 'sparse', got {method!r}"
        )
    if len(votes) == 0:
        raise InferenceError("Rank Centrality needs at least one vote")
    n = votes.n_objects
    if method == "auto":
        method = "sparse" if n >= SPARSE_THRESHOLD else "dense"

    if method == "dense":
        transition = _dense_transition(votes, regularization)
        pi = _power_iteration_dense(transition, max_iterations, tolerance)
    else:
        transition, self_loop = _sparse_transition(votes, regularization)
        pi = _power_iteration_sparse(
            transition, self_loop, max_iterations, tolerance
        )

    pi = np.maximum(pi, 0.0)
    pi = pi / pi.sum() if pi.sum() > 0 else np.full(n, 1.0 / n)
    order = np.argsort(-pi, kind="stable")
    return Ranking(order.tolist()), pi


def _dense_transition(
    votes: VoteSet, regularization: float
) -> np.ndarray:
    """The original ``n x n`` chain (the small-``n`` oracle)."""
    n = votes.n_objects
    arrays = votes.arrays()
    wins = np.zeros((n, n), dtype=np.float64)  # wins[i, j] = #(i beat j)
    np.add.at(wins, (arrays.winner, arrays.loser), 1.0)
    observed = (wins + wins.T) > 0
    wins = wins + regularization * observed

    totals = wins + wins.T
    with np.errstate(invalid="ignore", divide="ignore"):
        # Transition i -> j proportional to j's win share against i.
        share = np.where(totals > 0, wins.T / np.maximum(totals, 1e-300), 0.0)
    # Normalise by the maximum degree so rows sum to <= 1; the remainder
    # is a self-loop (the standard Rank Centrality construction).
    degree = np.count_nonzero(totals, axis=1)
    d_max = max(int(degree.max()), 1)
    transition = share / d_max
    np.fill_diagonal(transition, 0.0)
    self_loop = 1.0 - transition.sum(axis=1)
    return transition + np.diag(self_loop)


def _power_iteration_dense(
    transition: np.ndarray, max_iterations: int, tolerance: float
) -> np.ndarray:
    n = transition.shape[0]
    pi = np.full(n, 1.0 / n)
    for _ in range(max_iterations):
        new_pi = pi @ transition
        if float(np.abs(new_pi - pi).sum()) < tolerance:
            pi = new_pi
            break
        pi = new_pi
    return pi


def _sparse_transition(
    votes: VoteSet, regularization: float
) -> Tuple[sparse.csr_matrix, np.ndarray]:
    """The same chain on the shared edge table, as CSR + self-loop vector.

    Entry for entry, the arithmetic matches the dense construction:
    win counts aggregate per observed pair, the regulariser is added in
    both directions of observed pairs only, and rows are normalised by
    the maximum comparison degree.  The self-loop mass is returned as a
    separate vector so the matrix stays at 2 entries per observed pair.
    """
    n = votes.n_objects
    incidence = build_incidence(votes.arrays())
    lo, hi = incidence.edge_lo, incidence.edge_hi
    wins_lo = incidence.value_sum + regularization      # lo beat hi
    wins_hi = (incidence.counts - incidence.value_sum) + regularization
    totals = incidence.counts + 2.0 * regularization

    degree = (np.bincount(lo, minlength=n)
              + np.bincount(hi, minlength=n))
    d_max = max(int(degree.max()), 1)

    # transition[i -> j] = wins[j over i] / totals / d_max.
    rows = np.concatenate([lo, hi])
    cols = np.concatenate([hi, lo])
    data = np.concatenate([wins_hi / totals, wins_lo / totals]) / d_max
    transition = sparse.csr_matrix(
        (data, (rows, cols)), shape=(n, n)
    )
    self_loop = 1.0 - np.asarray(transition.sum(axis=1)).ravel()
    return transition, self_loop


def _power_iteration_sparse(
    transition: sparse.csr_matrix,
    self_loop: np.ndarray,
    max_iterations: int,
    tolerance: float,
) -> np.ndarray:
    n = transition.shape[0]
    # pi @ T as T^T @ pi, pre-transposed once so every iteration is a
    # single CSR mat-vec plus the elementwise self-loop term.
    transposed = transition.T.tocsr()
    pi = np.full(n, 1.0 / n)
    for _ in range(max_iterations):
        new_pi = transposed @ pi + self_loop * pi
        if float(np.abs(new_pi - pi).sum()) < tolerance:
            pi = new_pi
            break
        pi = new_pi
    return pi
