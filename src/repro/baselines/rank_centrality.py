"""Rank Centrality (Negahban, Oh, Shah) — spectral pairwise aggregation.

A well-known score-based aggregator from the pairwise-preference family
the paper surveys: build a random walk on the comparison graph where the
walk moves from ``i`` to ``j`` proportionally to the fraction of votes
``j`` won against ``i``; the stationary distribution ranks the objects
(a stronger object accumulates more stationary mass).  Included as an
extra baseline for the ablation benches — under the BTL worker model its
scores are consistent, so it is a strong score-based reference.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..exceptions import InferenceError
from ..types import Ranking, VoteSet


def rank_centrality(
    votes: VoteSet,
    *,
    max_iterations: int = 10_000,
    tolerance: float = 1e-10,
    regularization: float = 0.1,
) -> Tuple[Ranking, np.ndarray]:
    """Rank objects by the stationary distribution of the vote walk.

    Parameters
    ----------
    votes:
        Collected pairwise votes.
    max_iterations / tolerance:
        Power-iteration stopping rule on the L1 change of the
        stationary estimate.
    regularization:
        Pseudo-votes added in both directions of every *observed* pair,
        keeping the chain irreducible on its comparison graph.

    Returns
    -------
    (ranking, scores):
        The ranking (most preferred first) and the stationary
        probabilities, indexed by object id.

    Raises
    ------
    InferenceError
        On an empty vote set.
    """
    if len(votes) == 0:
        raise InferenceError("Rank Centrality needs at least one vote")
    n = votes.n_objects
    arrays = votes.arrays()
    wins = np.zeros((n, n), dtype=np.float64)  # wins[i, j] = #(i beat j)
    np.add.at(wins, (arrays.winner, arrays.loser), 1.0)
    observed = (wins + wins.T) > 0
    wins = wins + regularization * observed

    totals = wins + wins.T
    with np.errstate(invalid="ignore", divide="ignore"):
        # Transition i -> j proportional to j's win share against i.
        share = np.where(totals > 0, wins.T / np.maximum(totals, 1e-300), 0.0)
    # Normalise by the maximum degree so rows sum to <= 1; the remainder
    # is a self-loop (the standard Rank Centrality construction).
    degree = np.count_nonzero(totals, axis=1)
    d_max = max(int(degree.max()), 1)
    transition = share / d_max
    np.fill_diagonal(transition, 0.0)
    self_loop = 1.0 - transition.sum(axis=1)
    transition = transition + np.diag(self_loop)

    pi = np.full(n, 1.0 / n)
    for _ in range(max_iterations):
        new_pi = pi @ transition
        if float(np.abs(new_pi - pi).sum()) < tolerance:
            pi = new_pi
            break
        pi = new_pi
    pi = np.maximum(pi, 0.0)
    pi = pi / pi.sum() if pi.sum() > 0 else np.full(n, 1.0 / n)

    order = np.argsort(-pi, kind="stable")
    return Ranking(order.tolist()), pi
