"""RepeatChoice (RC) — aggregation of partial rankings (Ailon 2010).

RC aggregates ``m`` partial rankings by iterated refinement: start with
all objects in one bucket, then visit the voters in random order and let
each voter split every bucket according to their own partial ranking
(objects they rank earlier go to earlier sub-buckets; objects they do not
rank stay together).  Remaining ties are broken uniformly at random.

In the crowdsourced-comparison setting each worker's partial ranking is
the partial order induced by their own pairwise votes; with a small
budget each worker has seen only a sliver of the objects, so RC's output
is close to random — which is exactly the weakness Table I exposes (RC
"tries to minimize the sum of distances between the output and the
individual rankings", but the individual rankings barely constrain the
output).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..exceptions import InferenceError
from ..rng import SeedLike, ensure_rng
from ..types import Ranking, VoteSet


def _worker_partial_order(votes) -> Dict[int, int]:
    """A worker's partial ranking as object -> level (topological depth).

    The worker's votes form a preference digraph; objects are levelled by
    longest-path depth (cycles from inconsistent votes are broken by
    capping the propagation).  Lower level = more preferred.
    """
    succ: Dict[int, List[int]] = {}
    objects = set()
    for vote in votes:
        succ.setdefault(vote.winner, []).append(vote.loser)
        objects.add(vote.winner)
        objects.add(vote.loser)
    level = {obj: 0 for obj in objects}
    # Bellman-Ford style relaxation, capped to |objects| rounds so that
    # accidental cycles (a worker voting inconsistently) terminate.
    for _ in range(len(objects)):
        changed = False
        for winner, losers in succ.items():
            for loser in losers:
                if level[loser] < level[winner] + 1:
                    level[loser] = level[winner] + 1
                    changed = True
        if not changed:
            break
    return level


def repeat_choice(votes: VoteSet, rng: SeedLike = None) -> Ranking:
    """Aggregate votes into a full ranking with RepeatChoice.

    Raises
    ------
    InferenceError
        On an empty vote set.
    """
    if len(votes) == 0:
        raise InferenceError("RepeatChoice needs at least one vote")
    generator = ensure_rng(rng)
    n = votes.n_objects

    by_worker = votes.by_worker()
    worker_ids = list(by_worker)
    generator.shuffle(worker_ids)

    # Buckets of currently tied objects, in output order.
    buckets: List[List[int]] = [list(range(n))]
    for worker in worker_ids:
        levels = _worker_partial_order(by_worker[worker])
        refined: List[List[int]] = []
        for bucket in buckets:
            if len(bucket) == 1:
                refined.append(bucket)
                continue
            ranked = sorted(
                (obj for obj in bucket if obj in levels),
                key=lambda o: levels[o],
            )
            unranked = [obj for obj in bucket if obj not in levels]
            if not ranked:
                refined.append(bucket)
                continue
            # Split the bucket: one sub-bucket per distinct level, with
            # the unranked objects kept together after them (the voter
            # expresses no opinion on those).
            current_level = None
            for obj in ranked:
                if levels[obj] != current_level:
                    refined.append([])
                    current_level = levels[obj]
                refined[-1].append(obj)
            if unranked:
                refined.append(unranked)
        buckets = refined

    order: List[int] = []
    for bucket in buckets:
        if len(bucket) > 1:
            generator.shuffle(bucket)
        order.extend(bucket)
    return Ranking(order)
