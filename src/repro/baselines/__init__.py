"""Baseline ranking algorithms (Sec. VI-A2).

The paper compares against one representative of each related-work
category:

* **RepeatChoice (RC)** — rank aggregation over the workers' partial
  rankings (Ailon 2010);
* **QuickSort (QS)** — Condorcet-graph crowdsourced ranking via
  majority-vote quicksort (Montague & Aslam 2002);
* **CrowdBT** — Bradley-Terry with worker quality and active learning,
  the *interactive* truth-discovery baseline (Chen et al. 2013).

Beyond the paper, :mod:`~repro.baselines.btl`, :mod:`~repro.baselines.borda`
and :mod:`~repro.baselines.copeland` provide classical score-based
aggregators for the ablation studies.
"""

from .repeat_choice import repeat_choice
from .quicksort import quicksort_ranking
from .crowd_bt import CrowdBT, CrowdBTConfig, crowd_bt_rank
from .btl import bradley_terry_mle
from .borda import borda_count
from .copeland import copeland_ranking
from .rank_centrality import rank_centrality
from .kemeny import kemeny_local_search

__all__ = [
    "repeat_choice",
    "quicksort_ranking",
    "CrowdBT",
    "CrowdBTConfig",
    "crowd_bt_rank",
    "bradley_terry_mle",
    "borda_count",
    "copeland_ranking",
    "rank_centrality",
    "kemeny_local_search",
]
