"""CrowdBT — Bradley-Terry with worker quality, interactive (Chen et al. 2013).

CrowdBT models each object with a latent score ``s_i`` and each worker
``k`` with a reliability ``eta_k`` (the probability the worker answers
according to the true Bradley-Terry order):

    ``P(k says i > j) = eta_k * pi_ij + (1 - eta_k) * pi_ji``,
    ``pi_ij = e^{s_i} / (e^{s_i} + e^{s_j})``.

Inference is online (assumed-density filtering): scores carry Gaussian
posteriors ``N(mu_i, var_i)``, worker reliability carries a Beta
posterior ``Beta(alpha_k, beta_k)``; each incoming vote moment-matches
all three.  Pair selection is *active*: the next query maximises the
expected KL information gain over a candidate set, which is what makes
CrowdBT an **interactive** algorithm — and why its wall-clock time blows
up relative to SAPS in Table I (the per-query active-selection scan is
the dominant cost, exactly as the paper observes).

The implementation follows Chen et al.'s update equations; the candidate
set for active selection is sampled per query (``candidate_pairs``)
because the full ``O(n^2)`` scan per vote is gratuitous at large ``n``
(the paper's own Table I shows CrowdBT taking 26,000+ seconds — the
sampled scan preserves the interactive cost shape at laptop scale).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..exceptions import ConfigurationError, InferenceError
from ..platform.interactive import InteractivePlatform
from ..rng import SeedLike, ensure_rng
from ..types import Ranking, Vote


@dataclass(frozen=True)
class CrowdBTConfig:
    """CrowdBT hyper-parameters (defaults follow Chen et al.).

    Attributes
    ----------
    prior_variance:
        Initial variance of every score posterior.
    alpha0 / beta0:
        Beta prior of worker reliability (10/1 encodes "workers are
        mostly reliable", as in the original paper).
    kappa:
        Variance floor multiplier preventing posterior collapse.
    candidate_pairs:
        ``None`` (default) scores **every** ordered pair per query, as
        Chen et al.'s active selection does — this O(n^2)-per-vote scan
        is precisely what blows CrowdBT's wall-clock up against SAPS in
        Table I.  An integer samples that many random candidates
        instead (a cheaper approximation for quick experiments).
    exploration:
        Probability of querying a uniformly random pair instead of the
        information-gain argmax (γ-exploration).
    """

    prior_variance: float = 1.0
    alpha0: float = 10.0
    beta0: float = 1.0
    kappa: float = 1e-4
    candidate_pairs: Optional[int] = None
    exploration: float = 0.1

    def __post_init__(self) -> None:
        if self.prior_variance <= 0:
            raise ConfigurationError("prior_variance must be positive")
        if self.alpha0 <= 0 or self.beta0 <= 0:
            raise ConfigurationError("Beta prior parameters must be positive")
        if not 0 < self.kappa < 1:
            raise ConfigurationError("kappa must be in (0, 1)")
        if self.candidate_pairs is not None and self.candidate_pairs < 1:
            raise ConfigurationError("candidate_pairs must be >= 1 or None")
        if not 0 <= self.exploration <= 1:
            raise ConfigurationError("exploration must be in [0, 1]")


class CrowdBT:
    """Online CrowdBT state: score and worker-reliability posteriors."""

    def __init__(
        self,
        n_objects: int,
        n_workers: int,
        config: Optional[CrowdBTConfig] = None,
        rng: SeedLike = None,
    ):
        config = config if config is not None else CrowdBTConfig()
        if n_objects < 2:
            raise ConfigurationError("need at least 2 objects")
        if n_workers < 1:
            raise ConfigurationError("need at least 1 worker")
        self._config = config
        self._rng = ensure_rng(rng)
        self.mu = np.zeros(n_objects, dtype=np.float64)
        self.var = np.full(n_objects, config.prior_variance, dtype=np.float64)
        self.alpha = np.full(n_workers, config.alpha0, dtype=np.float64)
        self.beta = np.full(n_workers, config.beta0, dtype=np.float64)
        self.n_updates = 0

    # -- model quantities -----------------------------------------------------
    @property
    def n_objects(self) -> int:
        return len(self.mu)

    def eta(self, worker: int) -> float:
        """Posterior-mean reliability of a worker."""
        return float(self.alpha[worker] / (self.alpha[worker] + self.beta[worker]))

    def bt_probability(self, i: int, j: int) -> float:
        """``pi_ij`` under the current score means."""
        return float(1.0 / (1.0 + math.exp(self.mu[j] - self.mu[i])))

    # -- online update (ADF / moment matching) ---------------------------------
    def update(self, vote: Vote) -> None:
        """Absorb one vote: ``vote.winner`` beat ``vote.loser``."""
        i, j, k = vote.winner, vote.loser, vote.worker
        cfg = self._config
        eta = self.eta(k)

        e_i = math.exp(self.mu[i])
        e_j = math.exp(self.mu[j])
        pi_ij = e_i / (e_i + e_j)
        pi_ji = 1.0 - pi_ij

        # Likelihood of the observation under the mixture.
        like = eta * pi_ij + (1.0 - eta) * pi_ji
        like = max(like, 1e-12)

        # Gradient terms from Chen et al. (2013), Sec. 4.
        grad = (eta * pi_ij * pi_ji - (1.0 - eta) * pi_ji * pi_ij) / like
        hess = pi_ij * pi_ji  # curvature scale of log pi

        self.mu[i] += self.var[i] * grad
        self.mu[j] -= self.var[j] * grad
        damp_i = 1.0 - self.var[i] * hess
        damp_j = 1.0 - self.var[j] * hess
        self.var[i] *= max(damp_i, cfg.kappa)
        self.var[j] *= max(damp_j, cfg.kappa)

        # Worker posterior: expected correctness of this answer.
        correct = eta * pi_ij / like
        self.alpha[k] += correct
        self.beta[k] += 1.0 - correct
        self.n_updates += 1

    # -- active selection -------------------------------------------------------
    def select_pair(self) -> Tuple[int, int]:
        """Pick the next query pair by expected information gain.

        With ``candidate_pairs=None`` (default) every ordered pair is
        scored — the faithful, per-query O(n^2) active-selection scan;
        otherwise a random candidate subset is scored.
        """
        cfg = self._config
        if self._rng.random() < cfg.exploration:
            return self._random_pair()
        if cfg.candidate_pairs is None:
            return self._full_scan_pair()
        best_pair = None
        best_gain = -math.inf
        for _ in range(cfg.candidate_pairs):
            i, j = self._random_pair()
            gain = self._expected_gain(i, j)
            if gain > best_gain:
                best_gain, best_pair = gain, (i, j)
        assert best_pair is not None
        return best_pair

    def _full_scan_pair(self) -> Tuple[int, int]:
        """Vectorised gain over all pairs; returns the argmax pair."""
        n = self.n_objects
        pi = 1.0 / (1.0 + np.exp(self.mu[None, :] - self.mu[:, None]))
        gain = pi * (1.0 - pi) * (self.var[:, None] + self.var[None, :])
        np.fill_diagonal(gain, -np.inf)
        flat = int(np.argmax(gain))
        return flat // n, flat % n

    def _random_pair(self) -> Tuple[int, int]:
        n = self.n_objects
        i = int(self._rng.integers(n))
        j = int(self._rng.integers(n - 1))
        if j >= i:
            j += 1
        return i, j

    def _expected_gain(self, i: int, j: int) -> float:
        """Expected reduction in score uncertainty from querying (i, j).

        A cheap surrogate for Chen et al.'s full KL computation: the
        outcome-averaged squared score-mean movement, weighted by the
        current variances.  Monotone in the exact gain for the Gaussian
        ADF updates and two orders of magnitude cheaper.
        """
        pi_ij = self.bt_probability(i, j)
        pi_ji = 1.0 - pi_ij
        spread = pi_ij * pi_ji  # largest when the pair is undecided
        return float(spread * (self.var[i] + self.var[j]))

    # -- output -----------------------------------------------------------------
    def ranking(self) -> Ranking:
        """Current MAP ranking: objects by posterior mean, descending."""
        order = np.argsort(-self.mu, kind="stable")
        return Ranking(order.tolist())


def crowd_bt_rank(
    platform: InteractivePlatform,
    n_workers: int,
    config: Optional[CrowdBTConfig] = None,
    rng: SeedLike = None,
) -> Ranking:
    """Run the full interactive CrowdBT loop until the budget is spent.

    Each round actively selects a pair, queries one random worker
    through the platform (paying the per-comparison reward), and updates
    the posteriors online.
    """
    model = CrowdBT(platform.n_objects, n_workers, config, rng)
    while platform.can_query():
        i, j = model.select_pair()
        vote = platform.query(i, j)
        model.update(vote)
    if model.n_updates == 0:
        raise InferenceError("CrowdBT budget afforded zero queries")
    return model.ranking()
