"""Kemeny-style rank aggregation by weighted local search.

The Kemeny optimal ranking minimises the total weighted disagreement
with the pairwise vote counts — the canonical rank-aggregation objective
(NP-hard via Kendall distance, Sec. VII's Bartholdi reference).  This
implementation runs the classic pipeline:

1. start from the Borda order (a 5-approximation under vote margins);
2. deterministic first-improvement local search over adjacent swaps and
   windowed single-vertex reinsertion on the *disagreement* objective
   ``cost(P) = sum over ordered pairs (i before j) of #votes(j beats i)``.

An adjacent swap changes the objective by exactly the margin of the
swapped pair, so sweeps are O(n) after the O(V) count matrix is built.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..exceptions import InferenceError
from ..rng import SeedLike, ensure_rng
from ..types import Ranking, VoteSet
from .borda import borda_count


def kemeny_local_search(
    votes: VoteSet,
    rng: SeedLike = None,
    *,
    max_sweeps: int = 50,
    reinsertion_window: int = 10,
) -> Tuple[Ranking, float]:
    """Approximate the Kemeny ranking; returns ``(ranking, disagreement)``.

    ``disagreement`` is the number of individual votes the returned
    ranking contradicts (the Kemeny objective value).

    Raises
    ------
    InferenceError
        On an empty vote set.
    """
    if len(votes) == 0:
        raise InferenceError("Kemeny aggregation needs at least one vote")
    generator = ensure_rng(rng)
    n = votes.n_objects
    arrays = votes.arrays()
    wins = np.zeros((n, n), dtype=np.float64)
    np.add.at(wins, (arrays.winner, arrays.loser), 1.0)

    order = list(borda_count(votes, generator).order)

    def disagreement(sequence) -> float:
        arr = np.asarray(sequence)
        total = 0.0
        # cost = sum over positions a < b of wins[later, earlier].
        for a in range(len(arr)):
            total += float(wins[arr[a + 1:], arr[a]].sum())
        return total

    current = disagreement(order)
    for _ in range(max_sweeps):
        improved = False
        # Adjacent swaps: delta = margin of the swapped pair.
        for k in range(n - 1):
            a, b = order[k], order[k + 1]
            delta = wins[a, b] - wins[b, a]  # cost change if swapped
            if delta < -1e-12:
                order[k], order[k + 1] = b, a
                current += delta
                improved = True
        # Windowed reinsertion with full re-evaluation (correct and
        # cheap enough at the window sizes used here).
        for k in range(n):
            vertex = order[k]
            best_cost = current - 1e-12
            best_candidate = None
            lo = max(0, k - reinsertion_window)
            hi = min(n - 1, k + reinsertion_window)
            for slot in range(lo, hi + 1):
                if slot == k:
                    continue
                candidate = order[:k] + order[k + 1:]
                candidate.insert(slot, vertex)
                cand_cost = disagreement(candidate)
                if cand_cost < best_cost:
                    best_cost = cand_cost
                    best_candidate = candidate
            if best_candidate is not None:
                order = best_candidate
                current = best_cost
                improved = True
        if not improved:
            break
    return Ranking(order), current
