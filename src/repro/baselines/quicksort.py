"""QuickSort Condorcet fusion (QS) — Montague & Aslam 2002.

The votes induce a Condorcet graph: object ``i`` beats ``j`` when the
majority of votes on the pair prefers ``i``.  QS quicksorts the objects
with that majority comparator; pairs the budget never crowdsourced are
resolved by a fair coin (the standard treatment, and the reason QS
degrades sharply at small selection ratios — most pivot comparisons are
guesses).
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from ..exceptions import InferenceError
from ..rng import SeedLike, ensure_rng
from ..types import Pair, Ranking, VoteSet


def _majority_table(votes: VoteSet) -> Dict[Pair, float]:
    """Vote share for ``i ≺ j`` per canonical pair."""
    arrays = votes.arrays()
    wins = np.bincount(arrays.pair_idx, weights=arrays.value,
                       minlength=arrays.n_pairs)
    totals = np.bincount(arrays.pair_idx, minlength=arrays.n_pairs)
    return dict(zip(arrays.pairs(), (wins / totals).tolist()))


def quicksort_ranking(votes: VoteSet, rng: SeedLike = None) -> Ranking:
    """Full ranking by majority-vote quicksort.

    Raises
    ------
    InferenceError
        On an empty vote set.
    """
    if len(votes) == 0:
        raise InferenceError("QuickSort needs at least one vote")
    generator = ensure_rng(rng)
    majority = _majority_table(votes)

    def prefers(a: int, b: int) -> bool:
        """True iff ``a`` should be ranked before ``b``."""
        pair = (a, b) if a < b else (b, a)
        share = majority.get(pair)
        if share is None or share == 0.5:
            return bool(generator.random() < 0.5)
        a_wins = share > 0.5 if pair == (a, b) else share < 0.5
        return a_wins

    def sort(items: List[int]) -> List[int]:
        if len(items) <= 1:
            return items
        pivot_idx = int(generator.integers(len(items)))
        pivot = items[pivot_idx]
        before: List[int] = []
        after: List[int] = []
        for obj in items:
            if obj == pivot:
                continue
            (before if prefers(obj, pivot) else after).append(obj)
        return sort(before) + [pivot] + sort(after)

    order = sort(list(range(votes.n_objects)))
    return Ranking(order)
