"""Borda count on pairwise votes.

Each object is scored by its mean win rate over the votes that involve
it; the ranking sorts scores descending.  The simplest score-based
aggregator — used in ablations as the "no graph, no quality, no search"
reference point.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import InferenceError
from ..rng import SeedLike, ensure_rng
from ..types import Ranking, VoteSet


def borda_count(votes: VoteSet, rng: SeedLike = None) -> Ranking:
    """Rank objects by mean win rate; unseen objects tie at 0.5.

    Ties are broken by a random jitter drawn from ``rng`` so repeated
    runs do not systematically favour low object ids.

    Raises
    ------
    InferenceError
        On an empty vote set.
    """
    if len(votes) == 0:
        raise InferenceError("Borda needs at least one vote")
    generator = ensure_rng(rng)
    n = votes.n_objects
    arrays = votes.arrays()
    wins = np.bincount(arrays.winner, minlength=n).astype(np.float64)
    appearances = (np.bincount(arrays.winner, minlength=n)
                   + np.bincount(arrays.loser, minlength=n)).astype(np.float64)
    with np.errstate(invalid="ignore"):
        rate = np.where(appearances > 0, wins / np.maximum(appearances, 1.0), 0.5)
    jitter = generator.uniform(0.0, 1e-9, size=n)
    order = np.argsort(-(rate + jitter), kind="stable")
    return Ranking(order.tolist())
