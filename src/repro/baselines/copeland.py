"""Copeland ranking on the majority (Condorcet) relation.

An object's Copeland score is the number of opponents it beats by
majority minus the number it loses to; the ranking sorts scores
descending.  A tournament-style reference aggregator for the ablation
benches.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import InferenceError
from ..rng import SeedLike, ensure_rng
from ..types import Ranking, VoteSet


def copeland_ranking(votes: VoteSet, rng: SeedLike = None) -> Ranking:
    """Rank by Copeland score (majority wins minus majority losses).

    Exact vote ties on a pair contribute to neither side.  Score ties in
    the final ordering are broken by random jitter.

    Raises
    ------
    InferenceError
        On an empty vote set.
    """
    if len(votes) == 0:
        raise InferenceError("Copeland needs at least one vote")
    generator = ensure_rng(rng)
    n = votes.n_objects
    arrays = votes.arrays()
    # forward = #votes preferring the canonical-low object, per pair.
    forward = np.bincount(arrays.pair_idx, weights=arrays.value,
                          minlength=arrays.n_pairs)
    total = np.bincount(arrays.pair_idx, minlength=arrays.n_pairs)

    score = np.zeros(n, dtype=np.float64)
    low_wins = 2.0 * forward > total
    high_wins = 2.0 * forward < total
    np.add.at(score, arrays.pair_lo[low_wins], 1.0)
    np.add.at(score, arrays.pair_hi[low_wins], -1.0)
    np.add.at(score, arrays.pair_hi[high_wins], 1.0)
    np.add.at(score, arrays.pair_lo[high_wins], -1.0)
    jitter = generator.uniform(0.0, 1e-9, size=n)
    order = np.argsort(-(score + jitter), kind="stable")
    return Ranking(order.tolist())
