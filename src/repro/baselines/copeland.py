"""Copeland ranking on the majority (Condorcet) relation.

An object's Copeland score is the number of opponents it beats by
majority minus the number it loses to; the ranking sorts scores
descending.  A tournament-style reference aggregator for the ablation
benches.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..exceptions import InferenceError
from ..rng import SeedLike, ensure_rng
from ..types import Pair, Ranking, VoteSet


def copeland_ranking(votes: VoteSet, rng: SeedLike = None) -> Ranking:
    """Rank by Copeland score (majority wins minus majority losses).

    Exact vote ties on a pair contribute to neither side.  Score ties in
    the final ordering are broken by random jitter.

    Raises
    ------
    InferenceError
        On an empty vote set.
    """
    if len(votes) == 0:
        raise InferenceError("Copeland needs at least one vote")
    generator = ensure_rng(rng)
    n = votes.n_objects
    forward: Dict[Pair, int] = {}
    total: Dict[Pair, int] = {}
    for vote in votes:
        pair = vote.pair
        forward[pair] = forward.get(pair, 0) + int(vote.winner == pair[0])
        total[pair] = total.get(pair, 0) + 1

    score = np.zeros(n, dtype=np.float64)
    for (i, j), count in total.items():
        f = forward[(i, j)]
        if 2 * f > count:
            score[i] += 1.0
            score[j] -= 1.0
        elif 2 * f < count:
            score[j] += 1.0
            score[i] -= 1.0
    jitter = generator.uniform(0.0, 1e-9, size=n)
    order = np.argsort(-(score + jitter), kind="stable")
    return Ranking(order.tolist())
