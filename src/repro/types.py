"""Core value types shared across the library.

The vocabulary follows the paper:

* *objects* ``O = {O_0, ..., O_{n-1}}`` are identified by integer ids;
* a *comparison task* is an unordered pair of objects ``(i, j)``;
* a *vote* is one worker's directed preference on one task;
* a *ranking* is a permutation of the object ids, most-preferred first
  (``ranking[0]`` is the object ranked first, i.e. the Hamiltonian-path
  source).

All types here are immutable value objects; algorithms never mutate them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Sequence, Tuple

import numpy as np

from .exceptions import ConfigurationError

#: An object identifier (index into the object universe).
ObjectId = int

#: A worker identifier.
WorkerId = int

#: An unordered comparison pair, canonically stored with ``first < second``.
Pair = Tuple[ObjectId, ObjectId]


def canonical_pair(i: ObjectId, j: ObjectId) -> Pair:
    """Return the canonical (sorted) form of an unordered pair.

    Raises
    ------
    ConfigurationError
        If ``i == j`` — an object cannot be compared with itself.
    """
    if i == j:
        raise ConfigurationError(f"cannot compare object {i} with itself")
    return (i, j) if i < j else (j, i)


@dataclass(frozen=True)
class Vote:
    """A single worker's answer to one pairwise comparison.

    ``winner`` and ``loser`` encode the preference ``winner ≺ loser``
    (winner ranked *before*, i.e. preferred).  This matches the paper's
    ``x_ij^k = 1`` iff ``O_i ≺ O_j``.
    """

    worker: WorkerId
    winner: ObjectId
    loser: ObjectId

    def __post_init__(self) -> None:
        if self.winner == self.loser:
            raise ConfigurationError(
                f"vote by worker {self.worker} compares object "
                f"{self.winner} with itself"
            )

    @property
    def pair(self) -> Pair:
        """The canonical unordered pair this vote answers."""
        return canonical_pair(self.winner, self.loser)

    def value_for(self, i: ObjectId, j: ObjectId) -> float:
        """The paper's ``x_ij^k``: 1.0 if this vote says ``i ≺ j`` else 0.0."""
        if {i, j} != {self.winner, self.loser}:
            raise ConfigurationError(
                f"vote on pair {self.pair} queried for pair {(i, j)}"
            )
        return 1.0 if self.winner == i else 0.0


@dataclass(frozen=True)
class HIT:
    """A Human Intelligence Task: a bundle of ``c >= 1`` comparison pairs.

    The paper allows one HIT to contain several pairwise comparisons; the
    platform assigns each HIT to ``w`` distinct workers.
    """

    hit_id: int
    pairs: Tuple[Pair, ...]

    def __post_init__(self) -> None:
        if not self.pairs:
            raise ConfigurationError(f"HIT {self.hit_id} contains no pairs")
        for i, j in self.pairs:
            if i == j:
                raise ConfigurationError(
                    f"HIT {self.hit_id} contains degenerate pair ({i}, {j})"
                )
            if (i, j) != canonical_pair(i, j):
                raise ConfigurationError(
                    f"HIT {self.hit_id} pair ({i}, {j}) is not canonical"
                )

    def __len__(self) -> int:
        return len(self.pairs)

    def __iter__(self) -> Iterator[Pair]:
        return iter(self.pairs)


class Ranking:
    """An immutable full ranking (permutation) of ``n`` objects.

    ``ranking[0]`` is the most-preferred object.  Provides O(1) position
    lookup, which the metrics and baselines rely on heavily.
    """

    __slots__ = ("_order", "_position")

    def __init__(self, order: Sequence[ObjectId]):
        order_tuple = tuple(int(o) for o in order)
        position: Dict[ObjectId, int] = {}
        for idx, obj in enumerate(order_tuple):
            if obj in position:
                raise ConfigurationError(f"object {obj} appears twice in ranking")
            position[obj] = idx
        self._order = order_tuple
        self._position = position

    # -- container protocol -------------------------------------------------
    def __len__(self) -> int:
        return len(self._order)

    def __getitem__(self, idx: int) -> ObjectId:
        return self._order[idx]

    def __iter__(self) -> Iterator[ObjectId]:
        return iter(self._order)

    def __contains__(self, obj: ObjectId) -> bool:
        return obj in self._position

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Ranking):
            return self._order == other._order
        if isinstance(other, (tuple, list)):
            return self._order == tuple(other)
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._order)

    def __repr__(self) -> str:
        if len(self._order) <= 12:
            return f"Ranking({list(self._order)})"
        head = ", ".join(str(o) for o in self._order[:6])
        return f"Ranking([{head}, ...] n={len(self._order)})"

    # -- accessors -----------------------------------------------------------
    @property
    def order(self) -> Tuple[ObjectId, ...]:
        """The permutation as a tuple, most-preferred first."""
        return self._order

    def position(self, obj: ObjectId) -> int:
        """0-based rank position of ``obj`` (0 = most preferred)."""
        try:
            return self._position[obj]
        except KeyError:
            raise ConfigurationError(f"object {obj} not in ranking") from None

    def prefers(self, i: ObjectId, j: ObjectId) -> bool:
        """True iff this ranking places ``i`` before ``j`` (``i ≺ j``)."""
        return self.position(i) < self.position(j)

    def pairs(self) -> Iterator[Tuple[ObjectId, ObjectId]]:
        """Yield all ordered pairs ``(i, j)`` with ``i`` ranked before ``j``."""
        order = self._order
        n = len(order)
        for a in range(n):
            for b in range(a + 1, n):
                yield order[a], order[b]

    def reversed(self) -> "Ranking":
        """The exact reverse ranking."""
        return Ranking(self._order[::-1])

    def restricted_to(self, objects: Iterable[ObjectId]) -> "Ranking":
        """The induced ranking on a subset of objects (paper's sub-rankings)."""
        keep = set(objects)
        return Ranking([o for o in self._order if o in keep])

    @staticmethod
    def identity(n: int) -> "Ranking":
        """The identity ranking ``0 ≺ 1 ≺ ... ≺ n-1``."""
        return Ranking(range(n))

    @staticmethod
    def random(n: int, rng) -> "Ranking":
        """A uniformly random ranking of ``n`` objects."""
        from .rng import ensure_rng

        return Ranking(ensure_rng(rng).permutation(n))


@dataclass(frozen=True, eq=False)
class VoteArrays:
    """Columnar (struct-of-arrays) view of a vote set.

    The inference hot path is dominated by re-flattening :class:`Vote`
    objects in Python loops; this type flattens them **once** into
    parallel ``numpy`` arrays so Steps 1-3 and the baselines can run as
    pure array kernels.  Built via :meth:`VoteSet.arrays` (cached on the
    vote set) or :meth:`from_votes`.

    Per-vote arrays (all of length ``n_votes``, in original vote order):

    * ``winner`` / ``loser`` — raw object ids of each vote;
    * ``worker_idx`` — index into :attr:`worker_ids`;
    * ``pair_idx`` — index into the pair table;
    * ``value`` — the paper's ``x_ij^k``: 1.0 iff the vote prefers the
      canonical-low object (``winner < loser``).

    Id tables:

    * ``pair_lo`` / ``pair_hi`` — the distinct canonical pairs, sorted
      lexicographically (matching :meth:`VoteSet.pairs`);
    * ``worker_ids`` — distinct worker ids, sorted (matching
      :meth:`VoteSet.workers`).

    All arrays are treated as immutable; callers must not mutate them.
    """

    n_objects: int
    winner: np.ndarray
    loser: np.ndarray
    worker_idx: np.ndarray
    pair_idx: np.ndarray
    value: np.ndarray
    pair_lo: np.ndarray
    pair_hi: np.ndarray
    worker_ids: np.ndarray

    @staticmethod
    def from_votes(n_objects: int, votes: Sequence[Vote]) -> "VoteArrays":
        """Flatten a sequence of votes into columnar arrays."""
        count = len(votes)
        winner = np.fromiter((v.winner for v in votes), dtype=np.int64,
                             count=count)
        loser = np.fromiter((v.loser for v in votes), dtype=np.int64,
                            count=count)
        worker = np.fromiter((v.worker for v in votes), dtype=np.int64,
                             count=count)
        lo = np.minimum(winner, loser)
        hi = np.maximum(winner, loser)
        value = (winner == lo).astype(np.float64)
        # Encode each canonical pair as one integer so np.unique yields
        # the pair table already in lexicographic (lo, hi) order.
        base = int(max(n_objects, (int(hi.max()) + 1) if count else 1))
        pair_keys, pair_idx = np.unique(lo * base + hi, return_inverse=True)
        worker_ids, worker_idx = np.unique(worker, return_inverse=True)
        return VoteArrays(
            n_objects=n_objects,
            winner=winner,
            loser=loser,
            worker_idx=worker_idx.astype(np.int64, copy=False),
            pair_idx=pair_idx.astype(np.int64, copy=False),
            value=value,
            pair_lo=(pair_keys // base).astype(np.int64, copy=False),
            pair_hi=(pair_keys % base).astype(np.int64, copy=False),
            worker_ids=worker_ids,
        )

    _FIELDS = ("n_objects", "winner", "loser", "worker_idx", "pair_idx",
               "value", "pair_lo", "pair_hi", "worker_ids")

    def __getstate__(self):
        # Keep pickles (process-backend dispatch, cache spills) lean:
        # derived memo slots (e.g. the sparse incidence cache of
        # repro.inference.incidence) rebuild on demand.
        return {name: getattr(self, name) for name in self._FIELDS}

    def __setstate__(self, state) -> None:
        for name in self._FIELDS:
            object.__setattr__(self, name, state[name])

    # -- sizes ----------------------------------------------------------------
    @property
    def n_votes(self) -> int:
        return int(self.value.shape[0])

    @property
    def n_pairs(self) -> int:
        return int(self.pair_lo.shape[0])

    @property
    def n_workers(self) -> int:
        return int(self.worker_ids.shape[0])

    def __len__(self) -> int:
        return self.n_votes

    # -- object-layer views ---------------------------------------------------
    def pairs(self) -> List[Pair]:
        """The pair table as canonical tuples (sorted, = VoteSet.pairs())."""
        return list(zip(self.pair_lo.tolist(), self.pair_hi.tolist()))

    def workers(self) -> List[WorkerId]:
        """Distinct worker ids, sorted (= VoteSet.workers())."""
        return self.worker_ids.tolist()

    def pair_index(self) -> Dict[Pair, int]:
        """Mapping canonical pair -> row in the pair table."""
        return {pair: idx for idx, pair in enumerate(self.pairs())}

    def worker_index(self) -> Dict[WorkerId, int]:
        """Mapping worker id -> row in the worker table."""
        return {worker: idx for idx, worker in enumerate(self.workers())}

    def to_votes(self) -> Tuple[Vote, ...]:
        """Reconstruct the original votes (order preserved; round-trip)."""
        return tuple(
            Vote(worker=w, winner=win, loser=lose)
            for w, win, lose in zip(
                self.worker_ids[self.worker_idx].tolist(),
                self.winner.tolist(),
                self.loser.tolist(),
            )
        )

    def to_vote_set(self) -> "VoteSet":
        """Reconstruct an equal :class:`VoteSet` (round-trip)."""
        return VoteSet(n_objects=self.n_objects, votes=self.to_votes())


@dataclass(frozen=True)
class VoteSet:
    """All votes collected in one crowdsourcing round, with fast grouping.

    This is the interchange format between the platform simulator and every
    inference algorithm (ours and the baselines).

    The grouping accessors (:meth:`pairs`, :meth:`workers`,
    :meth:`by_pair`, :meth:`by_worker`) and the columnar view
    (:meth:`arrays`) are memoized — the dataclass is frozen, so the
    derived structures can never go stale.  Callers must treat the
    returned containers as read-only.

    **Frozen-ness is what makes the memoization sound.**  Anything that
    mutates ``votes`` behind the dataclass's back (``object.__setattr__``
    or similar) would silently desynchronise every cached view, so the
    memo table records which votes tuple it was built from and every
    accessor re-checks it, raising :class:`ConfigurationError` on a
    mismatch.  Code that needs to *accumulate* votes incrementally must
    not mutate a ``VoteSet`` — use
    :class:`repro.streaming.VoteBuffer`, the append-only builder, and
    take frozen snapshots via its ``to_vote_set()``.
    """

    n_objects: int
    votes: Tuple[Vote, ...]

    @staticmethod
    def from_votes(n_objects: int, votes: Iterable[Vote]) -> "VoteSet":
        """Build a vote set from any iterable of votes."""
        return VoteSet(n_objects=n_objects, votes=tuple(votes))

    def __len__(self) -> int:
        return len(self.votes)

    def __iter__(self) -> Iterator[Vote]:
        return iter(self.votes)

    def _memo(self, key: str, build):
        """Per-instance memo table; sound *only* because the dataclass is
        frozen.  The table remembers the exact votes tuple it was built
        from and every access re-verifies it, so out-of-band mutation
        (``object.__setattr__``) fails loudly instead of serving stale
        derived views."""
        cache = self.__dict__.get("_cache")
        if cache is None:
            cache = {"__votes__": self.votes}
            object.__setattr__(self, "_cache", cache)
        elif cache["__votes__"] is not self.votes:
            raise ConfigurationError(
                "VoteSet.votes was mutated after derived caches were "
                "built; VoteSet is frozen by contract — accumulate votes "
                "through repro.streaming.VoteBuffer instead"
            )
        if key not in cache:
            cache[key] = build()
        return cache[key]

    def __getstate__(self):
        # Keep pickles (process-backend dispatch, cache spills) lean:
        # the memoized views are derived data and rebuild on demand.
        return {"n_objects": self.n_objects, "votes": self.votes}

    def __setstate__(self, state) -> None:
        object.__setattr__(self, "n_objects", state["n_objects"])
        object.__setattr__(self, "votes", state["votes"])

    def arrays(self) -> VoteArrays:
        """The columnar view of these votes, flattened once and cached."""
        return self._memo(
            "arrays", lambda: VoteArrays.from_votes(self.n_objects, self.votes)
        )

    def by_pair(self) -> Dict[Pair, List[Vote]]:
        """Group votes by their canonical comparison pair (memoized)."""

        def build() -> Dict[Pair, List[Vote]]:
            grouped: Dict[Pair, List[Vote]] = {}
            for vote in self.votes:
                grouped.setdefault(vote.pair, []).append(vote)
            return grouped

        return self._memo("by_pair", build)

    def by_worker(self) -> Dict[WorkerId, List[Vote]]:
        """Group votes by the worker who cast them (memoized)."""

        def build() -> Dict[WorkerId, List[Vote]]:
            grouped: Dict[WorkerId, List[Vote]] = {}
            for vote in self.votes:
                grouped.setdefault(vote.worker, []).append(vote)
            return grouped

        return self._memo("by_worker", build)

    def workers(self) -> List[WorkerId]:
        """Sorted list of distinct worker ids appearing in the votes."""
        return self._memo(
            "workers", lambda: sorted({v.worker for v in self.votes})
        )

    def pairs(self) -> List[Pair]:
        """Sorted list of distinct canonical pairs appearing in the votes."""
        return self._memo(
            "pairs", lambda: sorted({v.pair for v in self.votes})
        )


@dataclass(frozen=True)
class InferenceResult:
    """The output of a full result-inference run.

    Attributes
    ----------
    ranking:
        The inferred full ranking.
    log_preference:
        ``log Pr[P]`` of the chosen Hamiltonian path (sum of log edge
        weights); comparable across algorithms on the same closure.
    worker_quality:
        Estimated quality ``q_k`` per worker id (empty for baselines that
        do not model workers).
    direct_preferences:
        The Step-1 direct preference ``x_ij`` per canonical pair.
    step_seconds:
        Wall-clock seconds per named pipeline step (for Fig. 4's breakdown).
    metadata:
        Free-form extras (iteration counts, 1-edge counts, ...).
    """

    ranking: Ranking
    log_preference: float
    worker_quality: Dict[WorkerId, float] = field(default_factory=dict)
    direct_preferences: Dict[Pair, float] = field(default_factory=dict)
    step_seconds: Dict[str, float] = field(default_factory=dict)
    metadata: Dict[str, object] = field(default_factory=dict)
