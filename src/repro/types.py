"""Core value types shared across the library.

The vocabulary follows the paper:

* *objects* ``O = {O_0, ..., O_{n-1}}`` are identified by integer ids;
* a *comparison task* is an unordered pair of objects ``(i, j)``;
* a *vote* is one worker's directed preference on one task;
* a *ranking* is a permutation of the object ids, most-preferred first
  (``ranking[0]`` is the object ranked first, i.e. the Hamiltonian-path
  source).

All types here are immutable value objects; algorithms never mutate them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Sequence, Tuple

from .exceptions import ConfigurationError

#: An object identifier (index into the object universe).
ObjectId = int

#: A worker identifier.
WorkerId = int

#: An unordered comparison pair, canonically stored with ``first < second``.
Pair = Tuple[ObjectId, ObjectId]


def canonical_pair(i: ObjectId, j: ObjectId) -> Pair:
    """Return the canonical (sorted) form of an unordered pair.

    Raises
    ------
    ConfigurationError
        If ``i == j`` — an object cannot be compared with itself.
    """
    if i == j:
        raise ConfigurationError(f"cannot compare object {i} with itself")
    return (i, j) if i < j else (j, i)


@dataclass(frozen=True)
class Vote:
    """A single worker's answer to one pairwise comparison.

    ``winner`` and ``loser`` encode the preference ``winner ≺ loser``
    (winner ranked *before*, i.e. preferred).  This matches the paper's
    ``x_ij^k = 1`` iff ``O_i ≺ O_j``.
    """

    worker: WorkerId
    winner: ObjectId
    loser: ObjectId

    def __post_init__(self) -> None:
        if self.winner == self.loser:
            raise ConfigurationError(
                f"vote by worker {self.worker} compares object "
                f"{self.winner} with itself"
            )

    @property
    def pair(self) -> Pair:
        """The canonical unordered pair this vote answers."""
        return canonical_pair(self.winner, self.loser)

    def value_for(self, i: ObjectId, j: ObjectId) -> float:
        """The paper's ``x_ij^k``: 1.0 if this vote says ``i ≺ j`` else 0.0."""
        if {i, j} != {self.winner, self.loser}:
            raise ConfigurationError(
                f"vote on pair {self.pair} queried for pair {(i, j)}"
            )
        return 1.0 if self.winner == i else 0.0


@dataclass(frozen=True)
class HIT:
    """A Human Intelligence Task: a bundle of ``c >= 1`` comparison pairs.

    The paper allows one HIT to contain several pairwise comparisons; the
    platform assigns each HIT to ``w`` distinct workers.
    """

    hit_id: int
    pairs: Tuple[Pair, ...]

    def __post_init__(self) -> None:
        if not self.pairs:
            raise ConfigurationError(f"HIT {self.hit_id} contains no pairs")
        for i, j in self.pairs:
            if i == j:
                raise ConfigurationError(
                    f"HIT {self.hit_id} contains degenerate pair ({i}, {j})"
                )
            if (i, j) != canonical_pair(i, j):
                raise ConfigurationError(
                    f"HIT {self.hit_id} pair ({i}, {j}) is not canonical"
                )

    def __len__(self) -> int:
        return len(self.pairs)

    def __iter__(self) -> Iterator[Pair]:
        return iter(self.pairs)


class Ranking:
    """An immutable full ranking (permutation) of ``n`` objects.

    ``ranking[0]`` is the most-preferred object.  Provides O(1) position
    lookup, which the metrics and baselines rely on heavily.
    """

    __slots__ = ("_order", "_position")

    def __init__(self, order: Sequence[ObjectId]):
        order_tuple = tuple(int(o) for o in order)
        position: Dict[ObjectId, int] = {}
        for idx, obj in enumerate(order_tuple):
            if obj in position:
                raise ConfigurationError(f"object {obj} appears twice in ranking")
            position[obj] = idx
        self._order = order_tuple
        self._position = position

    # -- container protocol -------------------------------------------------
    def __len__(self) -> int:
        return len(self._order)

    def __getitem__(self, idx: int) -> ObjectId:
        return self._order[idx]

    def __iter__(self) -> Iterator[ObjectId]:
        return iter(self._order)

    def __contains__(self, obj: ObjectId) -> bool:
        return obj in self._position

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Ranking):
            return self._order == other._order
        if isinstance(other, (tuple, list)):
            return self._order == tuple(other)
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._order)

    def __repr__(self) -> str:
        if len(self._order) <= 12:
            return f"Ranking({list(self._order)})"
        head = ", ".join(str(o) for o in self._order[:6])
        return f"Ranking([{head}, ...] n={len(self._order)})"

    # -- accessors -----------------------------------------------------------
    @property
    def order(self) -> Tuple[ObjectId, ...]:
        """The permutation as a tuple, most-preferred first."""
        return self._order

    def position(self, obj: ObjectId) -> int:
        """0-based rank position of ``obj`` (0 = most preferred)."""
        try:
            return self._position[obj]
        except KeyError:
            raise ConfigurationError(f"object {obj} not in ranking") from None

    def prefers(self, i: ObjectId, j: ObjectId) -> bool:
        """True iff this ranking places ``i`` before ``j`` (``i ≺ j``)."""
        return self.position(i) < self.position(j)

    def pairs(self) -> Iterator[Tuple[ObjectId, ObjectId]]:
        """Yield all ordered pairs ``(i, j)`` with ``i`` ranked before ``j``."""
        order = self._order
        n = len(order)
        for a in range(n):
            for b in range(a + 1, n):
                yield order[a], order[b]

    def reversed(self) -> "Ranking":
        """The exact reverse ranking."""
        return Ranking(self._order[::-1])

    def restricted_to(self, objects: Iterable[ObjectId]) -> "Ranking":
        """The induced ranking on a subset of objects (paper's sub-rankings)."""
        keep = set(objects)
        return Ranking([o for o in self._order if o in keep])

    @staticmethod
    def identity(n: int) -> "Ranking":
        """The identity ranking ``0 ≺ 1 ≺ ... ≺ n-1``."""
        return Ranking(range(n))

    @staticmethod
    def random(n: int, rng) -> "Ranking":
        """A uniformly random ranking of ``n`` objects."""
        from .rng import ensure_rng

        return Ranking(ensure_rng(rng).permutation(n))


@dataclass(frozen=True)
class VoteSet:
    """All votes collected in one crowdsourcing round, with fast grouping.

    This is the interchange format between the platform simulator and every
    inference algorithm (ours and the baselines).
    """

    n_objects: int
    votes: Tuple[Vote, ...]

    @staticmethod
    def from_votes(n_objects: int, votes: Iterable[Vote]) -> "VoteSet":
        """Build a vote set from any iterable of votes."""
        return VoteSet(n_objects=n_objects, votes=tuple(votes))

    def __len__(self) -> int:
        return len(self.votes)

    def __iter__(self) -> Iterator[Vote]:
        return iter(self.votes)

    def by_pair(self) -> Dict[Pair, List[Vote]]:
        """Group votes by their canonical comparison pair."""
        grouped: Dict[Pair, List[Vote]] = {}
        for vote in self.votes:
            grouped.setdefault(vote.pair, []).append(vote)
        return grouped

    def by_worker(self) -> Dict[WorkerId, List[Vote]]:
        """Group votes by the worker who cast them."""
        grouped: Dict[WorkerId, List[Vote]] = {}
        for vote in self.votes:
            grouped.setdefault(vote.worker, []).append(vote)
        return grouped

    def workers(self) -> List[WorkerId]:
        """Sorted list of distinct worker ids appearing in the votes."""
        return sorted({v.worker for v in self.votes})

    def pairs(self) -> List[Pair]:
        """Sorted list of distinct canonical pairs appearing in the votes."""
        return sorted({v.pair for v in self.votes})


@dataclass(frozen=True)
class InferenceResult:
    """The output of a full result-inference run.

    Attributes
    ----------
    ranking:
        The inferred full ranking.
    log_preference:
        ``log Pr[P]`` of the chosen Hamiltonian path (sum of log edge
        weights); comparable across algorithms on the same closure.
    worker_quality:
        Estimated quality ``q_k`` per worker id (empty for baselines that
        do not model workers).
    direct_preferences:
        The Step-1 direct preference ``x_ij`` per canonical pair.
    step_seconds:
        Wall-clock seconds per named pipeline step (for Fig. 4's breakdown).
    metadata:
        Free-form extras (iteration counts, 1-edge counts, ...).
    """

    ranking: Ranking
    log_preference: float
    worker_quality: Dict[WorkerId, float] = field(default_factory=dict)
    direct_preferences: Dict[Pair, float] = field(default_factory=dict)
    step_seconds: Dict[str, float] = field(default_factory=dict)
    metadata: Dict[str, object] = field(default_factory=dict)
