"""Structured worker misbehaviour models.

The paper's error model (``eps ~ |N(0, sigma_k^2)|``) covers *honest
noise*; real crowds also contain structured misbehaviour.  These worker
types plug into the same platform/pool machinery (they subclass
:class:`~repro.workers.worker.SimulatedWorker` and override ``vote``)
and power the robustness tests and the spam-resilience benchmark:

* :class:`SpammerWorker` — answers uniformly at random, ignoring the
  objects entirely (the classic AMT spammer);
* :class:`AdversarialWorker` — answers the *opposite* of the truth with
  high probability (colluding vandals / label flippers);
* :class:`LazyWorker` — always votes for the first object of the pair
  as presented (position bias), which is random with respect to object
  identity but *consistent* within a worker;
* :class:`SleepyWorker` — honest, but with probability ``lapse`` answers
  a pair as a spammer would (attention lapses);
* :class:`CliqueWorker` — colludes with its clique on a *shared* story
  ranking: every member answers every pair identically (always-agree),
  and when the story is the reverse of the truth the clique is an
  always-invert cabal;
* :class:`DriftingWorker` — quality drifts over the worker's own vote
  sequence (``sigma`` interpolates start → end across ``horizon``
  votes): good→bad models burnout, bad→good models learning;
* :class:`CorrelatedWorker` — errors correlated *across workers*: with
  probability ``correlation`` the worker defers to a pair-keyed shared
  coin (same for every worker sharing ``shared_seed``), so mistakes
  cluster on the same pairs instead of averaging out;
* :class:`DifficultyWorker` — honest, but each pair's effective
  ``sigma`` is scaled by a per-object difficulty field, modelling
  heavy-tailed item difficulty (a few near-ties are hard for everyone).

These compose into whole crowds via
:mod:`repro.datasets.adversarial`, which mixes them with honest workers
into seeded :class:`~repro.datasets.synthetic.SimulationScenario`
pools.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..exceptions import ConfigurationError
from ..types import Ranking, Vote
from .worker import SimulatedWorker


@dataclass
class SpammerWorker(SimulatedWorker):
    """Votes uniformly at random on every pair."""

    sigma: float = 0.0

    def vote(self, i: int, j: int, truth: Ranking) -> Vote:
        """Coin-flip answer, independent of the true order."""
        if self.rng.random() < 0.5:
            return Vote(worker=self.worker_id, winner=i, loser=j)
        return Vote(worker=self.worker_id, winner=j, loser=i)


@dataclass
class AdversarialWorker(SimulatedWorker):
    """Answers against the true order with probability ``flip_rate``.

    ``flip_rate = 1`` is a perfect inverter; truth discovery can in
    principle exploit such a worker (its votes are perfectly
    *anti*-correlated with the truth), but the paper's weighting model
    can only *downweight* it — which these tests verify happens.
    """

    sigma: float = 0.0
    flip_rate: float = 0.95

    def __post_init__(self) -> None:
        super().__post_init__()
        if not 0.5 <= self.flip_rate <= 1.0:
            raise ConfigurationError(
                f"flip_rate must be in [0.5, 1], got {self.flip_rate}"
            )

    def vote(self, i: int, j: int, truth: Ranking) -> Vote:
        """Vote against the ground truth with probability ``flip_rate``."""
        true_winner, true_loser = (i, j) if truth.prefers(i, j) else (j, i)
        if self.rng.random() < self.flip_rate:
            true_winner, true_loser = true_loser, true_winner
        return Vote(worker=self.worker_id, winner=true_winner,
                    loser=true_loser)


@dataclass
class LazyWorker(SimulatedWorker):
    """Always picks the first-presented object (position bias)."""

    sigma: float = 0.0

    def vote(self, i: int, j: int, truth: Ranking) -> Vote:
        """Pick ``i`` — whichever object the HIT listed first."""
        return Vote(worker=self.worker_id, winner=i, loser=j)


@dataclass
class SleepyWorker(SimulatedWorker):
    """Honest worker that lapses into random answers at rate ``lapse``."""

    sigma: float = 0.05
    lapse: float = 0.2

    def __post_init__(self) -> None:
        super().__post_init__()
        if not 0.0 <= self.lapse < 1.0:
            raise ConfigurationError(
                f"lapse must be in [0, 1), got {self.lapse}"
            )

    def vote(self, i: int, j: int, truth: Ranking) -> Vote:
        """Honest vote, except for random lapses."""
        if self.rng.random() < self.lapse:
            if self.rng.random() < 0.5:
                return Vote(worker=self.worker_id, winner=i, loser=j)
            return Vote(worker=self.worker_id, winner=j, loser=i)
        return super().vote(i, j, truth)


@dataclass
class CliqueWorker(SimulatedWorker):
    """A colluder answering per the clique's shared ``story`` ranking.

    Every member constructed with the same ``story`` gives the *same*
    answer on every pair — perfect intra-clique agreement, which is
    exactly what makes collusion dangerous to agreement-weighted truth
    discovery: the clique corroborates itself.  With probability
    ``defect_rate`` a member breaks ranks and answers honestly (sloppy
    colluders), which gives the drift tests a knob.
    """

    sigma: float = 0.0
    story: Optional[Ranking] = None
    defect_rate: float = 0.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.story is None:
            raise ConfigurationError(
                "CliqueWorker needs the clique's shared story ranking"
            )
        if not 0.0 <= self.defect_rate < 1.0:
            raise ConfigurationError(
                f"defect_rate must be in [0, 1), got {self.defect_rate}"
            )

    def vote(self, i: int, j: int, truth: Ranking) -> Vote:
        """Answer per the shared story (or honestly, on a defection)."""
        if self.defect_rate > 0.0 and self.rng.random() < self.defect_rate:
            return super().vote(i, j, truth)
        if self.story.prefers(i, j):
            return Vote(worker=self.worker_id, winner=i, loser=j)
        return Vote(worker=self.worker_id, winner=j, loser=i)


@dataclass
class DriftingWorker(SimulatedWorker):
    """Quality drifts over the worker's own vote sequence.

    The effective deviation interpolates linearly from ``sigma`` to
    ``sigma_end`` across the first ``horizon`` votes and stays at
    ``sigma_end`` after — ``sigma < sigma_end`` is burnout (good→bad),
    ``sigma > sigma_end`` is a learner (bad→good).  The drift clock is
    *per worker* (its own vote count), so interleaving with other
    workers does not change its trajectory, and :meth:`reseed` rewinds
    it for a fresh round.
    """

    sigma: float = 0.05
    sigma_end: float = 0.8
    horizon: int = 100
    votes_cast: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.sigma_end < 0:
            raise ConfigurationError(
                f"sigma_end must be >= 0, got {self.sigma_end}"
            )
        if self.horizon < 1:
            raise ConfigurationError(
                f"horizon must be >= 1, got {self.horizon}"
            )

    def reseed(self, rng: np.random.Generator) -> None:
        """Fresh stream *and* a rewound drift clock."""
        super().reseed(rng)
        self.votes_cast = 0

    def current_sigma(self) -> float:
        """The deviation in effect for the next vote."""
        progress = min(self.votes_cast / self.horizon, 1.0)
        return self.sigma + (self.sigma_end - self.sigma) * progress

    def error_probability(self) -> float:
        sigma = self.current_sigma()
        if sigma == 0.0:
            return 0.0
        return float(min(abs(self.rng.normal(0.0, sigma)), 1.0))

    def vote(self, i: int, j: int, truth: Ranking) -> Vote:
        """Honest vote at the drifted quality; advances the clock."""
        vote = super().vote(i, j, truth)
        self.votes_cast += 1
        return vote


@dataclass
class CorrelatedWorker(SimulatedWorker):
    """Honest worker whose errors correlate with its cohort's.

    With probability ``correlation`` the flip decision on pair
    ``(i, j)`` comes from a *shared* deterministic coin keyed on
    ``(shared_seed, min(i, j), max(i, j))`` — identical for every
    worker constructed with the same ``shared_seed`` — with error rate
    ``shared_error``.  Otherwise the worker draws privately from its
    own ``sigma``.  Shared mistakes land on the *same pairs* for the
    whole cohort, violating the paper's independent-error assumption
    without making any single worker look unusual in isolation.
    """

    sigma: float = 0.1
    shared_seed: int = 0
    correlation: float = 0.5
    shared_error: float = 0.35

    def __post_init__(self) -> None:
        super().__post_init__()
        if not 0.0 <= self.correlation <= 1.0:
            raise ConfigurationError(
                f"correlation must be in [0, 1], got {self.correlation}"
            )
        if not 0.0 <= self.shared_error <= 1.0:
            raise ConfigurationError(
                f"shared_error must be in [0, 1], got {self.shared_error}"
            )

    def _shared_flip(self, i: int, j: int) -> bool:
        lo, hi = (i, j) if i < j else (j, i)
        coin = np.random.default_rng((self.shared_seed, lo, hi))
        return bool(coin.random() < self.shared_error)

    def vote(self, i: int, j: int, truth: Ranking) -> Vote:
        """Vote honestly, but defer flips to the cohort coin at rate
        ``correlation``."""
        true_winner, true_loser = (i, j) if truth.prefers(i, j) else (j, i)
        if self.rng.random() < self.correlation:
            flip = self._shared_flip(i, j)
        else:
            flip = self.rng.random() < self.error_probability()
        if flip:
            true_winner, true_loser = true_loser, true_winner
        return Vote(worker=self.worker_id, winner=true_winner,
                    loser=true_loser)


@dataclass
class DifficultyWorker(SimulatedWorker):
    """Honest worker facing heavy-tailed per-item difficulty.

    ``difficulty`` maps each object to a non-negative multiplier; the
    effective deviation on pair ``(i, j)`` is ``sigma *
    sqrt(d_i * d_j)`` (geometric mean), so a pair of two hard items is
    much harder than a hard/easy pair.  The same field is shared by the
    whole pool, concentrating everyone's errors on the same few
    near-tie pairs.
    """

    sigma: float = 0.1
    difficulty: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.difficulty is None:
            raise ConfigurationError(
                "DifficultyWorker needs a per-object difficulty field"
            )
        self.difficulty = np.asarray(self.difficulty, dtype=np.float64)
        if self.difficulty.ndim != 1 or np.any(self.difficulty < 0):
            raise ConfigurationError(
                "difficulty must be a 1-D non-negative array"
            )

    def pair_sigma(self, i: int, j: int) -> float:
        """Effective deviation for pair ``(i, j)``."""
        scale = float(np.sqrt(self.difficulty[i] * self.difficulty[j]))
        return self.sigma * scale

    def vote(self, i: int, j: int, truth: Ranking) -> Vote:
        """Honest vote at difficulty-scaled quality."""
        if i >= len(self.difficulty) or j >= len(self.difficulty):
            raise ConfigurationError(
                f"pair ({i}, {j}) outside the {len(self.difficulty)}-object "
                "difficulty field"
            )
        true_winner, true_loser = (i, j) if truth.prefers(i, j) else (j, i)
        sigma = self.pair_sigma(i, j)
        eps = 0.0 if sigma == 0.0 else float(
            min(abs(self.rng.normal(0.0, sigma)), 1.0)
        )
        if self.rng.random() < eps:
            true_winner, true_loser = true_loser, true_winner
        return Vote(worker=self.worker_id, winner=true_winner,
                    loser=true_loser)
