"""Structured worker misbehaviour models.

The paper's error model (``eps ~ |N(0, sigma_k^2)|``) covers *honest
noise*; real crowds also contain structured misbehaviour.  These worker
types plug into the same platform/pool machinery (they subclass
:class:`~repro.workers.worker.SimulatedWorker` and override ``vote``)
and power the robustness tests and the spam-resilience benchmark:

* :class:`SpammerWorker` — answers uniformly at random, ignoring the
  objects entirely (the classic AMT spammer);
* :class:`AdversarialWorker` — answers the *opposite* of the truth with
  high probability (colluding vandals / label flippers);
* :class:`LazyWorker` — always votes for the first object of the pair
  as presented (position bias), which is random with respect to object
  identity but *consistent* within a worker;
* :class:`SleepyWorker` — honest, but with probability ``lapse`` answers
  a pair as a spammer would (attention lapses).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..exceptions import ConfigurationError
from ..types import Ranking, Vote
from .worker import SimulatedWorker


@dataclass
class SpammerWorker(SimulatedWorker):
    """Votes uniformly at random on every pair."""

    sigma: float = 0.0

    def vote(self, i: int, j: int, truth: Ranking) -> Vote:
        """Coin-flip answer, independent of the true order."""
        if self.rng.random() < 0.5:
            return Vote(worker=self.worker_id, winner=i, loser=j)
        return Vote(worker=self.worker_id, winner=j, loser=i)


@dataclass
class AdversarialWorker(SimulatedWorker):
    """Answers against the true order with probability ``flip_rate``.

    ``flip_rate = 1`` is a perfect inverter; truth discovery can in
    principle exploit such a worker (its votes are perfectly
    *anti*-correlated with the truth), but the paper's weighting model
    can only *downweight* it — which these tests verify happens.
    """

    sigma: float = 0.0
    flip_rate: float = 0.95

    def __post_init__(self) -> None:
        super().__post_init__()
        if not 0.5 <= self.flip_rate <= 1.0:
            raise ConfigurationError(
                f"flip_rate must be in [0.5, 1], got {self.flip_rate}"
            )

    def vote(self, i: int, j: int, truth: Ranking) -> Vote:
        """Vote against the ground truth with probability ``flip_rate``."""
        true_winner, true_loser = (i, j) if truth.prefers(i, j) else (j, i)
        if self.rng.random() < self.flip_rate:
            true_winner, true_loser = true_loser, true_winner
        return Vote(worker=self.worker_id, winner=true_winner,
                    loser=true_loser)


@dataclass
class LazyWorker(SimulatedWorker):
    """Always picks the first-presented object (position bias)."""

    sigma: float = 0.0

    def vote(self, i: int, j: int, truth: Ranking) -> Vote:
        """Pick ``i`` — whichever object the HIT listed first."""
        return Vote(worker=self.worker_id, winner=i, loser=j)


@dataclass
class SleepyWorker(SimulatedWorker):
    """Honest worker that lapses into random answers at rate ``lapse``."""

    sigma: float = 0.05
    lapse: float = 0.2

    def __post_init__(self) -> None:
        super().__post_init__()
        if not 0.0 <= self.lapse < 1.0:
            raise ConfigurationError(
                f"lapse must be in [0, 1), got {self.lapse}"
            )

    def vote(self, i: int, j: int, truth: Ranking) -> Vote:
        """Honest vote, except for random lapses."""
        if self.rng.random() < self.lapse:
            if self.rng.random() < 0.5:
                return Vote(worker=self.worker_id, winner=i, loser=j)
            return Vote(worker=self.worker_id, winner=j, loser=i)
        return super().vote(i, j, truth)
