"""A pool of simulated workers drawn from one quality distribution.

Also home to :func:`parallel_map`, the library's shared compute-fanout
helper (used by the SAPS parallel-restart loop among others): the
"pool" abstractions — crowd workers and compute workers — live
together here.
"""

from __future__ import annotations

from typing import Callable, Iterator, List, Optional, Sequence, TypeVar, Union

import numpy as np

from ..exceptions import ConfigurationError
from ..rng import SeedLike, ensure_rng, spawn_rngs
from ..types import WorkerId
from .backends import ExecutionBackend, resolve_backend
from .quality import QualityDistribution
from .worker import SimulatedWorker


class WorkerPool:
    """The crowd: ``m`` simulated workers with ids ``0..m-1``.

    Construction draws each worker's ``sigma_k`` once from the quality
    distribution (the paper assumes "the workers' quality stays stable
    across all the tasks") and gives every worker an independent random
    stream so that vote noise is reproducible.
    """

    def __init__(self, workers: Sequence[SimulatedWorker]):
        if not workers:
            raise ConfigurationError("worker pool cannot be empty")
        ids = [w.worker_id for w in workers]
        if ids != list(range(len(workers))):
            raise ConfigurationError(
                "worker ids must be contiguous 0..m-1 in order, got "
                f"{ids[:5]}..."
            )
        self._workers: List[SimulatedWorker] = list(workers)

    @classmethod
    def from_distribution(
        cls,
        n_workers: int,
        quality: QualityDistribution,
        rng: SeedLike = None,
    ) -> "WorkerPool":
        """Draw a pool of ``n_workers`` from a quality distribution."""
        if n_workers < 1:
            raise ConfigurationError(f"n_workers must be >= 1, got {n_workers}")
        parent = ensure_rng(rng)
        sigmas = quality.sample_sigmas(n_workers, parent)
        streams = spawn_rngs(parent, n_workers)
        workers = [
            SimulatedWorker(worker_id=k, sigma=float(sigmas[k]), rng=streams[k])
            for k in range(n_workers)
        ]
        return cls(workers)

    # -- container protocol ---------------------------------------------------
    def __len__(self) -> int:
        return len(self._workers)

    def __iter__(self) -> Iterator[SimulatedWorker]:
        return iter(self._workers)

    def __getitem__(self, worker_id: WorkerId) -> SimulatedWorker:
        try:
            return self._workers[worker_id]
        except IndexError:
            raise ConfigurationError(
                f"worker {worker_id} not in pool of {len(self._workers)}"
            ) from None

    def reseed(self, rng: SeedLike = None) -> None:
        """Give every worker a fresh child stream derived from ``rng``.

        Child streams are spawned once from the parent and handed out
        *by worker id*, so worker ``k``'s vote sequence depends only on
        the parent seed and its own task sequence — never on how many
        draws other workers (or other behaviour models) made in
        between.  Workers with per-round state (drift clocks) reset it.
        Reseeding makes a collection round a pure function of
        ``(pool, seed)`` even when the pool was already used.
        """
        parent = ensure_rng(rng)
        streams = spawn_rngs(parent, len(self._workers))
        for worker, stream in zip(self._workers, streams):
            worker.reseed(stream)

    # -- accessors -----------------------------------------------------------
    def sigmas(self) -> np.ndarray:
        """Error deviations of all workers, indexed by worker id."""
        return np.array([w.sigma for w in self._workers])

    def expected_accuracies(self) -> np.ndarray:
        """Per-worker expected vote accuracy ``1 - E[eps]`` (oracle view)."""
        return np.array(
            [1.0 - w.expected_error_probability() for w in self._workers]
        )

    def sample(self, count: int, rng: SeedLike = None) -> List[SimulatedWorker]:
        """Draw ``count`` distinct workers uniformly (HIT assignment)."""
        if not 1 <= count <= len(self._workers):
            raise ConfigurationError(
                f"cannot sample {count} workers from a pool of "
                f"{len(self._workers)}"
            )
        generator = ensure_rng(rng)
        chosen = generator.choice(len(self._workers), size=count, replace=False)
        return [self._workers[int(k)] for k in chosen]

    def __repr__(self) -> str:
        sig = self.sigmas()
        return (
            f"WorkerPool(m={len(self._workers)}, "
            f"sigma_mean={sig.mean():.4f}, sigma_max={sig.max():.4f})"
        )


# ---------------------------------------------------------------------------
# Compute fan-out
# ---------------------------------------------------------------------------

_T = TypeVar("_T")
_R = TypeVar("_R")


def parallel_map(
    fn: Callable[[_T], _R],
    items: Sequence[_T],
    *,
    max_workers: int,
    backend: Union[None, str, ExecutionBackend] = None,
    timeout: Optional[float] = None,
) -> List[_R]:
    """Order-preserving map over a pluggable execution backend.

    Results come back in input order regardless of completion order,
    so a deterministic reduction over them (e.g. "first minimum wins")
    gives the same answer as a serial loop — the property the SAPS
    parallel-restart path relies on.  The exception of the
    earliest-indexed failing task propagates to the caller on every
    backend.

    ``backend`` selects where tasks run: ``"serial"`` (inline),
    ``"thread"`` (the default — with ``max_workers <= 1`` or fewer than
    two items it runs inline with no pool at all, so the serial path
    keeps zero threading overhead), or ``"process"`` (true multi-core
    with crash isolation; ``fn``, the items and the results must be
    picklable).  ``None`` defers to the ``REPRO_BACKEND`` environment
    variable, then ``"thread"``.  Pure-Python workloads only scale on
    the process backend — threads share one GIL.

    ``timeout`` bounds each task in seconds where the backend can
    enforce it (process: worker killed; thread: thread abandoned;
    serial: unenforced) and surfaces as
    :class:`~repro.exceptions.TaskTimeoutError`.
    """
    if max_workers < 1:
        raise ConfigurationError(
            f"max_workers must be >= 1, got {max_workers}"
        )
    return resolve_backend(backend).map(
        fn, items, max_workers=max_workers, timeout=timeout,
    )
