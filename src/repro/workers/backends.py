"""Pluggable execution backends for the library's compute fan-out.

Every parallel path in the repo — SAPS restarts, the batch executor
behind ``repro batch`` and ``repro serve`` — funnels through one
order-preserving map primitive.  This module provides three
interchangeable implementations of it:

``serial``
    An inline loop on the calling thread.  Zero overhead, trivially
    deterministic — the oracle the other two are tested against.
    Cannot enforce per-task deadlines (nothing to interrupt).
``thread``
    A bounded thread pool.  Cheap to start and shares memory, but the
    GIL serialises pure-Python work, so CPU-bound tasks (the SAPS
    annealing kernel, the CRH truth-discovery loop) gain little beyond
    overlap of their numpy sections.  Per-task deadlines *abandon* the
    worker thread (Python cannot kill threads): the task's slot raises
    :class:`~repro.exceptions.TaskTimeoutError` while the stray thread
    runs to completion in the background.
``process``
    A ``multiprocessing`` pool with pickle-safe dispatch, per-task
    deadlines and crash isolation.  Each worker process runs one task
    at a time over a dedicated pipe; a worker that dies mid-task
    (signal, ``os._exit``, OOM kill) surfaces a typed
    :class:`~repro.exceptions.WorkerCrashedError` for that task and is
    **respawned**, so the remaining tasks still complete and the pool
    never hangs.  A task that outlives its deadline has its worker
    killed (a real cancellation, unlike threads) and raises
    :class:`~repro.exceptions.TaskTimeoutError`.  Tasks, their
    arguments and their results must be picklable; the task function
    must be importable from the worker (module-level, or a
    ``functools.partial`` over one).

Determinism: all three backends return results in **input order**
regardless of completion order, so a deterministic reduction over the
results (e.g. "first minimum wins") gives the same answer on every
backend — the property the SAPS parallel-restart path and the
differential test suite (``tests/test_backends_equivalence.py``) rely
on.

Selection: callers pass a backend name (or instance) explicitly, or
leave it ``None`` to let :func:`resolve_backend` consult the
``REPRO_BACKEND`` environment variable and finally fall back to
``"thread"`` (the pre-backend behaviour of every call site).
"""

from __future__ import annotations

import os
import pickle
import threading
import time
import traceback
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Dict, List, Optional, Sequence, Tuple, TypeVar, Union

from ..diagnostics import get_logger
from ..exceptions import (
    ConfigurationError,
    ExecutionBackendError,
    TaskTimeoutError,
    WorkerCrashedError,
)

_log = get_logger("workers.backends")

_T = TypeVar("_T")
_R = TypeVar("_R")

#: Environment variable consulted by :func:`resolve_backend` when no
#: backend is named explicitly.
BACKEND_ENV_VAR = "REPRO_BACKEND"

#: Environment variable overriding the multiprocessing start method of
#: the process backend ("fork", "spawn" or "forkserver").
START_METHOD_ENV_VAR = "REPRO_MP_START"

#: Default backend when neither the caller nor the environment chooses.
DEFAULT_BACKEND = "thread"


def get_mp_context(start_method: Optional[str] = None):
    """Resolve the library's :mod:`multiprocessing` context.

    One policy for every process-spawning path (the process backend's
    worker pool, the pre-fork server supervisor): an explicit
    ``start_method`` wins, then the ``REPRO_MP_START`` environment
    variable, then ``fork`` where available (cheap on POSIX) with a
    ``spawn`` fallback.

    Raises
    ------
    ConfigurationError
        When the requested start method is not available on this
        platform.
    """
    import multiprocessing

    method = start_method or os.environ.get(START_METHOD_ENV_VAR)
    available = multiprocessing.get_all_start_methods()
    if method is None:
        method = "fork" if "fork" in available else "spawn"
    elif method not in available:
        raise ConfigurationError(
            f"start method {method!r} not available (have {available})"
        )
    return multiprocessing.get_context(method)


class RemoteTaskError(ExecutionBackendError):
    """A task failed in a worker process with an unpicklable exception.

    Carries the original exception's type name and formatted traceback;
    raised in the parent in its stead.
    """

    def __init__(self, type_name: str, message: str, trace: str):
        super().__init__(f"{type_name}: {message}")
        self.type_name = type_name
        self.trace = trace


class ExecutionBackend:
    """Order-preserving map over a pool of workers (abstract base)."""

    #: Registry key; also what ``Config``/CLI flags name.
    name: str = "abstract"

    def map(
        self,
        fn: Callable[[_T], _R],
        items: Sequence[_T],
        *,
        max_workers: int,
        timeout: Optional[float] = None,
        return_exceptions: bool = False,
    ) -> List[_R]:
        """Apply ``fn`` to every item; results come back in input order.

        Parameters
        ----------
        fn / items:
            The task function and its inputs.  The process backend
            additionally requires both (and the results) to be
            picklable.
        max_workers:
            Pool width; execution never exceeds this concurrency.
        timeout:
            Per-task wall-clock deadline in seconds.  ``None`` means
            unbounded.  Enforcement is backend-specific (kill /
            abandon / unsupported) — see the module docstring.
        return_exceptions:
            When true, a failed task contributes its exception
            *instance* to the result list instead of raising, and every
            task runs to completion.  When false (default), the
            exception of the earliest-indexed failed task is raised;
            whether later tasks still executed is backend-specific and
            deliberately unobservable through the return value.
        """
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


def _first_failure(outcomes: List[object]) -> Optional[BaseException]:
    for outcome in outcomes:
        if isinstance(outcome, BaseException):
            return outcome
    return None


class SerialBackend(ExecutionBackend):
    """Inline execution on the calling thread — the determinism oracle.

    Fail-fast in raising mode: the first exception propagates
    immediately and later items never run.  ``timeout`` is accepted for
    interface compatibility but cannot be enforced (there is no second
    thread of control to interrupt from).
    """

    name = "serial"

    def map(self, fn, items, *, max_workers, timeout=None,
            return_exceptions=False):
        _validate_width(max_workers)
        if not return_exceptions:
            return [fn(item) for item in items]
        outcomes: List[object] = []
        for item in items:
            try:
                outcomes.append(fn(item))
            except Exception as error:  # noqa: BLE001 — collected by request
                outcomes.append(error)
        return outcomes


class ThreadBackend(ExecutionBackend):
    """Bounded thread pool — the pre-backend behaviour of every caller.

    Without a timeout, single-worker or single-item maps run inline so
    the serial path keeps zero threading overhead.  With a timeout,
    every task gets a dedicated daemon thread (gated to ``max_workers``
    by a semaphore) whose ``join`` is bounded by the deadline; a task
    that overruns is *abandoned* — its slot raises
    :class:`TaskTimeoutError`, the stray thread finishes in the
    background, exactly the semantics the batch executor has always had
    for per-job timeouts.
    """

    name = "thread"

    def map(self, fn, items, *, max_workers, timeout=None,
            return_exceptions=False):
        _validate_width(max_workers)
        if timeout is not None and timeout <= 0:
            raise ConfigurationError("timeout must be positive or None")
        if timeout is None:
            if max_workers == 1 or len(items) <= 1:
                return SerialBackend().map(
                    fn, items, max_workers=1,
                    return_exceptions=return_exceptions,
                )
            return self._pool_map(fn, items, max_workers, return_exceptions)
        return self._deadline_map(fn, items, max_workers, timeout,
                                  return_exceptions)

    def _pool_map(self, fn, items, max_workers, return_exceptions):
        def guarded(item):
            try:
                return fn(item)
            except Exception as error:  # noqa: BLE001 — re-raised below
                return _Failure(error)

        with ThreadPoolExecutor(
            max_workers=min(max_workers, len(items)),
            thread_name_prefix="repro-map",
        ) as pool:
            outcomes = list(pool.map(guarded, items))
        return _unwrap(outcomes, return_exceptions)

    def _deadline_map(self, fn, items, max_workers, timeout,
                      return_exceptions):
        gate = threading.Semaphore(max_workers)
        boxes: List[List[object]] = [[] for _ in items]
        threads: List[threading.Thread] = []

        def target(index: int, item) -> None:
            try:
                try:
                    boxes[index].append(_Success(fn(item)))
                except BaseException as error:  # noqa: BLE001 — shipped back
                    boxes[index].append(_Failure(error))
            finally:
                gate.release()

        deadlines: List[float] = []
        for index, item in enumerate(items):
            gate.acquire()
            thread = threading.Thread(
                target=target, args=(index, item), daemon=True,
                name=f"repro-map-{index}",
            )
            deadlines.append(time.monotonic() + timeout)
            thread.start()
            threads.append(thread)
        outcomes: List[object] = []
        for index, thread in enumerate(threads):
            thread.join(max(0.0, deadlines[index] - time.monotonic()))
            if thread.is_alive():
                outcomes.append(_Failure(TaskTimeoutError(
                    f"task {index} exceeded {timeout:g}s (abandoned)"
                )))
            else:
                box = boxes[index][0]
                outcomes.append(box)
        return _unwrap(outcomes, return_exceptions)


class _Success:
    __slots__ = ("value",)

    def __init__(self, value):
        self.value = value


class _Failure:
    __slots__ = ("error",)

    def __init__(self, error):
        self.error = error


def _unwrap(outcomes: List[object], return_exceptions: bool) -> List[object]:
    results: List[object] = []
    first_error: Optional[BaseException] = None
    for outcome in outcomes:
        if isinstance(outcome, _Failure):
            if first_error is None:
                first_error = outcome.error
            results.append(outcome.error)
        elif isinstance(outcome, _Success):
            results.append(outcome.value)
        else:
            results.append(outcome)
    if not return_exceptions and first_error is not None:
        raise first_error
    return results


# ---------------------------------------------------------------------------
# Process backend
# ---------------------------------------------------------------------------

def _worker_loop(conn) -> None:
    """One worker process: recv ``(index, fn, item)``, send the outcome.

    Exceptions are pickled back when possible; unpicklable ones travel
    as (type name, message, traceback text) and re-raise as
    :class:`RemoteTaskError` in the parent.  A ``None`` message is the
    shutdown sentinel.
    """
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            return
        if message is None:
            return
        index, fn, item = message
        try:
            result = fn(item)
            payload = (index, "ok", result)
        except BaseException as error:  # noqa: BLE001 — shipped to parent
            try:
                pickle.dumps(error)
                payload = (index, "err", error)
            except Exception:  # noqa: BLE001 — unpicklable exception
                payload = (index, "remote_err", (
                    type(error).__name__, str(error),
                    traceback.format_exc(),
                ))
        try:
            conn.send(payload)
        except BaseException:  # noqa: BLE001 — parent gone / result unpicklable
            try:
                conn.send((index, "remote_err", (
                    type(payload[2]).__name__ if payload[1] == "ok"
                    else "UnknownError",
                    "task outcome could not be pickled back to the parent",
                    "",
                )))
            except BaseException:  # noqa: BLE001 — give up, parent sees EOF
                return


class _ProcessWorker:
    """One worker process plus its parent-side pipe end and task slot."""

    __slots__ = ("process", "conn", "task_index", "deadline")

    def __init__(self, ctx):
        parent_conn, child_conn = ctx.Pipe(duplex=True)
        self.conn = parent_conn
        self.process = ctx.Process(
            target=_worker_loop, args=(child_conn,), daemon=True,
        )
        self.process.start()
        child_conn.close()
        self.task_index: Optional[int] = None
        self.deadline: Optional[float] = None

    @property
    def busy(self) -> bool:
        return self.task_index is not None

    def assign(self, index: int, fn, item,
               timeout: Optional[float]) -> None:
        self.task_index = index
        self.deadline = None if timeout is None \
            else time.monotonic() + timeout
        self.conn.send((index, fn, item))

    def clear(self) -> None:
        self.task_index = None
        self.deadline = None

    def shutdown(self, grace: float = 1.0) -> None:
        try:
            self.conn.send(None)
        except (BrokenPipeError, OSError):
            pass
        self.process.join(grace)
        if self.process.is_alive():
            self.process.terminate()
            self.process.join(grace)
        self.conn.close()

    def kill(self) -> None:
        """Hard-stop the worker (deadline enforcement / crash cleanup)."""
        if self.process.is_alive():
            self.process.kill()
        self.process.join(1.0)
        self.conn.close()


class ProcessBackend(ExecutionBackend):
    """``multiprocessing`` pool with crash isolation and real deadlines.

    The pool is built per :meth:`map` call (workers are cheap with the
    default ``fork`` start method on POSIX) and always torn down before
    returning.  Dispatch is explicit — one task in flight per worker
    over a dedicated pipe — which is what makes crash detection exact:
    a dead worker's pipe reads EOF, the task that was on it becomes a
    :class:`WorkerCrashedError`, and a replacement worker is spawned if
    tasks remain.

    Unlike the serial backend's fail-fast loop, all tasks run to
    completion even in raising mode (the earliest-indexed failure is
    raised at the end) — partial work is never silently discarded, and
    the fault-injection suite checks exactly this.
    """

    name = "process"

    def __init__(self, start_method: Optional[str] = None):
        self._start_method = start_method

    def _context(self):
        return get_mp_context(self._start_method)

    def map(self, fn, items, *, max_workers, timeout=None,
            return_exceptions=False):
        _validate_width(max_workers)
        if timeout is not None and timeout <= 0:
            raise ConfigurationError("timeout must be positive or None")
        items = list(items)
        if not items:
            return []
        ctx = self._context()
        width = min(max_workers, len(items))
        workers = [_ProcessWorker(ctx) for _ in range(width)]
        pending = list(enumerate(items))  # consumed front-first
        outcomes: List[object] = [None] * len(items)
        done = 0
        try:
            while done < len(items):
                for slot, worker in enumerate(workers):
                    if not worker.busy and pending:
                        index, item = pending.pop(0)
                        try:
                            worker.assign(index, fn, item, timeout)
                        except (BrokenPipeError, OSError):
                            # The worker died while idle; replace it and
                            # requeue the task for the fresh one.
                            worker.kill()
                            workers[slot] = _ProcessWorker(self._context())
                            pending.insert(0, (index, item))
                done += self._collect(workers, outcomes)
                done += self._reap_timeouts(ctx, workers, outcomes, pending)
        finally:
            for worker in workers:
                if worker.process.is_alive() and worker.busy:
                    worker.kill()
                else:
                    worker.shutdown()
        return _unwrap(
            [o if isinstance(o, (_Success, _Failure)) else _Success(o)
             for o in outcomes],
            return_exceptions,
        )

    # -- event handling -----------------------------------------------------

    def _collect(self, workers: List[_ProcessWorker],
                 outcomes: List[object]) -> int:
        """Wait for one pipe event; record results/crashes.  Returns the
        number of tasks that reached a terminal outcome."""
        from multiprocessing.connection import wait as conn_wait

        busy = [w for w in workers if w.busy]
        if not busy:
            return 0
        # A short tick keeps deadline checks responsive even when no
        # worker speaks; readiness of any pipe wakes us immediately.
        ready = conn_wait([w.conn for w in busy], timeout=0.05)
        finished = 0
        for worker in busy:
            if worker.conn not in ready:
                continue
            try:
                index, kind, payload = worker.conn.recv()
            except (EOFError, OSError):
                finished += self._handle_crash(workers, worker, outcomes)
                continue
            if kind == "ok":
                outcomes[index] = _Success(payload)
            elif kind == "err":
                outcomes[index] = _Failure(payload)
            else:  # remote_err
                type_name, message, trace = payload
                outcomes[index] = _Failure(
                    RemoteTaskError(type_name, message, trace)
                )
            worker.clear()
            finished += 1
        return finished

    def _handle_crash(self, workers: List[_ProcessWorker],
                      worker: _ProcessWorker,
                      outcomes: List[object]) -> int:
        """A worker died mid-task: record the crash, respawn in place."""
        index = worker.task_index
        worker.process.join(1.0)
        code = worker.process.exitcode
        _log.warning(
            "worker pid=%s crashed (exitcode=%s) while running task %s; "
            "respawning", worker.process.pid, code, index,
        )
        outcomes[index] = _Failure(WorkerCrashedError(
            f"worker process (pid {worker.process.pid}) died with exit "
            f"code {code} while running task {index}"
        ))
        worker.conn.close()
        self._replace(workers, worker)
        return 1

    def _reap_timeouts(self, ctx, workers: List[_ProcessWorker],
                       outcomes: List[object],
                       pending: List[Tuple[int, object]]) -> int:
        """Kill workers whose task overran its deadline; respawn."""
        now = time.monotonic()
        finished = 0
        for worker in workers:
            if not worker.busy or worker.deadline is None \
                    or now < worker.deadline:
                continue
            index = worker.task_index
            _log.warning("task %s exceeded its deadline; killing worker "
                         "pid=%s", index, worker.process.pid)
            worker.kill()
            outcomes[index] = _Failure(TaskTimeoutError(
                f"task {index} exceeded its deadline (worker killed)"
            ))
            self._replace(workers, worker)
            finished += 1
        return finished

    def _replace(self, workers: List[_ProcessWorker],
                 dead: _ProcessWorker) -> None:
        """Swap a dead worker for a fresh one (same pool slot)."""
        slot = workers.index(dead)
        workers[slot] = _ProcessWorker(self._context())


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

#: Name → backend class, the closed set the Config/CLI layer validates
#: against.
BACKENDS: Dict[str, type] = {
    "serial": SerialBackend,
    "thread": ThreadBackend,
    "process": ProcessBackend,
}

#: Names accepted by config fields and CLI flags.
BACKEND_CHOICES = tuple(sorted(BACKENDS))


def get_backend(name: str) -> ExecutionBackend:
    """Instantiate a backend by registry name.

    Raises
    ------
    ConfigurationError
        For a name outside :data:`BACKEND_CHOICES`.
    """
    try:
        factory = BACKENDS[name]
    except (KeyError, TypeError):
        raise ConfigurationError(
            f"unknown execution backend {name!r}; choose from "
            f"{', '.join(BACKEND_CHOICES)}"
        ) from None
    return factory()


def default_backend_name() -> str:
    """The backend used when nothing is specified: env var or thread."""
    return os.environ.get(BACKEND_ENV_VAR) or DEFAULT_BACKEND


def resolve_backend(
    spec: Union[None, str, ExecutionBackend] = None,
) -> ExecutionBackend:
    """Resolve an explicit backend, name, or ``None`` to an instance.

    Precedence: an explicit instance or name wins; ``None`` consults
    the ``REPRO_BACKEND`` environment variable; otherwise ``"thread"``
    (the historical behaviour of every call site).
    """
    if isinstance(spec, ExecutionBackend):
        return spec
    if spec is None:
        spec = default_backend_name()
    return get_backend(spec)


def _validate_width(max_workers: int) -> None:
    if max_workers < 1:
        raise ConfigurationError(
            f"max_workers must be >= 1, got {max_workers}"
        )
