"""Worker-quality distributions (Sec. VI-A4).

A *quality distribution* draws the per-worker error deviation
``sigma_k``; a worker's per-task error probability is then
``eps ~ |N(0, sigma_k^2)|`` (clipped to [0, 1]).  The paper's exact
presets are provided via :func:`gaussian_preset` / :func:`uniform_preset`
keyed by the :class:`QualityLevel` enum (high / medium / low).
"""

from __future__ import annotations

import abc
import enum
from dataclasses import dataclass

import numpy as np

from ..exceptions import ConfigurationError
from ..rng import SeedLike, ensure_rng


class QualityLevel(enum.Enum):
    """The paper's three worker-quality regimes."""

    HIGH = "high"
    MEDIUM = "medium"
    LOW = "low"


class QualityDistribution(abc.ABC):
    """Draws per-worker error deviations ``sigma_k``."""

    @abc.abstractmethod
    def sample_sigmas(self, n_workers: int, rng: SeedLike = None) -> np.ndarray:
        """Draw ``n_workers`` non-negative error deviations."""

    @abc.abstractmethod
    def describe(self) -> str:
        """Short human-readable description for experiment reports."""


@dataclass(frozen=True)
class GaussianQuality(QualityDistribution):
    """``sigma_k ~ |N(0, sigma_s^2)|``.

    The paper writes ``sigma_k ~ N(0, sigma_s^2)``; a deviation must be
    non-negative, so the half-normal reading (absolute value) is used.
    Small ``sigma_s`` concentrates workers near perfect quality.
    """

    sigma_s: float

    def __post_init__(self) -> None:
        if self.sigma_s <= 0:
            raise ConfigurationError(f"sigma_s must be positive, got {self.sigma_s}")

    def sample_sigmas(self, n_workers: int, rng: SeedLike = None) -> np.ndarray:
        if n_workers < 1:
            raise ConfigurationError(f"n_workers must be >= 1, got {n_workers}")
        generator = ensure_rng(rng)
        return np.abs(generator.normal(0.0, self.sigma_s, size=n_workers))

    def describe(self) -> str:
        return f"Gaussian(sigma_s={self.sigma_s})"


@dataclass(frozen=True)
class UniformQuality(QualityDistribution):
    """``sigma_k ~ U[low, high]``."""

    low: float
    high: float

    def __post_init__(self) -> None:
        if not 0 <= self.low < self.high:
            raise ConfigurationError(
                f"need 0 <= low < high, got [{self.low}, {self.high}]"
            )

    def sample_sigmas(self, n_workers: int, rng: SeedLike = None) -> np.ndarray:
        if n_workers < 1:
            raise ConfigurationError(f"n_workers must be >= 1, got {n_workers}")
        generator = ensure_rng(rng)
        return generator.uniform(self.low, self.high, size=n_workers)

    def describe(self) -> str:
        return f"Uniform[{self.low}, {self.high}]"


#: Paper presets: sigma_s = 0.01 / 0.1 / 1 for high / medium / low quality.
_GAUSSIAN_PRESETS = {
    QualityLevel.HIGH: 0.01,
    QualityLevel.MEDIUM: 0.1,
    QualityLevel.LOW: 1.0,
}

#: Paper presets: sigma ranges [0,0.2] / [0.1,0.3] / [0.2,0.4].
_UNIFORM_PRESETS = {
    QualityLevel.HIGH: (0.0, 0.2),
    QualityLevel.MEDIUM: (0.1, 0.3),
    QualityLevel.LOW: (0.2, 0.4),
}


def gaussian_preset(level: QualityLevel) -> GaussianQuality:
    """The paper's Gaussian quality preset for a given level."""
    return GaussianQuality(sigma_s=_GAUSSIAN_PRESETS[QualityLevel(level)])


def uniform_preset(level: QualityLevel) -> UniformQuality:
    """The paper's Uniform quality preset for a given level."""
    low, high = _UNIFORM_PRESETS[QualityLevel(level)]
    return UniformQuality(low=low, high=high)


def error_probability(sigma: float, rng: SeedLike = None) -> float:
    """One per-task error probability draw: ``min(|N(0, sigma^2)|, 1)``.

    ``sigma = 0`` gives a perfect worker (never errs).
    """
    if sigma < 0:
        raise ConfigurationError(f"sigma must be non-negative, got {sigma}")
    if sigma == 0.0:
        return 0.0
    generator = ensure_rng(rng)
    return float(min(abs(generator.normal(0.0, sigma)), 1.0))
