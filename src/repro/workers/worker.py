"""A simulated crowd worker.

Implements the paper's voting model (Sec. VI-A4): given the ground-truth
ranking and a task ``(O_i, O_j)``, the worker draws an error probability
``eps ~ |N(0, sigma_k^2)|`` for this task and votes *against* the ground
truth with probability ``eps``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..exceptions import ConfigurationError
from ..rng import ensure_rng
from ..types import Ranking, Vote, WorkerId


@dataclass
class SimulatedWorker:
    """One crowd worker with a fixed error deviation ``sigma``.

    Attributes
    ----------
    worker_id:
        Stable identifier used in votes.
    sigma:
        Error deviation ``sigma_k``; per-task error probability is
        ``min(|N(0, sigma^2)|, 1)``.
    rng:
        Private random stream; injected so vote noise is reproducible
        and independent across workers.
    """

    worker_id: WorkerId
    sigma: float
    rng: np.random.Generator = field(repr=False, default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.sigma < 0:
            raise ConfigurationError(
                f"worker {self.worker_id}: sigma must be >= 0, got {self.sigma}"
            )
        if self.rng is None:
            self.rng = ensure_rng(None)

    def reseed(self, rng: np.random.Generator) -> None:
        """Replace this worker's private random stream.

        :func:`repro.experiments.runner.collect_votes` reseeds every
        worker from a per-worker child stream derived from the round's
        seed, making each round a pure function of ``(scenario, seed)``
        and each worker's vote sequence independent of how other
        workers' draws interleave.  Subclasses with per-round state
        (e.g. drift counters) override this to also reset that state.
        """
        self.rng = rng

    def error_probability(self) -> float:
        """Draw this task's error probability ``eps ~ |N(0, sigma^2)|``."""
        if self.sigma == 0.0:
            return 0.0
        return float(min(abs(self.rng.normal(0.0, self.sigma)), 1.0))

    def expected_error_probability(self) -> float:
        """The analytic mean ``E[eps] = sigma * sqrt(2 / pi)`` (clipped).

        Used by tests and by the oracle quality baselines; the truth
        discovery step must *recover* something monotone in this.
        """
        return float(min(self.sigma * np.sqrt(2.0 / np.pi), 1.0))

    def vote(self, i: int, j: int, truth: Ranking) -> Vote:
        """Answer the comparison ``(O_i, O_j)`` given the ground truth.

        With probability ``1 - eps`` the vote matches the ground-truth
        order of ``i`` and ``j``; otherwise it is flipped.
        """
        true_winner, true_loser = (i, j) if truth.prefers(i, j) else (j, i)
        if self.rng.random() < self.error_probability():
            true_winner, true_loser = true_loser, true_winner
        return Vote(worker=self.worker_id, winner=true_winner, loser=true_loser)
