"""Worker simulation substrate (Sec. VI-A4).

The paper models worker ``W_k``'s error with a per-worker standard
deviation ``sigma_k``; on each task the worker votes *wrongly* with
probability ``eps_k ~ |N(0, sigma_k^2)|``.  Two quality regimes are used:

* Gaussian: ``sigma_k ~ |N(0, sigma_s^2)|`` with
  ``sigma_s in {0.01, 0.1, 1}`` (high / medium / low quality);
* Uniform: ``sigma_k ~ U[a, b]`` with ranges ``[0, 0.2]``, ``[0.1, 0.3]``,
  ``[0.2, 0.4]``.

This package builds those workers and nothing else — the platform
simulator (:mod:`repro.platform`) routes tasks to them.
"""

from .quality import (
    QualityDistribution,
    GaussianQuality,
    UniformQuality,
    QualityLevel,
    gaussian_preset,
    uniform_preset,
)
from .worker import SimulatedWorker
from .backends import (
    BACKEND_CHOICES,
    BACKEND_ENV_VAR,
    ExecutionBackend,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    default_backend_name,
    get_backend,
    get_mp_context,
    resolve_backend,
)
from .pool import WorkerPool, parallel_map
from .behaviors import (
    AdversarialWorker,
    CliqueWorker,
    CorrelatedWorker,
    DifficultyWorker,
    DriftingWorker,
    LazyWorker,
    SleepyWorker,
    SpammerWorker,
)

__all__ = [
    "AdversarialWorker",
    "CliqueWorker",
    "CorrelatedWorker",
    "DifficultyWorker",
    "DriftingWorker",
    "LazyWorker",
    "SleepyWorker",
    "SpammerWorker",
    "QualityDistribution",
    "GaussianQuality",
    "UniformQuality",
    "QualityLevel",
    "gaussian_preset",
    "uniform_preset",
    "SimulatedWorker",
    "WorkerPool",
    "parallel_map",
    "BACKEND_CHOICES",
    "BACKEND_ENV_VAR",
    "ExecutionBackend",
    "SerialBackend",
    "ThreadBackend",
    "ProcessBackend",
    "default_backend_name",
    "get_backend",
    "get_mp_context",
    "resolve_backend",
]
