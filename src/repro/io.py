"""Persistence: save and load inference results as JSON.

Crowdsourcing runs cost money; their inference outputs deserve durable
storage.  The JSON schema is explicit and versioned so files survive
library upgrades:

.. code-block:: json

    {
      "schema": "repro.inference_result/1",
      "ranking": [3, 0, 2, 1],
      "log_preference": -1.234,
      "worker_quality": {"0": 0.97},
      "direct_preferences": {"0,1": 0.8},
      "step_seconds": {"search": 0.5},
      "metadata": {"search_algorithm": "saps"}
    }

The payload codecs (:func:`result_to_payload` / :func:`result_from_payload`)
are exposed separately from the file helpers so that other transports —
the batch service's JSONL streams and its on-disk result cache — reuse
the exact same versioned schema.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Dict, Union

from .exceptions import ConfigurationError, DataFormatError
from .types import InferenceResult, Ranking

#: Current schema tag written to / required from files.
SCHEMA = "repro.inference_result/1"


def atomic_write_text(path: Union[str, Path], text: str) -> None:
    """Write ``text`` to ``path`` atomically (tempfile + ``os.replace``).

    The text lands in a uniquely named temporary file in the *same
    directory* (so the final rename never crosses a filesystem) and is
    moved onto ``path`` with :func:`os.replace`, which POSIX guarantees
    to be atomic.  A concurrent reader therefore sees either the old
    complete content or the new complete content — never a truncated
    or interleaved file — which is what makes one spill directory safe
    to share between processes.  The temporary file is removed on any
    failure, so crashes never leave partial writes under the final
    name.
    """
    path = Path(path)
    handle = tempfile.NamedTemporaryFile(
        mode="w", dir=str(path.parent), prefix=f".{path.name}.",
        suffix=".tmp", delete=False,
    )
    try:
        with handle:
            handle.write(text)
            handle.flush()
        os.replace(handle.name, path)
    except BaseException:
        try:
            os.unlink(handle.name)
        except OSError:
            pass
        raise


def result_to_payload(result: InferenceResult) -> Dict[str, object]:
    """Encode an inference result as a JSON-ready dict (schema-tagged)."""
    return {
        "schema": SCHEMA,
        "ranking": list(result.ranking.order),
        "log_preference": result.log_preference,
        "worker_quality": {
            str(worker): quality
            for worker, quality in sorted(result.worker_quality.items())
        },
        "direct_preferences": {
            f"{i},{j}": value
            for (i, j), value in sorted(result.direct_preferences.items())
        },
        "step_seconds": dict(result.step_seconds),
        "metadata": {
            key: value for key, value in result.metadata.items()
            if isinstance(value, (int, float, str, bool, type(None)))
        },
    }


def result_from_payload(
    payload: object, source: str = "<payload>"
) -> InferenceResult:
    """Decode a dict produced by :func:`result_to_payload`.

    Parameters
    ----------
    payload:
        The parsed JSON value (any type — validated here).
    source:
        Human-readable origin (file path, "line 3", ...) used in error
        messages.

    Raises
    ------
    DataFormatError
        On a wrong/missing schema tag or invalid fields (non-permutation
        ranking, malformed pair keys).
    """
    if not isinstance(payload, dict) or payload.get("schema") != SCHEMA:
        raise DataFormatError(
            f"{source}: expected schema {SCHEMA!r}, got "
            f"{payload.get('schema') if isinstance(payload, dict) else type(payload)!r}"
        )
    try:
        ranking = Ranking(payload["ranking"])
        worker_quality = {
            int(worker): float(quality)
            for worker, quality in payload.get("worker_quality", {}).items()
        }
        direct = {}
        for key, value in payload.get("direct_preferences", {}).items():
            i_text, j_text = key.split(",")
            direct[(int(i_text), int(j_text))] = float(value)
        return InferenceResult(
            ranking=ranking,
            log_preference=float(payload["log_preference"]),
            worker_quality=worker_quality,
            direct_preferences=direct,
            step_seconds={
                str(k): float(v)
                for k, v in payload.get("step_seconds", {}).items()
            },
            metadata=dict(payload.get("metadata", {})),
        )
    except (KeyError, ValueError, TypeError, ConfigurationError) as error:
        raise DataFormatError(f"{source}: malformed field ({error})") from None


def save_payload(payload: Dict[str, object], path: Union[str, Path]) -> None:
    """Write any schema-tagged payload dict as pretty JSON.

    The generic sibling of :func:`save_result` for the library's other
    versioned payloads (session snapshots, experiment exports): callers
    build the dict through their own ``*_to_payload`` codec and this
    helper only owns the file format.
    """
    if not isinstance(payload, dict) or "schema" not in payload:
        raise ConfigurationError(
            "payload must be a dict carrying a 'schema' tag"
        )
    atomic_write_text(path, json.dumps(payload, indent=2) + "\n")


def load_payload(
    path: Union[str, Path], schema: str
) -> Dict[str, object]:
    """Read a JSON payload written by :func:`save_payload`.

    Raises
    ------
    DataFormatError
        On a missing/unreadable file, malformed JSON, or a schema tag
        different from ``schema``.
    """
    path = Path(path)
    try:
        text = path.read_text()
    except OSError as error:
        raise DataFormatError(f"{path}: cannot read ({error})") from None
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as error:
        raise DataFormatError(f"{path}: invalid JSON ({error})") from None
    if not isinstance(payload, dict) or payload.get("schema") != schema:
        raise DataFormatError(
            f"{path}: expected schema {schema!r}, got "
            f"{payload.get('schema') if isinstance(payload, dict) else type(payload)!r}"
        )
    return payload


def save_result(result: InferenceResult, path: Union[str, Path]) -> None:
    """Write an inference result as versioned JSON.

    The write is atomic (:func:`atomic_write_text`): concurrent readers
    — and other processes sharing a cache spill directory — can never
    observe a torn or truncated file.
    """
    payload = result_to_payload(result)
    atomic_write_text(path, json.dumps(payload, indent=2) + "\n")


def load_result(path: Union[str, Path]) -> InferenceResult:
    """Read an inference result saved by :func:`save_result`.

    Raises
    ------
    DataFormatError
        On a missing/unreadable file, malformed JSON, a wrong/missing
        schema tag, or invalid fields (non-permutation ranking,
        malformed pair keys).
    """
    path = Path(path)
    try:
        text = path.read_text()
    except OSError as error:
        raise DataFormatError(f"{path}: cannot read ({error})") from None
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as error:
        raise DataFormatError(f"{path}: invalid JSON ({error})") from None
    return result_from_payload(payload, source=str(path))
