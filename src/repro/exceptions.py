"""Exception hierarchy for the :mod:`repro` library.

All library-raised errors derive from :class:`ReproError`, so callers can
catch a single base class at the application boundary while the library
itself raises the most specific subclass available.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the :mod:`repro` library."""


class ConfigurationError(ReproError):
    """An invalid parameter or inconsistent configuration was supplied."""


class BudgetError(ConfigurationError):
    """The crowdsourcing budget cannot satisfy the requested task plan.

    Raised, for example, when the budget affords fewer comparisons than the
    minimum required for a connected task graph (``n - 1`` edges) or more
    than all ``C(n, 2)`` pairs.
    """


class GraphError(ReproError):
    """A structural graph invariant was violated (unknown vertex, bad edge)."""


class EdgeNotFoundError(GraphError):
    """The requested edge does not exist in the graph."""


class VertexNotFoundError(GraphError):
    """The requested vertex does not exist in the graph."""


class AssignmentError(ReproError):
    """Task-assignment (HIT generation) failed to satisfy its requirements."""


class InferenceError(ReproError):
    """Result inference failed (no Hamiltonian path, empty vote set, ...)."""


class ConvergenceError(InferenceError):
    """An iterative algorithm exhausted its iteration budget without
    converging and the caller requested strict convergence."""


class DataFormatError(ReproError):
    """An external data file (e.g. AMT CSV export) is malformed."""
