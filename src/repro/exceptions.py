"""Exception hierarchy for the :mod:`repro` library.

All library-raised errors derive from :class:`ReproError`, so callers can
catch a single base class at the application boundary while the library
itself raises the most specific subclass available.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the :mod:`repro` library."""


class ConfigurationError(ReproError):
    """An invalid parameter or inconsistent configuration was supplied."""


class BudgetError(ConfigurationError):
    """The crowdsourcing budget cannot satisfy the requested task plan.

    Raised, for example, when the budget affords fewer comparisons than the
    minimum required for a connected task graph (``n - 1`` edges) or more
    than all ``C(n, 2)`` pairs.
    """


class GraphError(ReproError):
    """A structural graph invariant was violated (unknown vertex, bad edge)."""


class EdgeNotFoundError(GraphError):
    """The requested edge does not exist in the graph."""


class VertexNotFoundError(GraphError):
    """The requested vertex does not exist in the graph."""


class AssignmentError(ReproError):
    """Task-assignment (HIT generation) failed to satisfy its requirements."""


class InferenceError(ReproError):
    """Result inference failed (no Hamiltonian path, empty vote set, ...)."""


class ConvergenceError(InferenceError):
    """An iterative algorithm exhausted its iteration budget without
    converging and the caller requested strict convergence."""


class DataFormatError(ReproError):
    """An external data file (e.g. AMT CSV export) is malformed."""


class DegenerateGraphWarning(UserWarning):
    """The comparison graph is degenerate for the requested computation.

    Emitted (not raised) by the sparse least-squares engines when the
    comparison graph is disconnected: scores are then only determined
    within each connected component, so the engine applies per-component
    anchoring with a deterministic, seeded cross-component tie-break and
    records the condition in the result metadata instead of silently
    returning one arbitrary solution of a singular system.
    """


class ExecutionBackendError(ReproError):
    """A compute-fanout backend (:mod:`repro.workers.backends`) failed."""


class WorkerCrashedError(ExecutionBackendError):
    """A worker process died (signal, ``os._exit``, OOM kill) mid-task.

    The pool respawns a replacement and keeps running the remaining
    tasks; the crashed task surfaces this error.  Treated as transient
    by the batch service's retry classifier — a crash is usually
    environmental (OOM killer, operator signal), not a property of the
    task itself.
    """


class TaskTimeoutError(ExecutionBackendError):
    """A task exceeded the backend's per-task deadline.

    The process backend kills the worker running the task (a real
    cancellation); the thread backend abandons the worker thread
    (Python cannot kill threads); the serial backend cannot enforce
    per-task deadlines at all and never raises this.
    """


class SessionError(ReproError):
    """A streaming ranking session operation failed."""


class SessionNotFoundError(SessionError):
    """The requested session id is unknown (never created or evicted)."""


class SessionStoppedError(SessionError):
    """Votes were submitted to a session that already early-stopped.

    The session's ranking is still readable; only further ingestion is
    rejected.  Create a new session to keep collecting.
    """


class SessionLimitError(SessionError):
    """The session manager is at its session cap and nothing is evictable."""
