"""AMT-style CSV round-trip for vote data.

Real crowdsourcing platforms export results as flat CSV; this module
reads and writes a minimal, explicit format so actual AMT batches can be
fed straight into :func:`repro.inference.infer_ranking`:

.. code-block:: text

    worker_id,winner,loser
    0,3,7
    1,7,3

Header required; ids are non-negative integers.  ``n_objects`` is either
supplied or inferred as ``max id + 1``.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import List, Optional, Union

from ..exceptions import DataFormatError
from ..types import Vote, VoteSet

#: Required CSV header.
_HEADER = ["worker_id", "winner", "loser"]


def save_votes_csv(votes: VoteSet, path: Union[str, Path]) -> None:
    """Write a vote set in the AMT-style CSV format."""
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(_HEADER)
        for vote in votes:
            writer.writerow([vote.worker, vote.winner, vote.loser])


def load_votes_csv(
    path: Union[str, Path], n_objects: Optional[int] = None
) -> VoteSet:
    """Read a vote set from the AMT-style CSV format.

    Raises
    ------
    DataFormatError
        On a missing/odd header, non-integer fields, negative ids,
        self-comparisons, or ids outside the declared object universe.
    """
    path = Path(path)
    votes: List[Vote] = []
    max_id = -1
    with path.open(newline="") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise DataFormatError(f"{path}: empty file") from None
        if [h.strip() for h in header] != _HEADER:
            raise DataFormatError(
                f"{path}: expected header {_HEADER}, got {header}"
            )
        for row_number, row in enumerate(reader, start=2):
            if not row:
                continue
            if len(row) != 3:
                raise DataFormatError(
                    f"{path}:{row_number}: expected 3 fields, got {len(row)}"
                )
            try:
                worker, winner, loser = (int(field) for field in row)
            except ValueError:
                raise DataFormatError(
                    f"{path}:{row_number}: non-integer field in {row}"
                ) from None
            if worker < 0 or winner < 0 or loser < 0:
                raise DataFormatError(
                    f"{path}:{row_number}: negative id in {row}"
                )
            if winner == loser:
                raise DataFormatError(
                    f"{path}:{row_number}: self-comparison of object {winner}"
                )
            votes.append(Vote(worker=worker, winner=winner, loser=loser))
            max_id = max(max_id, winner, loser)
    if not votes:
        raise DataFormatError(f"{path}: no votes found")
    inferred = max_id + 1
    if n_objects is None:
        n_objects = inferred
    elif n_objects < inferred:
        raise DataFormatError(
            f"{path}: votes reference object {max_id} but n_objects="
            f"{n_objects}"
        )
    return VoteSet.from_votes(n_objects, votes)
