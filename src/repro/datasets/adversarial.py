"""Adversarial and heterogeneous simulation scenarios.

The paper's guarantees assume workers with stationary, independent
error rates.  Real crowds contain spammers, colluding cliques, drifting
quality, correlated mistakes and heavy-tailed item difficulty — the
worker-incentive failure modes contract-design work models explicitly.
This module composes the structured behaviour models of
:mod:`repro.workers.behaviors` into complete, seeded
:class:`~repro.datasets.synthetic.SimulationScenario` pools, one
*family* per failure mode, so the whole serving stack can be exercised
under hostile votes:

=================  ========================================================
family             crowd composition
=================  ========================================================
``honest``         the paper's Gaussian-medium baseline crowd
``spammer``        ``spammer_fraction`` of the pool answers coin-flips
``clique``         ``clique_fraction`` colludes on a shared *random*
                   wrong order (always-agree collusion)
``inverted_clique``the clique's story is the exact reverse of the truth
                   (always-invert collusion)
``drift``          ``drift_fraction`` degrades good→bad over its vote
                   sequence (burnout)
``drift_recover``  the drifters instead improve bad→good (learning)
``correlated``     the whole crowd shares a pair-keyed error coin at
                   rate ``correlation`` (correlated mistakes)
``heavy_tail``     honest crowd, but per-object difficulty is drawn
                   from a heavy-tailed (Pareto) field shared by all
``starved``        honest crowd on the minimum connected budget
                   (spanning comparisons, one vote each)
``saturated``      honest crowd with every pair compared and extra
                   redundancy per pair
=================  ========================================================

Every family is reproducible end-to-end through :mod:`repro.rng`: the
scenario is a pure function of ``(family, knobs, seed)``, and the vote
realisation drawn from it is a pure function of the scenario plus the
``collect_votes`` seed (per-worker child streams).
"""

from __future__ import annotations

from typing import Callable, Dict, List

import numpy as np

from ..exceptions import ConfigurationError
from ..rng import SeedLike, derive_seed, ensure_rng, spawn_rngs
from ..types import Ranking
from ..workers import (
    CliqueWorker,
    CorrelatedWorker,
    DifficultyWorker,
    DriftingWorker,
    QualityLevel,
    SimulatedWorker,
    SpammerWorker,
    WorkerPool,
    gaussian_preset,
)
from .synthetic import SimulationScenario

#: Honest workers draw their sigma from this paper preset everywhere.
_HONEST_QUALITY = gaussian_preset(QualityLevel.MEDIUM)


def _honest_sigmas(n: int, rng: np.random.Generator) -> np.ndarray:
    return _HONEST_QUALITY.sample_sigmas(n, rng)


def _adversary_ids(n_workers: int, fraction: float,
                   rng: np.random.Generator) -> set:
    """A seeded, spread-out subset of worker ids to corrupt."""
    count = max(1, int(round(fraction * n_workers)))
    if count >= n_workers:
        count = n_workers - 1  # never corrupt the whole crowd
    chosen = rng.choice(n_workers, size=count, replace=False)
    return {int(k) for k in chosen}


def _build_scenario(
    ground_truth: Ranking,
    workers: List[SimulatedWorker],
    selection_ratio: float,
    workers_per_task: int,
    quality_name: str,
) -> SimulationScenario:
    return SimulationScenario(
        ground_truth=ground_truth,
        pool=WorkerPool(workers),
        selection_ratio=selection_ratio,
        workers_per_task=workers_per_task,
        quality_name=quality_name,
    )


# -- family builders ---------------------------------------------------------
# Each takes (truth, n_workers, streams, rng, params) and returns the
# worker list plus a human-readable crowd description.  ``rng`` is for
# composition draws (which ids are corrupted, clique stories,
# difficulty fields); per-worker vote noise uses ``streams``.

def _family_honest(truth, n_workers, streams, rng, params):
    sigmas = _honest_sigmas(n_workers, rng)
    workers = [SimulatedWorker(worker_id=k, sigma=float(sigmas[k]),
                               rng=streams[k])
               for k in range(n_workers)]
    return workers, "honest Gaussian-medium crowd"


def _family_spammer(truth, n_workers, streams, rng, params):
    fraction = float(params.get("spammer_fraction", 0.4))
    if not 0.0 < fraction < 1.0:
        raise ConfigurationError(
            f"spammer_fraction must be in (0, 1), got {fraction}"
        )
    spam_ids = _adversary_ids(n_workers, fraction, rng)
    sigmas = _honest_sigmas(n_workers, rng)
    workers: List[SimulatedWorker] = []
    for k in range(n_workers):
        if k in spam_ids:
            workers.append(SpammerWorker(worker_id=k, rng=streams[k]))
        else:
            workers.append(SimulatedWorker(worker_id=k,
                                           sigma=float(sigmas[k]),
                                           rng=streams[k]))
    return workers, f"{len(spam_ids)}/{n_workers} uniform spammers"


def _clique_workers(truth, n_workers, streams, rng, params, story,
                    label):
    fraction = float(params.get("clique_fraction", 0.3))
    if not 0.0 < fraction < 1.0:
        raise ConfigurationError(
            f"clique_fraction must be in (0, 1), got {fraction}"
        )
    defect_rate = float(params.get("defect_rate", 0.0))
    clique_ids = _adversary_ids(n_workers, fraction, rng)
    sigmas = _honest_sigmas(n_workers, rng)
    workers: List[SimulatedWorker] = []
    for k in range(n_workers):
        if k in clique_ids:
            workers.append(CliqueWorker(worker_id=k, story=story,
                                        defect_rate=defect_rate,
                                        rng=streams[k]))
        else:
            workers.append(SimulatedWorker(worker_id=k,
                                           sigma=float(sigmas[k]),
                                           rng=streams[k]))
    return workers, f"{len(clique_ids)}/{n_workers} {label}"


def _family_clique(truth, n_workers, streams, rng, params):
    story = Ranking.random(len(truth), rng)
    return _clique_workers(truth, n_workers, streams, rng, params,
                           story, "always-agree clique (random story)")


def _family_inverted_clique(truth, n_workers, streams, rng, params):
    story = Ranking(list(reversed(truth.order)))
    return _clique_workers(truth, n_workers, streams, rng, params,
                           story, "always-invert clique")


def _drift_workers(truth, n_workers, streams, rng, params, start, end,
                   label):
    fraction = float(params.get("drift_fraction", 0.6))
    if not 0.0 < fraction <= 1.0:
        raise ConfigurationError(
            f"drift_fraction must be in (0, 1], got {fraction}"
        )
    horizon = int(params.get("horizon", 120))
    count = max(1, int(round(fraction * n_workers)))
    drift_ids = {int(k) for k in rng.choice(n_workers, size=min(
        count, n_workers), replace=False)}
    sigmas = _honest_sigmas(n_workers, rng)
    workers: List[SimulatedWorker] = []
    for k in range(n_workers):
        if k in drift_ids:
            workers.append(DriftingWorker(worker_id=k, sigma=start,
                                          sigma_end=end, horizon=horizon,
                                          rng=streams[k]))
        else:
            workers.append(SimulatedWorker(worker_id=k,
                                           sigma=float(sigmas[k]),
                                           rng=streams[k]))
    return workers, f"{len(drift_ids)}/{n_workers} {label}"


def _family_drift(truth, n_workers, streams, rng, params):
    return _drift_workers(truth, n_workers, streams, rng, params,
                          start=0.05, end=0.9,
                          label="drifting good→bad")


def _family_drift_recover(truth, n_workers, streams, rng, params):
    return _drift_workers(truth, n_workers, streams, rng, params,
                          start=0.9, end=0.05,
                          label="drifting bad→good")


def _family_correlated(truth, n_workers, streams, rng, params):
    correlation = float(params.get("correlation", 0.6))
    shared_error = float(params.get("shared_error", 0.35))
    shared_seed = derive_seed(rng)
    sigmas = _honest_sigmas(n_workers, rng)
    workers = [
        CorrelatedWorker(worker_id=k, sigma=float(sigmas[k]),
                         shared_seed=shared_seed, correlation=correlation,
                         shared_error=shared_error, rng=streams[k])
        for k in range(n_workers)
    ]
    return workers, (f"pairwise-correlated errors "
                     f"(rho={correlation}, shared_eps={shared_error})")


def _family_heavy_tail(truth, n_workers, streams, rng, params):
    tail_index = float(params.get("tail_index", 1.5))
    base_sigma = float(params.get("base_sigma", 0.08))
    if tail_index <= 0:
        raise ConfigurationError(
            f"tail_index must be positive, got {tail_index}"
        )
    # Pareto/Lomax + 1: minimum difficulty 1, heavy right tail — a few
    # objects are near-impossible to compare for *everyone*.
    difficulty = 1.0 + rng.pareto(tail_index, size=len(truth))
    workers = [
        DifficultyWorker(worker_id=k, sigma=base_sigma,
                         difficulty=difficulty, rng=streams[k])
        for k in range(n_workers)
    ]
    return workers, (f"heavy-tailed item difficulty "
                     f"(Pareto a={tail_index}, max d="
                     f"{float(difficulty.max()):.1f})")


_BUILDERS: Dict[str, Callable] = {
    "honest": _family_honest,
    "spammer": _family_spammer,
    "clique": _family_clique,
    "inverted_clique": _family_inverted_clique,
    "drift": _family_drift,
    "drift_recover": _family_drift_recover,
    "correlated": _family_correlated,
    "heavy_tail": _family_heavy_tail,
    # Budget regimes reuse the honest crowd; the regime is in the plan.
    "starved": _family_honest,
    "saturated": _family_honest,
}

#: Families in canonical sweep order (the matrix and the CLI use this).
FAMILIES: List[str] = list(_BUILDERS)


def list_families() -> List[str]:
    """The canonical scenario-family names, in sweep order."""
    return list(FAMILIES)


def make_adversarial_scenario(
    family: str,
    n_objects: int,
    selection_ratio: float,
    *,
    n_workers: int = 50,
    workers_per_task: int = 5,
    rng: SeedLike = None,
    **params,
) -> SimulationScenario:
    """Build one seeded scenario of the named adversarial family.

    ``selection_ratio`` / ``workers_per_task`` are the *nominal* budget
    knobs; the ``starved`` and ``saturated`` families override them to
    their respective regimes (minimum connected plan with single votes
    vs. full coverage with extra redundancy) so the sweep covers the
    budget axis too.  Additional keyword ``params`` feed the family
    builder (e.g. ``spammer_fraction``, ``clique_fraction``,
    ``horizon``, ``correlation``, ``tail_index``).

    The result is an ordinary
    :class:`~repro.datasets.synthetic.SimulationScenario` — every
    downstream consumer (``collect_votes``, the pipeline, baselines,
    the platforms) works unchanged.
    """
    if family not in _BUILDERS:
        raise ConfigurationError(
            f"unknown scenario family {family!r}; choose from "
            f"{', '.join(FAMILIES)}"
        )
    if n_objects < 2:
        raise ConfigurationError(f"need at least 2 objects, got {n_objects}")
    if not 0 < selection_ratio <= 1:
        raise ConfigurationError(
            f"selection_ratio must be in (0, 1], got {selection_ratio}"
        )
    if workers_per_task > n_workers:
        raise ConfigurationError(
            f"workers_per_task={workers_per_task} exceeds pool size "
            f"{n_workers}"
        )
    if family == "starved":
        # Minimum connected plan: the planner clips to n-1 spanning
        # comparisons; one vote per comparison.
        selection_ratio = min(selection_ratio, 1e-9 + 2.0 / n_objects)
        workers_per_task = 1
    elif family == "saturated":
        selection_ratio = 1.0
        workers_per_task = min(n_workers, workers_per_task + 2)

    generator = ensure_rng(rng)
    ground_truth = Ranking.random(n_objects, generator)
    streams = spawn_rngs(generator, n_workers)
    workers, crowd = _BUILDERS[family](ground_truth, n_workers, streams,
                                       generator, params)
    return _build_scenario(
        ground_truth, workers, selection_ratio, workers_per_task,
        quality_name=f"{family}: {crowd}",
    )


def hostile_votes(
    family: str,
    n_objects: int,
    selection_ratio: float,
    *,
    n_workers: int = 20,
    workers_per_task: int = 3,
    scenario_seed: int = 0,
    vote_seed: int = 0,
    **params,
):
    """Convenience for test fixtures: ``(scenario, votes)`` in one call.

    Builds the family's scenario and runs one seeded collection round —
    the canonical way to feed *hostile* votes into streaming-session
    and acquisition tests instead of hand-rolled honest ones.
    """
    from ..experiments.runner import collect_votes

    scenario = make_adversarial_scenario(
        family, n_objects, selection_ratio, n_workers=n_workers,
        workers_per_task=workers_per_task, rng=scenario_seed, **params,
    )
    votes = collect_votes(scenario, rng=vote_seed)
    return scenario, votes
