"""Datasets: synthetic ground truths and the AMT study's stand-ins.

* :mod:`~repro.datasets.synthetic` — random ground-truth permutations
  and fully simulated preference scenarios (Sec. VI-A4);
* :mod:`~repro.datasets.images` — a synthetic substitute for the paper's
  PubFig "how much did the celebrity smile" study: latent attribute
  scores with near-tie selection, so the crowd genuinely conflicts;
* :mod:`~repro.datasets.amt` — CSV round-trip in an AMT-results-like
  format, so real crowd exports can be fed to the pipeline;
* :mod:`~repro.datasets.adversarial` — seeded scenario families for
  structured crowd misbehaviour (spammers, colluding cliques, quality
  drift, correlated errors, heavy-tailed difficulty, budget regimes)
  feeding the robustness matrix.
"""

from .synthetic import SimulationScenario, make_scenario
from .adversarial import (
    FAMILIES,
    hostile_votes,
    list_families,
    make_adversarial_scenario,
)
from .images import ImageRankingStudy, make_image_study
from .amt import load_votes_csv, save_votes_csv

__all__ = [
    "SimulationScenario",
    "make_scenario",
    "FAMILIES",
    "hostile_votes",
    "list_families",
    "make_adversarial_scenario",
    "ImageRankingStudy",
    "make_image_study",
    "load_votes_csv",
    "save_votes_csv",
]
