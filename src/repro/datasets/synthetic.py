"""Synthetic simulation scenarios (Sec. VI-A4).

A :class:`SimulationScenario` bundles everything one simulated experiment
arm needs: a random ground-truth permutation, a worker pool drawn from
one of the paper's quality presets, and the knobs (``n``, ``r``, ``w``)
the evaluation sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..exceptions import ConfigurationError
from ..rng import SeedLike, ensure_rng
from ..types import Ranking
from ..workers import (
    QualityDistribution,
    QualityLevel,
    WorkerPool,
    gaussian_preset,
    uniform_preset,
)


@dataclass(frozen=True)
class SimulationScenario:
    """One fully specified simulated experiment arm.

    Attributes
    ----------
    ground_truth:
        The latent true ranking.
    pool:
        The simulated worker pool.
    selection_ratio:
        The paper's ``r``.
    workers_per_task:
        The paper's ``w``.
    quality_name:
        Human-readable quality description (for reports).
    """

    ground_truth: Ranking
    pool: WorkerPool
    selection_ratio: float
    workers_per_task: int
    quality_name: str

    @property
    def n_objects(self) -> int:
        return len(self.ground_truth)


def make_scenario(
    n_objects: int,
    selection_ratio: float,
    *,
    n_workers: int = 50,
    workers_per_task: int = 5,
    quality: str = "gaussian",
    level: QualityLevel = QualityLevel.MEDIUM,
    distribution: Optional[QualityDistribution] = None,
    rng: SeedLike = None,
) -> SimulationScenario:
    """Build a scenario from the paper's presets.

    Parameters
    ----------
    quality:
        ``"gaussian"`` or ``"uniform"`` — selects the preset family
        (ignored when ``distribution`` is given explicitly).
    level:
        High / medium / low worker quality.
    distribution:
        Explicit quality distribution overriding the presets.
    """
    if n_objects < 2:
        raise ConfigurationError(f"need at least 2 objects, got {n_objects}")
    if not 0 < selection_ratio <= 1:
        raise ConfigurationError(
            f"selection_ratio must be in (0, 1], got {selection_ratio}"
        )
    if workers_per_task > n_workers:
        raise ConfigurationError(
            f"workers_per_task={workers_per_task} exceeds pool size "
            f"{n_workers}"
        )
    generator = ensure_rng(rng)
    if distribution is None:
        if quality == "gaussian":
            distribution = gaussian_preset(level)
        elif quality == "uniform":
            distribution = uniform_preset(level)
        else:
            raise ConfigurationError(
                f"quality must be 'gaussian' or 'uniform', got {quality!r}"
            )
    ground_truth = Ranking.random(n_objects, generator)
    pool = WorkerPool.from_distribution(n_workers, distribution, generator)
    return SimulationScenario(
        ground_truth=ground_truth,
        pool=pool,
        selection_ratio=selection_ratio,
        workers_per_task=workers_per_task,
        quality_name=distribution.describe(),
    )
