"""Synthetic substitute for the paper's AMT image-ranking study.

The paper's Sec. VI-A3 setup: 1,800 PubFig celebrity photos are scored by
a relative-attribute algorithm for "how much the celebrity smiled"; a
subset of 10 or 20 photos is picked such that adjacent picked photos are
*close* in attribute rank (gap <= 46 of 1,800), so the crowd genuinely
disagrees; AMT workers then answer pairwise smile comparisons.

We cannot ship PubFig photos or AMT workers, so this module builds the
statistically equivalent study: a catalogue of latent attribute scores
stands in for the algorithmic smile scores, the near-tie subset selection
reproduces the bounded-rank-gap picking, and the attribute-gap-dependent
worker noise makes close photos genuinely contentious — exercising the
identical robustness code path (see DESIGN.md substitution table).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from ..exceptions import ConfigurationError
from ..rng import SeedLike, ensure_rng
from ..types import Ranking, Vote, VoteSet


@dataclass(frozen=True)
class ImageRankingStudy:
    """A ready-to-crowdsource near-tie attribute-ranking study.

    Attributes
    ----------
    scores:
        Latent attribute score per selected image (index = object id).
    catalogue_ranks:
        Rank of each selected image inside the full catalogue (the
        paper's "ranking difference <= 46" constraint applies to these).
    ground_truth:
        Ranking induced by the latent scores (descending) — the paper
        stresses this is *not* authoritative for humans, but it is what
        the simulated workers perceive, so it doubles as the reference.
    """

    scores: np.ndarray
    catalogue_ranks: Tuple[int, ...]
    ground_truth: Ranking

    @property
    def n_images(self) -> int:
        return len(self.scores)

    def max_adjacent_rank_gap(self) -> int:
        """Largest catalogue-rank gap between adjacent selected images."""
        ranks = sorted(self.catalogue_ranks)
        return max(b - a for a, b in zip(ranks, ranks[1:]))

    def collect_votes(
        self,
        pairs: List[Tuple[int, int]],
        n_workers: int,
        *,
        perception_noise: float = 1.0,
        rng: SeedLike = None,
    ) -> VoteSet:
        """Simulate AMT workers answering the given comparison pairs.

        Worker perception follows a Thurstonian model: worker ``k``
        perceives image ``i`` with score ``scores[i] + N(0, noise_k^2)``
        and votes for the higher perception.  Close images therefore get
        genuinely conflicting votes — the paper's deliberate design.
        """
        if n_workers < 1:
            raise ConfigurationError("need at least 1 worker")
        generator = ensure_rng(rng)
        noise = np.abs(generator.normal(perception_noise, perception_noise / 3,
                                        size=n_workers))
        votes = []
        for i, j in pairs:
            if not (0 <= i < self.n_images and 0 <= j < self.n_images):
                raise ConfigurationError(f"pair ({i}, {j}) outside study")
            if i == j:
                raise ConfigurationError(f"degenerate pair ({i}, {j})")
            for worker in range(n_workers):
                perceived_i = self.scores[i] + generator.normal(0, noise[worker])
                perceived_j = self.scores[j] + generator.normal(0, noise[worker])
                winner, loser = (i, j) if perceived_i >= perceived_j else (j, i)
                votes.append(Vote(worker=worker, winner=winner, loser=loser))
        return VoteSet.from_votes(self.n_images, votes)


def make_image_study(
    n_images: int = 10,
    *,
    catalogue_size: int = 1800,
    max_rank_gap: int = 46,
    rng: SeedLike = None,
) -> ImageRankingStudy:
    """Build the near-tie study (the paper's 10- and 20-image settings).

    A catalogue of ``catalogue_size`` latent scores is drawn; a window of
    images whose adjacent catalogue ranks differ by at most
    ``max_rank_gap`` is selected, exactly mirroring the paper's
    "ranking difference ... never exceed 46" picking rule.
    """
    if n_images < 2:
        raise ConfigurationError(f"need at least 2 images, got {n_images}")
    if catalogue_size < n_images:
        raise ConfigurationError("catalogue smaller than the selection")
    if max_rank_gap < 1:
        raise ConfigurationError("max_rank_gap must be >= 1")
    if (n_images - 1) * max_rank_gap >= catalogue_size:
        raise ConfigurationError(
            "selection window exceeds the catalogue; lower n_images or "
            "max_rank_gap"
        )
    generator = ensure_rng(rng)
    catalogue = np.sort(generator.normal(0.0, 1.0, size=catalogue_size))[::-1]

    start = int(generator.integers(0, catalogue_size - (n_images - 1) * max_rank_gap))
    ranks = [start]
    for _ in range(n_images - 1):
        step = int(generator.integers(1, max_rank_gap + 1))
        ranks.append(ranks[-1] + step)
    scores = catalogue[ranks]

    # Shuffle object ids so the ground truth is not the identity.
    perm = generator.permutation(n_images)
    shuffled_scores = np.empty_like(scores)
    shuffled_ranks = [0] * n_images
    for new_id, old_idx in enumerate(perm):
        shuffled_scores[new_id] = scores[old_idx]
        shuffled_ranks[new_id] = ranks[old_idx]
    order = np.argsort(-shuffled_scores, kind="stable")
    return ImageRankingStudy(
        scores=shuffled_scores,
        catalogue_ranks=tuple(shuffled_ranks),
        ground_truth=Ranking(order.tolist()),
    )
