"""Distributing HITs to workers (Sec. II).

Each HIT must be answered by ``w`` *distinct* workers (``w <= m``).
:func:`assign_hits` draws the ``w`` workers per HIT uniformly at random,
mirroring the open-call nature of AMT where any eligible worker may pick
up any HIT.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..exceptions import AssignmentError
from ..rng import SeedLike, ensure_rng
from ..types import HIT, WorkerId
from .generator import TaskAssignment


@dataclass(frozen=True)
class WorkerAssignment:
    """A mapping from each HIT to the workers who will answer it.

    Attributes
    ----------
    task_assignment:
        The underlying HIT plan.
    workers_per_hit:
        ``w`` — replication factor.
    hit_workers:
        ``hit_workers[hit_id]`` is the tuple of distinct worker ids
        assigned to that HIT.
    """

    task_assignment: TaskAssignment
    workers_per_hit: int
    hit_workers: Tuple[Tuple[WorkerId, ...], ...]

    def workload(self) -> Dict[WorkerId, int]:
        """Number of pairwise comparisons each worker will perform."""
        load: Dict[WorkerId, int] = {}
        for hit, workers in zip(self.task_assignment.hits, self.hit_workers):
            for worker in workers:
                load[worker] = load.get(worker, 0) + len(hit)
        return load

    @property
    def total_votes(self) -> int:
        """Total individual comparisons to be collected."""
        return sum(
            len(hit) * len(workers)
            for hit, workers in zip(self.task_assignment.hits, self.hit_workers)
        )


def assign_hits(
    task_assignment: TaskAssignment,
    n_workers: int,
    workers_per_hit: int,
    rng: SeedLike = None,
    *,
    max_comparisons_per_worker: Optional[int] = None,
) -> WorkerAssignment:
    """Assign every HIT to ``workers_per_hit`` distinct workers.

    By default workers are drawn uniformly at random per HIT (the
    open-call AMT model).  ``max_comparisons_per_worker`` adds a
    workload quota — real platforms cap how much one worker may answer,
    both for fatigue and to stop a single account dominating the batch —
    in which case assignment becomes load-balanced: each HIT takes the
    ``w`` least-loaded eligible workers (random tie-breaking).

    Raises
    ------
    AssignmentError
        If ``workers_per_hit`` exceeds the pool size (the paper requires
        ``w <= m``), or the quota makes the batch infeasible
        (``m * quota < total comparisons needed``).
    """
    if n_workers < 1:
        raise AssignmentError(f"n_workers must be >= 1, got {n_workers}")
    if not 1 <= workers_per_hit <= n_workers:
        raise AssignmentError(
            f"workers_per_hit={workers_per_hit} must satisfy "
            f"1 <= w <= m={n_workers}"
        )
    generator = ensure_rng(rng)
    if max_comparisons_per_worker is None:
        hit_workers: List[Tuple[WorkerId, ...]] = []
        for _ in task_assignment.hits:
            chosen = generator.choice(n_workers, size=workers_per_hit,
                                      replace=False)
            hit_workers.append(tuple(int(k) for k in chosen))
    else:
        hit_workers = _assign_with_quota(
            task_assignment, n_workers, workers_per_hit,
            max_comparisons_per_worker, generator,
        )
    return WorkerAssignment(
        task_assignment=task_assignment,
        workers_per_hit=workers_per_hit,
        hit_workers=tuple(hit_workers),
    )


def _assign_with_quota(
    task_assignment: TaskAssignment,
    n_workers: int,
    workers_per_hit: int,
    quota: int,
    generator,
) -> List[Tuple[WorkerId, ...]]:
    """Least-loaded assignment under a per-worker comparison quota."""
    if quota < 1:
        raise AssignmentError(f"quota must be >= 1, got {quota}")
    total_needed = sum(
        len(hit) * workers_per_hit for hit in task_assignment.hits
    )
    if n_workers * quota < total_needed:
        raise AssignmentError(
            f"quota infeasible: {n_workers} workers x {quota} comparisons "
            f"< {total_needed} needed"
        )
    load = [0] * n_workers
    hit_workers: List[Tuple[WorkerId, ...]] = []
    for hit in task_assignment.hits:
        cost = len(hit)
        eligible = [k for k in range(n_workers) if load[k] + cost <= quota]
        if len(eligible) < workers_per_hit:
            # Feasible in aggregate but fragmented by HIT granularity
            # (c > 1 bundles); surface it rather than silently dropping.
            raise AssignmentError(
                f"quota too fragmented: HIT {hit.hit_id} needs "
                f"{workers_per_hit} workers with {cost} spare comparisons "
                f"each, only {len(eligible)} available"
            )
        jitter = generator.random(len(eligible))
        order = sorted(range(len(eligible)),
                       key=lambda idx: (load[eligible[idx]], jitter[idx]))
        chosen = [eligible[idx] for idx in order[:workers_per_hit]]
        for worker in chosen:
            load[worker] += cost
        hit_workers.append(tuple(chosen))
    return hit_workers
