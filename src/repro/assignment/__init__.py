"""Task assignment (Sec. IV): fair, HP-likely, budget-constrained HITs.

* :mod:`~repro.assignment.generator` — Algorithm 1: build the task graph
  and batch its edges into HITs of ``c`` comparisons each;
* :mod:`~repro.assignment.fairness` — post-hoc verification that a plan
  meets the fairness / HP-likelihood / budget requirements;
* :mod:`~repro.assignment.assigner` — distribute each HIT to ``w``
  distinct workers.
"""

from .generator import (
    TaskAssignment,
    assignment_from_pairs,
    batch_into_hits,
    generate_assignment,
)
from .fairness import AssignmentReport, verify_assignment
from .assigner import WorkerAssignment, assign_hits

__all__ = [
    "TaskAssignment",
    "assignment_from_pairs",
    "generate_assignment",
    "batch_into_hits",
    "AssignmentReport",
    "verify_assignment",
    "WorkerAssignment",
    "assign_hits",
]
