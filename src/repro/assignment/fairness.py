"""Post-hoc verification of the Sec. IV-A requirements.

:func:`verify_assignment` checks a concrete :class:`TaskAssignment`
against the three guarantees the paper claims for Algorithm 1 —
*fairness* (Theorem 4.1), *high HP-likelihood* (Theorem 4.4 at the ideal
degree) and *budget consciousness* — and returns a structured report the
tests and the ablation benchmarks assert on.
"""

from __future__ import annotations

from dataclasses import dataclass
from ..graphs.analysis import fairness_spread, hp_likelihood_of
from ..graphs.task_graph import TaskGraph
from .generator import TaskAssignment


@dataclass(frozen=True)
class AssignmentReport:
    """Structured audit of one task assignment.

    Attributes
    ----------
    fair:
        Strict Theorem-4.1 fairness (all degrees equal).
    near_fair:
        Relaxed fairness (degrees within 1; unavoidable when ``n`` does
        not divide ``2*l``).
    budget_respected:
        Task-graph edge count equals the planned ``l`` and the plan's
        spend is within budget.
    connected:
        The plan can support a full ranking at all.
    hp_seeded:
        (Implied by construction) the graph contains a Hamiltonian path;
        verified here via connectivity + the generator contract.
    degree_min / degree_max:
        Observed degree bounds.
    io_probability_spread:
        Max-min spread of Eq. 2's ``Prob(v^IO)`` across vertices
        (0 for a perfectly fair plan).
    hp_likelihood_bound:
        Theorem 4.4's ``Pr_l`` evaluated on the observed degrees.
    """

    fair: bool
    near_fair: bool
    budget_respected: bool
    connected: bool
    degree_min: int
    degree_max: int
    io_probability_spread: float
    hp_likelihood_bound: float

    @property
    def all_requirements_met(self) -> bool:
        """Paper's three requirements, with near-fairness accepted."""
        return self.near_fair and self.budget_respected and self.connected


def verify_assignment(assignment: TaskAssignment) -> AssignmentReport:
    """Audit a task assignment against the Sec. IV-A requirements."""
    graph: TaskGraph = assignment.task_graph
    d_min, d_max = graph.degree_bounds()
    pairs = assignment.all_pairs()
    budget_ok = (
        graph.n_edges == assignment.plan.n_comparisons
        and len(pairs) == graph.n_edges
        and len(set(pairs)) == len(pairs)
        and assignment.plan.budget.can_afford(graph.n_edges)
    )
    return AssignmentReport(
        fair=graph.is_regular(),
        near_fair=graph.is_near_regular(),
        budget_respected=budget_ok,
        connected=graph.is_connected(),
        degree_min=d_min,
        degree_max=d_max,
        io_probability_spread=fairness_spread(graph),
        hp_likelihood_bound=hp_likelihood_of(graph),
    )
