"""HITs generation (Sec. IV-B, Algorithm 1).

Given a resolved :class:`~repro.budget.planner.BudgetPlan`, build the fair
high-HP-likelihood task graph via
:func:`~repro.graphs.generators.near_regular_task_graph` and batch its
edges into HITs of ``c`` comparisons each.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

from ..budget.planner import BudgetPlan
from ..exceptions import AssignmentError
from ..graphs.task_graph import TaskGraph
from ..graphs.generators import near_regular_task_graph
from ..rng import SeedLike, ensure_rng
from ..types import HIT, Pair


@dataclass(frozen=True)
class TaskAssignment:
    """The output of the task-assignment step.

    Attributes
    ----------
    plan:
        The budget plan the assignment realises — ``None`` for ad-hoc
        batches (active acquisition picks pairs round by round, so no
        single up-front plan exists; see :func:`assignment_from_pairs`).
    task_graph:
        The task graph ``G_T``: near-regular with exactly
        ``plan.n_comparisons`` edges on the planned path, the batch's
        pairs on the ad-hoc path.
    hits:
        The task-graph edges batched into HITs of at most
        ``comparisons_per_hit`` pairs each.
    """

    plan: Optional[BudgetPlan]
    task_graph: TaskGraph
    hits: Tuple[HIT, ...]

    @property
    def n_hits(self) -> int:
        return len(self.hits)

    def all_pairs(self) -> List[Pair]:
        """Every comparison pair across all HITs (no duplicates)."""
        return [pair for hit in self.hits for pair in hit.pairs]


def batch_into_hits(
    task_graph: TaskGraph,
    comparisons_per_hit: int = 1,
    rng: SeedLike = None,
) -> Tuple[HIT, ...]:
    """Batch task-graph edges into HITs of ``c`` comparisons (Sec. II).

    Edges are shuffled before batching so that one HIT does not
    systematically contain correlated (adjacent) comparisons.
    """
    if comparisons_per_hit < 1:
        raise AssignmentError(
            f"comparisons_per_hit must be >= 1, got {comparisons_per_hit}"
        )
    generator = ensure_rng(rng)
    edges = list(task_graph.edges())
    generator.shuffle(edges)
    hits = []
    for start in range(0, len(edges), comparisons_per_hit):
        chunk = tuple(edges[start : start + comparisons_per_hit])
        hits.append(HIT(hit_id=len(hits), pairs=chunk))
    return tuple(hits)


def assignment_from_pairs(
    n_objects: int,
    pairs: Iterable[Pair],
    *,
    comparisons_per_hit: int = 1,
) -> TaskAssignment:
    """Wrap an explicit pair list into a :class:`TaskAssignment`.

    The active-acquisition path selects pairs by score instead of
    drawing a near-regular graph, and its batches may be far smaller
    than the ``n - 1`` edges a :class:`~repro.budget.planner.BudgetPlan`
    requires — so the result carries ``plan=None`` and preserves the
    given pair order (highest-value first) instead of shuffling.
    """
    if comparisons_per_hit < 1:
        raise AssignmentError(
            f"comparisons_per_hit must be >= 1, got {comparisons_per_hit}"
        )
    pair_list = list(pairs)
    task_graph = TaskGraph(n_objects, pair_list)
    hits = []
    for start in range(0, len(pair_list), comparisons_per_hit):
        chunk = tuple(pair_list[start : start + comparisons_per_hit])
        hits.append(HIT(hit_id=len(hits), pairs=chunk))
    return TaskAssignment(plan=None, task_graph=task_graph, hits=tuple(hits))


def generate_assignment(
    plan: BudgetPlan,
    rng: SeedLike = None,
    *,
    comparisons_per_hit: int = 1,
) -> TaskAssignment:
    """Algorithm 1 end-to-end: plan -> fair task graph -> HIT batches."""
    generator = ensure_rng(rng)
    task_graph = near_regular_task_graph(
        plan.n_objects, plan.n_comparisons, generator
    )
    hits = batch_into_hits(task_graph, comparisons_per_hit, generator)
    return TaskAssignment(plan=plan, task_graph=task_graph, hits=hits)
