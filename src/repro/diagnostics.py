"""Namespaced :mod:`logging` diagnostics for the whole library.

Library modules never print: anything a consumer may want to observe
(pipeline step timings, cache hits, retry scheduling, batch progress)
is emitted through loggers under the ``repro`` namespace obtained from
:func:`get_logger`.  The root ``repro`` logger carries a
:class:`logging.NullHandler`, so embedding applications stay silent
unless they opt in — either through their own ``logging`` configuration
or via the :func:`configure_logging` convenience used by the CLI's
``--verbose`` flag.  CLI *results* stay on stdout; diagnostics go to
stderr.
"""

from __future__ import annotations

import logging
import sys
from typing import Optional, TextIO

#: The namespace root every library logger lives under.
ROOT_LOGGER_NAME = "repro"

#: Format used by :func:`configure_logging` (stderr diagnostics).
LOG_FORMAT = "%(asctime)s %(levelname)-7s %(name)s: %(message)s"

# Library default: silent unless the application configures handlers.
logging.getLogger(ROOT_LOGGER_NAME).addHandler(logging.NullHandler())


def get_logger(name: str = "") -> logging.Logger:
    """Return a logger under the ``repro`` namespace.

    Parameters
    ----------
    name:
        Dotted suffix below the root — ``get_logger("service.cache")``
        yields the ``repro.service.cache`` logger.  An empty name (or a
        name already prefixed with ``repro``) returns the corresponding
        logger unchanged, so call sites may pass ``__name__`` directly.
    """
    if not name or name == ROOT_LOGGER_NAME:
        return logging.getLogger(ROOT_LOGGER_NAME)
    if name.startswith(ROOT_LOGGER_NAME + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{ROOT_LOGGER_NAME}.{name}")


def configure_logging(
    level: int = logging.INFO,
    stream: Optional[TextIO] = None,
) -> logging.Handler:
    """Attach a stream handler to the ``repro`` root logger.

    Intended for CLI / script use (``repro --verbose ...``); library code
    must never call this.  Calling it again replaces the handler it
    previously installed (idempotent), leaving any handlers the host
    application attached untouched.

    Parameters
    ----------
    level:
        Threshold applied to both the root logger and the handler.
    stream:
        Destination stream; defaults to ``sys.stderr`` so machine-read
        stdout output stays clean.

    Returns
    -------
    logging.Handler
        The installed handler (useful for tests and teardown).
    """
    root = logging.getLogger(ROOT_LOGGER_NAME)
    for handler in list(root.handlers):
        if getattr(handler, "_repro_cli_handler", False):
            root.removeHandler(handler)
    handler = logging.StreamHandler(stream or sys.stderr)
    handler.setFormatter(logging.Formatter(LOG_FORMAT))
    handler.setLevel(level)
    handler._repro_cli_handler = True  # type: ignore[attr-defined]
    root.addHandler(handler)
    root.setLevel(level)
    return handler
