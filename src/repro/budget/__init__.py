"""Budget accounting (Sec. II): ``l = floor(B / (w * r))``.

* :class:`~repro.budget.model.BudgetModel` — the paper's budget formula
  and its inversions;
* :mod:`~repro.budget.planner` — feasibility checks and plan sizing that
  connect a budget to a task-graph edge count and selection ratio.
"""

from .model import BudgetModel
from .planner import BudgetPlan, plan_for_budget, plan_for_selection_ratio
from .optimizer import BudgetSearchResult, minimal_selection_ratio

__all__ = [
    "BudgetModel",
    "BudgetPlan",
    "plan_for_budget",
    "plan_for_selection_ratio",
    "BudgetSearchResult",
    "minimal_selection_ratio",
]
