"""Budget minimisation — the conclusion's alternative objective.

"It is interesting to consider alternative objectives such as minimizing
the number of comparisons to find the full ranking with acceptable
accuracy."  :func:`minimal_selection_ratio` does exactly that for the
simulated setting: bisection over the selection ratio, evaluating each
candidate with repeated end-to-end pipeline runs, until the smallest
ratio whose *mean* accuracy clears the target is bracketed.

Accuracy is monotone in the ratio only in expectation — individual runs
are noisy — so each probe averages ``repeats`` runs and the bisection
treats the empirical mean as the response curve.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..config import PipelineConfig
from ..datasets.synthetic import SimulationScenario
from ..exceptions import ConfigurationError
from ..experiments.runner import run_pipeline_arm
from ..rng import SeedLike, ensure_rng, spawn_rngs


@dataclass(frozen=True)
class BudgetSearchResult:
    """Outcome of a minimal-budget search.

    Attributes
    ----------
    selection_ratio:
        The smallest probed ratio whose mean accuracy met the target
        (the bracket's upper end).
    n_comparisons:
        The comparison count that ratio resolves to.
    accuracy:
        The mean accuracy measured at that ratio.
    probes:
        Every ``ratio -> mean accuracy`` measurement taken, in probe
        order (useful for plotting the response curve).
    """

    selection_ratio: float
    n_comparisons: int
    accuracy: float
    probes: Dict[float, float]


def minimal_selection_ratio(
    scenario_factory,
    target_accuracy: float,
    *,
    repeats: int = 3,
    tolerance: float = 0.02,
    max_probes: int = 12,
    config: Optional[PipelineConfig] = None,
    rng: SeedLike = None,
) -> BudgetSearchResult:
    """Bisect the selection ratio to the accuracy target.

    Parameters
    ----------
    scenario_factory:
        ``f(selection_ratio, rng) -> SimulationScenario`` — builds the
        scenario to probe at a given ratio (ground truth and worker
        pool should be held fixed inside the factory for a fair sweep).
    target_accuracy:
        Required mean Kendall accuracy in (0.5, 1).
    repeats:
        Pipeline runs averaged per probe.
    tolerance:
        Bisection stops when the ratio bracket is narrower than this.
    max_probes:
        Upper bound on bisection probes (including the endpoints).
    config:
        Pipeline configuration for the probes.
    rng:
        Seed-like randomness for the probe runs.

    Raises
    ------
    ConfigurationError
        For an out-of-range target, or when even the full budget
        (``ratio = 1``) misses the target.
    """
    if not 0.5 < target_accuracy < 1.0:
        raise ConfigurationError(
            f"target_accuracy must be in (0.5, 1), got {target_accuracy}"
        )
    if repeats < 1:
        raise ConfigurationError(f"repeats must be >= 1, got {repeats}")
    generator = ensure_rng(rng)
    pipeline_config = config or PipelineConfig()
    probes: Dict[float, float] = {}

    def probe(ratio: float) -> float:
        scenario = scenario_factory(ratio, generator)
        runs = []
        for child in spawn_rngs(generator, repeats):
            record = run_pipeline_arm(scenario, pipeline_config, rng=child)
            runs.append(record.accuracy)
        mean = sum(runs) / len(runs)
        probes[round(ratio, 6)] = mean
        return mean

    low = _minimum_ratio(scenario_factory, generator)
    high = 1.0
    high_accuracy = probe(high)
    if high_accuracy < target_accuracy:
        raise ConfigurationError(
            f"even the full budget only reaches accuracy "
            f"{high_accuracy:.3f} < target {target_accuracy}"
        )
    low_accuracy = probe(low)
    if low_accuracy >= target_accuracy:
        high, high_accuracy = low, low_accuracy
    else:
        budget = max_probes - 2
        while high - low > tolerance and budget > 0:
            mid = (low + high) / 2.0
            if probe(mid) >= target_accuracy:
                high, high_accuracy = mid, probes[round(mid, 6)]
            else:
                low = mid
            budget -= 1

    final_scenario = scenario_factory(high, generator)
    from .planner import plan_for_selection_ratio

    plan = plan_for_selection_ratio(
        final_scenario.n_objects, high,
        workers_per_task=final_scenario.workers_per_task,
    )
    return BudgetSearchResult(
        selection_ratio=high,
        n_comparisons=plan.n_comparisons,
        accuracy=high_accuracy,
        probes=probes,
    )


def _minimum_ratio(scenario_factory, generator) -> float:
    """The spanning-plan floor: ``(n - 1) / C(n, 2) = 2 / n``."""
    scenario = scenario_factory(1.0, generator)
    return 2.0 / scenario.n_objects
