"""The paper's budget formula (Sec. II).

Every unique pairwise comparison is answered by ``w`` workers, each paid a
reward ``r``, so a budget ``B`` affords ``l = floor(B / (w * r))`` unique
comparisons.  :class:`BudgetModel` holds ``(B, w, r)`` and exposes the
forward formula plus the inversions the experiment harness needs (budget
required for a target selection ratio, spend of a concrete plan, ...).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..exceptions import BudgetError


@dataclass(frozen=True)
class BudgetModel:
    """Crowdsourcing budget parameters.

    Attributes
    ----------
    total:
        The requester's budget ``B`` (same currency unit as ``reward``).
    workers_per_task:
        ``w`` — how many distinct workers answer each unique comparison.
    reward:
        ``r`` — payment per single pairwise comparison by one worker
        (the paper's AMT study pays $0.025).
    """

    total: float
    workers_per_task: int
    reward: float = 0.025

    def __post_init__(self) -> None:
        if self.total < 0:
            raise BudgetError(f"budget must be non-negative, got {self.total}")
        if self.workers_per_task < 1:
            raise BudgetError(
                f"workers_per_task must be >= 1, got {self.workers_per_task}"
            )
        if self.reward <= 0:
            raise BudgetError(f"reward must be positive, got {self.reward}")

    @property
    def cost_per_comparison(self) -> float:
        """Cost of one unique comparison: ``w * r``."""
        return self.workers_per_task * self.reward

    def affordable_comparisons(self) -> int:
        """The paper's ``l = floor(B / (w * r))``.

        A one-ulp tolerance keeps budgets constructed as exact multiples
        of the per-comparison cost (``required_budget``) from flooring
        one comparison short.
        """
        return int(math.floor(self.total / self.cost_per_comparison + 1e-9))

    def cost_of(self, n_comparisons: int) -> float:
        """Total spend for ``n_comparisons`` unique comparisons."""
        if n_comparisons < 0:
            raise BudgetError(f"n_comparisons must be >= 0, got {n_comparisons}")
        return n_comparisons * self.cost_per_comparison

    def can_afford(self, n_comparisons: int) -> bool:
        """Whether the budget covers ``n_comparisons`` unique comparisons."""
        return self.cost_of(n_comparisons) <= self.total + 1e-12

    @staticmethod
    def required_budget(
        n_comparisons: int, workers_per_task: int, reward: float = 0.025
    ) -> "BudgetModel":
        """The smallest budget affording exactly ``n_comparisons``.

        The experiment harness uses this to translate a target selection
        ratio into a concrete budget before running the pipeline.
        """
        if n_comparisons < 0:
            raise BudgetError(f"n_comparisons must be >= 0, got {n_comparisons}")
        model = BudgetModel(
            total=n_comparisons * workers_per_task * reward,
            workers_per_task=workers_per_task,
            reward=reward,
        )
        return model

    def selection_ratio(self, n_objects: int) -> float:
        """Affordable fraction of all ``C(n, 2)`` comparisons (clipped at 1)."""
        if n_objects < 2:
            raise BudgetError(f"need at least 2 objects, got {n_objects}")
        all_pairs = n_objects * (n_objects - 1) // 2
        return min(1.0, self.affordable_comparisons() / all_pairs)
