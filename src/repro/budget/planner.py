"""Plan sizing: connect budgets, selection ratios and task-graph sizes.

The experiments sweep the *selection ratio* ``r_sel = l / C(n, 2)``
(Sec. VI-A1); the platform thinks in budgets ``B``.  :class:`BudgetPlan`
is the resolved middle ground: a concrete number of unique comparisons
``n_comparisons`` guaranteed to satisfy both the budget and the structural
requirements of Algorithm 1 (at least ``n - 1`` edges so a Hamiltonian
path can be seeded, at most ``C(n, 2)``).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..exceptions import BudgetError
from .model import BudgetModel


@dataclass(frozen=True)
class BudgetPlan:
    """A resolved crowdsourcing plan.

    Attributes
    ----------
    n_objects:
        Number of objects to rank.
    n_comparisons:
        Unique comparisons to crowdsource (task-graph edges ``l``).
    budget:
        The budget model that pays for the plan.
    """

    n_objects: int
    n_comparisons: int
    budget: BudgetModel

    def __post_init__(self) -> None:
        if self.n_objects < 2:
            raise BudgetError(f"need at least 2 objects, got {self.n_objects}")
        max_pairs = self.n_objects * (self.n_objects - 1) // 2
        if not self.n_objects - 1 <= self.n_comparisons <= max_pairs:
            raise BudgetError(
                f"n_comparisons={self.n_comparisons} outside feasible range "
                f"[{self.n_objects - 1}, {max_pairs}] for n={self.n_objects}"
            )
        if not self.budget.can_afford(self.n_comparisons):
            raise BudgetError(
                f"budget {self.budget.total} cannot afford "
                f"{self.n_comparisons} comparisons at "
                f"{self.budget.cost_per_comparison} each"
            )

    @property
    def selection_ratio(self) -> float:
        """``l / C(n, 2)``, the paper's ``r``."""
        return self.n_comparisons / (self.n_objects * (self.n_objects - 1) // 2)

    @property
    def total_votes(self) -> int:
        """Total individual answers collected: ``l * w``."""
        return self.n_comparisons * self.budget.workers_per_task

    @property
    def spend(self) -> float:
        """Actual money spent (may undershoot the budget)."""
        return self.budget.cost_of(self.n_comparisons)


def plan_for_budget(
    n_objects: int,
    budget: BudgetModel,
) -> BudgetPlan:
    """Resolve the largest feasible plan under a given budget.

    Clips the affordable count into ``[n - 1, C(n, 2)]``; raises
    :class:`BudgetError` when even the spanning minimum ``n - 1`` is
    unaffordable (no full ranking can possibly be inferred).
    """
    affordable = budget.affordable_comparisons()
    max_pairs = n_objects * (n_objects - 1) // 2
    if affordable < n_objects - 1:
        raise BudgetError(
            f"budget affords only {affordable} comparisons but a connected "
            f"plan over {n_objects} objects needs at least {n_objects - 1}"
        )
    return BudgetPlan(
        n_objects=n_objects,
        n_comparisons=min(affordable, max_pairs),
        budget=budget,
    )


def plan_for_selection_ratio(
    n_objects: int,
    selection_ratio: float,
    workers_per_task: int,
    reward: float = 0.025,
) -> BudgetPlan:
    """Resolve a plan from a target selection ratio (experiment-style).

    ``n_comparisons = round(r * C(n, 2))`` clipped into the feasible
    range; the budget is derived as the exact spend.  This is how every
    benchmark translates the paper's ``r`` axis into concrete runs.
    """
    if not 0.0 < selection_ratio <= 1.0:
        raise BudgetError(
            f"selection_ratio must be in (0, 1], got {selection_ratio}"
        )
    max_pairs = n_objects * (n_objects - 1) // 2
    n_comparisons = int(round(selection_ratio * max_pairs))
    n_comparisons = max(n_objects - 1, min(n_comparisons, max_pairs))
    budget = BudgetModel.required_budget(
        n_comparisons, workers_per_task=workers_per_task, reward=reward
    )
    return BudgetPlan(
        n_objects=n_objects, n_comparisons=n_comparisons, budget=budget
    )
