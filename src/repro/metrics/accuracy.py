"""The paper's accuracy metric and pairwise agreement (Sec. VI-A5).

``ranking_accuracy = 1 - d`` with ``d`` the normalised Kendall-tau
distance; this is the number reported in every figure and table.  For the
AMT-style study — where no ground truth exists — the same function
measures *agreement* between two algorithms' outputs (the paper compares
TAPS vs SAPS this way).
"""

from __future__ import annotations

from typing import Iterable, Tuple

from ..types import Ranking
from .kendall import normalized_kendall_tau_distance


def ranking_accuracy(result: Ranking, reference: Ranking) -> float:
    """The paper's accuracy: ``1 - normalised Kendall-tau distance``.

    1.0 means identical rankings; 0.0 means exact reversal.  ``reference``
    is the ground truth in simulation, or another algorithm's output in
    the AMT setting.
    """
    return 1.0 - normalized_kendall_tau_distance(result, reference)


def pairwise_agreement(
    result: Ranking, preferences: Iterable[Tuple[int, int]]
) -> float:
    """Fraction of given ordered preferences ``(i, j)`` (meaning
    ``i ≺ j``) that the ranking satisfies.

    Useful for scoring against raw (possibly non-transitive) vote data
    where no consensus ranking exists.
    """
    total = 0
    satisfied = 0
    for i, j in preferences:
        total += 1
        if result.prefers(i, j):
            satisfied += 1
    return satisfied / total if total else 1.0
