"""Ranking-quality metrics (Sec. VI-A5).

The paper evaluates with the normalised Kendall-tau distance ``d`` and
reports ``1 - d`` as accuracy.  This package provides that plus the
companions used by the extended analyses:

* :mod:`~repro.metrics.kendall` — O(n log n) Kendall-tau distance and
  correlation;
* :mod:`~repro.metrics.spearman` — Spearman footrule and rho;
* :mod:`~repro.metrics.accuracy` — the paper's ``1 - d`` accuracy;
* :mod:`~repro.metrics.topk` — top-k overlap / precision metrics for the
  future-work direction the conclusion sketches.
"""

from .kendall import kendall_tau_distance, normalized_kendall_tau_distance, kendall_tau_correlation
from .spearman import spearman_footrule, normalized_spearman_footrule, spearman_rho
from .accuracy import ranking_accuracy, pairwise_agreement
from .topk import topk_overlap, topk_precision

__all__ = [
    "kendall_tau_distance",
    "normalized_kendall_tau_distance",
    "kendall_tau_correlation",
    "spearman_footrule",
    "normalized_spearman_footrule",
    "spearman_rho",
    "ranking_accuracy",
    "pairwise_agreement",
    "topk_overlap",
    "topk_precision",
]
