"""Spearman rank metrics: footrule distance and rho coefficient.

Companion metrics to Kendall tau (Sec. VII cites Spearman's rank
correlation as the other standard disagreement measure for rank
aggregation).  Both operate on full rankings over the same object set.
"""

from __future__ import annotations

import numpy as np

from ..types import Ranking
from .kendall import _validate_pair


def _position_arrays(a: Ranking, b: Ranking) -> tuple:
    objects = a.order
    pos_a = np.arange(len(a), dtype=np.float64)
    pos_b = np.fromiter(
        (b.position(obj) for obj in objects), dtype=np.float64, count=len(a)
    )
    return pos_a, pos_b


def spearman_footrule(a: Ranking, b: Ranking) -> int:
    """Sum over objects of the absolute rank displacement."""
    _validate_pair(a, b)
    pos_a, pos_b = _position_arrays(a, b)
    return int(np.abs(pos_a - pos_b).sum())


def normalized_spearman_footrule(a: Ranking, b: Ranking) -> float:
    """Footrule divided by its maximum ``floor(n^2 / 2)``; in [0, 1]."""
    n = len(a)
    if n < 2:
        return 0.0
    return spearman_footrule(a, b) / float((n * n) // 2)


def spearman_rho(a: Ranking, b: Ranking) -> float:
    """Spearman's rank correlation coefficient in [-1, 1].

    ``rho = 1 - 6 * sum(d_i^2) / (n (n^2 - 1))`` for distinct ranks.
    """
    _validate_pair(a, b)
    n = len(a)
    if n < 2:
        return 1.0
    pos_a, pos_b = _position_arrays(a, b)
    d_squared = float(((pos_a - pos_b) ** 2).sum())
    return 1.0 - 6.0 * d_squared / (n * (n * n - 1))
