"""Top-k metrics — the conclusion's "top-k ranking" future-work direction.

These quantify how well a full ranking's head matches a reference: set
overlap of the top-k prefixes, and precision of the claimed top-k against
the reference top-k.
"""

from __future__ import annotations

from ..exceptions import ConfigurationError
from ..types import Ranking


def _check_k(ranking: Ranking, k: int) -> None:
    if not 1 <= k <= len(ranking):
        raise ConfigurationError(
            f"k={k} outside [1, {len(ranking)}]"
        )


def topk_overlap(result: Ranking, reference: Ranking, k: int) -> float:
    """Jaccard overlap of the two top-k object sets, in [0, 1]."""
    _check_k(result, k)
    _check_k(reference, k)
    top_result = set(result.order[:k])
    top_reference = set(reference.order[:k])
    union = top_result | top_reference
    return len(top_result & top_reference) / len(union)


def topk_precision(result: Ranking, reference: Ranking, k: int) -> float:
    """Fraction of the claimed top-k that belongs to the true top-k."""
    _check_k(result, k)
    _check_k(reference, k)
    top_reference = set(reference.order[:k])
    hits = sum(1 for obj in result.order[:k] if obj in top_reference)
    return hits / k
