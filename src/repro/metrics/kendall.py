"""Kendall-tau distance in O(n log n) (Knight's merge-sort method [28]).

The Kendall-tau distance between two full rankings is the number of
object pairs the rankings order oppositely (discordant pairs).  Relabel
the objects by their position in the first ranking; the distance is then
the inversion count of the second ranking's position sequence, which a
merge sort counts in O(n log n).
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ConfigurationError
from ..types import Ranking


def _validate_pair(a: Ranking, b: Ranking) -> None:
    if len(a) != len(b):
        raise ConfigurationError(
            f"rankings cover {len(a)} vs {len(b)} objects"
        )
    if set(a.order) != set(b.order):
        raise ConfigurationError("rankings cover different object sets")


def _inversions(sequence: np.ndarray) -> int:
    """Inversion count by iterative merge sort."""
    seq = sequence.astype(np.int64, copy=True)
    n = len(seq)
    buffer = np.empty_like(seq)
    inversions = 0
    width = 1
    while width < n:
        for left in range(0, n, 2 * width):
            mid = min(left + width, n)
            right = min(left + 2 * width, n)
            i, j, k = left, mid, left
            while i < mid and j < right:
                if seq[i] <= seq[j]:
                    buffer[k] = seq[i]
                    i += 1
                else:
                    buffer[k] = seq[j]
                    j += 1
                    inversions += mid - i
                k += 1
            while i < mid:
                buffer[k] = seq[i]
                i += 1
                k += 1
            while j < right:
                buffer[k] = seq[j]
                j += 1
                k += 1
        seq, buffer = buffer, seq
        width *= 2
    return int(inversions)


def kendall_tau_distance(a: Ranking, b: Ranking) -> int:
    """Number of discordant pairs between two full rankings."""
    _validate_pair(a, b)
    # Position of each object in `a`, read off in `b`'s order: inversions
    # of this sequence are exactly the discordant pairs.
    positions = np.fromiter(
        (a.position(obj) for obj in b), dtype=np.int64, count=len(b)
    )
    return _inversions(positions)


def normalized_kendall_tau_distance(a: Ranking, b: Ranking) -> float:
    """Kendall-tau distance divided by the pair count ``C(n, 2)``.

    0 for identical rankings, 1 for exact reverses.  This is the paper's
    ``d``.
    """
    n = len(a)
    if n < 2:
        return 0.0
    return kendall_tau_distance(a, b) / (n * (n - 1) / 2)


def kendall_tau_correlation(a: Ranking, b: Ranking) -> float:
    """Kendall's tau coefficient in [-1, 1]: ``1 - 2 d_norm``."""
    return 1.0 - 2.0 * normalized_kendall_tau_distance(a, b)
