"""repro.server — network-facing ranking service (stdlib only).

A threaded HTTP JSON API fronting the batch subsystem: requesters POST
collected worker answers (or simulation specs) once — the paper's
non-interactive model — and get the aggregated ranking back, while the
admission gate, per-request deadlines, Prometheus metrics and graceful
drain make the endpoint safe to run always-on.

Quickstart
----------
>>> from repro.server import RankingServer, ServerConfig
>>> server = RankingServer(ServerConfig(port=0, workers=2))
>>> server.start()
>>> server.url  # doctest: +SKIP
'http://127.0.0.1:54321'
>>> server.stop()
True

The CLI exposes the same machinery as ``repro serve``; the matching
client lives in :mod:`repro.client`.  ``repro serve --processes N``
scales the same API across a pre-fork group of N processes sharing one
``SO_REUSEPORT`` port (:class:`PreforkSupervisor`), with a crash-safe
shared result cache underneath.
"""

from .app import AdmissionGate, RankingServer, ServerConfig
from .prefork import PreforkSupervisor
from .prometheus import (
    PROMETHEUS_CONTENT_TYPE,
    render_prometheus,
    sanitize_metric_name,
)

__all__ = [
    "AdmissionGate",
    "PROMETHEUS_CONTENT_TYPE",
    "PreforkSupervisor",
    "RankingServer",
    "ServerConfig",
    "render_prometheus",
    "sanitize_metric_name",
]
