"""Prometheus text exposition for :class:`~repro.service.MetricsRegistry`.

The registry's JSON snapshot is rendered into the Prometheus text-based
exposition format (version 0.0.4) so any standard scraper can consume
``GET /metrics`` without the server growing a client-library
dependency:

* counters become ``<prefix>_<name>_total`` ``counter`` samples;
* timers become ``summary`` families — ``_count`` / ``_sum`` plus
  ``{quantile="0.5|0.95|0.99"}`` samples fed by the registry's bounded
  reservoirs — named ``<prefix>_<name>`` (timer names already end in
  ``seconds`` by convention);
* derived ratios and caller-supplied instantaneous values (queue depth,
  in-flight requests) become ``gauge`` samples.

Dots in registry names map to underscores; any other character invalid
in a Prometheus metric name is likewise replaced.  Families are emitted
in sorted order so the output is deterministic and diff-friendly.
"""

from __future__ import annotations

import re
from typing import Dict, List, Mapping, Optional

#: Content-Type the exposition format mandates for scrapes.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: Maps the registry's ``pNN`` percentile keys to quantile label values.
_QUANTILE_KEYS = {"p50": "0.5", "p95": "0.95", "p99": "0.99"}

_INVALID_CHARS = re.compile(r"[^a-zA-Z0-9_:]")


def sanitize_metric_name(name: str) -> str:
    """Coerce a registry name into a valid Prometheus metric name."""
    cleaned = _INVALID_CHARS.sub("_", name)
    if not cleaned or cleaned[0].isdigit():
        cleaned = f"_{cleaned}"
    return cleaned


def _format_value(value: float) -> str:
    # The text exposition format spells the specials "+Inf", "-Inf" and
    # "NaN" — Python's repr ("inf" / "-inf" / "nan") is not parseable
    # by standard scrapers.
    if isinstance(value, float):
        if value != value:
            return "NaN"
        if value == float("inf"):
            return "+Inf"
        if value == float("-inf"):
            return "-Inf"
        return repr(value)
    return str(value)


def render_prometheus(
    snapshot: Mapping[str, object],
    *,
    prefix: str = "repro",
    gauges: Optional[Mapping[str, float]] = None,
) -> str:
    """Render one registry snapshot as Prometheus exposition text.

    Parameters
    ----------
    snapshot:
        A :meth:`~repro.service.MetricsRegistry.snapshot` dict
        (``counters`` / ``timers`` / ``derived`` keys; missing keys are
        tolerated and render nothing).
    prefix:
        Namespace prepended to every family name.
    gauges:
        Extra instantaneous values (server in-flight count, queue
        capacity, ...) rendered as ``gauge`` families.
    """
    lines: List[str] = []

    counters = snapshot.get("counters", {})
    if isinstance(counters, Mapping):
        for name in sorted(counters):
            metric = f"{prefix}_{sanitize_metric_name(name)}_total"
            lines.append(f"# TYPE {metric} counter")
            lines.append(f"{metric} {_format_value(counters[name])}")

    timers = snapshot.get("timers", {})
    if isinstance(timers, Mapping):
        for name in sorted(timers):
            stats = timers[name]
            if not isinstance(stats, Mapping):
                continue
            metric = f"{prefix}_{sanitize_metric_name(name)}"
            lines.append(f"# TYPE {metric} summary")
            for key, quantile in _QUANTILE_KEYS.items():
                if key in stats:
                    lines.append(
                        f'{metric}{{quantile="{quantile}"}} '
                        f"{_format_value(stats[key])}"
                    )
            lines.append(f"{metric}_sum {_format_value(stats.get('total', 0.0))}")
            lines.append(f"{metric}_count {_format_value(stats.get('count', 0))}")

    gauge_families: Dict[str, float] = {}
    derived = snapshot.get("derived", {})
    if isinstance(derived, Mapping):
        gauge_families.update(derived)
    if gauges:
        gauge_families.update(gauges)
    for name in sorted(gauge_families):
        metric = f"{prefix}_{sanitize_metric_name(name)}"
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_format_value(gauge_families[name])}")

    return "\n".join(lines) + "\n"
