"""Pre-fork multi-process serving over one ``SO_REUSEPORT`` port.

:class:`RankingServer` is a threaded server, so a single process tops
out at roughly one core of Python work.  This module goes wide the
classic pre-fork way: :class:`PreforkSupervisor` resolves the listen
port once, then starts ``config.processes`` child processes that each
run a full :class:`RankingServer` **bound to the same port** with
``SO_REUSEPORT`` — the kernel load-balances incoming connections
across the listening sockets, no userspace proxy needed.

The division of labour:

* the **supervisor** owns no listener of its own.  It holds a bound
  but *never listening* "reserve" socket on the group's port — a
  non-listening TCP socket receives no connections, but its bind keeps
  the port claimed for the group, so port 0 resolves exactly once and
  an ephemeral port cannot be stolen between child restarts;
* each **child** is an ordinary single-process server: it binds and
  listens on the shared port, serves, and on SIGTERM drains gracefully
  (stop accepting, finish in-flight requests bounded by
  ``drain_grace``, exit 0) — the same drain contract as ``repro
  serve`` has always had, now per child;
* a child that **crashes** is detected through its process sentinel
  and respawned in place, so capacity heals without dropping the other
  children.  Respawns are counted and surfaced through ``on_event``.

Because every child runs its own :class:`~repro.service.ResultCache`
over one shared ``cache_dir`` (the crash-safe spill tier in
:mod:`repro.service.shared_cache`), a result computed by any child is
readable by every other child and by the next generation after a
respawn.  Streaming sessions, by contrast, live in per-child memory —
multi-process serving is for the stateless ``/v1/rank`` and
``/v1/batch`` planes.

Child processes are started through
:func:`repro.workers.get_mp_context`, so the start method follows the
same policy as the process execution backend (explicit argument, then
``REPRO_MP_START``, then fork-else-spawn).  Everything a child needs
(:class:`~repro.server.ServerConfig`, a readiness event) is picklable,
so ``spawn`` works where ``fork`` is unavailable.
"""

from __future__ import annotations

import dataclasses
import os
import signal
import socket
import sys
import threading
import time
from typing import Callable, Dict, List, Optional

from ..diagnostics import get_logger
from ..exceptions import ConfigurationError, WorkerCrashedError
from ..workers.backends import get_mp_context
from .app import RankingServer, ServerConfig

_log = get_logger("server.prefork")

#: Callback type for supervisor lifecycle events:
#: ``on_event(name, info)`` with names ``"child_started"``,
#: ``"child_exit"`` and ``"child_respawned"``.
EventCallback = Callable[[str, Dict[str, object]], None]


def _child_main(config: ServerConfig, ready_event) -> None:
    """Entry point of one serving child (module-level for spawn).

    Runs a complete :class:`RankingServer` on the group's shared port
    and blocks until SIGTERM, then drains and exits — code 0 when
    everything in flight finished inside the grace period, 3 when the
    drain timed out.  SIGINT is ignored: an interactive Ctrl-C reaches
    the whole foreground process group, and the supervisor (not the
    kernel) decides when children stop.
    """
    stop = threading.Event()
    signal.signal(signal.SIGTERM, lambda signum, frame: stop.set())
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    server = RankingServer(config)
    server.start()
    ready_event.set()
    stop.wait()
    drained = server.stop()
    sys.exit(0 if drained else 3)


class _Child:
    """One serving child: its process handle and readiness event."""

    __slots__ = ("index", "process", "ready")

    def __init__(self, index: int, process, ready):
        self.index = index
        self.process = process
        self.ready = ready


class PreforkSupervisor:
    """Starts, watches, heals and drains a group of serving children.

    Parameters
    ----------
    config:
        The group's :class:`~repro.server.ServerConfig`;
        ``config.processes`` is the group size and ``config.port`` may
        be 0 (resolved once for the whole group — read the real port
        back from :attr:`port` after :meth:`start`).
    start_method:
        ``multiprocessing`` start method override; ``None`` follows
        :func:`repro.workers.get_mp_context`'s policy.
    on_event:
        Optional callback receiving ``(event_name, info_dict)`` for
        child starts, exits and respawns.  Exceptions it raises are
        logged and swallowed — observability must not kill serving.
    """

    def __init__(
        self,
        config: ServerConfig,
        *,
        start_method: Optional[str] = None,
        on_event: Optional[EventCallback] = None,
    ):
        if not hasattr(socket, "SO_REUSEPORT"):
            raise ConfigurationError(
                "pre-fork serving needs SO_REUSEPORT, which this "
                "platform does not provide"
            )
        self._config = config
        self._ctx = get_mp_context(start_method)
        self._on_event = on_event
        self._children: List[_Child] = []
        self._reserve: Optional[socket.socket] = None
        self._child_config: Optional[ServerConfig] = None
        self._stopping = threading.Event()
        self._stopped = False
        self._respawns = 0

    # -- introspection ------------------------------------------------------

    @property
    def config(self) -> ServerConfig:
        return self._config

    @property
    def port(self) -> int:
        """The group's shared port (real one, even when configured 0)."""
        if self._reserve is None:
            raise ConfigurationError("supervisor not started")
        return self._reserve.getsockname()[1]

    @property
    def url(self) -> str:
        return f"http://{self._config.host}:{self.port}"

    @property
    def pids(self) -> List[int]:
        """PIDs of the current child generation (respawns included)."""
        return [c.process.pid for c in self._children
                if c.process.pid is not None]

    @property
    def respawns(self) -> int:
        """How many crashed children have been replaced so far."""
        return self._respawns

    # -- lifecycle ----------------------------------------------------------

    def start(self, ready_timeout: float = 30.0) -> None:
        """Claim the port, start every child, wait until all are ready.

        Raises
        ------
        WorkerCrashedError
            When a child dies, or fails to report readiness, within
            ``ready_timeout`` seconds; the group is torn down first.
        """
        if self._reserve is not None or self._stopped:
            raise ConfigurationError(
                "supervisor already started; build a new one to restart"
            )
        reserve = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        try:
            reserve.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
            reserve.bind((self._config.host, self._config.port))
        except BaseException:
            reserve.close()
            raise
        # Bound but deliberately never listen()ing: the bind keeps the
        # (possibly ephemeral) port claimed for the group's lifetime
        # while all actual connections go to the children.
        self._reserve = reserve
        self._child_config = dataclasses.replace(
            self._config, port=self.port, reuse_port=True
        )
        try:
            for index in range(self._config.processes):
                self._children.append(self._spawn(index))
            self._await_ready(ready_timeout)
        except BaseException:
            self.stop(grace=1.0)
            raise
        _log.info("pre-fork group ready on %s (%d process(es): %s)",
                  self.url, len(self._children),
                  ", ".join(map(str, self.pids)))

    def poll(self) -> int:
        """Respawn any child that died; returns how many were replaced.

        Called continuously by :meth:`serve_forever`; exposed for
        embedding applications running their own supervision loop.
        """
        if self._stopping.is_set():
            return 0
        respawned = 0
        for slot, child in enumerate(self._children):
            if child.process.is_alive():
                continue
            child.process.join()
            code = child.process.exitcode
            _log.warning(
                "serving child %d (pid %s) exited with code %s; "
                "respawning", child.index, child.process.pid, code,
            )
            self._emit("child_exit", index=child.index,
                       pid=child.process.pid, exitcode=code)
            replacement = self._spawn(child.index)
            self._children[slot] = replacement
            self._respawns += 1
            respawned += 1
            self._emit("child_respawned", index=child.index,
                       pid=replacement.process.pid)
        return respawned

    def serve_forever(self, stop_event: Optional[threading.Event] = None,
                      poll_interval: float = 0.5) -> None:
        """Supervise until ``stop_event`` is set (or :meth:`stop` runs).

        Blocks on the children's process sentinels, so a crash wakes
        the loop immediately; ``poll_interval`` only bounds how long a
        ``stop_event`` set by a signal handler waits to be noticed.
        """
        from multiprocessing.connection import wait as conn_wait

        while not self._stopping.is_set() and \
                (stop_event is None or not stop_event.is_set()):
            sentinels = [c.process.sentinel for c in self._children
                         if c.process.is_alive()]
            if sentinels:
                conn_wait(sentinels, timeout=poll_interval)
            else:
                time.sleep(poll_interval)
            self.poll()

    def stop(self, grace: Optional[float] = None) -> bool:
        """SIGTERM every child, wait for the drains, release the port.

        Each child gets the group's drain contract: up to ``grace``
        seconds (default ``config.drain_grace``) to finish in-flight
        requests.  A child still alive afterwards is killed.

        Returns True when every child exited 0 (clean drain), False
        when any was killed or reported a drain timeout.
        """
        if self._stopped:
            return True
        self._stopping.set()
        self._stopped = True
        if grace is None:
            grace = self._config.drain_grace
        for child in self._children:
            if child.process.is_alive():
                try:
                    os.kill(child.process.pid, signal.SIGTERM)
                except (ProcessLookupError, TypeError):
                    pass
        # Margin past the children's own drain grace so a child that
        # drains right at the wire still exits on its own terms.
        deadline = time.monotonic() + grace + 5.0
        drained = True
        for child in self._children:
            child.process.join(max(0.0, deadline - time.monotonic()))
            if child.process.is_alive():
                _log.warning("serving child %d (pid %s) survived the "
                             "drain grace; killing", child.index,
                             child.process.pid)
                child.process.kill()
                child.process.join(5.0)
                drained = False
            elif child.process.exitcode != 0:
                drained = False
        if self._reserve is not None:
            self._reserve.close()
        _log.info("pre-fork group stopped (drained=%s, respawns=%d)",
                  drained, self._respawns)
        return drained

    def __enter__(self) -> "PreforkSupervisor":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    # -- internals ----------------------------------------------------------

    def _spawn(self, index: int) -> _Child:
        ready = self._ctx.Event()
        process = self._ctx.Process(
            target=_child_main,
            args=(self._child_config, ready),
            name=f"repro-serve-{index}",
        )
        process.start()
        self._emit("child_started", index=index, pid=process.pid)
        return _Child(index, process, ready)

    def _await_ready(self, timeout: float) -> None:
        deadline = time.monotonic() + timeout
        for child in self._children:
            remaining = max(0.0, deadline - time.monotonic())
            if child.ready.wait(remaining):
                continue
            alive = child.process.is_alive()
            raise WorkerCrashedError(
                f"serving child {child.index} (pid {child.process.pid}) "
                + ("failed to become ready" if alive else "died")
                + f" within {timeout:g}s"
            )

    def _emit(self, event: str, **info: object) -> None:
        if self._on_event is None:
            return
        try:
            self._on_event(event, info)
        except Exception:  # noqa: BLE001 — observer must not kill serving
            _log.exception("on_event observer failed for %r", event)
